//! A named collection of embeddings over a set of storage segments.
//!
//! The collection follows the segmented storage model (see [`crate::segment`]):
//! inserts land in a growing segment that seals into an immutable,
//! ANN-indexed segment every `segment_capacity` rows; searches fan out over
//! all segments in parallel and k-way-merge the per-segment top-k; and
//! [`SegmentedCollection::compact`] merges undersized sealed segments to
//! bound the fan-out width.

use crate::segment::{Segment, ZoneMap};
use crate::Result;
use lovo_index::{
    IdFilter, IndexKind, QuantizationOptions, SearchResult, SearchStats, TopK, VectorId,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default number of rows after which the growing segment seals.
pub const DEFAULT_SEGMENT_CAPACITY: usize = 4096;

/// Collections with fewer total rows than this are searched sequentially:
/// below it, per-query thread spawns cost about as much as the scans they
/// parallelize.
pub const SEQUENTIAL_SEARCH_ROWS: usize = 8192;

/// Configuration of a vector collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollectionConfig {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Index family backing sealed segments.
    pub index_kind: IndexKind,
    /// Whether inserted vectors are L2-normalized before being stored
    /// (the paper normalizes everything so dot product = cosine, §V-A).
    pub normalize: bool,
    /// Rows at which the growing segment seals and builds its ANN index.
    /// Bounds per-segment build cost; smaller values seal (and parallelize)
    /// more eagerly at the price of a wider search fan-out.
    pub segment_capacity: usize,
    /// Quantized scan acceleration applied to segment indexes at seal time
    /// (int8 flat stores, 4-bit fast-scan PQ, int8 rescore arenas). Off by
    /// default; results stay exact-rescored when enabled.
    pub quantization: QuantizationOptions,
}

impl CollectionConfig {
    /// Creates a configuration with the paper's defaults (IVF-PQ, normalized).
    pub fn new(dim: usize) -> Self {
        Self {
            dim,
            index_kind: IndexKind::IvfPq,
            normalize: true,
            segment_capacity: DEFAULT_SEGMENT_CAPACITY,
            quantization: QuantizationOptions::none(),
        }
    }

    /// Builder-style index family override (Table V switches this).
    pub fn with_index_kind(mut self, kind: IndexKind) -> Self {
        self.index_kind = kind;
        self
    }

    /// Builder-style segment capacity override.
    pub fn with_segment_capacity(mut self, capacity: usize) -> Self {
        self.segment_capacity = capacity.max(1);
        self
    }

    /// Builder-style quantization override, applied when segments seal.
    pub fn with_quantization(mut self, quantization: QuantizationOptions) -> Self {
        self.quantization = quantization;
        self
    }
}

/// Size and build statistics of a collection.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CollectionStats {
    /// Number of stored vectors across all segments.
    pub entities: usize,
    /// Approximate index memory footprint in bytes (sealed segments).
    pub index_bytes: usize,
    /// Approximate raw embedding payload in bytes (before compression).
    pub raw_bytes: usize,
    /// Whether every stored row lives in a sealed, index-backed segment.
    pub built: bool,
    /// Number of sealed (immutable, indexed) segments.
    pub sealed_segments: usize,
    /// Rows currently buffered in the growing segment.
    pub growing_rows: usize,
    /// Lifetime count of segment index builds (seals + compaction rebuilds).
    /// Incremental ingest asserts on this: appending a batch must build
    /// exactly one new segment, never rebuild existing ones.
    pub index_builds: usize,
    /// Lifetime count of compaction passes that merged at least one segment.
    pub compactions: usize,
    /// Content generation: bumped on every mutation that can change what a
    /// search returns (row inserts, seals, compactions). Serving layers use
    /// it as a cheap cache-invalidation epoch — a cached result is valid only
    /// while the generation it was computed under is still current.
    pub generation: u64,
}

/// Outcome of one [`SegmentedCollection::compact`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CompactionResult {
    /// Undersized sealed segments that were merged away.
    pub segments_merged: usize,
    /// Merged segments created (each with a freshly built index).
    pub segments_created: usize,
}

/// A fully compiled pushed-down filter: the per-row id test every segment
/// scan applies, plus (optionally) the id ranges the filter could accept,
/// which the fan-out checks against segment zone maps to prune whole
/// segments without probing them.
#[derive(Debug)]
pub struct PushdownFilter {
    ids: IdFilter,
    ranges: Option<Vec<(VectorId, VectorId)>>,
}

impl PushdownFilter {
    /// Wraps an id filter with no range information (no segment pruning).
    pub fn new(ids: IdFilter) -> Self {
        Self { ids, ranges: None }
    }

    /// Attaches the inclusive id ranges the filter can accept, in any order
    /// (pruning tests each range against the zone map linearly — range lists
    /// are one entry per constrained video, so small). An empty list means
    /// the filter is provably empty: every segment is pruned.
    pub fn with_ranges(mut self, ranges: Vec<(VectorId, VectorId)>) -> Self {
        self.ranges = Some(ranges);
        self
    }

    /// The per-row id test.
    pub fn id_filter(&self) -> &IdFilter {
        &self.ids
    }

    /// The declared candidate id ranges, if any.
    pub fn ranges(&self) -> Option<&[(VectorId, VectorId)]> {
        self.ranges.as_deref()
    }

    /// True when a segment with this zone map could hold a matching row.
    #[inline]
    pub fn might_match(&self, zone: &ZoneMap) -> bool {
        match &self.ranges {
            None => true,
            Some(ranges) => ranges.iter().any(|&(start, end)| zone.overlaps(start, end)),
        }
    }
}

/// One query of a batched fan-out: the embedding, its `k`, and an optional
/// pushed-down filter.
#[derive(Debug)]
pub struct BatchQuery<'a> {
    /// The (not yet normalized) query embedding.
    pub query: &'a [f32],
    /// Number of hits to return.
    pub k: usize,
    /// Optional pushed-down filter.
    pub filter: Option<&'a PushdownFilter>,
}

/// A named collection of embeddings over sealed segments plus one growing
/// append buffer.
pub struct SegmentedCollection {
    name: String,
    config: CollectionConfig,
    sealed: Vec<Segment>,
    growing: Segment,
    next_segment_id: u64,
    index_builds: usize,
    compactions: usize,
    generation: u64,
}

/// Historical name of the collection type, kept so call sites that predate
/// the segmented engine keep compiling.
pub type VectorCollection = SegmentedCollection;

impl SegmentedCollection {
    /// Creates an empty collection.
    pub fn new(name: impl Into<String>, config: CollectionConfig) -> Result<Self> {
        Ok(Self {
            name: name.into(),
            growing: Segment::new(0, config.dim, config.index_kind)
                .with_quantization(config.quantization),
            config,
            sealed: Vec::new(),
            next_segment_id: 1,
            index_builds: 0,
            compactions: 0,
            generation: 0,
        })
    }

    /// Rebuilds a collection from recovered durable state: `sealed` must
    /// already be sealed (index rebuilt), and `next_segment_id` is the
    /// counter the manifest recorded. The recovered growing segment takes
    /// the id `next_segment_id` itself — every sealed id is strictly below
    /// the recorded counter, so this is the smallest id guaranteed fresh
    /// (the pre-crash growing id may have been leapfrogged by compaction).
    /// Lifetime counters (`index_builds`, `compactions`) restart at zero —
    /// they describe this process, not the collection's whole history.
    pub(crate) fn from_recovered(
        name: impl Into<String>,
        config: CollectionConfig,
        sealed: Vec<Segment>,
        next_segment_id: u64,
    ) -> Self {
        Self {
            name: name.into(),
            growing: Segment::new(next_segment_id, config.dim, config.index_kind)
                .with_quantization(config.quantization),
            config,
            sealed,
            next_segment_id: next_segment_id + 1,
            index_builds: 0,
            compactions: 0,
            generation: 0,
        }
    }

    /// Collection name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Collection configuration.
    pub fn config(&self) -> &CollectionConfig {
        &self.config
    }

    /// Number of stored vectors across all segments.
    pub fn len(&self) -> usize {
        self.sealed.iter().map(Segment::len).sum::<usize>() + self.growing.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of segments holding rows (sealed plus a non-empty growing
    /// buffer) — the search fan-out width.
    pub fn segment_count(&self) -> usize {
        self.sealed.len() + usize::from(!self.growing.is_empty())
    }

    /// Number of sealed segments.
    pub fn sealed_segment_count(&self) -> usize {
        self.sealed.len()
    }

    /// The sealed segments in search order. The durability layer walks these
    /// to reconcile the on-disk segment files with the in-memory state.
    pub fn sealed_segments(&self) -> &[Segment] {
        &self.sealed
    }

    /// Rows currently buffered in the growing segment (covered by the WAL,
    /// not yet by any segment file).
    pub fn growing_len(&self) -> usize {
        self.growing.len()
    }

    /// Inclusive id range covered by the whole collection — every sealed
    /// segment's zone map folded together with the growing segment's.
    /// `None` while the collection is empty. A routing layer reads this as
    /// a zone map one level up: a query whose id predicate cannot intersect
    /// the range cannot match anything stored here.
    pub fn id_range(&self) -> Option<(VectorId, VectorId)> {
        self.sealed
            .iter()
            .map(Segment::zone_map)
            .chain(std::iter::once(self.growing.zone_map()))
            .flatten()
            .fold(None, |acc: Option<(VectorId, VectorId)>, zone| match acc {
                Some((min, max)) => Some((min.min(zone.min_id), max.max(zone.max_id))),
                None => Some((zone.min_id, zone.max_id)),
            })
    }

    /// Next segment id this collection will allocate (persisted in the
    /// manifest so recovery resumes the sequence without collisions).
    pub fn next_segment_id(&self) -> u64 {
        self.next_segment_id
    }

    /// Content generation of this collection: monotonically increasing,
    /// bumped by every mutation that can change search results (inserts,
    /// seals, compactions). Two reads returning the same generation bracket a
    /// window in which no such mutation committed.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Explicitly advances the content generation without mutating rows.
    /// For callers whose query results depend on state *outside* the
    /// collection (e.g. the engine's key-frame map, merged after the
    /// vectors publish): bumping after that state settles marks any result
    /// computed during the window stale for epoch-keyed caches.
    pub fn bump_generation(&mut self) {
        self.generation += 1;
    }

    /// Inserts one embedding into the growing segment, sealing it first if it
    /// is full. Vectors are L2-normalized when the configuration requests it.
    pub fn insert(&mut self, id: VectorId, vector: &[f32]) -> Result<()> {
        self.generation += 1;
        if self.config.normalize {
            let mut owned = vector.to_vec();
            lovo_index::metric::normalize(&mut owned);
            self.growing.insert(id, &owned)?;
        } else {
            self.growing.insert(id, vector)?;
        }
        if self.growing.len() >= self.config.segment_capacity {
            self.seal_growing()?;
        }
        Ok(())
    }

    /// Inserts a batch of `(id, vector)` pairs.
    pub fn insert_batch<'a>(
        &mut self,
        entries: impl IntoIterator<Item = (VectorId, &'a [f32])>,
    ) -> Result<usize> {
        let mut count = 0;
        for (id, vector) in entries {
            self.insert(id, vector)?;
            count += 1;
        }
        Ok(count)
    }

    /// Seals the growing segment (builds its ANN index and retires it to the
    /// sealed set), leaving a fresh empty growing segment. No-op when the
    /// buffer is empty.
    pub fn seal(&mut self) -> Result<()> {
        if self.growing.is_empty() {
            return Ok(());
        }
        self.seal_growing()
    }

    fn seal_growing(&mut self) -> Result<()> {
        // Seal in place first: if the index build fails, the rows stay
        // buffered (and searchable) in the growing segment instead of being
        // dropped with a swapped-out local.
        self.growing.seal()?;
        let segment = std::mem::replace(
            &mut self.growing,
            Segment::new(
                self.next_segment_id,
                self.config.dim,
                self.config.index_kind,
            )
            .with_quantization(self.config.quantization),
        );
        self.next_segment_id += 1;
        self.index_builds += 1;
        self.generation += 1;
        self.sealed.push(segment);
        Ok(())
    }

    /// Seals any pending rows. Kept under the historical name: before the
    /// segmented engine, `build` trained the one monolithic index.
    pub fn build(&mut self) -> Result<()> {
        self.seal()
    }

    /// True when every stored row lives in a sealed, index-backed segment.
    pub fn is_built(&self) -> bool {
        !self.sealed.is_empty() && self.growing.is_empty()
    }

    /// Merges undersized sealed segments (fewer than half the segment
    /// capacity) into larger ones, rebuilding one index per merged group.
    /// Bounds the search fan-out width after many small incremental appends.
    /// On failure the collection is unchanged: merged segments replace their
    /// sources only after every new index has built successfully.
    pub fn compact(&mut self) -> Result<CompactionResult> {
        // Greedily pack undersized segments into groups of at most
        // `segment_capacity` rows; singleton groups stay as they are.
        let threshold = self.config.segment_capacity.div_ceil(2);
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let mut current: Vec<usize> = Vec::new();
        let mut current_rows = 0usize;
        for (position, segment) in self.sealed.iter().enumerate() {
            if segment.len() >= threshold {
                continue;
            }
            if current_rows + segment.len() > self.config.segment_capacity && !current.is_empty() {
                groups.push(std::mem::take(&mut current));
                current_rows = 0;
            }
            current_rows += segment.len();
            current.push(position);
        }
        if !current.is_empty() {
            groups.push(current);
        }
        groups.retain(|group| group.len() >= 2);
        if groups.is_empty() {
            return Ok(CompactionResult::default());
        }

        // Build every merged segment before touching `self.sealed`, so a
        // failed index build loses nothing.
        let mut result = CompactionResult::default();
        let mut merged_segments: Vec<Segment> = Vec::new();
        let mut replaced: std::collections::HashSet<usize> = std::collections::HashSet::new();
        for group in &groups {
            let mut merged = Segment::new(
                self.next_segment_id + merged_segments.len() as u64,
                self.config.dim,
                self.config.index_kind,
            )
            .with_quantization(self.config.quantization);
            for &position in group {
                for (id, row) in self.sealed[position].raw_rows() {
                    // Rows were normalized on first insert; copy verbatim.
                    merged.insert(id, row)?;
                }
            }
            merged.seal()?;
            result.segments_merged += group.len();
            result.segments_created += 1;
            replaced.extend(group.iter().copied());
            merged_segments.push(merged);
        }

        self.next_segment_id += merged_segments.len() as u64;
        self.index_builds += merged_segments.len();
        self.compactions += 1;
        self.generation += 1;
        let mut position = 0;
        self.sealed.retain(|_| {
            let keep = !replaced.contains(&position);
            position += 1;
            keep
        });
        self.sealed.extend(merged_segments);
        Ok(result)
    }

    /// Searches for the `k` most similar embeddings to `query`.
    pub fn search(&self, query: &[f32], k: usize) -> Result<Vec<SearchResult>> {
        Ok(self.search_with_stats(query, k)?.0)
    }

    /// Unfiltered search: [`SegmentedCollection::search_filtered_with_stats`]
    /// with no pushed-down filter.
    pub fn search_with_stats(
        &self,
        query: &[f32],
        k: usize,
    ) -> Result<(Vec<SearchResult>, SearchStats)> {
        self.search_filtered_with_stats(query, k, None)
    }

    /// Searches all segments the filter cannot rule out — in parallel when
    /// there is more than one — pushing the filter's id test into every
    /// per-segment scan, and merges the per-segment top-k into the collection
    /// top-k with a bounded [`TopK`] selection. Segments whose zone map does
    /// not intersect the filter's id ranges are pruned before fan-out and
    /// counted in [`SearchStats::segments_pruned`].
    pub fn search_filtered_with_stats(
        &self,
        query: &[f32],
        k: usize,
        filter: Option<&PushdownFilter>,
    ) -> Result<(Vec<SearchResult>, SearchStats)> {
        let mut results = self.search_batch_with_stats(&[BatchQuery { query, k, filter }])?;
        Ok(results.pop().expect("one result per batched query"))
    }

    /// Answers a batch of (possibly filtered) queries in one fan-out pass:
    /// the segment set is walked once, each segment scanned for every query
    /// it survives pruning for while its rows are hot in cache, so a batch
    /// shares the per-segment access cost that per-query fan-outs would pay
    /// once per query. Results come back in request order.
    pub fn search_batch_with_stats(
        &self,
        requests: &[BatchQuery<'_>],
    ) -> Result<Vec<(Vec<SearchResult>, SearchStats)>> {
        self.search_batch_with_stats_opts(requests, 0)
    }

    /// [`SegmentedCollection::search_batch_with_stats`] with an explicit
    /// intra-query worker count. `0` sizes the pool automatically (hardware
    /// parallelism, skipped entirely for workloads too small to amortize the
    /// thread spawns); an explicit non-zero count forces that many fan-out
    /// workers even below the sequential threshold, which is how a serving
    /// layer donates idle worker capacity to a single in-flight query — and
    /// how the parallel path is exercised deterministically on one-core CI.
    pub fn search_batch_with_stats_opts(
        &self,
        requests: &[BatchQuery<'_>],
        intra_query_threads: usize,
    ) -> Result<Vec<(Vec<SearchResult>, SearchStats)>> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        // Normalize every query once, up front.
        let normalized: Vec<Vec<f32>> = requests
            .iter()
            .map(|request| {
                if self.config.normalize {
                    lovo_index::metric::normalized(request.query)
                } else {
                    request.query.to_vec()
                }
            })
            .collect();

        let mut probes: Vec<&Segment> = self.sealed.iter().collect();
        if !self.growing.is_empty() {
            probes.push(&self.growing);
        }
        if probes.is_empty() {
            return Ok(requests
                .iter()
                .map(|_| (Vec::new(), SearchStats::default()))
                .collect());
        }

        // Fan out over scoped worker threads that *steal* segments from a
        // shared atomic claim counter — static chunking stalls the whole
        // fan-out on whichever chunk drew the largest segments, while
        // claim-per-segment keeps every worker busy until the probe list is
        // drained. One thread per segment would pay a spawn per probe, which
        // dominates once appends fragment the collection into many small
        // segments. With the automatic worker count (0), workloads small
        // enough that the spawn overhead rivals the scan work are probed
        // sequentially; the scan work scales with the *batch size as well
        // as* the row count, so a large batch over a small collection still
        // parallelizes. Each worker keeps ONE reused merge scratch per query
        // and folds segment hits in as they finish, instead of collecting a
        // per-segment result vec.
        let total_rows: usize = probes.iter().map(|segment| segment.len()).sum();
        let sequential = probes.len() == 1
            || (intra_query_threads == 0
                && total_rows.saturating_mul(requests.len()) < SEQUENTIAL_SEARCH_ROWS);
        let workers = if intra_query_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            intra_query_threads
        }
        .min(probes.len());
        let next_probe = AtomicUsize::new(0);
        let scan_claimed = |parallel: bool| -> Result<Vec<MergeScratch>> {
            let mut scratches: Vec<MergeScratch> =
                requests.iter().map(|_| MergeScratch::default()).collect();
            loop {
                let position = next_probe.fetch_add(1, Ordering::Relaxed);
                let Some(segment) = probes.get(position) else {
                    break;
                };
                for ((request, query), scratch) in
                    requests.iter().zip(&normalized).zip(&mut scratches)
                {
                    match (request.filter, segment.zone_map()) {
                        (Some(filter), Some(zone)) if !filter.might_match(&zone) => {
                            scratch.stats.segments_pruned += 1;
                        }
                        _ => {
                            scratch.fold(segment.search_filtered_with_stats(
                                query,
                                request.k,
                                request.filter.map(PushdownFilter::id_filter),
                            )?);
                            if parallel {
                                scratch.stats.parallel_segments += 1;
                            }
                        }
                    }
                }
            }
            Ok(scratches)
        };
        let per_thread: Vec<Vec<MergeScratch>> = if sequential || workers <= 1 {
            vec![scan_claimed(false)?]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| scope.spawn(|| scan_claimed(true)))
                    .collect();
                handles
                    .into_iter()
                    .map(|handle| handle.join().expect("segment search worker panicked"))
                    .collect::<Result<Vec<_>>>()
            })?
        };

        // Merge the per-thread folds query by query: best score per id across
        // all threads, then one bounded top-k selection. The selector's
        // (score desc, id asc) total order over now-unique ids makes the
        // result independent of fold and map-iteration order.
        let mut per_query: Vec<MergeScratch> = {
            let mut threads = per_thread.into_iter();
            let first = threads.next().expect("at least one fan-out worker");
            threads.fold(first, |mut acc, scratches| {
                for (merged, scratch) in acc.iter_mut().zip(scratches) {
                    merged.stats.merge(&scratch.stats);
                    merged.probes += scratch.probes;
                    for (id, score) in scratch.best {
                        merged
                            .best
                            .entry(id)
                            .and_modify(|best| *best = best.max(score))
                            .or_insert(score);
                    }
                }
                acc
            })
        };
        Ok(per_query
            .drain(..)
            .zip(requests)
            .map(|(scratch, request)| {
                let MergeScratch {
                    best,
                    mut stats,
                    probes: probed,
                } = scratch;
                let mut top = TopK::new(request.k);
                for (id, score) in best {
                    top.push_hit(id, score);
                }
                stats.heap_pushes += top.pushes();
                stats.segments_probed = probed;
                (top.into_sorted_results(), stats)
            })
            .collect())
    }

    /// Size statistics for the experiment reports (Fig. 11(b)).
    pub fn stats(&self) -> CollectionStats {
        let index_bytes = self.sealed.iter().map(Segment::index_bytes).sum::<usize>();
        CollectionStats {
            entities: self.len(),
            index_bytes,
            raw_bytes: self.len() * self.config.dim * std::mem::size_of::<f32>(),
            built: self.is_built(),
            sealed_segments: self.sealed.len(),
            growing_rows: self.growing.len(),
            index_builds: self.index_builds,
            compactions: self.compactions,
            generation: self.generation,
        }
    }

    /// Name of the index family backing sealed segments.
    pub fn index_family(&self) -> &'static str {
        self.config.index_kind.name()
    }
}

/// Per-worker fan-out scratch: the best score seen per id (duplicate ids —
/// e.g. a row replaced while its old copy still lives in a sealed segment —
/// keep only their best-scored occurrence), merged work counters, and the
/// number of segments this worker probed. One scratch lives per search
/// thread and is reused across every segment in the worker's chunk, so the
/// fan-out holds at most `k` hits per probed segment transiently instead of
/// retaining every per-segment result vec until the final merge.
#[derive(Debug, Default)]
struct MergeScratch {
    best: HashMap<VectorId, f32>,
    stats: SearchStats,
    probes: usize,
}

impl MergeScratch {
    /// Folds one segment's top-k (hits, stats) into the scratch.
    fn fold(&mut self, (hits, stats): (Vec<SearchResult>, SearchStats)) {
        self.probes += 1;
        self.stats.merge(&stats);
        for hit in hits {
            self.best
                .entry(hit.id)
                .and_modify(|best| *best = best.max(hit.score))
                .or_insert(hit.score);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_vectors(n: usize, dim: usize) -> Vec<Vec<f32>> {
        // Seeded-random so every vector is distinct (a modular pattern would
        // repeat and make nearest-neighbour assertions ambiguous).
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(0x00c0ffee);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
            .collect()
    }

    #[test]
    fn insert_build_search_round_trip() {
        let mut c = VectorCollection::new("patches", CollectionConfig::new(16)).unwrap();
        let vectors = sample_vectors(600, 16);
        for (i, v) in vectors.iter().enumerate() {
            c.insert(i as u64, v).unwrap();
        }
        assert_eq!(c.len(), 600);
        c.build().unwrap();
        assert!(c.is_built());
        let hits = c.search(&vectors[42], 5).unwrap();
        assert_eq!(hits[0].id, 42);
    }

    #[test]
    fn growing_buffer_is_searchable_before_seal() {
        // The growing segment answers queries by brute-force scan even for
        // training-based index families — no build step required.
        let mut c = VectorCollection::new("patches", CollectionConfig::new(16)).unwrap();
        let vectors = sample_vectors(50, 16);
        for (i, v) in vectors.iter().enumerate() {
            c.insert(i as u64, v).unwrap();
        }
        assert!(!c.is_built());
        let (hits, stats) = c.search_with_stats(&vectors[7], 3).unwrap();
        assert_eq!(hits[0].id, 7);
        assert_eq!(stats.segments_probed, 1);
        assert_eq!(stats.vectors_scored, 50);
    }

    #[test]
    fn capacity_splits_collection_into_segments() {
        let cfg = CollectionConfig::new(8).with_segment_capacity(100);
        let mut c = SegmentedCollection::new("seg", cfg).unwrap();
        let vectors = sample_vectors(250, 8);
        for (i, v) in vectors.iter().enumerate() {
            c.insert(i as u64, v).unwrap();
        }
        // 250 rows / capacity 100 -> 2 sealed + 50 growing.
        let stats = c.stats();
        assert_eq!(stats.sealed_segments, 2);
        assert_eq!(stats.growing_rows, 50);
        assert_eq!(stats.index_builds, 2);
        assert_eq!(c.segment_count(), 3);

        // Fan-out search still finds rows in every segment.
        for probe in [5usize, 150, 230] {
            let (hits, stats) = c.search_with_stats(&vectors[probe], 3).unwrap();
            assert_eq!(hits[0].id, probe as u64, "row {probe}");
            assert_eq!(stats.segments_probed, 3);
        }

        c.seal().unwrap();
        assert_eq!(c.stats().sealed_segments, 3);
        assert_eq!(c.stats().growing_rows, 0);
        assert!(c.is_built());
    }

    #[test]
    fn compaction_merges_undersized_segments() {
        let cfg = CollectionConfig::new(8).with_segment_capacity(100);
        let mut c = SegmentedCollection::new("compact", cfg).unwrap();
        let vectors = sample_vectors(120, 8);
        // Seal four undersized segments of 30 rows each.
        for (i, v) in vectors.iter().enumerate() {
            c.insert(i as u64, v).unwrap();
            if (i + 1) % 30 == 0 {
                c.seal().unwrap();
            }
        }
        assert_eq!(c.stats().sealed_segments, 4);
        let builds_before = c.stats().index_builds;

        let result = c.compact().unwrap();
        // 4 x 30 rows with capacity 100: three merge into one 90-row segment,
        // the fourth would overflow the group and stays as-is.
        assert_eq!(result.segments_merged, 3);
        assert_eq!(result.segments_created, 1);
        let stats = c.stats();
        assert_eq!(stats.sealed_segments, 2);
        assert_eq!(stats.entities, 120);
        assert_eq!(stats.index_builds, builds_before + 1);
        assert_eq!(stats.compactions, 1);

        // Every row is still retrievable after compaction.
        for probe in [0usize, 45, 119] {
            let hits = c.search(&vectors[probe], 1).unwrap();
            assert_eq!(hits[0].id, probe as u64, "row {probe}");
        }

        // A second pass has nothing left to merge.
        let again = c.compact().unwrap();
        assert_eq!(again.segments_merged, 0);
        assert_eq!(c.stats().compactions, 1);
    }

    #[test]
    fn compaction_keeps_large_segments_untouched() {
        let cfg = CollectionConfig::new(8).with_segment_capacity(100);
        let mut c = SegmentedCollection::new("keep", cfg).unwrap();
        let vectors = sample_vectors(160, 8);
        // One full segment (100 rows, auto-sealed) + one undersized (60).
        for (i, v) in vectors.iter().enumerate() {
            c.insert(i as u64, v).unwrap();
        }
        c.seal().unwrap();
        let builds_before = c.stats().index_builds;
        let result = c.compact().unwrap();
        assert_eq!(result.segments_merged, 0);
        assert_eq!(c.stats().sealed_segments, 2);
        assert_eq!(c.stats().index_builds, builds_before);
    }

    #[test]
    fn segmented_results_match_single_segment_brute_force() {
        // With brute-force segments the fan-out + k-way merge must be exactly
        // the global top-k, independent of segmentation.
        let dim = 16;
        let vectors = sample_vectors(300, dim);
        let single_cfg = CollectionConfig::new(dim).with_index_kind(IndexKind::BruteForce);
        let split_cfg = CollectionConfig::new(dim)
            .with_index_kind(IndexKind::BruteForce)
            .with_segment_capacity(37);
        let mut single = SegmentedCollection::new("one", single_cfg).unwrap();
        let mut split = SegmentedCollection::new("many", split_cfg).unwrap();
        for (i, v) in vectors.iter().enumerate() {
            single.insert(i as u64, v).unwrap();
            split.insert(i as u64, v).unwrap();
        }
        single.seal().unwrap();
        split.seal().unwrap();
        assert!(split.stats().sealed_segments > 5);
        for probe in [3usize, 123, 280] {
            let a = single.search(&vectors[probe], 10).unwrap();
            let b = split.search(&vectors[probe], 10).unwrap();
            assert_eq!(a, b, "probe {probe}");
        }
    }

    #[test]
    fn zone_map_pruning_skips_non_matching_segments() {
        // Ids are assigned in segment-contiguous blocks, mimicking the
        // video-ordered patch-id assignment of ingestion.
        let cfg = CollectionConfig::new(8)
            .with_index_kind(IndexKind::BruteForce)
            .with_segment_capacity(50);
        let mut c = SegmentedCollection::new("zones", cfg).unwrap();
        let vectors = sample_vectors(200, 8);
        for (i, v) in vectors.iter().enumerate() {
            c.insert(i as u64, v).unwrap();
        }
        c.seal().unwrap();
        assert_eq!(c.stats().sealed_segments, 4);

        // Filter allowing only ids 50..100: one segment can match.
        let filter = PushdownFilter::new(IdFilter::from_predicate(|id| (50..100).contains(&id)))
            .with_ranges(vec![(50, 99)]);
        let (hits, stats) = c
            .search_filtered_with_stats(&vectors[60], 5, Some(&filter))
            .unwrap();
        assert_eq!(hits[0].id, 60);
        assert!(hits.iter().all(|h| (50..100).contains(&h.id)));
        assert_eq!(stats.segments_pruned, 3);
        assert_eq!(stats.segments_probed, 1);
        assert_eq!(stats.vectors_scored, 50);

        // The same filter without ranges probes everything but still masks.
        let no_ranges = PushdownFilter::new(IdFilter::from_predicate(|id| (50..100).contains(&id)));
        let (hits2, stats2) = c
            .search_filtered_with_stats(&vectors[60], 5, Some(&no_ranges))
            .unwrap();
        assert_eq!(hits, hits2);
        assert_eq!(stats2.segments_pruned, 0);
        assert_eq!(stats2.segments_probed, 4);
        assert_eq!(stats2.filtered_out, 150);

        // An empty range list is a provably-empty filter: all pruned.
        let empty = PushdownFilter::new(IdFilter::Set(Default::default())).with_ranges(Vec::new());
        let (none, estats) = c
            .search_filtered_with_stats(&vectors[0], 5, Some(&empty))
            .unwrap();
        assert!(none.is_empty());
        assert_eq!(estats.segments_pruned, 4);
        assert_eq!(estats.segments_probed, 0);
    }

    #[test]
    fn batch_search_matches_individual_queries() {
        let cfg = CollectionConfig::new(16).with_segment_capacity(100);
        let mut c = SegmentedCollection::new("batch", cfg).unwrap();
        let vectors = sample_vectors(450, 16);
        for (i, v) in vectors.iter().enumerate() {
            c.insert(i as u64, v).unwrap();
        }
        c.seal().unwrap();
        let filter = PushdownFilter::new(IdFilter::from_predicate(|id| id < 200))
            .with_ranges(vec![(0, 199)]);
        let requests = [
            BatchQuery {
                query: vectors[7].as_slice(),
                k: 5,
                filter: None,
            },
            BatchQuery {
                query: vectors[120].as_slice(),
                k: 3,
                filter: Some(&filter),
            },
            BatchQuery {
                query: vectors[400].as_slice(),
                k: 7,
                filter: None,
            },
        ];
        let batched = c.search_batch_with_stats(&requests).unwrap();
        assert_eq!(batched.len(), 3);
        let single_a = c.search_with_stats(&vectors[7], 5).unwrap();
        let single_b = c
            .search_filtered_with_stats(&vectors[120], 3, Some(&filter))
            .unwrap();
        let single_c = c.search_with_stats(&vectors[400], 7).unwrap();
        assert_eq!(batched[0], single_a);
        assert_eq!(batched[1], single_b);
        assert_eq!(batched[2], single_c);
        assert!(batched[1].0.iter().all(|h| h.id < 200));
        assert!(c.search_batch_with_stats(&[]).unwrap().is_empty());
    }

    #[test]
    fn forced_intra_query_workers_match_sequential_results() {
        // A single query over many sealed segments, far below the sequential
        // threshold: automatic sizing scans sequentially, while an explicit
        // worker count forces the work-stealing parallel path. Hits and merged
        // counters must be identical either way (the claim order is
        // nondeterministic, but the per-id best-score merge is order-free);
        // only `parallel_segments` tells the two paths apart.
        let cfg = CollectionConfig::new(16)
            .with_index_kind(IndexKind::BruteForce)
            .with_segment_capacity(25);
        let mut c = SegmentedCollection::new("steal", cfg).unwrap();
        let vectors = sample_vectors(400, 16);
        for (i, v) in vectors.iter().enumerate() {
            c.insert(i as u64, v).unwrap();
        }
        c.seal().unwrap();
        assert_eq!(c.stats().sealed_segments, 16);
        for probe in [3usize, 210, 388] {
            let query = vectors[probe].clone();
            let batch = [BatchQuery {
                query: query.as_slice(),
                k: 9,
                filter: None,
            }];
            let sequential = c.search_batch_with_stats_opts(&batch, 0).unwrap();
            let parallel = c.search_batch_with_stats_opts(&batch, 4).unwrap();
            assert_eq!(sequential[0].0, parallel[0].0, "probe {probe}");
            assert_eq!(sequential[0].1.parallel_segments, 0);
            assert_eq!(parallel[0].1.parallel_segments, 16, "probe {probe}");
            assert_eq!(
                parallel[0].1.segments_probed,
                sequential[0].1.segments_probed
            );
            assert_eq!(parallel[0].1.vectors_scored, sequential[0].1.vectors_scored);
        }
        // A forced worker count of 1 stays on the sequential path.
        let query = vectors[3].clone();
        let batch = [BatchQuery {
            query: query.as_slice(),
            k: 9,
            filter: None,
        }];
        let one = c.search_batch_with_stats_opts(&batch, 1).unwrap();
        assert_eq!(one[0].1.parallel_segments, 0);
    }

    #[test]
    fn quantized_collection_seals_quantized_segments_and_stays_accurate() {
        use lovo_index::QuantizationOptions;
        let cfg = CollectionConfig::new(16)
            .with_index_kind(IndexKind::BruteForce)
            .with_segment_capacity(100)
            .with_quantization(QuantizationOptions {
                int8_flat: true,
                ..QuantizationOptions::none()
            });
        let mut c = SegmentedCollection::new("sq8", cfg).unwrap();
        let vectors = sample_vectors(300, 16);
        for (i, v) in vectors.iter().enumerate() {
            c.insert(i as u64, v).unwrap();
        }
        c.seal().unwrap();
        // Self-queries survive the int8 scan because the final candidates are
        // rescored against exact f32 rows.
        for probe in [0usize, 144, 299] {
            let hits = c.search(&vectors[probe], 3).unwrap();
            assert_eq!(hits[0].id, probe as u64, "probe {probe}");
        }
        // Compaction rebuilds also inherit the quantization options.
        let cfg2 = cfg.with_segment_capacity(40);
        let mut frag = SegmentedCollection::new("sq8-frag", cfg2).unwrap();
        for (i, v) in vectors.iter().enumerate().take(60) {
            frag.insert(i as u64, v).unwrap();
            if (i + 1) % 15 == 0 {
                frag.seal().unwrap();
            }
        }
        assert!(frag.compact().unwrap().segments_created >= 1);
        let hits = frag.search(&vectors[17], 1).unwrap();
        assert_eq!(hits[0].id, 17);
    }

    #[test]
    fn brute_force_collection_searches_without_build() {
        let cfg = CollectionConfig::new(8).with_index_kind(IndexKind::BruteForce);
        let mut c = VectorCollection::new("bf", cfg).unwrap();
        c.insert(1, &[1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0])
            .unwrap();
        let hits = c
            .search(&[1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0], 1)
            .unwrap();
        assert_eq!(hits[0].id, 1);
        assert_eq!(c.index_family(), "BF");
    }

    #[test]
    fn normalization_makes_scale_irrelevant() {
        let cfg = CollectionConfig::new(4).with_index_kind(IndexKind::BruteForce);
        let mut c = VectorCollection::new("norm", cfg).unwrap();
        c.insert(1, &[10.0, 0.0, 0.0, 0.0]).unwrap();
        c.insert(2, &[0.0, 0.1, 0.0, 0.0]).unwrap();
        let hits = c.search(&[0.0, 500.0, 0.0, 0.0], 1).unwrap();
        assert_eq!(hits[0].id, 2);
        assert!((hits[0].score - 1.0).abs() < 1e-5);
    }

    #[test]
    fn stats_reflect_contents() {
        let mut c = VectorCollection::new("stats", CollectionConfig::new(8)).unwrap();
        let vectors = sample_vectors(300, 8);
        let refs: Vec<(u64, &[f32])> = vectors
            .iter()
            .enumerate()
            .map(|(i, v)| (i as u64, v.as_slice()))
            .collect();
        let inserted = c.insert_batch(refs).unwrap();
        assert_eq!(inserted, 300);
        c.build().unwrap();
        let stats = c.stats();
        assert_eq!(stats.entities, 300);
        assert!(stats.index_bytes > 0);
        assert_eq!(stats.raw_bytes, 300 * 8 * 4);
        assert!(stats.built);
        assert_eq!(stats.sealed_segments, 1);
        assert_eq!(stats.index_builds, 1);
    }

    #[test]
    fn generation_bumps_on_every_content_mutation() {
        let cfg = CollectionConfig::new(8).with_segment_capacity(30);
        let mut c = SegmentedCollection::new("gen", cfg).unwrap();
        assert_eq!(c.generation(), 0);
        let vectors = sample_vectors(90, 8);
        for (i, v) in vectors.iter().enumerate() {
            let before = c.generation();
            c.insert(i as u64, v).unwrap();
            assert!(c.generation() > before, "insert {i} must bump");
        }
        // 90 rows at capacity 30: three auto-seals happened along the way.
        assert_eq!(c.stats().sealed_segments, 3);
        let after_inserts = c.generation();

        // An explicit seal of an empty growing buffer is a no-op: no bump.
        c.seal().unwrap();
        assert_eq!(c.generation(), after_inserts);

        // Seal three more undersized segments, then compact: both bump.
        for (i, v) in vectors.iter().enumerate().take(30) {
            c.insert(1000 + i as u64, v).unwrap();
            if (i + 1) % 10 == 0 {
                c.seal().unwrap();
            }
        }
        let before_compact = c.generation();
        let result = c.compact().unwrap();
        assert!(result.segments_merged >= 2);
        assert!(c.generation() > before_compact);
        assert_eq!(c.stats().generation, c.generation());

        // A compaction pass with nothing to merge leaves the epoch alone.
        let settled = c.generation();
        c.compact().unwrap();
        assert_eq!(c.generation(), settled);

        // An explicit bump advances without touching rows.
        let entities = c.stats().entities;
        c.bump_generation();
        assert_eq!(c.generation(), settled + 1);
        assert_eq!(c.stats().entities, entities);
    }

    #[test]
    fn insert_after_build_marks_unbuilt_for_hnsw_and_ok() {
        let cfg = CollectionConfig::new(8).with_index_kind(IndexKind::Hnsw);
        let mut c = VectorCollection::new("hnsw", cfg).unwrap();
        for (i, v) in sample_vectors(50, 8).iter().enumerate() {
            c.insert(i as u64, v).unwrap();
        }
        // HNSW needs no explicit build.
        let hits = c.search(&sample_vectors(50, 8)[10], 3).unwrap();
        assert!(!hits.is_empty());
    }
}
