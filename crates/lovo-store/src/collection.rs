//! A named collection of embeddings over a pluggable ANN index.

use crate::{Result, StoreError};
use lovo_index::{create_index, IndexKind, SearchResult, SearchStats, VectorId, VectorIndex};
use serde::{Deserialize, Serialize};

/// Configuration of a vector collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollectionConfig {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Index family backing the collection.
    pub index_kind: IndexKind,
    /// Whether inserted vectors are L2-normalized before being stored
    /// (the paper normalizes everything so dot product = cosine, §V-A).
    pub normalize: bool,
}

impl CollectionConfig {
    /// Creates a configuration with the paper's defaults (IVF-PQ, normalized).
    pub fn new(dim: usize) -> Self {
        Self {
            dim,
            index_kind: IndexKind::IvfPq,
            normalize: true,
        }
    }

    /// Builder-style index family override (Table V switches this).
    pub fn with_index_kind(mut self, kind: IndexKind) -> Self {
        self.index_kind = kind;
        self
    }
}

/// Size and build statistics of a collection.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CollectionStats {
    /// Number of stored vectors.
    pub entities: usize,
    /// Approximate index memory footprint in bytes.
    pub index_bytes: usize,
    /// Approximate raw embedding payload in bytes (before compression).
    pub raw_bytes: usize,
    /// Whether `build` has been called since the last insert batch.
    pub built: bool,
}

/// A named collection of embeddings.
pub struct VectorCollection {
    name: String,
    config: CollectionConfig,
    index: Box<dyn VectorIndex>,
    inserted: usize,
    built: bool,
}

impl VectorCollection {
    /// Creates an empty collection.
    pub fn new(name: impl Into<String>, config: CollectionConfig) -> Result<Self> {
        let index = create_index(config.index_kind, config.dim)?;
        Ok(Self {
            name: name.into(),
            config,
            index,
            inserted: 0,
            built: false,
        })
    }

    /// Collection name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Collection configuration.
    pub fn config(&self) -> &CollectionConfig {
        &self.config
    }

    /// Number of stored vectors.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Inserts one embedding. Vectors are L2-normalized first when the
    /// configuration requests it.
    pub fn insert(&mut self, id: VectorId, vector: &[f32]) -> Result<()> {
        if self.config.normalize {
            let mut owned = vector.to_vec();
            lovo_index::metric::normalize(&mut owned);
            self.index.insert(id, &owned)?;
        } else {
            self.index.insert(id, vector)?;
        }
        self.inserted += 1;
        self.built = false;
        Ok(())
    }

    /// Inserts a batch of `(id, vector)` pairs.
    pub fn insert_batch<'a>(
        &mut self,
        entries: impl IntoIterator<Item = (VectorId, &'a [f32])>,
    ) -> Result<usize> {
        let mut count = 0;
        for (id, vector) in entries {
            self.insert(id, vector)?;
            count += 1;
        }
        Ok(count)
    }

    /// Builds (trains) the underlying index. Must be called after ingestion
    /// and before searching for training-based index families.
    pub fn build(&mut self) -> Result<()> {
        self.index.build()?;
        self.built = true;
        Ok(())
    }

    /// True when the collection has been built since the last insert.
    pub fn is_built(&self) -> bool {
        self.built
    }

    /// Searches for the `k` most similar embeddings to `query`.
    pub fn search(&self, query: &[f32], k: usize) -> Result<Vec<SearchResult>> {
        Ok(self.search_with_stats(query, k)?.0)
    }

    /// Searches and reports probe statistics.
    pub fn search_with_stats(
        &self,
        query: &[f32],
        k: usize,
    ) -> Result<(Vec<SearchResult>, SearchStats)> {
        if !self.built
            && !matches!(
                self.config.index_kind,
                IndexKind::BruteForce | IndexKind::Hnsw
            )
        {
            return Err(StoreError::InvalidOperation(format!(
                "collection '{}' must be built before searching",
                self.name
            )));
        }
        let result = if self.config.normalize {
            let mut owned = query.to_vec();
            lovo_index::metric::normalize(&mut owned);
            self.index.search_with_stats(&owned, k)?
        } else {
            self.index.search_with_stats(query, k)?
        };
        Ok(result)
    }

    /// Size statistics for the experiment reports (Fig. 11(b)).
    pub fn stats(&self) -> CollectionStats {
        CollectionStats {
            entities: self.index.len(),
            index_bytes: self.index.memory_bytes(),
            raw_bytes: self.index.len() * self.config.dim * std::mem::size_of::<f32>(),
            built: self.built,
        }
    }

    /// Name of the backing index family.
    pub fn index_family(&self) -> &'static str {
        self.index.family()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_vectors(n: usize, dim: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| {
                (0..dim)
                    .map(|d| ((i * 31 + d * 7) % 97) as f32 / 97.0 - 0.5)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn insert_build_search_round_trip() {
        let mut c = VectorCollection::new("patches", CollectionConfig::new(16)).unwrap();
        let vectors = sample_vectors(600, 16);
        for (i, v) in vectors.iter().enumerate() {
            c.insert(i as u64, v).unwrap();
        }
        assert_eq!(c.len(), 600);
        c.build().unwrap();
        assert!(c.is_built());
        let hits = c.search(&vectors[42], 5).unwrap();
        assert_eq!(hits[0].id, 42);
    }

    #[test]
    fn searching_unbuilt_ivf_collection_fails() {
        let mut c = VectorCollection::new("patches", CollectionConfig::new(16)).unwrap();
        c.insert(0, &sample_vectors(1, 16)[0]).unwrap();
        assert!(c.search(&sample_vectors(1, 16)[0], 1).is_err());
    }

    #[test]
    fn brute_force_collection_searches_without_build() {
        let cfg = CollectionConfig::new(8).with_index_kind(IndexKind::BruteForce);
        let mut c = VectorCollection::new("bf", cfg).unwrap();
        c.insert(1, &[1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0])
            .unwrap();
        let hits = c
            .search(&[1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0], 1)
            .unwrap();
        assert_eq!(hits[0].id, 1);
        assert_eq!(c.index_family(), "BF");
    }

    #[test]
    fn normalization_makes_scale_irrelevant() {
        let cfg = CollectionConfig::new(4).with_index_kind(IndexKind::BruteForce);
        let mut c = VectorCollection::new("norm", cfg).unwrap();
        c.insert(1, &[10.0, 0.0, 0.0, 0.0]).unwrap();
        c.insert(2, &[0.0, 0.1, 0.0, 0.0]).unwrap();
        let hits = c.search(&[0.0, 500.0, 0.0, 0.0], 1).unwrap();
        assert_eq!(hits[0].id, 2);
        assert!((hits[0].score - 1.0).abs() < 1e-5);
    }

    #[test]
    fn stats_reflect_contents() {
        let mut c = VectorCollection::new("stats", CollectionConfig::new(8)).unwrap();
        let vectors = sample_vectors(300, 8);
        let refs: Vec<(u64, &[f32])> = vectors
            .iter()
            .enumerate()
            .map(|(i, v)| (i as u64, v.as_slice()))
            .collect();
        let inserted = c.insert_batch(refs).unwrap();
        assert_eq!(inserted, 300);
        c.build().unwrap();
        let stats = c.stats();
        assert_eq!(stats.entities, 300);
        assert!(stats.index_bytes > 0);
        assert_eq!(stats.raw_bytes, 300 * 8 * 4);
        assert!(stats.built);
    }

    #[test]
    fn insert_after_build_marks_unbuilt_for_hnsw_and_ok() {
        let cfg = CollectionConfig::new(8).with_index_kind(IndexKind::Hnsw);
        let mut c = VectorCollection::new("hnsw", cfg).unwrap();
        for (i, v) in sample_vectors(50, 8).iter().enumerate() {
            c.insert(i as u64, v).unwrap();
        }
        // HNSW needs no explicit build.
        let hits = c.search(&sample_vectors(50, 8)[10], 3).unwrap();
        assert!(!hits.is_empty());
    }
}
