//! # lovo-store
//!
//! Storage layer of the LOVO reproduction (§V of the paper): a small vector
//! database plus the relational metadata store it is paired with.
//!
//! The paper deploys LOVO inside Milvus; embeddings live in a vector
//! collection indexed by PQ + inverted multi-index, while "supplementary
//! metadata such as key frame identifiers and bounding box coordinates are
//! stored separately in a relational database", joined through the shared
//! *patch id*. This crate reproduces that split — including Milvus's
//! segmented storage model, which is what makes the collection incrementally
//! growable:
//!
//! * [`segment::Segment`] — the unit of growth: an append buffer that is
//!   brute-force-searchable while **growing** and becomes an immutable,
//!   ANN-indexed **sealed** segment once full;
//! * [`collection::SegmentedCollection`] — a named collection of
//!   L2-normalized embeddings over a set of sealed segments plus one growing
//!   segment; searches fan out over all segments in parallel and k-way-merge
//!   the per-segment top-k, and [`collection::SegmentedCollection::compact`]
//!   merges undersized sealed segments to bound the fan-out width;
//! * [`metadata::MetadataStore`] — the relational side: one row per patch
//!   (patch id, video id, frame index, patch grid position, bounding box,
//!   timestamp), with per-frame secondary indexes;
//! * [`database::VectorDatabase`] — the façade joining the two, which is what
//!   `lovo-core` talks to, with batched patch insertion that takes the write
//!   lock once per batch.

#![warn(missing_docs)]

pub mod collection;
pub mod database;
pub mod durability;
pub mod metadata;
pub mod patchid;
pub mod segment;

pub use collection::{
    BatchQuery, CollectionConfig, CollectionStats, CompactionResult, PushdownFilter,
    SegmentedCollection, VectorCollection, DEFAULT_SEGMENT_CAPACITY,
};
pub use database::{JoinedHit, VectorDatabase};
pub use durability::{
    DurabilityConfig, FsyncPolicy, OpenOptions, QuarantinedSegment, RecoveryReport, StorageError,
    MMAP_SUPPORTED,
};
pub use metadata::{MetadataStore, PatchPredicate, PatchRecord};
pub use patchid::{patch_id, split_patch_id, MAX_PATCH_INDEX, MAX_VIDEO_ID};
pub use segment::{Segment, SegmentState, ZoneMap};

/// Errors surfaced by the storage layer.
#[derive(Debug)]
pub enum StoreError {
    /// An error bubbled up from the index layer.
    Index(lovo_index::IndexError),
    /// A patch id was not found in the metadata store.
    MissingMetadata(u64),
    /// A collection with the requested name does not exist.
    UnknownCollection(String),
    /// The operation conflicts with the collection's configuration.
    InvalidOperation(String),
    /// A failure in the durable storage layer (I/O, corruption, or an
    /// injected crash point under test).
    Storage(durability::StorageError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Index(e) => write!(f, "index error: {e}"),
            StoreError::MissingMetadata(id) => write!(f, "no metadata for patch id {id}"),
            StoreError::UnknownCollection(name) => write!(f, "unknown collection '{name}'"),
            StoreError::InvalidOperation(msg) => write!(f, "invalid operation: {msg}"),
            StoreError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<lovo_index::IndexError> for StoreError {
    fn from(e: lovo_index::IndexError) -> Self {
        StoreError::Index(e)
    }
}

impl From<durability::StorageError> for StoreError {
    fn from(e: durability::StorageError) -> Self {
        StoreError::Storage(e)
    }
}

/// Result alias for storage operations.
pub type Result<T> = std::result::Result<T, StoreError>;
