//! # lovo-store
//!
//! Storage layer of the LOVO reproduction (§V of the paper): a small vector
//! database plus the relational metadata store it is paired with.
//!
//! The paper deploys LOVO inside Milvus; embeddings live in a vector
//! collection indexed by PQ + inverted multi-index, while "supplementary
//! metadata such as key frame identifiers and bounding box coordinates are
//! stored separately in a relational database", joined through the shared
//! *patch id*. This crate reproduces that split:
//!
//! * [`collection::VectorCollection`] — a named collection of L2-normalized
//!   embeddings over any [`lovo_index::VectorIndex`] family, with insert /
//!   build / search and growth statistics;
//! * [`metadata::MetadataStore`] — the relational side: one row per patch
//!   (patch id, video id, frame index, patch grid position, bounding box,
//!   timestamp), with per-frame secondary indexes;
//! * [`database::VectorDatabase`] — the façade joining the two, which is what
//!   `lovo-core` talks to.

pub mod collection;
pub mod database;
pub mod metadata;

pub use collection::{CollectionConfig, CollectionStats, VectorCollection};
pub use database::{JoinedHit, VectorDatabase};
pub use metadata::{MetadataStore, PatchRecord};

/// Errors surfaced by the storage layer.
#[derive(Debug)]
pub enum StoreError {
    /// An error bubbled up from the index layer.
    Index(lovo_index::IndexError),
    /// A patch id was not found in the metadata store.
    MissingMetadata(u64),
    /// A collection with the requested name does not exist.
    UnknownCollection(String),
    /// The operation conflicts with the collection's configuration.
    InvalidOperation(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Index(e) => write!(f, "index error: {e}"),
            StoreError::MissingMetadata(id) => write!(f, "no metadata for patch id {id}"),
            StoreError::UnknownCollection(name) => write!(f, "unknown collection '{name}'"),
            StoreError::InvalidOperation(msg) => write!(f, "invalid operation: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<lovo_index::IndexError> for StoreError {
    fn from(e: lovo_index::IndexError) -> Self {
        StoreError::Index(e)
    }
}

/// Result alias for storage operations.
pub type Result<T> = std::result::Result<T, StoreError>;
