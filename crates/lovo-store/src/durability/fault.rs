//! Deterministic fault injection for the durability layer.
//!
//! A [`FaultPlan`] arms one-shot faults at named I/O points (see [`points`]);
//! the checked I/O helpers in the private `io` module consult the plan
//! before every write, fsync, and rename. Three actions model the
//! interesting failure shapes:
//!
//! * [`FaultAction::Fail`] — the call fails cleanly with an I/O error and
//!   writes nothing (a full disk, a permission flip). The store instance
//!   stays usable; callers may retry.
//! * [`FaultAction::ShortWrite`] — the first `n` bytes land, then the call
//!   fails with an I/O error (ENOSPC halfway through a buffer).
//! * [`FaultAction::CrashAfter`] — the first `n` bytes land, then the call
//!   returns [`StorageError::InjectedCrash`]. Tests treat this as `kill -9`:
//!   they drop the store instance without further syncs and reopen from
//!   disk, which sees exactly the bytes that made it through — a torn write.
//!
//! Fault checks are compiled into debug builds and behind the `failpoints`
//! feature; `cargo build --release` without the feature compiles them out of
//! the I/O paths entirely (see `io::fault_check`).
//!
//! [`StorageError::InjectedCrash`]: crate::durability::StorageError::InjectedCrash

use parking_lot::Mutex;

/// Named I/O points where faults can be injected. The constant's value is
/// the string tests pass to [`FaultPlan::inject`] and the string reported in
/// errors and the trigger log.
pub mod points {
    /// Creating + header-writing a fresh WAL file.
    pub const WAL_CREATE: &str = "wal.create";
    /// Appending one record to the WAL.
    pub const WAL_APPEND: &str = "wal.append";
    /// Fsyncing the WAL after an append (the acknowledgement point).
    pub const WAL_SYNC: &str = "wal.sync";
    /// Writing a sealed segment's temp file during a seal.
    pub const SEGMENT_WRITE: &str = "segment.write";
    /// Fsyncing a sealed segment's temp file.
    pub const SEGMENT_SYNC: &str = "segment.sync";
    /// Renaming a sealed segment's temp file into place.
    pub const SEGMENT_RENAME: &str = "segment.rename";
    /// Writing a merged segment's temp file during compaction.
    pub const COMPACT_SEGMENT_WRITE: &str = "compact.segment.write";
    /// Writing the manifest's temp file.
    pub const MANIFEST_WRITE: &str = "manifest.write";
    /// Fsyncing the manifest's temp file.
    pub const MANIFEST_SYNC: &str = "manifest.sync";
    /// Renaming the manifest's temp file over the live manifest (the swap).
    pub const MANIFEST_RENAME: &str = "manifest.rename";
    /// Memory-mapping a sealed segment file at open. A failure here is not
    /// corruption (the bytes on disk are fine — the *mapping* failed, e.g.
    /// address-space exhaustion), so the reader degrades to the heap load
    /// path instead of quarantining.
    pub const SEGMENT_MMAP: &str = "segment.mmap";
    /// `madvise` on a mapped segment (warm-up / residency hints). Purely
    /// advisory: a failure is recorded and ignored — correctness never
    /// depends on the kernel honouring the hint.
    pub const SEGMENT_MADVISE: &str = "segment.madvise";
    /// One shard's coarse-search leg inside the shard router's scatter-gather
    /// (not an I/O point — the serving layer reuses the same deterministic
    /// plan machinery). Firing it kills that shard's response mid-gather, so
    /// chaos tests can prove the router degrades instead of hanging.
    pub const SHARD_GATHER: &str = "shard.gather";
}

/// What happens when an armed fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The operation fails with an I/O error before touching the file.
    Fail,
    /// The first `n` bytes are written, then the operation fails with an
    /// I/O error. Only meaningful at write points; at sync/rename points it
    /// behaves like [`FaultAction::Fail`].
    ShortWrite(usize),
    /// The first `n` bytes are written, then the operation returns
    /// [`crate::durability::StorageError::InjectedCrash`] — the simulated
    /// `kill -9`.
    CrashAfter(usize),
}

#[derive(Debug)]
struct Injection {
    point: String,
    /// Occurrences of the point to let pass before firing.
    skip: usize,
    action: FaultAction,
    spent: bool,
}

/// A deterministic set of armed one-shot faults plus a log of which fired.
///
/// Plans are `Sync`; tests share one `Arc<FaultPlan>` between the store
/// under test and their assertions.
#[derive(Debug, Default)]
pub struct FaultPlan {
    injections: Mutex<Vec<Injection>>,
    triggered: Mutex<Vec<String>>,
}

impl FaultPlan {
    /// An empty plan (no faults armed).
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms a one-shot fault at the next occurrence of `point`.
    pub fn inject(&self, point: &str, action: FaultAction) {
        self.inject_nth(point, 0, action);
    }

    /// Arms a one-shot fault at the `skip`-th *subsequent* occurrence of
    /// `point` (0 = the next one). This is how a test targets, say, the
    /// third WAL append of a workload.
    pub fn inject_nth(&self, point: &str, skip: usize, action: FaultAction) {
        self.injections.lock().push(Injection {
            point: point.to_string(),
            skip,
            action,
            spent: false,
        });
    }

    /// Consumes and returns the armed action for `point`, if one fires now.
    /// Called by the checked I/O helpers; decrements skip counters as a side
    /// effect, so every call represents one occurrence of the point.
    pub fn take(&self, point: &str) -> Option<FaultAction> {
        let mut injections = self.injections.lock();
        for injection in injections.iter_mut() {
            if injection.spent || injection.point != point {
                continue;
            }
            if injection.skip > 0 {
                injection.skip -= 1;
                continue;
            }
            injection.spent = true;
            let action = injection.action;
            drop(injections);
            self.triggered.lock().push(point.to_string());
            return Some(action);
        }
        None
    }

    /// The points whose faults have fired, in firing order. Tests assert on
    /// this to prove the fault they armed actually exercised the code path.
    pub fn triggered(&self) -> Vec<String> {
        self.triggered.lock().clone()
    }

    /// Number of armed faults that have not fired yet.
    pub fn pending(&self) -> usize {
        self.injections
            .lock()
            .iter()
            .filter(|injection| !injection.spent)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shot_fires_once() {
        let plan = FaultPlan::new();
        plan.inject(points::WAL_APPEND, FaultAction::Fail);
        assert_eq!(plan.pending(), 1);
        assert_eq!(plan.take(points::WAL_SYNC), None);
        assert_eq!(plan.take(points::WAL_APPEND), Some(FaultAction::Fail));
        assert_eq!(plan.take(points::WAL_APPEND), None);
        assert_eq!(plan.triggered(), vec![points::WAL_APPEND.to_string()]);
        assert_eq!(plan.pending(), 0);
    }

    #[test]
    fn skip_counter_targets_the_nth_occurrence() {
        let plan = FaultPlan::new();
        plan.inject_nth(points::SEGMENT_WRITE, 2, FaultAction::CrashAfter(10));
        assert_eq!(plan.take(points::SEGMENT_WRITE), None);
        assert_eq!(plan.take(points::SEGMENT_WRITE), None);
        assert_eq!(
            plan.take(points::SEGMENT_WRITE),
            Some(FaultAction::CrashAfter(10))
        );
        assert_eq!(plan.take(points::SEGMENT_WRITE), None);
    }

    #[test]
    fn independent_points_coexist() {
        let plan = FaultPlan::new();
        plan.inject(points::MANIFEST_RENAME, FaultAction::Fail);
        plan.inject(points::WAL_SYNC, FaultAction::ShortWrite(3));
        assert_eq!(
            plan.take(points::WAL_SYNC),
            Some(FaultAction::ShortWrite(3))
        );
        assert_eq!(plan.take(points::MANIFEST_RENAME), Some(FaultAction::Fail));
        assert_eq!(plan.triggered().len(), 2);
    }
}
