//! Read-only memory mapping of sealed segment files.
//!
//! The mmap read path (PR 9) serves sealed-segment vector payloads straight
//! from page-cache-backed file bytes instead of heap copies. This module is
//! the only place the store touches the virtual-memory syscalls; everything
//! above it deals in [`Mapping`] handles and plain `&[u8]` views.
//!
//! The workspace builds offline (no crates.io), so the Linux syscalls are
//! declared `extern "C"` against the system libc the binary already links.
//! On non-Linux platforms (or non-little-endian targets, whose in-memory
//! `f32` layout would not match the little-endian file encoding)
//! [`Mapping::map_file`] returns an error and callers degrade to the heap
//! load path — mmap is an optimization, never a requirement.
//!
//! Lifetime contract: a [`Mapping`] unmaps in `Drop`. Readers hand out views
//! that hold an `Arc<Mapping>`, so the address range stays valid for as long
//! as any view is alive, and dropping the last view (e.g. when compaction
//! retires a segment) unmaps *before* the store deletes the file.

use super::fault::points;
use super::io::{self, Faults};
use super::StorageError;
use std::path::Path;
use std::sync::Arc;

/// Whether this build can map segment files at all (Linux, little-endian).
/// Callers use this to pick defaults; [`Mapping::map_file`] re-checks and
/// fails gracefully regardless.
pub const MMAP_SUPPORTED: bool = cfg!(all(target_os = "linux", target_endian = "little"));

#[cfg(all(target_os = "linux", target_endian = "little"))]
mod sys {
    //! Raw libc declarations and constants (x86-64 / aarch64 Linux values;
    //! both architectures share these).
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 0x1;
    pub const MAP_SHARED: c_int = 0x01;
    pub const MAP_POPULATE: c_int = 0x8000;
    pub const MADV_WILLNEED: c_int = 3;
    pub const MADV_DONTNEED: c_int = 4;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
        pub fn madvise(addr: *mut c_void, len: usize, advice: c_int) -> c_int;
        pub fn mincore(addr: *mut c_void, len: usize, vec: *mut u8) -> c_int;
    }
}

#[cfg(not(all(target_os = "linux", target_endian = "little")))]
mod sys {
    //! Placeholder advice constants so the advisory entry points type-check
    //! on platforms where no mapping can exist.
    pub const MADV_WILLNEED: i32 = 0;
    pub const MADV_DONTNEED: i32 = 0;
}

/// A read-only, shared memory mapping of one file. Unmapped on drop.
///
/// `Send + Sync` is sound because the mapping is `PROT_READ`: no writer
/// exists, so concurrent reads from any thread observe the immutable file
/// bytes (segment files are written once via atomic rename and never
/// modified in place).
#[derive(Debug)]
pub struct Mapping {
    #[cfg(all(target_os = "linux", target_endian = "little"))]
    ptr: *mut std::os::raw::c_void,
    len: usize,
}

#[cfg(all(target_os = "linux", target_endian = "little"))]
// The mapping is PROT_READ and backed by an immutable, atomically renamed
// file; no &mut access is ever handed out.
// SAFETY: read-only mapping of immutable bytes — cross-thread reads are
// data-race-free.
unsafe impl Send for Mapping {}
#[cfg(all(target_os = "linux", target_endian = "little"))]
// SAFETY: see the Send impl — read-only mapping of immutable bytes.
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Maps `path` read-only. `populate` asks the kernel to pre-fault the
    /// whole range (`MAP_POPULATE`), trading open latency for warm first
    /// queries. Honours a fault armed at [`points::SEGMENT_MMAP`]; any
    /// failure (injected or real) is an I/O-class error the caller treats
    /// as "fall back to heap", never as corruption.
    pub fn map_file(
        path: &Path,
        populate: bool,
        faults: &Faults,
    ) -> Result<Arc<Self>, StorageError> {
        if io::fault_check(faults, points::SEGMENT_MMAP).is_some() {
            return Err(StorageError::Io {
                context: format!("injected fault at {}", points::SEGMENT_MMAP),
                source: std::io::Error::other("injected mmap fault"),
            });
        }
        Self::map_file_raw(path, populate)
    }

    #[cfg(all(target_os = "linux", target_endian = "little"))]
    fn map_file_raw(path: &Path, populate: bool) -> Result<Arc<Self>, StorageError> {
        use std::os::unix::io::AsRawFd;
        let file = std::fs::File::open(path)
            .map_err(|e| io::io_err(format!("open of {}", path.display()), e))?;
        let len = file
            .metadata()
            .map_err(|e| io::io_err(format!("stat of {}", path.display()), e))?
            .len() as usize;
        if len == 0 {
            // mmap(len = 0) is EINVAL; an empty file has nothing to map.
            return Err(StorageError::Io {
                context: format!("mmap of {}", path.display()),
                source: std::io::Error::other("cannot map an empty file"),
            });
        }
        let flags = if populate {
            sys::MAP_SHARED | sys::MAP_POPULATE
        } else {
            sys::MAP_SHARED
        };
        // addr = null lets the kernel choose a page-aligned address, and the
        // fd may be closed after mmap returns — the mapping keeps its own
        // reference.
        // SAFETY: fd is a valid open descriptor, len is its nonzero on-disk
        // size, and PROT_READ/MAP_SHARED creates no aliasing writers.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                flags,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(StorageError::Io {
                context: format!("mmap of {}", path.display()),
                source: std::io::Error::last_os_error(),
            });
        }
        Ok(Arc::new(Self { ptr, len }))
    }

    #[cfg(not(all(target_os = "linux", target_endian = "little")))]
    fn map_file_raw(path: &Path, _populate: bool) -> Result<Arc<Self>, StorageError> {
        Err(StorageError::Io {
            context: format!("mmap of {}", path.display()),
            source: std::io::Error::other(
                "mmap segment reads are only supported on little-endian Linux",
            ),
        })
    }

    /// Length of the mapped range in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is mapped (never the case for a live mapping; kept
    /// for API completeness alongside [`Mapping::len`]).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The mapped file bytes.
    #[cfg(all(target_os = "linux", target_endian = "little"))]
    pub fn bytes(&self) -> &[u8] {
        // SAFETY: ptr/len describe a live PROT_READ mapping owned by self —
        // valid, initialized file bytes, immutable until Drop unmaps them.
        unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
    }

    /// The mapped file bytes (unsupported-platform stub; unreachable because
    /// no `Mapping` can be constructed there).
    #[cfg(not(all(target_os = "linux", target_endian = "little")))]
    pub fn bytes(&self) -> &[u8] {
        &[]
    }

    /// Asks the kernel to fault the whole mapping in (`MADV_WILLNEED`) —
    /// the warm-up hint. Returns the number of bytes advised (0 when the
    /// hint failed or was faulted out); advisory, so errors are swallowed.
    pub fn advise_willneed(&self, faults: &Faults) -> usize {
        self.advise(sys::MADV_WILLNEED, faults)
    }

    /// Asks the kernel to drop the mapping's resident pages
    /// (`MADV_DONTNEED`) — the larger-than-RAM churn knob: a read-only
    /// file mapping loses only clean page-cache copies, never data.
    /// Returns bytes advised; advisory, errors swallowed.
    pub fn advise_dontneed(&self, faults: &Faults) -> usize {
        self.advise(sys::MADV_DONTNEED, faults)
    }

    #[cfg(all(target_os = "linux", target_endian = "little"))]
    fn advise(&self, advice: std::os::raw::c_int, faults: &Faults) -> usize {
        if io::fault_check(faults, points::SEGMENT_MADVISE).is_some() {
            // Advisory path: an injected failure is simply "the kernel
            // ignored the hint" — the caller proceeds either way.
            return 0;
        }
        // SAFETY: ptr/len describe a live mapping owned by self; madvise on
        // a PROT_READ file mapping only tunes paging, never its contents.
        let rc = unsafe { sys::madvise(self.ptr, self.len, advice) };
        if rc == 0 {
            self.len
        } else {
            0
        }
    }

    #[cfg(not(all(target_os = "linux", target_endian = "little")))]
    fn advise(&self, _advice: i32, faults: &Faults) -> usize {
        let _ = io::fault_check(faults, points::SEGMENT_MADVISE);
        0
    }

    /// Number of mapped bytes currently resident in physical memory, via
    /// `mincore`. Best-effort: returns 0 when the probe fails.
    #[cfg(all(target_os = "linux", target_endian = "little"))]
    pub fn resident_bytes(&self) -> usize {
        let page = 4096usize; // worst-case probe granularity; see below
        let pages = self.len.div_ceil(page);
        let mut residency = vec![0u8; pages];
        // For kernels with pages larger than 4 KiB the vector is over-long,
        // which is harmless — the kernel writes the first len/page_size
        // entries.
        // SAFETY: ptr/len describe a live mapping owned by self, and the
        // residency vector has one byte per page as mincore requires.
        let rc = unsafe { sys::mincore(self.ptr, self.len, residency.as_mut_ptr()) };
        if rc != 0 {
            return 0;
        }
        let resident_pages = residency.iter().filter(|&&b| b & 1 != 0).count();
        (resident_pages * page).min(self.len)
    }

    /// Resident-byte probe (unsupported-platform stub).
    #[cfg(not(all(target_os = "linux", target_endian = "little")))]
    pub fn resident_bytes(&self) -> usize {
        0
    }
}

#[cfg(all(target_os = "linux", target_endian = "little"))]
impl Drop for Mapping {
    fn drop(&mut self) {
        // SAFETY: ptr/len came from a successful mmap and are unmapped only
        // here; no view outlives self (every view holds an Arc<Mapping>).
        unsafe {
            let _ = sys::munmap(self.ptr, self.len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch_file(tag: &str, bytes: &[u8]) -> PathBuf {
        let path = std::env::temp_dir().join(format!("lovo-mmap-{tag}-{}", std::process::id()));
        std::fs::write(&path, bytes).unwrap();
        path
    }

    #[test]
    #[cfg(all(target_os = "linux", target_endian = "little"))]
    fn maps_and_reads_file_bytes() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let path = scratch_file("read", &data);
        let mapping = Mapping::map_file(&path, false, &None).unwrap();
        assert_eq!(mapping.len(), data.len());
        assert_eq!(mapping.bytes(), &data[..]);
        // Advisory calls succeed on a live mapping and report the range.
        assert_eq!(mapping.advise_willneed(&None), data.len());
        assert!(mapping.resident_bytes() <= mapping.len().next_multiple_of(4096));
        assert_eq!(mapping.advise_dontneed(&None), data.len());
        drop(mapping);
        // The file can be removed after unmap (and, on Linux, even before).
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    #[cfg(all(target_os = "linux", target_endian = "little"))]
    fn populate_prefaults_the_range() {
        let data = vec![7u8; 1 << 16];
        let path = scratch_file("populate", &data);
        let mapping = Mapping::map_file(&path, true, &None).unwrap();
        // MAP_POPULATE faulted the range in; every page should be resident.
        assert_eq!(mapping.resident_bytes(), mapping.len());
        drop(mapping);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_and_missing_files_fail_cleanly() {
        let path = scratch_file("empty", b"");
        assert!(Mapping::map_file(&path, false, &None).is_err());
        let _ = std::fs::remove_file(&path);
        let missing = std::env::temp_dir().join("lovo-mmap-definitely-missing");
        assert!(Mapping::map_file(&missing, false, &None).is_err());
    }

    #[test]
    fn injected_mmap_fault_fails_the_map_call() {
        use super::super::fault::{FaultAction, FaultPlan};
        let data = vec![1u8; 4096];
        let path = scratch_file("fault", &data);
        let plan = std::sync::Arc::new(FaultPlan::new());
        plan.inject(points::SEGMENT_MMAP, FaultAction::Fail);
        let faults: Faults = Some(plan.clone());
        assert!(Mapping::map_file(&path, false, &faults).is_err());
        assert_eq!(plan.triggered(), vec![points::SEGMENT_MMAP.to_string()]);
        // One-shot: the next map succeeds (on supported platforms).
        if MMAP_SUPPORTED {
            assert!(Mapping::map_file(&path, false, &faults).is_ok());
        }
        let _ = std::fs::remove_file(&path);
    }
}
