//! CRC32 (IEEE 802.3, reflected polynomial `0xEDB8_8320`) — the checksum
//! every on-disk structure in the durability layer carries.
//!
//! Hand-rolled because the workspace builds offline: the table is generated
//! at compile time by a `const fn`, and the byte-at-a-time loop is fast
//! enough for the sizes the store writes (headers, WAL records, segment
//! sections), none of which sit on a query hot path.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, one step of the reflected CRC per byte value.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC32 of `bytes` (full-buffer convenience over [`Crc32::update`]).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

/// Incremental CRC32 state, for checksumming a structure built in pieces.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh state (all-ones preset, per the IEEE convention).
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Folds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut state = self.state;
        for &byte in bytes {
            let idx = ((state ^ u32::from(byte)) & 0xFF) as usize;
            // lint:allow(index, idx is masked to 0..256 and TABLE has 256 entries)
            state = (state >> 8) ^ TABLE[idx];
        }
        self.state = state;
    }

    /// Finalizes (final xor-out) without consuming the state.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical IEEE check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut crc = Crc32::new();
        for chunk in data.chunks(7) {
            crc.update(chunk);
        }
        assert_eq!(crc.finish(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let data: Vec<u8> = (0u8..=255).collect();
        let base = crc32(&data);
        for byte in [0usize, 100, 255] {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "byte {byte} bit {bit}");
            }
        }
    }
}
