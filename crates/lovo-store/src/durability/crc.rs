//! CRC32 (IEEE 802.3, reflected polynomial `0xEDB8_8320`) — the checksum
//! every on-disk structure in the durability layer carries.
//!
//! Hand-rolled because the workspace builds offline: the tables are generated
//! at compile time by a `const fn`. Since the mmap read path (PR 9) verifies
//! whole vector sections at open, checksumming sits on the cold-open path for
//! gigabyte-scale stores, so the loop uses the slicing-by-8 technique: eight
//! bytes are folded per iteration through eight precomputed tables, giving a
//! several-fold speedup over byte-at-a-time while producing *bit-identical*
//! checksums (the known-vector tests pin this).

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Slicing-by-8 lookup tables. `TABLES[0]` is the classic one-step-per-byte
/// table; `TABLES[t][b]` advances byte `b` through `t` additional zero bytes,
/// which is what lets one iteration consume eight input bytes at once.
const TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

/// CRC32 of `bytes` (full-buffer convenience over [`Crc32::update`]).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

/// Incremental CRC32 state, for checksumming a structure built in pieces.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh state (all-ones preset, per the IEEE convention).
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Folds `bytes` into the running checksum: eight bytes per iteration
    /// through the slicing tables, byte-at-a-time for the tail.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut state = self.state;
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            // chunks_exact(8) guarantees exactly 8 bytes per chunk.
            // lint:allow(index, chunk is exactly 8 bytes; table indexes are masked to 0..256)
            let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ state;
            // lint:allow(index, chunk is exactly 8 bytes; table indexes are masked to 0..256)
            let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
            // lint:allow(index, table indexes are masked to 0..256 and each table has 256 entries)
            state = TABLES[7][(lo & 0xFF) as usize]
                ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ TABLES[4][(lo >> 24) as usize]
                ^ TABLES[3][(hi & 0xFF) as usize]
                ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
                ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
                ^ TABLES[0][(hi >> 24) as usize];
        }
        for &byte in chunks.remainder() {
            let idx = ((state ^ u32::from(byte)) & 0xFF) as usize;
            // lint:allow(index, idx is masked to 0..256 and TABLES[0] has 256 entries)
            state = (state >> 8) ^ TABLES[0][idx];
        }
        self.state = state;
    }

    /// Finalizes (final xor-out) without consuming the state.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical IEEE check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut crc = Crc32::new();
        for chunk in data.chunks(7) {
            crc.update(chunk);
        }
        assert_eq!(crc.finish(), crc32(data));
    }

    #[test]
    fn sliced_path_matches_byte_at_a_time_reference() {
        // The slicing-by-8 loop must be bit-identical to the canonical
        // one-byte recurrence for every length mod 8 and every alignment of
        // incremental splits.
        fn reference(bytes: &[u8]) -> u32 {
            let mut state = 0xFFFF_FFFFu32;
            for &byte in bytes {
                let idx = ((state ^ u32::from(byte)) & 0xFF) as usize;
                state = (state >> 8) ^ TABLES[0][idx];
            }
            state ^ 0xFFFF_FFFF
        }
        let data: Vec<u8> = (0..1021u32)
            .map(|i| (i.wrapping_mul(31) >> 3) as u8)
            .collect();
        for len in [0, 1, 7, 8, 9, 15, 16, 63, 64, 65, 1000, 1021] {
            assert_eq!(crc32(&data[..len]), reference(&data[..len]), "len {len}");
        }
        for split in [1usize, 3, 8, 13] {
            let mut crc = Crc32::new();
            for chunk in data.chunks(split) {
                crc.update(chunk);
            }
            assert_eq!(crc.finish(), reference(&data), "split {split}");
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let data: Vec<u8> = (0u8..=255).collect();
        let base = crc32(&data);
        for byte in [0usize, 100, 255] {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "byte {byte} bit {bit}");
            }
        }
    }
}
