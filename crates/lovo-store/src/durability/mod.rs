//! Durable storage: checksummed segment files, a write-ahead log, and
//! crash recovery.
//!
//! The subsystem makes [`crate::database::VectorDatabase`] survive `kill
//! -9` at any instant. Three on-disk structures, each hand-serialized
//! ([`codec`]) and CRC32-protected ([`crc`]):
//!
//! * **Sealed segment files** ([`segfile`]) — immutable, written once at
//!   seal/compaction time via temp-file + fsync + atomic rename.
//! * **The write-ahead log** ([`wal`]) — protects the growing append
//!   buffer; one length-prefixed, checksummed record per ingest batch,
//!   fsynced per [`FsyncPolicy`] before the batch is acknowledged.
//! * **The manifest** ([`manifest`]) — the atomically-swapped root of
//!   truth listing collections, sealed segment files, and the active WAL.
//!
//! ### Commit protocol
//!
//! Every durable transition is ordered so a crash between any two steps
//! recovers to a consistent state:
//!
//! 1. *Ingest batch*: WAL append + fsync (the ack point), then apply to
//!    memory. Crash after the fsync replays the batch; crash during the
//!    append leaves a torn tail that replay truncates.
//! 2. *Seal*: write the new segment file(s), fsync, rename; THEN swap the
//!    manifest to reference them. Crash before the swap leaves orphan
//!    files (deleted at open) and the rows still covered by the WAL.
//! 3. *Compaction*: write merged segment files completely, swap the
//!    manifest (drop sources, add merged), THEN delete source files.
//!    Recovery sees either the old set or the new set, never a mix.
//! 4. *WAL rotation* (only when every growing buffer is empty, i.e. all
//!    rows sealed): create the new WAL, swap the manifest's `active_wal`,
//!    then delete the old log.
//!
//! ### Recovery (`DurableStore::open`)
//!
//! Read the manifest → load every referenced segment file, **quarantining**
//! (moving aside, not panicking on) any that fail verification → replay
//! the active WAL, truncating the first torn/corrupt tail record →
//! delete unreferenced files. The outcome is summarized in a
//! [`RecoveryReport`]; data loss (a quarantined segment, a torn tail) is
//! reported, never silently absorbed and never fatal.

pub mod codec;
pub mod crc;
pub mod fault;
mod io;
pub mod manifest;
pub mod mmap;
pub mod segfile;
pub mod wal;

use crate::collection::{CollectionConfig, SegmentedCollection};
use crate::metadata::MetadataStore;
use crate::patchid;
use manifest::{Manifest, ManifestCollection, ManifestSegment};
use mmap::Mapping;
use segfile::{LoadedSegment, SegmentFileData};
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Weak};
use wal::{Wal, WalRecord};

pub use fault::{points, FaultAction, FaultPlan};
pub use mmap::MMAP_SUPPORTED;
pub use segfile::LoadedSegment as RecoveredSegment;
pub use wal::WalRecord as DurableBatch;

/// Errors surfaced by the durability layer. All failure modes are typed —
/// recovery code paths never panic on bad bytes.
#[derive(Debug)]
pub enum StorageError {
    /// An OS-level I/O failure, with the operation and path that hit it.
    Io {
        /// What the store was doing (operation + path).
        context: String,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// A file failed structural or checksum verification.
    Corrupt {
        /// The offending file.
        file: String,
        /// What failed to verify.
        detail: String,
    },
    /// A file was written by a newer format version than this build reads.
    UnsupportedVersion {
        /// The offending file.
        file: String,
        /// Version found on disk.
        found: u32,
        /// Version this build supports.
        expected: u32,
    },
    /// `create` was asked to initialize a root that already holds a store.
    AlreadyExists {
        /// The occupied root directory.
        path: String,
    },
    /// A cross-structure invariant was violated (a bug, not bad disk state).
    Internal(String),
    /// A [`FaultPlan`] crash point fired — the simulated `kill -9`. Tests
    /// drop the store on seeing this and reopen from disk.
    InjectedCrash {
        /// The I/O point that crashed.
        point: &'static str,
    },
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io { context, source } => write!(f, "i/o failure: {context}: {source}"),
            StorageError::Corrupt { file, detail } => write!(f, "corrupt {file}: {detail}"),
            StorageError::UnsupportedVersion {
                file,
                found,
                expected,
            } => write!(
                f,
                "{file}: format version {found} not supported (this build reads {expected})"
            ),
            StorageError::AlreadyExists { path } => {
                write!(f, "store already exists at {path}")
            }
            StorageError::Internal(msg) => write!(f, "internal storage invariant violated: {msg}"),
            StorageError::InjectedCrash { point } => write!(f, "injected crash at {point}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// When WAL appends reach the platter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Fsync after every WAL record, before the write is acknowledged.
    /// A batch that returned `Ok` survives `kill -9`. The default.
    #[default]
    Always,
    /// Never fsync the WAL from the write path; the OS flushes on its own
    /// schedule. Far higher ingest throughput, but a crash may lose the
    /// most recent acknowledged batches (never torn ones — replay still
    /// truncates partial records). Segment files and the manifest are
    /// always fsynced regardless — this knob only governs the WAL tail.
    OsBuffered,
}

/// Configuration of the durability layer.
#[derive(Debug, Clone, Default)]
pub struct DurabilityConfig {
    /// WAL fsync policy (see [`FsyncPolicy`]).
    pub fsync: FsyncPolicy,
    /// Armed fault plan for crash testing. `None` (the default) in
    /// production; checks compile out of release builds entirely unless
    /// the `failpoints` feature is on.
    pub faults: Option<Arc<FaultPlan>>,
}

impl DurabilityConfig {
    /// The production default: fsync-always, no faults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style fsync policy override.
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> Self {
        self.fsync = fsync;
        self
    }

    /// Builder-style fault plan, for crash-recovery tests.
    pub fn with_faults(mut self, faults: Arc<FaultPlan>) -> Self {
        self.faults = Some(faults);
        self
    }
}

/// How `open` reads sealed segment files: copied onto the heap (the
/// default) or served zero-copy out of memory mappings.
///
/// With `mmap` on, each segment file is mapped `PROT_READ` and its row
/// payload is scanned in place — opening a store costs O(header) per
/// segment instead of O(payload), and the payload consumes evictable page
/// cache instead of heap. Corruption handling is identical in both modes
/// (a failed checksum quarantines the file); a failed `mmap` call itself
/// degrades to the heap path rather than failing the open. Version-1
/// segment files predate the aligned layout and are always heap-copied.
#[derive(Debug, Clone, Copy)]
pub struct OpenOptions {
    /// Serve sealed-segment rows from `PROT_READ` file mappings. Requires
    /// little-endian Linux ([`MMAP_SUPPORTED`]); elsewhere (and for v1
    /// files) the open transparently falls back to heap copies.
    pub mmap: bool,
    /// Ask the kernel to pre-fault mapped segments at open (`MAP_POPULATE`)
    /// instead of demand-paging on first scan. Cold-start QPS is immediately
    /// warm, at the cost of an O(payload) open. Only meaningful with `mmap`.
    pub populate: bool,
    /// Verify the vector-payload checksum of every section at open (the
    /// default — identical corruption detection to the heap path). Turning
    /// this off defers payload verification: headers, ids, metadata, and aux
    /// sections are still CRC-checked, but the row payload is trusted to the
    /// atomic temp+fsync+rename write path, keeping the open O(header).
    pub verify_payload: bool,
}

impl Default for OpenOptions {
    fn default() -> Self {
        Self {
            mmap: false,
            populate: false,
            verify_payload: true,
        }
    }
}

impl OpenOptions {
    /// The default heap-copy read path.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style mmap toggle.
    pub fn with_mmap(mut self, mmap: bool) -> Self {
        self.mmap = mmap;
        self
    }

    /// Builder-style `MAP_POPULATE` toggle.
    pub fn with_populate(mut self, populate: bool) -> Self {
        self.populate = populate;
        self
    }

    /// Builder-style payload-verification toggle (see the field docs).
    pub fn with_verify_payload(mut self, verify: bool) -> Self {
        self.verify_payload = verify;
        self
    }

    /// Options from the environment: `LOVO_MMAP=1` turns the mapped read
    /// path on, `LOVO_MMAP_POPULATE=1` pre-faults, `LOVO_MMAP_DEFER_VERIFY=1`
    /// defers payload verification. The default open paths consult this, so
    /// an entire existing test suite can run against the mapped read path
    /// without code changes (the CI matrix leg does exactly that).
    pub fn from_env() -> Self {
        let on = |name: &str| std::env::var(name).is_ok_and(|v| v == "1" || v == "true");
        Self {
            mmap: on("LOVO_MMAP"),
            populate: on("LOVO_MMAP_POPULATE"),
            verify_payload: !on("LOVO_MMAP_DEFER_VERIFY"),
        }
    }
}

/// One sealed segment that failed verification at open and was moved to
/// the store's `quarantine/` directory instead of being served.
#[derive(Debug, Clone)]
pub struct QuarantinedSegment {
    /// Collection the segment belonged to.
    pub collection: String,
    /// File name (now under `quarantine/`).
    pub file: String,
    /// Rows lost with it, per the manifest's accounting.
    pub rows_lost: u64,
    /// Why verification failed.
    pub reason: String,
}

/// What recovery found and did. Returned by the `open` paths so callers
/// (and operators) see exactly what survived — the engine degrades to the
/// surviving segments rather than refusing to start.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// Sealed segments that loaded and verified cleanly.
    pub segments_loaded: usize,
    /// Rows restored from sealed segment files.
    pub rows_loaded: usize,
    /// Segments that failed verification and were quarantined.
    pub quarantined: Vec<QuarantinedSegment>,
    /// Complete WAL records replayed.
    pub wal_records_replayed: usize,
    /// Rows re-applied from the WAL (excluding rows already present in
    /// sealed segments).
    pub wal_rows_replayed: usize,
    /// Bytes truncated off a torn/corrupt WAL tail (0 for a clean log).
    pub wal_bytes_truncated: u64,
    /// Unreferenced leftover files deleted (interrupted temp writes,
    /// orphaned segments from a crash before a manifest swap, stale WALs).
    pub orphan_files_removed: usize,
    /// Auxiliary blobs recovered from segment AUX sections and WAL
    /// records, keyed by frame key. The engine drains this to rebuild its
    /// key-frame map; entries left here were recovered but unclaimed.
    pub aux_blobs: HashMap<u64, Vec<u8>>,
}

impl RecoveryReport {
    /// True when recovery lost nothing: no quarantined segments and no
    /// truncated WAL tail.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty() && self.wal_bytes_truncated == 0
    }

    /// Total rows known to be lost (quarantined segments' row counts).
    pub fn rows_lost(&self) -> u64 {
        self.quarantined.iter().map(|q| q.rows_lost).sum()
    }
}

/// One collection's recovered durable state, ready for the database layer
/// to rebuild indexes over.
pub(crate) struct RecoveredCollection {
    pub name: String,
    pub config: CollectionConfig,
    pub next_segment_id: u64,
    pub segments: Vec<LoadedSegment>,
}

/// Everything `DurableStore::open` hands the database layer.
pub(crate) struct RecoveredState {
    pub collections: Vec<RecoveredCollection>,
    pub wal_records: Vec<WalRecord>,
    pub report: RecoveryReport,
}

/// The durable half of a [`crate::database::VectorDatabase`]: owns the
/// store directory, the manifest, and the active WAL. The database holds
/// it behind a mutex acquired *before* the collection lock (see
/// ARCHITECTURE.md's lock order), which also serializes WAL order with
/// apply order — replay is then guaranteed to reproduce the pre-crash
/// insert sequence exactly.
pub struct DurableStore {
    root: PathBuf,
    config: DurabilityConfig,
    manifest: Manifest,
    wal: Wal,
    /// Aux blobs logged since the last WAL rotation: candidates for the
    /// AUX section of the next sealed segments. Cleared at rotation, by
    /// which point every blob's frame has rows in some sealed file.
    pending_aux: HashMap<u64, Vec<u8>>,
    /// Weak handles to the segment mappings this open created. The strong
    /// references live inside the recovered segments' row stores; once a
    /// segment is dropped (compaction, collection replacement) its mapping
    /// unmaps with it and the weak handle here goes dead. Used by
    /// [`DurableStore::warmup`] and the residency gauges.
    mappings: Vec<Weak<Mapping>>,
}

const SEGMENTS_DIR: &str = "segments";
const QUARANTINE_DIR: &str = "quarantine";

fn sanitize_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn segment_file_name(collection: &str, id: u64) -> String {
    format!("seg-{}-{id:06}.lseg", sanitize_name(collection))
}

/// Rejects a fault plan handed to a build whose check sites are compiled
/// out (release without the `failpoints` feature): a crash test that runs
/// against such a build would silently test nothing, so fail fast instead.
fn reject_inert_faults(config: &DurabilityConfig) -> Result<(), StorageError> {
    #[cfg(not(any(debug_assertions, feature = "failpoints")))]
    if config.faults.is_some() {
        return Err(StorageError::Internal(
            "a FaultPlan was supplied but fault-injection check sites are \
             compiled out of this build; enable the `failpoints` feature"
                .to_string(),
        ));
    }
    let _ = config;
    Ok(())
}

impl DurableStore {
    /// Initializes a fresh store under `root` (created if absent): empty
    /// manifest, WAL 0. Errors with [`StorageError::AlreadyExists`] if a
    /// manifest is already present.
    pub(crate) fn create(
        root: impl Into<PathBuf>,
        config: DurabilityConfig,
    ) -> Result<Self, StorageError> {
        reject_inert_faults(&config)?;
        let root = root.into();
        if root.join(manifest::MANIFEST_FILE).exists() {
            return Err(StorageError::AlreadyExists {
                path: root.display().to_string(),
            });
        }
        std::fs::create_dir_all(root.join(SEGMENTS_DIR))
            .map_err(|e| io::io_err(format!("create of {}", root.display()), e))?;
        let wal = Wal::create(&root, 0, &config.faults)?;
        let manifest = Manifest {
            next_wal_id: 1,
            active_wal: 0,
            collections: Vec::new(),
        };
        manifest.write(&root, &config.faults)?;
        Ok(Self {
            root,
            config,
            manifest,
            wal,
            pending_aux: HashMap::new(),
            mappings: Vec::new(),
        })
    }

    /// Opens an existing store and runs recovery with read-path options
    /// taken from the environment ([`OpenOptions::from_env`]).
    pub(crate) fn open(
        root: impl Into<PathBuf>,
        config: DurabilityConfig,
    ) -> Result<(Self, RecoveredState), StorageError> {
        Self::open_with(root, config, OpenOptions::from_env())
    }

    /// Opens an existing store and runs recovery. See the module docs for
    /// the recovery state machine; the returned [`RecoveredState`] carries
    /// the loaded segments and the WAL records for the database layer to
    /// re-apply. `options` selects the heap or mmap read path for sealed
    /// segment files.
    pub(crate) fn open_with(
        root: impl Into<PathBuf>,
        config: DurabilityConfig,
        options: OpenOptions,
    ) -> Result<(Self, RecoveredState), StorageError> {
        reject_inert_faults(&config)?;
        let root = root.into();
        let mut manifest = Manifest::read(&root)?;
        let mut report = RecoveryReport::default();
        let segments_dir = root.join(SEGMENTS_DIR);
        std::fs::create_dir_all(&segments_dir)
            .map_err(|e| io::io_err(format!("create of {}", segments_dir.display()), e))?;

        // 1. Load every manifest-referenced segment, quarantining failures.
        // With mmap on, each file is mapped and verified in place; an mmap
        // *syscall* failure (an I/O-class problem, not corruption) degrades
        // that one segment to the heap path, while verification failures
        // quarantine exactly as on the heap path.
        let load = |path: &Path| -> Result<(LoadedSegment, Option<Arc<Mapping>>), StorageError> {
            if options.mmap {
                match segfile::map_segment_file(
                    path,
                    options.populate,
                    options.verify_payload,
                    &config.faults,
                ) {
                    Ok(loaded) => return Ok(loaded),
                    Err(StorageError::Io { .. }) => {}
                    Err(err) => return Err(err),
                }
            }
            segfile::read_segment_file(path).map(|loaded| (loaded, None))
        };
        let mut mappings: Vec<Weak<Mapping>> = Vec::new();
        let mut collections = Vec::new();
        let mut quarantined_any = false;
        for entry in &mut manifest.collections {
            let mut recovered = RecoveredCollection {
                name: entry.name.clone(),
                config: entry.config,
                next_segment_id: entry.next_segment_id,
                segments: Vec::new(),
            };
            let mut surviving = Vec::new();
            for seg in &entry.segments {
                let path = segments_dir.join(&seg.file);
                match load(&path) {
                    Ok((loaded, mapping)) => {
                        report.segments_loaded += 1;
                        report.rows_loaded += loaded.row_count();
                        for (key, blob) in &loaded.aux {
                            report.aux_blobs.entry(*key).or_insert_with(|| blob.clone());
                        }
                        if let Some(mapping) = mapping {
                            mappings.push(Arc::downgrade(&mapping));
                        }
                        recovered.segments.push(loaded);
                        surviving.push(seg.clone());
                    }
                    Err(err) => {
                        quarantine_file(&root, &path);
                        quarantined_any = true;
                        report.quarantined.push(QuarantinedSegment {
                            collection: entry.name.clone(),
                            file: seg.file.clone(),
                            rows_lost: seg.rows,
                            reason: err.to_string(),
                        });
                    }
                }
            }
            entry.segments = surviving;
            collections.push(recovered);
        }

        // Commit the quarantines: the manifest must stop referencing files
        // that are no longer under segments/.
        if quarantined_any {
            manifest.write(&root, &config.faults)?;
        }

        // 2. Replay the active WAL, truncating any torn tail. Records that
        // predate their target collection's watermark belong to a replaced
        // incarnation (as do records for collections that no longer exist)
        // and are dropped.
        let mut raw_records = Vec::new();
        let (wal, replay) = Wal::open_replay(&root, manifest.active_wal, &config.faults, |r| {
            raw_records.push(r)
        })?;
        report.wal_bytes_truncated = replay.truncated_bytes;
        let watermarks: HashMap<String, u64> = manifest
            .collections
            .iter()
            .map(|c| (c.name.clone(), c.wal_watermark))
            .collect();
        let mut wal_records = Vec::new();
        for (index, record) in raw_records.into_iter().enumerate() {
            match watermarks.get(&record.collection) {
                Some(&watermark) if (index as u64) >= watermark => wal_records.push(record),
                _ => {}
            }
        }
        report.wal_records_replayed = wal_records.len();
        let mut pending_aux = HashMap::new();
        for record in &wal_records {
            for (key, blob) in &record.aux {
                report.aux_blobs.entry(*key).or_insert_with(|| blob.clone());
                pending_aux.insert(*key, blob.clone());
            }
        }

        // 3. Delete unreferenced leftovers: temp files, orphaned segments
        // (written but never committed by a manifest swap), stale WALs.
        let referenced: HashSet<String> = manifest
            .collections
            .iter()
            .flat_map(|c| c.segments.iter().map(|s| s.file.clone()))
            .collect();
        report.orphan_files_removed +=
            remove_orphans(&segments_dir, |name| !referenced.contains(name));
        let active_wal_name = Wal::file_name(manifest.active_wal);
        report.orphan_files_removed += remove_orphans(&root, |name| {
            name.ends_with(".tmp") || (name.starts_with("wal-") && name != active_wal_name)
        });

        Ok((
            Self {
                root,
                config,
                manifest,
                wal,
                pending_aux,
                mappings,
            },
            RecoveredState {
                collections,
                wal_records,
                report,
            },
        ))
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Records (or replaces) a collection in the manifest. Called by
    /// `create_collection` before the in-memory collection exists, so a
    /// crash right after still knows the collection on reopen.
    pub(crate) fn register_collection(
        &mut self,
        name: &str,
        config: CollectionConfig,
    ) -> Result<(), StorageError> {
        // Mirror `SegmentedCollection::new`: the growing segment owns id 0,
        // so the first id the collection *allocates* is 1. The watermark
        // fences off any WAL records a replaced incarnation already logged.
        let fresh = ManifestCollection {
            name: name.to_string(),
            config,
            next_segment_id: 1,
            wal_watermark: self.wal.record_count(),
            segments: Vec::new(),
        };
        let mut candidate = self.manifest.clone();
        let replaced_files: Vec<String> = match candidate.collection_mut(name) {
            Some(entry) => {
                let files = entry.segments.iter().map(|s| s.file.clone()).collect();
                *entry = fresh;
                files
            }
            None => {
                candidate.collections.push(fresh);
                Vec::new()
            }
        };
        candidate.write(&self.root, &self.config.faults)?;
        self.manifest = candidate;
        for file in replaced_files {
            let _ = std::fs::remove_file(self.root.join(SEGMENTS_DIR).join(file));
        }
        Ok(())
    }

    /// Appends one ingest batch to the WAL and fsyncs per policy. THE
    /// acknowledgement point: once this returns `Ok`, the batch survives
    /// `kill -9` (under [`FsyncPolicy::Always`]).
    pub(crate) fn append_batch(&mut self, record: &WalRecord) -> Result<(), StorageError> {
        self.wal
            .append(record, self.config.fsync, &self.config.faults)?;
        for (key, blob) in &record.aux {
            self.pending_aux.entry(*key).or_insert_with(|| blob.clone());
        }
        Ok(())
    }

    /// Reconciles one collection's sealed segments with disk: writes files
    /// for newly sealed segments, swaps the manifest, then deletes files
    /// of segments compaction merged away. No-op when nothing changed.
    ///
    /// `segment_write_point` is [`points::SEGMENT_WRITE`] on the seal path
    /// and [`points::COMPACT_SEGMENT_WRITE`] from compaction, so the fault
    /// harness can target each independently.
    pub(crate) fn sync_collection(
        &mut self,
        col: &SegmentedCollection,
        metadata: &MetadataStore,
        segment_write_point: &'static str,
    ) -> Result<(), StorageError> {
        let name = col.name().to_string();
        let entry = self.manifest.collection(&name).ok_or_else(|| {
            StorageError::Internal(format!("collection '{name}' missing from manifest"))
        })?;
        let on_disk: HashMap<u64, ManifestSegment> =
            entry.segments.iter().map(|s| (s.id, s.clone())).collect();
        let in_memory: Vec<&crate::segment::Segment> = col.sealed_segments().iter().collect();
        let in_memory_ids: HashSet<u64> = in_memory.iter().map(|s| s.id()).collect();
        let new_ids: Vec<u64> = in_memory
            .iter()
            .map(|s| s.id())
            .filter(|id| !on_disk.contains_key(id))
            .collect();
        let removed: Vec<ManifestSegment> = entry
            .segments
            .iter()
            .filter(|s| !in_memory_ids.contains(&s.id))
            .cloned()
            .collect();
        let next_segment_id = col.next_segment_id();
        if new_ids.is_empty() && removed.is_empty() && entry.next_segment_id == next_segment_id {
            return Ok(());
        }

        // Aux blobs for new segments come from the WAL era (pending) and,
        // for compaction merges, from the AUX sections of the source files
        // (still on disk — they are deleted only after the manifest swap).
        let segments_dir = self.root.join(SEGMENTS_DIR);
        let mut carried_aux: HashMap<u64, Vec<u8>> = HashMap::new();
        if !removed.is_empty() && !new_ids.is_empty() {
            for seg in &removed {
                let loaded = segfile::read_segment_file(&segments_dir.join(&seg.file))?;
                for (key, blob) in loaded.aux {
                    carried_aux.entry(key).or_insert(blob);
                }
            }
        }

        // 1. Write files for newly sealed segments (fsynced + renamed into
        // place, still unreferenced — a crash here leaves only orphans).
        let new_id_set: HashSet<u64> = new_ids.iter().copied().collect();
        let mut manifest_segments = Vec::with_capacity(in_memory.len());
        for segment in &in_memory {
            if let Some(existing) = on_disk.get(&segment.id()) {
                manifest_segments.push(existing.clone());
                continue;
            }
            if !new_id_set.contains(&segment.id()) {
                continue;
            }
            let file = segment_file_name(&name, segment.id());
            let rows: Vec<(u64, &[f32])> = segment.raw_rows().collect();
            let mut meta = Vec::with_capacity(rows.len());
            for (id, _) in &rows {
                meta.push(metadata.get(*id).map_err(|_| {
                    StorageError::Internal(format!("no metadata row for sealed patch id {id}"))
                })?);
            }
            let frame_keys: HashSet<u64> = rows
                .iter()
                .map(|(id, _)| {
                    let (video, frame, _) = patchid::split_patch_id(*id);
                    (u64::from(video) << 32) | u64::from(frame)
                })
                .collect();
            let mut aux: Vec<(u64, &[u8])> = Vec::new();
            for key in &frame_keys {
                if let Some(blob) = self.pending_aux.get(key).or_else(|| carried_aux.get(key)) {
                    aux.push((*key, blob.as_slice()));
                }
            }
            aux.sort_by_key(|(key, _)| *key);
            let zone = segment.zone_map();
            segfile::write_segment_file(
                &segments_dir.join(&file),
                &SegmentFileData {
                    id: segment.id(),
                    dim: col.config().dim,
                    zone,
                    rows,
                    meta,
                    aux,
                },
                segment_write_point,
                &self.config.faults,
            )?;
            let zone = zone.unwrap_or(crate::segment::ZoneMap {
                min_id: u64::MAX,
                max_id: 0,
                rows: 0,
            });
            manifest_segments.push(ManifestSegment {
                id: segment.id(),
                file,
                rows: segment.len() as u64,
                min_id: zone.min_id,
                max_id: zone.max_id,
            });
        }

        // 2. Swap the manifest — the commit point.
        let mut candidate = self.manifest.clone();
        if let Some(entry) = candidate.collection_mut(&name) {
            entry.segments = manifest_segments;
            entry.next_segment_id = next_segment_id;
        }
        candidate.write(&self.root, &self.config.faults)?;
        self.manifest = candidate;

        // 3. Delete files the manifest no longer references (failures are
        // benign: they become orphans the next open removes).
        for seg in &removed {
            let _ = std::fs::remove_file(segments_dir.join(&seg.file));
        }
        Ok(())
    }

    /// Rotates the WAL when it has records but every collection's growing
    /// buffer is empty — i.e. every logged row now lives in a sealed,
    /// manifest-referenced segment file, so the log is dead weight. Order:
    /// create the new WAL, swap the manifest's `active_wal`, delete the
    /// old log. A crash between any two steps recovers correctly (the old
    /// manifest still points at the old, complete WAL; the new manifest
    /// points at the new, empty one).
    pub(crate) fn rotate_wal_if_idle(
        &mut self,
        all_growing_empty: bool,
    ) -> Result<(), StorageError> {
        if !all_growing_empty || self.wal.record_count() == 0 {
            return Ok(());
        }
        let new_id = self.manifest.next_wal_id;
        let new_wal = Wal::create(&self.root, new_id, &self.config.faults)?;
        let mut candidate = self.manifest.clone();
        candidate.active_wal = new_id;
        candidate.next_wal_id = new_id + 1;
        for col in &mut candidate.collections {
            // Watermarks index into the old, now-empty log.
            col.wal_watermark = 0;
        }
        candidate.write(&self.root, &self.config.faults)?;
        self.manifest = candidate;
        let old_path = self.wal.path().to_path_buf();
        self.wal = new_wal;
        let _ = std::fs::remove_file(old_path);
        self.pending_aux.clear();
        Ok(())
    }

    /// Live segment mappings (handles whose segments are still in memory).
    fn live_mappings(&self) -> impl Iterator<Item = Arc<Mapping>> + '_ {
        self.mappings.iter().filter_map(Weak::upgrade)
    }

    /// Advises the kernel to fault in every live segment mapping
    /// (`MADV_WILLNEED`) — the explicit warm-up for mmap opens that skipped
    /// `populate`. Returns the number of bytes advised; purely advisory, so
    /// per-mapping failures are ignored.
    pub fn warmup(&self) -> usize {
        self.live_mappings()
            .map(|m| m.advise_willneed(&self.config.faults))
            .sum()
    }

    /// Advises the kernel to drop every live mapping's resident pages
    /// (`MADV_DONTNEED`) — the churn knob for larger-than-RAM operation:
    /// a read-only file mapping loses only clean page-cache copies, never
    /// data, and subsequent scans demand-page back in. Returns the number
    /// of bytes advised; purely advisory, failures are ignored.
    pub fn release_pages(&self) -> usize {
        self.live_mappings()
            .map(|m| m.advise_dontneed(&self.config.faults))
            .sum()
    }

    /// Total bytes of live segment mappings (0 on the heap read path).
    pub fn mapped_bytes(&self) -> usize {
        self.live_mappings().map(|m| m.len()).sum()
    }

    /// Bytes of live segment mappings currently resident in page cache, per
    /// `mincore`. The mmap-mode analog of a heap footprint gauge: it falls
    /// as the kernel evicts cold segment pages under memory pressure.
    pub fn resident_bytes(&self) -> usize {
        self.live_mappings().map(|m| m.resident_bytes()).sum()
    }

    /// Number of records in the active WAL (exposed for tests and stats).
    pub fn wal_records(&self) -> u64 {
        self.wal.record_count()
    }

    /// Committed byte length of the active WAL.
    pub fn wal_bytes(&self) -> u64 {
        self.wal.len()
    }

    /// The current manifest (exposed read-only for tests and tooling).
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }
}

/// Moves a failed segment file into `quarantine/` (best-effort: if even
/// the move fails the file is left in place, but either way the manifest
/// stops referencing it, so it is never served).
fn quarantine_file(root: &Path, path: &Path) {
    let dir = root.join(QUARANTINE_DIR);
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    if let Some(name) = path.file_name() {
        let _ = std::fs::rename(path, dir.join(name));
    }
}

/// Deletes files in `dir` whose names satisfy `is_orphan`; returns how
/// many were removed. Non-files and unreadable entries are skipped.
fn remove_orphans(dir: &Path, is_orphan: impl Fn(&str) -> bool) -> usize {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut removed = 0;
    for entry in entries.flatten() {
        let path = entry.path();
        if !path.is_file() {
            continue;
        }
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if is_orphan(name) && std::fs::remove_file(&path).is_ok() {
            removed += 1;
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lovo-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn create_then_open_empty_store() {
        let root = scratch_root("empty");
        let store = DurableStore::create(&root, DurabilityConfig::new()).unwrap();
        assert_eq!(store.wal_records(), 0);
        drop(store);
        // Creating over an existing store is refused.
        assert!(matches!(
            DurableStore::create(&root, DurabilityConfig::new()),
            Err(StorageError::AlreadyExists { .. })
        ));
        let (store, state) = DurableStore::open(&root, DurabilityConfig::new()).unwrap();
        assert!(state.report.is_clean());
        assert_eq!(state.report.segments_loaded, 0);
        assert!(state.collections.is_empty());
        assert!(state.wal_records.is_empty());
        assert_eq!(store.manifest().active_wal, 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn open_of_nonexistent_root_is_io_error() {
        let root = scratch_root("nothing");
        assert!(matches!(
            DurableStore::open(&root, DurabilityConfig::new()),
            Err(StorageError::Io { .. })
        ));
    }

    #[test]
    fn sanitized_segment_names() {
        assert_eq!(
            segment_file_name("lovo_patches", 7),
            "seg-lovo_patches-000007.lseg"
        );
        assert_eq!(segment_file_name("a/b c", 0), "seg-a_b_c-000000.lseg");
    }
}
