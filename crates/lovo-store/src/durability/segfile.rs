//! Versioned on-disk format for sealed segments.
//!
//! A sealed segment file holds everything needed to reconstruct the
//! in-memory [`crate::segment::Segment`] exactly: the raw (normalized) rows
//! with their ids, the zone map, the metadata rows joined by patch id, and
//! any auxiliary blobs (serialized key frames) whose frames have rows in
//! the segment. ANN index payloads — IVF centroids, PQ/int8 code books —
//! are *derived* data: they are rebuilt deterministically at open (k-means
//! is fixed-seeded), so corruption of a derived cache can never corrupt a
//! query result. The format reserves section kinds for them
//! ([`SECTION_PQ_CODES`], [`SECTION_INT8_CODES`]) and the reader skips
//! section kinds it does not consume, so a later writer can persist the
//! caches without a version bump.
//!
//! ## File layout (version 2)
//!
//! ```text
//! magic "LSEG" | version u32 | header_len u32 | header_crc u32
//! header:   segment_id u64 | dim u32 | rows u64 | zone_min u64 | zone_max u64
//!           | section_count u32
//!           | per section: kind u32 | offset u64 | len u64 | crc u32
//! sections: at their absolute offsets, each independently CRC32-checked
//!   IDS     (6): rows × id u64
//!   VECTORS (1): rows × dim × f32, row-major, nothing interleaved
//!   META    (2): row_count u64 | per row: PatchRecord
//!   AUX     (3): blob_count u32 | per blob: frame_key u64 | blob
//! ```
//!
//! Version 2 exists for the zero-copy read path: every section starts at a
//! 64-byte-aligned absolute file offset (the gaps are zero padding, outside
//! every CRC), and the VECTORS section is raw little-endian row-major `f32`
//! — exactly the arena layout the scan kernels consume — so a memory-mapped
//! file can serve searches without copying the payload onto the heap.
//! Version 1 interleaved `id u64 | dim × f32` per row with no alignment
//! promise; the reader still accepts it and decodes onto the heap.
//!
//! Files are written via temp-file + fsync + atomic rename
//! (the private `io::write_file_atomic` helper), so a torn segment write
//! is never visible under the final name; the reader therefore treats any
//! checksum failure as corruption of a once-complete file and the caller
//! quarantines it.

use super::codec::{decode_patch_record, encode_patch_record, ByteReader, ByteWriter};
use super::crc::crc32;
use super::fault::points;
use super::io::{self, Faults};
use super::mmap::Mapping;
use super::StorageError;
use crate::metadata::PatchRecord;
use crate::segment::ZoneMap;
use lovo_index::{MappedSlice, RowStore};
use std::any::Any;
use std::path::Path;
use std::sync::Arc;

pub(crate) const SEGMENT_MAGIC: [u8; 4] = *b"LSEG";
/// Version written by this build.
pub(crate) const SEGMENT_VERSION: u32 = 2;
/// Oldest version the reader still decodes.
pub(crate) const SEGMENT_MIN_VERSION: u32 = 1;
/// Every section's absolute file offset is a multiple of this in version 2,
/// so a mapped VECTORS section satisfies any scan kernel's alignment needs.
pub(crate) const SECTION_ALIGN: usize = 64;

/// Raw rows: v2 row-major f32 payload; v1 interleaved `id | row`.
pub const SECTION_VECTORS: u32 = 1;
/// Metadata rows of the segment's patch ids.
pub const SECTION_META: u32 = 2;
/// Auxiliary blobs (serialized key frames) keyed by frame key.
pub const SECTION_AUX: u32 = 3;
/// Reserved: PQ code cache (derived; rebuilt at open today).
pub const SECTION_PQ_CODES: u32 = 4;
/// Reserved: int8 code cache (derived; rebuilt at open today).
pub const SECTION_INT8_CODES: u32 = 5;
/// Row ids, in row order (v2; v1 interleaves them into VECTORS).
pub const SECTION_IDS: u32 = 6;

/// Everything a segment file persists, decoded back into memory. The row
/// payload is a [`RowStore`]: heap-owned on the copying read path, a
/// zero-copy view into the file mapping on the mmap path — bit-identical
/// either way.
#[derive(Debug, Clone)]
pub struct LoadedSegment {
    /// Segment id (unique within its collection).
    pub id: u64,
    /// Embedding dimensionality.
    pub dim: usize,
    /// Zone map as stored (also re-derivable from the rows).
    pub zone: Option<ZoneMap>,
    /// Row ids in original insertion order — the order the index rebuild
    /// consumes, which keeps rebuilt indexes bit-identical to the pre-crash
    /// ones.
    pub ids: Vec<u64>,
    /// Row values, row-major, `ids.len() × dim` values in id order.
    pub rows: RowStore,
    /// Metadata rows for the segment's patch ids.
    pub meta: Vec<PatchRecord>,
    /// Auxiliary blobs whose frames have rows in this segment.
    pub aux: Vec<AuxBlob>,
}

/// One auxiliary blob as stored: the owning frame key and its bytes.
pub type AuxBlob = (u64, Vec<u8>);

impl LoadedSegment {
    /// Number of rows stored.
    pub fn row_count(&self) -> usize {
        self.ids.len()
    }

    /// `(id, row)` pairs in insertion order.
    pub fn iter_rows(&self) -> impl Iterator<Item = (u64, &[f32])> {
        let dim = self.dim.max(1);
        self.ids
            .iter()
            .copied()
            .zip(self.rows.as_slice().chunks(dim))
    }
}

/// The data to persist for one sealed segment.
pub(crate) struct SegmentFileData<'a> {
    pub id: u64,
    pub dim: usize,
    pub zone: Option<ZoneMap>,
    pub rows: Vec<(u64, &'a [f32])>,
    pub meta: Vec<&'a PatchRecord>,
    pub aux: Vec<(u64, &'a [u8])>,
}

fn corrupt(path: &Path, detail: String) -> StorageError {
    StorageError::Corrupt {
        file: path.display().to_string(),
        detail,
    }
}

/// Assembles the preamble + header + padded sections for one version-2
/// segment file. Separated from the atomic write so tests can inspect the
/// encoded image directly.
fn encode_segment_file(data: &SegmentFileData<'_>) -> Vec<u8> {
    // Sections first, so their lengths and checksums are known.
    let mut ids = ByteWriter::new();
    let mut vectors = ByteWriter::new();
    for (id, row) in &data.rows {
        ids.u64(*id);
        for &v in *row {
            vectors.f32(v);
        }
    }
    let mut meta = ByteWriter::new();
    meta.u64(data.meta.len() as u64);
    for record in &data.meta {
        encode_patch_record(&mut meta, record);
    }
    let mut aux = ByteWriter::new();
    aux.u32(data.aux.len() as u32);
    for (frame_key, blob) in &data.aux {
        aux.u64(*frame_key);
        aux.blob(blob);
    }
    let sections = [
        (SECTION_IDS, ids.into_bytes()),
        (SECTION_VECTORS, vectors.into_bytes()),
        (SECTION_META, meta.into_bytes()),
        (SECTION_AUX, aux.into_bytes()),
    ];

    // Header with absolute section offsets, every offset rounded up to the
    // next 64-byte boundary (the padding is zeros and sits outside every
    // CRC — flipping it cannot corrupt anything the reader consumes).
    let header_len = 8 + 4 + 8 + 8 + 8 + 4 + sections.len() * (4 + 8 + 8 + 4);
    let preamble_len = 4 + 4 + 4 + 4; // magic, version, header_len, header_crc
    let mut offset = preamble_len + header_len;
    let mut header = ByteWriter::new();
    header.u64(data.id);
    header.u32(data.dim as u32);
    header.u64(data.rows.len() as u64);
    let (zone_min, zone_max) = data
        .zone
        .map(|z| (z.min_id, z.max_id))
        .unwrap_or((u64::MAX, 0));
    header.u64(zone_min);
    header.u64(zone_max);
    header.u32(sections.len() as u32);
    for (kind, bytes) in &sections {
        offset = offset.next_multiple_of(SECTION_ALIGN);
        header.u32(*kind);
        header.u64(offset as u64);
        header.u64(bytes.len() as u64);
        header.u32(crc32(bytes));
        offset += bytes.len();
    }
    let header = header.into_bytes();
    debug_assert_eq!(header.len(), header_len);

    const ZEROS: [u8; SECTION_ALIGN] = [0u8; SECTION_ALIGN];
    let mut file = ByteWriter::new();
    file.bytes(&SEGMENT_MAGIC);
    file.u32(SEGMENT_VERSION);
    file.u32(header.len() as u32);
    file.u32(crc32(&header));
    file.bytes(&header);
    for (_, bytes) in &sections {
        let pad = file.len().next_multiple_of(SECTION_ALIGN) - file.len();
        file.bytes(&ZEROS[..pad]);
        file.bytes(bytes);
    }
    file.into_bytes()
}

/// Encodes and atomically writes a segment file. `write_point` distinguishes
/// seal-path writes ([`points::SEGMENT_WRITE`]) from compaction writes
/// ([`points::COMPACT_SEGMENT_WRITE`]) for fault targeting.
pub(crate) fn write_segment_file(
    path: &Path,
    data: &SegmentFileData<'_>,
    write_point: &'static str,
    faults: &Faults,
) -> Result<(), StorageError> {
    io::write_file_atomic(
        path,
        &encode_segment_file(data),
        write_point,
        points::SEGMENT_SYNC,
        points::SEGMENT_RENAME,
        faults,
    )
}

/// Header fields plus the byte range of every section this reader consumes,
/// all structurally validated and (optionally minus the vector payload)
/// CRC-verified against the underlying buffer.
struct RawSegment<'a> {
    version: u32,
    id: u64,
    dim: usize,
    row_count: usize,
    zone: Option<ZoneMap>,
    /// v2: raw row-major f32 payload. v1: interleaved `id | row` records.
    vectors: Option<&'a [u8]>,
    /// v2 only: row ids.
    ids: Option<&'a [u8]>,
    meta: Option<&'a [u8]>,
    aux: Option<&'a [u8]>,
}

/// Parses and verifies a segment image (either the file bytes on the heap or
/// the live mapping). Every structural invariant and every section CRC is
/// checked here — except the VECTORS payload CRC when `verify_vectors` is
/// false, the deferred-verification mode the mmap open uses to avoid
/// faulting in the whole payload of a cold file (the atomic write path means
/// a visible file was once complete; deferral trades detection of later
/// bit-rot in the payload for an O(header) open).
fn parse_segment<'a>(
    bytes: &'a [u8],
    path: &Path,
    verify_vectors: bool,
) -> Result<RawSegment<'a>, StorageError> {
    let fail = |detail: String| corrupt(path, detail);
    let mut r = ByteReader::new(bytes);
    let magic = r
        .bytes(4, "segment magic")
        .map_err(|e| fail(e.to_string()))?;
    if magic != SEGMENT_MAGIC {
        return Err(fail("bad segment magic".to_string()));
    }
    let version = r.u32("segment version").map_err(|e| fail(e.to_string()))?;
    if !(SEGMENT_MIN_VERSION..=SEGMENT_VERSION).contains(&version) {
        return Err(StorageError::UnsupportedVersion {
            file: path.display().to_string(),
            found: version,
            expected: SEGMENT_VERSION,
        });
    }
    let header_len = r
        .u32("segment header length")
        .map_err(|e| fail(e.to_string()))? as usize;
    let header_crc = r
        .u32("segment header crc")
        .map_err(|e| fail(e.to_string()))?;
    let header_bytes = r
        .bytes(header_len, "segment header")
        .map_err(|e| fail(e.to_string()))?;
    if crc32(header_bytes) != header_crc {
        return Err(fail("segment header checksum mismatch".to_string()));
    }

    let mut h = ByteReader::new(header_bytes);
    let id = h.u64("segment id").map_err(|e| fail(e.to_string()))?;
    let dim = h.u32("segment dim").map_err(|e| fail(e.to_string()))? as usize;
    let row_count = h.u64("segment rows").map_err(|e| fail(e.to_string()))? as usize;
    let zone_min = h.u64("zone min").map_err(|e| fail(e.to_string()))?;
    let zone_max = h.u64("zone max").map_err(|e| fail(e.to_string()))?;
    let section_count = h.u32("section count").map_err(|e| fail(e.to_string()))?;
    let zone = if row_count > 0 {
        Some(ZoneMap {
            min_id: zone_min,
            max_id: zone_max,
            rows: row_count,
        })
    } else {
        None
    };

    let mut raw = RawSegment {
        version,
        id,
        dim,
        row_count,
        zone,
        vectors: None,
        ids: None,
        meta: None,
        aux: None,
    };
    for _ in 0..section_count {
        let kind = h.u32("section kind").map_err(|e| fail(e.to_string()))?;
        let offset = h.u64("section offset").map_err(|e| fail(e.to_string()))? as usize;
        let len = h.u64("section length").map_err(|e| fail(e.to_string()))? as usize;
        let crc = h.u32("section crc").map_err(|e| fail(e.to_string()))?;
        let end = offset
            .checked_add(len)
            .ok_or_else(|| fail("section bounds overflow".to_string()))?;
        let section = bytes
            .get(offset..end)
            .ok_or_else(|| fail("section out of file bounds".to_string()))?;
        if (verify_vectors || kind != SECTION_VECTORS) && crc32(section) != crc {
            return Err(fail(format!("section {kind} checksum mismatch")));
        }
        match kind {
            SECTION_VECTORS => {
                let expected = if version >= 2 {
                    row_count * dim * 4
                } else {
                    row_count * (8 + dim * 4)
                };
                if section.len() != expected {
                    return Err(fail("vectors section length mismatch".to_string()));
                }
                raw.vectors = Some(section);
            }
            SECTION_IDS => {
                if section.len() != row_count * 8 {
                    return Err(fail("ids section length mismatch".to_string()));
                }
                raw.ids = Some(section);
            }
            SECTION_META => raw.meta = Some(section),
            SECTION_AUX => raw.aux = Some(section),
            // Derived-cache or future sections: checksum verified, content
            // ignored by this reader.
            _ => {}
        }
    }
    if row_count > 0 && raw.vectors.is_none() {
        return Err(fail("missing vectors section".to_string()));
    }
    if raw.version >= 2 && row_count > 0 && raw.ids.is_none() {
        return Err(fail("missing ids section".to_string()));
    }
    Ok(raw)
}

/// Decodes the v2 ids section.
fn decode_ids(section: &[u8], path: &Path) -> Result<Vec<u64>, StorageError> {
    let mut s = ByteReader::new(section);
    let mut ids = Vec::with_capacity(section.len() / 8);
    while !s.is_exhausted() {
        ids.push(s.u64("row id").map_err(|e| corrupt(path, e.to_string()))?);
    }
    Ok(ids)
}

/// Decodes the rows onto the heap: `(ids, row-major values)` for both the
/// v1 interleaved layout and the v2 split layout.
fn decode_rows_heap(
    raw: &RawSegment<'_>,
    path: &Path,
) -> Result<(Vec<u64>, Vec<f32>), StorageError> {
    let Some(section) = raw.vectors else {
        return Ok((Vec::new(), Vec::new()));
    };
    let fail = |detail: String| corrupt(path, detail);
    if raw.version >= 2 {
        let ids = match raw.ids {
            Some(ids) => decode_ids(ids, path)?,
            None => Vec::new(),
        };
        let mut values = Vec::with_capacity(raw.row_count * raw.dim);
        let mut s = ByteReader::new(section);
        while !s.is_exhausted() {
            values.push(s.f32("row value").map_err(|e| fail(e.to_string()))?);
        }
        Ok((ids, values))
    } else {
        let mut s = ByteReader::new(section);
        let mut ids = Vec::with_capacity(raw.row_count);
        let mut values = Vec::with_capacity(raw.row_count * raw.dim);
        for _ in 0..raw.row_count {
            ids.push(s.u64("row id").map_err(|e| fail(e.to_string()))?);
            for _ in 0..raw.dim {
                values.push(s.f32("row value").map_err(|e| fail(e.to_string()))?);
            }
        }
        Ok((ids, values))
    }
}

/// Decodes the META and AUX sections.
fn decode_meta_aux(
    raw: &RawSegment<'_>,
    path: &Path,
) -> Result<(Vec<PatchRecord>, Vec<AuxBlob>), StorageError> {
    let fail = |detail: String| corrupt(path, detail);
    let mut meta = Vec::new();
    if let Some(section) = raw.meta {
        let mut s = ByteReader::new(section);
        let count = s.u64("meta count").map_err(|e| fail(e.to_string()))? as usize;
        meta.reserve(count.min(1 << 24));
        for _ in 0..count {
            meta.push(decode_patch_record(&mut s).map_err(|e| fail(e.to_string()))?);
        }
    }
    let mut aux = Vec::new();
    if let Some(section) = raw.aux {
        let mut s = ByteReader::new(section);
        let count = s.u32("aux count").map_err(|e| fail(e.to_string()))? as usize;
        aux.reserve(count.min(1 << 16));
        for _ in 0..count {
            let key = s.u64("aux key").map_err(|e| fail(e.to_string()))?;
            let blob = s.blob("aux blob").map_err(|e| fail(e.to_string()))?;
            aux.push((key, blob));
        }
    }
    Ok((meta, aux))
}

/// Reads and fully verifies a segment file onto the heap. Any structural or
/// checksum failure returns [`StorageError::Corrupt`] (or
/// [`StorageError::UnsupportedVersion`]); the caller decides whether to
/// quarantine. Unknown section kinds are skipped after their CRC check.
pub(crate) fn read_segment_file(path: &Path) -> Result<LoadedSegment, StorageError> {
    let bytes =
        std::fs::read(path).map_err(|e| io::io_err(format!("read of {}", path.display()), e))?;
    let raw = parse_segment(&bytes, path, true)?;
    let (ids, values) = decode_rows_heap(&raw, path)?;
    if ids.len() != raw.row_count {
        return Err(corrupt(path, "row id count mismatch".to_string()));
    }
    let (meta, aux) = decode_meta_aux(&raw, path)?;
    Ok(LoadedSegment {
        id: raw.id,
        dim: raw.dim,
        zone: raw.zone,
        ids,
        rows: RowStore::Owned(values),
        meta,
        aux,
    })
}

/// Memory-maps and verifies a segment file, serving the row payload straight
/// from the mapping when the file's layout allows it (version 2, aligned
/// vectors section). Returns the loaded segment plus the mapping that backs
/// its rows — `None` when the rows had to be copied onto the heap (v1 file,
/// unaligned legacy layout, or an empty segment), in which case the mapping
/// is already unmapped by the time this returns.
///
/// `verify_payload` selects eager (true: every section CRC-checked at open,
/// byte-for-byte the same corruption detection as [`read_segment_file`]) or
/// deferred payload verification (false: the VECTORS CRC is skipped so the
/// open touches only the header and small sections; see [`parse_segment`]).
///
/// Errors: a failed `mmap` call surfaces as [`StorageError::Io`] — the
/// caller degrades to the heap path; verification failures surface as
/// [`StorageError::Corrupt`] / [`StorageError::UnsupportedVersion`] exactly
/// like the heap reader, so quarantine behavior is mode-independent.
pub(crate) fn map_segment_file(
    path: &Path,
    populate: bool,
    verify_payload: bool,
    faults: &Faults,
) -> Result<(LoadedSegment, Option<Arc<Mapping>>), StorageError> {
    let mapping = Mapping::map_file(path, populate, faults)?;
    let raw = parse_segment(mapping.bytes(), path, verify_payload)?;
    if raw.version >= 2 && raw.row_count > 0 {
        if let (Some(vectors), Some(ids_bytes)) = (raw.vectors, raw.ids) {
            let ids = decode_ids(ids_bytes, path)?;
            let (meta, aux) = decode_meta_aux(&raw, path)?;
            let owner: Arc<dyn Any + Send + Sync> = Arc::<Mapping>::clone(&mapping);
            // `vectors` points into the PROT_READ mapping passed as owner.
            // SAFETY: the view's Arc keeps the mapping (and thus the bytes)
            // alive and immutable for the view's whole lifetime.
            let view = unsafe { MappedSlice::new(owner, vectors) };
            if let Some(view) = view {
                let loaded = LoadedSegment {
                    id: raw.id,
                    dim: raw.dim,
                    zone: raw.zone,
                    ids,
                    rows: RowStore::Mapped(view),
                    meta,
                    aux,
                };
                return Ok((loaded, Some(mapping)));
            }
            // Unaligned legacy layout: fall through to the heap copy below.
        }
    }
    let (ids, values) = decode_rows_heap(&raw, path)?;
    if ids.len() != raw.row_count {
        return Err(corrupt(path, "row id count mismatch".to_string()));
    }
    let (meta, aux) = decode_meta_aux(&raw, path)?;
    let loaded = LoadedSegment {
        id: raw.id,
        dim: raw.dim,
        zone: raw.zone,
        ids,
        rows: RowStore::Owned(values),
        meta,
        aux,
    };
    Ok((loaded, None))
}

/// Writes the retired version-1 layout (interleaved rows, unaligned
/// sections). Kept so compatibility tests can prove v1 files written by
/// earlier builds still load through both read paths.
#[cfg(test)]
pub(crate) fn write_segment_file_v1(
    path: &Path,
    data: &SegmentFileData<'_>,
) -> Result<(), StorageError> {
    let mut vectors = ByteWriter::new();
    for (id, row) in &data.rows {
        vectors.u64(*id);
        for &v in *row {
            vectors.f32(v);
        }
    }
    let mut meta = ByteWriter::new();
    meta.u64(data.meta.len() as u64);
    for record in &data.meta {
        encode_patch_record(&mut meta, record);
    }
    let mut aux = ByteWriter::new();
    aux.u32(data.aux.len() as u32);
    for (frame_key, blob) in &data.aux {
        aux.u64(*frame_key);
        aux.blob(blob);
    }
    let sections = [
        (SECTION_VECTORS, vectors.into_bytes()),
        (SECTION_META, meta.into_bytes()),
        (SECTION_AUX, aux.into_bytes()),
    ];
    let header_len = 8 + 4 + 8 + 8 + 8 + 4 + sections.len() * (4 + 8 + 8 + 4);
    let preamble_len = 4 + 4 + 4 + 4;
    let mut offset = (preamble_len + header_len) as u64;
    let mut header = ByteWriter::new();
    header.u64(data.id);
    header.u32(data.dim as u32);
    header.u64(data.rows.len() as u64);
    let (zone_min, zone_max) = data
        .zone
        .map(|z| (z.min_id, z.max_id))
        .unwrap_or((u64::MAX, 0));
    header.u64(zone_min);
    header.u64(zone_max);
    header.u32(sections.len() as u32);
    for (kind, bytes) in &sections {
        header.u32(*kind);
        header.u64(offset);
        header.u64(bytes.len() as u64);
        header.u32(crc32(bytes));
        offset += bytes.len() as u64;
    }
    let header = header.into_bytes();
    let mut file = ByteWriter::new();
    file.bytes(&SEGMENT_MAGIC);
    file.u32(1); // version 1
    file.u32(header.len() as u32);
    file.u32(crc32(&header));
    file.bytes(&header);
    for (_, bytes) in &sections {
        file.bytes(bytes);
    }
    io::write_file_atomic(
        path,
        &file.into_bytes(),
        points::SEGMENT_WRITE,
        points::SEGMENT_SYNC,
        points::SEGMENT_RENAME,
        &None,
    )
}

#[cfg(test)]
mod tests {
    use super::super::mmap::MMAP_SUPPORTED;
    use super::*;

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("lovo-seg-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn meta(id: u64) -> PatchRecord {
        PatchRecord {
            patch_id: id,
            video_id: (id >> 4) as u32,
            frame_index: (id & 0xF) as u32,
            patch_index: 0,
            bbox: (1.0, 2.0, 3.0, 4.0),
            timestamp: id as f64 * 0.125,
            class_code: if id % 2 == 0 { Some(3) } else { None },
        }
    }

    fn sample_rows(n: u64, dim: usize) -> Vec<(u64, Vec<f32>)> {
        (0..n)
            .map(|i| {
                (
                    i + 100,
                    (0..dim).map(|d| i as f32 + d as f32 * 0.25 - 0.5).collect(),
                )
            })
            .collect()
    }

    fn sample_data<'a>(
        rows: &'a [(u64, Vec<f32>)],
        meta_rows: &'a [PatchRecord],
        blob: &'a [u8],
    ) -> SegmentFileData<'a> {
        SegmentFileData {
            id: 1,
            dim: rows.first().map_or(4, |(_, v)| v.len()),
            zone: rows.first().map(|_| ZoneMap {
                min_id: 100,
                max_id: 100 + rows.len() as u64 - 1,
                rows: rows.len(),
            }),
            rows: rows.iter().map(|(id, v)| (*id, v.as_slice())).collect(),
            meta: meta_rows.iter().collect(),
            aux: vec![(42, blob)],
        }
    }

    /// Absolute `(kind, offset, len)` triples parsed back out of a written
    /// file's header.
    fn section_table(bytes: &[u8]) -> Vec<(u32, usize, usize)> {
        let header_len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let header = &bytes[16..16 + header_len];
        let count = u32::from_le_bytes(header[36..40].try_into().unwrap()) as usize;
        (0..count)
            .map(|i| {
                let at = 40 + i * 24;
                (
                    u32::from_le_bytes(header[at..at + 4].try_into().unwrap()),
                    u64::from_le_bytes(header[at + 4..at + 12].try_into().unwrap()) as usize,
                    u64::from_le_bytes(header[at + 12..at + 20].try_into().unwrap()) as usize,
                )
            })
            .collect()
    }

    #[test]
    fn write_read_round_trip() {
        let dir = scratch_dir("roundtrip");
        let path = dir.join("seg-000001.lseg");
        let rows = sample_rows(10, 4);
        let meta_rows: Vec<PatchRecord> = rows.iter().map(|(id, _)| meta(*id)).collect();
        let blob = vec![9u8, 8, 7];
        let data = sample_data(&rows, &meta_rows, &blob);
        write_segment_file(&path, &data, points::SEGMENT_WRITE, &None).unwrap();
        let loaded = read_segment_file(&path).unwrap();
        assert_eq!(loaded.id, 1);
        assert_eq!(loaded.dim, 4);
        assert_eq!(loaded.row_count(), 10);
        assert!(!loaded.rows.is_mapped());
        let round: Vec<(u64, Vec<f32>)> = loaded
            .iter_rows()
            .map(|(id, row)| (id, row.to_vec()))
            .collect();
        assert_eq!(round, rows);
        assert_eq!(loaded.meta, meta_rows);
        assert_eq!(loaded.aux, vec![(42u64, blob)]);
        assert_eq!(
            loaded.zone,
            Some(ZoneMap {
                min_id: 100,
                max_id: 109,
                rows: 10
            })
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn v2_sections_start_at_64_byte_offsets() {
        let rows = sample_rows(7, 5); // deliberately odd sizes
        let meta_rows: Vec<PatchRecord> = rows.iter().map(|(id, _)| meta(*id)).collect();
        let bytes = encode_segment_file(&sample_data(&rows, &meta_rows, &[1, 2, 3]));
        let table = section_table(&bytes);
        assert_eq!(table.len(), 4);
        for (kind, offset, len) in &table {
            assert_eq!(
                offset % SECTION_ALIGN,
                0,
                "section {kind} starts at unaligned offset {offset}"
            );
            assert!(offset + len <= bytes.len());
        }
        // The vectors payload is raw row-major f32: rows × dim × 4 bytes.
        let vectors = table.iter().find(|(k, ..)| *k == SECTION_VECTORS).unwrap();
        assert_eq!(vectors.2, 7 * 5 * 4);
        let ids = table.iter().find(|(k, ..)| *k == SECTION_IDS).unwrap();
        assert_eq!(ids.2, 7 * 8);
    }

    #[test]
    fn v1_files_load_through_both_read_paths() {
        let dir = scratch_dir("v1compat");
        let v1 = dir.join("seg-v1.lseg");
        let v2 = dir.join("seg-v2.lseg");
        let rows = sample_rows(12, 3);
        let meta_rows: Vec<PatchRecord> = rows.iter().map(|(id, _)| meta(*id)).collect();
        let blob = vec![5u8, 6];
        let data = sample_data(&rows, &meta_rows, &blob);
        write_segment_file_v1(&v1, &data).unwrap();
        write_segment_file(&v2, &data, points::SEGMENT_WRITE, &None).unwrap();

        let from_v1 = read_segment_file(&v1).unwrap();
        let from_v2 = read_segment_file(&v2).unwrap();
        assert_eq!(from_v1.ids, from_v2.ids);
        assert_eq!(from_v1.rows.as_slice(), from_v2.rows.as_slice());
        assert_eq!(from_v1.meta, from_v2.meta);
        assert_eq!(from_v1.aux, from_v2.aux);
        assert_eq!(from_v1.zone, from_v2.zone);

        // The mmap reader copy-falls-back on v1 (no alignment promise): rows
        // come out owned, no mapping is retained, contents identical.
        if MMAP_SUPPORTED {
            let (mapped_v1, mapping) = map_segment_file(&v1, false, true, &None).unwrap();
            assert!(mapping.is_none());
            assert!(!mapped_v1.rows.is_mapped());
            assert_eq!(mapped_v1.ids, from_v1.ids);
            assert_eq!(mapped_v1.rows.as_slice(), from_v1.rows.as_slice());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mapped_read_serves_v2_rows_zero_copy() {
        if !MMAP_SUPPORTED {
            return;
        }
        let dir = scratch_dir("mapped");
        let path = dir.join("seg.lseg");
        let rows = sample_rows(9, 6);
        let meta_rows: Vec<PatchRecord> = rows.iter().map(|(id, _)| meta(*id)).collect();
        let data = sample_data(&rows, &meta_rows, &[7u8]);
        write_segment_file(&path, &data, points::SEGMENT_WRITE, &None).unwrap();
        let heap = read_segment_file(&path).unwrap();
        for verify_payload in [true, false] {
            let (mapped, mapping) = map_segment_file(&path, false, verify_payload, &None).unwrap();
            assert!(mapped.rows.is_mapped(), "verify_payload={verify_payload}");
            assert!(mapping.is_some());
            assert_eq!(mapped.ids, heap.ids);
            assert_eq!(mapped.rows.as_slice(), heap.rows.as_slice());
            assert_eq!(mapped.meta, heap.meta);
            assert_eq!(mapped.aux, heap.aux);
            assert_eq!(mapped.rows.heap_bytes(), 0);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mapped_read_detects_payload_corruption_only_in_eager_mode() {
        if !MMAP_SUPPORTED {
            return;
        }
        let dir = scratch_dir("mapped-corrupt");
        let path = dir.join("seg.lseg");
        let rows = sample_rows(8, 4);
        let meta_rows: Vec<PatchRecord> = rows.iter().map(|(id, _)| meta(*id)).collect();
        let data = sample_data(&rows, &meta_rows, &[]);
        write_segment_file(&path, &data, points::SEGMENT_WRITE, &None).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let (_, offset, len) = *section_table(&bytes)
            .iter()
            .find(|(k, ..)| *k == SECTION_VECTORS)
            .unwrap();
        bytes[offset + len / 2] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        // Eager mode: corruption in the mapped payload is caught at open,
        // same as the heap reader — the quarantine path is mode-independent.
        assert!(matches!(
            map_segment_file(&path, false, true, &None),
            Err(StorageError::Corrupt { .. })
        ));
        assert!(read_segment_file(&path).is_err());
        // Deferred mode skips exactly this one check by design.
        assert!(map_segment_file(&path, false, false, &None).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flips_anywhere_are_detected() {
        let dir = scratch_dir("flips");
        let path = dir.join("seg.lseg");
        let rows = sample_rows(5, 2);
        let meta_rows: Vec<PatchRecord> = rows.iter().map(|(id, _)| meta(*id)).collect();
        let data = sample_data(&rows, &meta_rows, &[3u8]);
        write_segment_file(&path, &data, points::SEGMENT_WRITE, &None).unwrap();
        let clean = std::fs::read(&path).unwrap();
        // Flip one bit in the header and in the middle of every section
        // (the inter-section padding is deliberately outside all CRCs, so
        // positions are derived from the section table, not hardcoded).
        let mut positions = vec![5usize, 20];
        for (_, offset, len) in section_table(&clean) {
            if len > 0 {
                positions.push(offset + len / 2);
            }
        }
        for pos in positions {
            let mut corrupted = clean.clone();
            corrupted[pos] ^= 0x10;
            std::fs::write(&path, &corrupted).unwrap();
            assert!(
                read_segment_file(&path).is_err(),
                "flip at byte {pos} went undetected"
            );
        }
        // Truncation is detected too.
        std::fs::write(&path, &clean[..clean.len() - 10]).unwrap();
        assert!(read_segment_file(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn future_version_is_refused_not_misread() {
        let dir = scratch_dir("version");
        let path = dir.join("seg.lseg");
        let data = SegmentFileData {
            id: 0,
            dim: 1,
            zone: None,
            rows: vec![],
            meta: vec![],
            aux: vec![],
        };
        write_segment_file(&path, &data, points::SEGMENT_WRITE, &None).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4] = 99; // version field
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_segment_file(&path),
            Err(StorageError::UnsupportedVersion { found: 99, .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
