//! Versioned on-disk format for sealed segments.
//!
//! A sealed segment file holds everything needed to reconstruct the
//! in-memory [`crate::segment::Segment`] exactly: the raw (normalized) rows
//! with their ids, the zone map, the metadata rows joined by patch id, and
//! any auxiliary blobs (serialized key frames) whose frames have rows in
//! the segment. ANN index payloads — IVF centroids, PQ/int8 code books —
//! are *derived* data: they are rebuilt deterministically at open (k-means
//! is fixed-seeded), so corruption of a derived cache can never corrupt a
//! query result. The format reserves section kinds for them
//! ([`SECTION_PQ_CODES`], [`SECTION_INT8_CODES`]) and the reader skips
//! section kinds it does not consume, so a later writer can persist the
//! caches without a version bump.
//!
//! ## File layout
//!
//! ```text
//! magic "LSEG" | version u32 | header_len u32 | header_crc u32
//! header:   segment_id u64 | dim u32 | rows u64 | zone_min u64 | zone_max u64
//!           | section_count u32
//!           | per section: kind u32 | offset u64 | len u64 | crc u32
//! sections: at their absolute offsets, each independently CRC32-checked
//!   VECTORS (1): per row: id u64 | dim × f32
//!   META    (2): row_count u64 | per row: PatchRecord
//!   AUX     (3): blob_count u32 | per blob: frame_key u64 | blob
//! ```
//!
//! Files are written via temp-file + fsync + atomic rename
//! (the private `io::write_file_atomic` helper), so a torn segment write
//! is never visible under the final name; the reader therefore treats any
//! checksum failure as corruption of a once-complete file and the caller
//! quarantines it.

use super::codec::{decode_patch_record, encode_patch_record, ByteReader, ByteWriter};
use super::crc::crc32;
use super::fault::points;
use super::io::{self, Faults};
use super::StorageError;
use crate::metadata::PatchRecord;
use crate::segment::ZoneMap;
use std::path::Path;

pub(crate) const SEGMENT_MAGIC: [u8; 4] = *b"LSEG";
pub(crate) const SEGMENT_VERSION: u32 = 1;

/// Raw rows + ids.
pub const SECTION_VECTORS: u32 = 1;
/// Metadata rows of the segment's patch ids.
pub const SECTION_META: u32 = 2;
/// Auxiliary blobs (serialized key frames) keyed by frame key.
pub const SECTION_AUX: u32 = 3;
/// Reserved: PQ code cache (derived; rebuilt at open today).
pub const SECTION_PQ_CODES: u32 = 4;
/// Reserved: int8 code cache (derived; rebuilt at open today).
pub const SECTION_INT8_CODES: u32 = 5;

/// Everything a segment file persists, decoded back into memory.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadedSegment {
    /// Segment id (unique within its collection).
    pub id: u64,
    /// Embedding dimensionality.
    pub dim: usize,
    /// Zone map as stored (also re-derivable from the rows).
    pub zone: Option<ZoneMap>,
    /// `(id, normalized row)` in original insertion order — the order the
    /// index rebuild consumes, which keeps rebuilt indexes bit-identical to
    /// the pre-crash ones.
    pub rows: Vec<(u64, Vec<f32>)>,
    /// Metadata rows for the segment's patch ids.
    pub meta: Vec<PatchRecord>,
    /// Auxiliary blobs whose frames have rows in this segment.
    pub aux: Vec<(u64, Vec<u8>)>,
}

/// The data to persist for one sealed segment.
pub(crate) struct SegmentFileData<'a> {
    pub id: u64,
    pub dim: usize,
    pub zone: Option<ZoneMap>,
    pub rows: Vec<(u64, &'a [f32])>,
    pub meta: Vec<&'a PatchRecord>,
    pub aux: Vec<(u64, &'a [u8])>,
}

/// Encodes and atomically writes a segment file. `write_point` distinguishes
/// seal-path writes ([`points::SEGMENT_WRITE`]) from compaction writes
/// ([`points::COMPACT_SEGMENT_WRITE`]) for fault targeting.
pub(crate) fn write_segment_file(
    path: &Path,
    data: &SegmentFileData<'_>,
    write_point: &'static str,
    faults: &Faults,
) -> Result<(), StorageError> {
    // Sections first, so their lengths and checksums are known.
    let mut vectors = ByteWriter::new();
    for (id, row) in &data.rows {
        vectors.u64(*id);
        for &v in *row {
            vectors.f32(v);
        }
    }
    let mut meta = ByteWriter::new();
    meta.u64(data.meta.len() as u64);
    for record in &data.meta {
        encode_patch_record(&mut meta, record);
    }
    let mut aux = ByteWriter::new();
    aux.u32(data.aux.len() as u32);
    for (frame_key, blob) in &data.aux {
        aux.u64(*frame_key);
        aux.blob(blob);
    }
    let sections = [
        (SECTION_VECTORS, vectors.into_bytes()),
        (SECTION_META, meta.into_bytes()),
        (SECTION_AUX, aux.into_bytes()),
    ];

    // Header with absolute section offsets.
    let header_len = 8 + 4 + 8 + 8 + 8 + 4 + sections.len() * (4 + 8 + 8 + 4);
    let preamble_len = 4 + 4 + 4 + 4; // magic, version, header_len, header_crc
    let mut offset = (preamble_len + header_len) as u64;
    let mut header = ByteWriter::new();
    header.u64(data.id);
    header.u32(data.dim as u32);
    header.u64(data.rows.len() as u64);
    let (zone_min, zone_max) = data
        .zone
        .map(|z| (z.min_id, z.max_id))
        .unwrap_or((u64::MAX, 0));
    header.u64(zone_min);
    header.u64(zone_max);
    header.u32(sections.len() as u32);
    for (kind, bytes) in &sections {
        header.u32(*kind);
        header.u64(offset);
        header.u64(bytes.len() as u64);
        header.u32(crc32(bytes));
        offset += bytes.len() as u64;
    }
    let header = header.into_bytes();
    debug_assert_eq!(header.len(), header_len);

    let mut file = ByteWriter::new();
    file.bytes(&SEGMENT_MAGIC);
    file.u32(SEGMENT_VERSION);
    file.u32(header.len() as u32);
    file.u32(crc32(&header));
    file.bytes(&header);
    for (_, bytes) in &sections {
        file.bytes(bytes);
    }
    io::write_file_atomic(
        path,
        &file.into_bytes(),
        write_point,
        points::SEGMENT_SYNC,
        points::SEGMENT_RENAME,
        faults,
    )
}

/// Reads and fully verifies a segment file. Any structural or checksum
/// failure returns [`StorageError::Corrupt`] (or
/// [`StorageError::UnsupportedVersion`]); the caller decides whether to
/// quarantine. Unknown section kinds are skipped after their CRC check.
pub(crate) fn read_segment_file(path: &Path) -> Result<LoadedSegment, StorageError> {
    let bytes =
        std::fs::read(path).map_err(|e| io::io_err(format!("read of {}", path.display()), e))?;
    let corrupt = |detail: String| StorageError::Corrupt {
        file: path.display().to_string(),
        detail,
    };
    let mut r = ByteReader::new(&bytes);
    let magic = r
        .bytes(4, "segment magic")
        .map_err(|e| corrupt(e.to_string()))?;
    if magic != SEGMENT_MAGIC {
        return Err(corrupt("bad segment magic".to_string()));
    }
    let version = r
        .u32("segment version")
        .map_err(|e| corrupt(e.to_string()))?;
    if version != SEGMENT_VERSION {
        return Err(StorageError::UnsupportedVersion {
            file: path.display().to_string(),
            found: version,
            expected: SEGMENT_VERSION,
        });
    }
    let header_len = r
        .u32("segment header length")
        .map_err(|e| corrupt(e.to_string()))? as usize;
    let header_crc = r
        .u32("segment header crc")
        .map_err(|e| corrupt(e.to_string()))?;
    let header_bytes = r
        .bytes(header_len, "segment header")
        .map_err(|e| corrupt(e.to_string()))?;
    if crc32(header_bytes) != header_crc {
        return Err(corrupt("segment header checksum mismatch".to_string()));
    }

    let mut h = ByteReader::new(header_bytes);
    let id = h.u64("segment id").map_err(|e| corrupt(e.to_string()))?;
    let dim = h.u32("segment dim").map_err(|e| corrupt(e.to_string()))? as usize;
    let row_count = h.u64("segment rows").map_err(|e| corrupt(e.to_string()))? as usize;
    let zone_min = h.u64("zone min").map_err(|e| corrupt(e.to_string()))?;
    let zone_max = h.u64("zone max").map_err(|e| corrupt(e.to_string()))?;
    let section_count = h.u32("section count").map_err(|e| corrupt(e.to_string()))?;
    let zone = if row_count > 0 {
        Some(ZoneMap {
            min_id: zone_min,
            max_id: zone_max,
            rows: row_count,
        })
    } else {
        None
    };

    let mut loaded = LoadedSegment {
        id,
        dim,
        zone,
        rows: Vec::new(),
        meta: Vec::new(),
        aux: Vec::new(),
    };
    for _ in 0..section_count {
        let kind = h.u32("section kind").map_err(|e| corrupt(e.to_string()))?;
        let offset = h
            .u64("section offset")
            .map_err(|e| corrupt(e.to_string()))? as usize;
        let len = h
            .u64("section length")
            .map_err(|e| corrupt(e.to_string()))? as usize;
        let crc = h.u32("section crc").map_err(|e| corrupt(e.to_string()))?;
        let end = offset
            .checked_add(len)
            .ok_or_else(|| corrupt("section bounds overflow".to_string()))?;
        let section = bytes
            .get(offset..end)
            .ok_or_else(|| corrupt("section out of file bounds".to_string()))?;
        if crc32(section) != crc {
            return Err(corrupt(format!("section {kind} checksum mismatch")));
        }
        match kind {
            SECTION_VECTORS => {
                let expected = row_count * (8 + dim * 4);
                if section.len() != expected {
                    return Err(corrupt("vectors section length mismatch".to_string()));
                }
                let mut s = ByteReader::new(section);
                let mut rows = Vec::with_capacity(row_count);
                for _ in 0..row_count {
                    let row_id = s.u64("row id").map_err(|e| corrupt(e.to_string()))?;
                    let mut row = Vec::with_capacity(dim);
                    for _ in 0..dim {
                        row.push(s.f32("row value").map_err(|e| corrupt(e.to_string()))?);
                    }
                    rows.push((row_id, row));
                }
                loaded.rows = rows;
            }
            SECTION_META => {
                let mut s = ByteReader::new(section);
                let count = s.u64("meta count").map_err(|e| corrupt(e.to_string()))? as usize;
                let mut meta = Vec::with_capacity(count.min(1 << 24));
                for _ in 0..count {
                    meta.push(decode_patch_record(&mut s).map_err(|e| corrupt(e.to_string()))?);
                }
                loaded.meta = meta;
            }
            SECTION_AUX => {
                let mut s = ByteReader::new(section);
                let count = s.u32("aux count").map_err(|e| corrupt(e.to_string()))? as usize;
                let mut aux = Vec::with_capacity(count.min(1 << 16));
                for _ in 0..count {
                    let key = s.u64("aux key").map_err(|e| corrupt(e.to_string()))?;
                    let blob = s.blob("aux blob").map_err(|e| corrupt(e.to_string()))?;
                    aux.push((key, blob));
                }
                loaded.aux = aux;
            }
            // Derived-cache or future sections: checksum verified, content
            // ignored by this reader.
            _ => {}
        }
    }
    if loaded.rows.len() != row_count {
        return Err(corrupt("missing vectors section".to_string()));
    }
    Ok(loaded)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("lovo-seg-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn meta(id: u64) -> PatchRecord {
        PatchRecord {
            patch_id: id,
            video_id: (id >> 4) as u32,
            frame_index: (id & 0xF) as u32,
            patch_index: 0,
            bbox: (1.0, 2.0, 3.0, 4.0),
            timestamp: id as f64 * 0.125,
            class_code: if id % 2 == 0 { Some(3) } else { None },
        }
    }

    #[test]
    fn write_read_round_trip() {
        let dir = scratch_dir("roundtrip");
        let path = dir.join("seg-000001.lseg");
        let rows: Vec<(u64, Vec<f32>)> = (0..10u64)
            .map(|i| (i + 100, vec![i as f32, -0.5, 0.25, 1.0]))
            .collect();
        let meta_rows: Vec<PatchRecord> = rows.iter().map(|(id, _)| meta(*id)).collect();
        let blob = vec![9u8, 8, 7];
        let data = SegmentFileData {
            id: 1,
            dim: 4,
            zone: Some(ZoneMap {
                min_id: 100,
                max_id: 109,
                rows: 10,
            }),
            rows: rows.iter().map(|(id, v)| (*id, v.as_slice())).collect(),
            meta: meta_rows.iter().collect(),
            aux: vec![(42, blob.as_slice())],
        };
        write_segment_file(&path, &data, points::SEGMENT_WRITE, &None).unwrap();
        let loaded = read_segment_file(&path).unwrap();
        assert_eq!(loaded.id, 1);
        assert_eq!(loaded.dim, 4);
        assert_eq!(loaded.rows, rows);
        assert_eq!(loaded.meta, meta_rows);
        assert_eq!(loaded.aux, vec![(42u64, blob)]);
        assert_eq!(
            loaded.zone,
            Some(ZoneMap {
                min_id: 100,
                max_id: 109,
                rows: 10
            })
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flips_anywhere_are_detected() {
        let dir = scratch_dir("flips");
        let path = dir.join("seg.lseg");
        let rows: Vec<(u64, Vec<f32>)> = (0..5u64).map(|i| (i, vec![i as f32, 1.0])).collect();
        let meta_rows: Vec<PatchRecord> = rows.iter().map(|(id, _)| meta(*id)).collect();
        let data = SegmentFileData {
            id: 7,
            dim: 2,
            zone: Some(ZoneMap {
                min_id: 0,
                max_id: 4,
                rows: 5,
            }),
            rows: rows.iter().map(|(id, v)| (*id, v.as_slice())).collect(),
            meta: meta_rows.iter().collect(),
            aux: Vec::new(),
        };
        write_segment_file(&path, &data, points::SEGMENT_WRITE, &None).unwrap();
        let clean = std::fs::read(&path).unwrap();
        // Flip one bit at a spread of positions: header, vectors, meta.
        for pos in [5usize, 20, clean.len() / 2, clean.len() - 3] {
            let mut corrupted = clean.clone();
            corrupted[pos] ^= 0x10;
            std::fs::write(&path, &corrupted).unwrap();
            assert!(
                read_segment_file(&path).is_err(),
                "flip at byte {pos} went undetected"
            );
        }
        // Truncation is detected too.
        std::fs::write(&path, &clean[..clean.len() - 10]).unwrap();
        assert!(read_segment_file(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn future_version_is_refused_not_misread() {
        let dir = scratch_dir("version");
        let path = dir.join("seg.lseg");
        let data = SegmentFileData {
            id: 0,
            dim: 1,
            zone: None,
            rows: vec![],
            meta: vec![],
            aux: vec![],
        };
        write_segment_file(&path, &data, points::SEGMENT_WRITE, &None).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4] = 99; // version field
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_segment_file(&path),
            Err(StorageError::UnsupportedVersion { found: 99, .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
