//! Checked file I/O: every write, fsync, and rename the durability layer
//! performs goes through these helpers, which consult the armed
//! [`FaultPlan`] (debug builds / `failpoints` feature only) and map OS
//! errors to typed [`StorageError`]s with the failing path in the message.
//!
//! The core primitive is [`write_file_atomic`]: build the bytes in memory,
//! write them to `<dst>.tmp`, fsync the file, rename over `dst`, fsync the
//! parent directory. A crash at any instant leaves either the old `dst`
//! (possibly plus a garbage `.tmp` that recovery deletes) or the complete
//! new one — never a torn visible file.

use super::fault::{FaultAction, FaultPlan};
use super::StorageError;
use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

/// The optional fault plan threaded through every I/O call.
pub(crate) type Faults = Option<Arc<FaultPlan>>;

/// Consults the fault plan for `point`. Compiled to a no-op in release
/// builds without the `failpoints` feature, so the production I/O paths
/// carry no injection branches.
#[inline]
pub(crate) fn fault_check(faults: &Faults, point: &'static str) -> Option<FaultAction> {
    #[cfg(any(debug_assertions, feature = "failpoints"))]
    {
        faults.as_ref().and_then(|plan| plan.take(point))
    }
    #[cfg(not(any(debug_assertions, feature = "failpoints")))]
    {
        let _ = (faults, point);
        None
    }
}

fn injected_io_error(point: &'static str) -> StorageError {
    StorageError::Io {
        context: format!("injected fault at {point}"),
        source: std::io::Error::other("injected I/O fault"),
    }
}

/// Wraps an OS error with the operation and path that hit it.
pub(crate) fn io_err(context: impl Into<String>, source: std::io::Error) -> StorageError {
    StorageError::Io {
        context: context.into(),
        source,
    }
}

/// Writes `buf` to `file`, honouring any fault armed at `point`: `Fail`
/// writes nothing, `ShortWrite(n)`/`CrashAfter(n)` land the first `n` bytes
/// before failing — the torn-write shapes the recovery tests exercise.
pub(crate) fn write_all(
    file: &mut File,
    buf: &[u8],
    path: &Path,
    point: &'static str,
    faults: &Faults,
) -> Result<(), StorageError> {
    match fault_check(faults, point) {
        Some(FaultAction::Fail) => return Err(injected_io_error(point)),
        Some(action) => {
            let n = match action {
                FaultAction::ShortWrite(n) | FaultAction::CrashAfter(n) => n.min(buf.len()),
                FaultAction::Fail => 0,
            };
            if let Some(prefix) = buf.get(..n) {
                // Land the partial bytes the way a real crash would: whatever
                // the process flushed before dying is what the reopened store
                // sees on disk.
                file.write_all(prefix)
                    .map_err(|e| io_err(format!("partial write to {}", path.display()), e))?;
                let _ = file.flush();
            }
            return Err(match action {
                FaultAction::CrashAfter(_) => StorageError::InjectedCrash { point },
                _ => injected_io_error(point),
            });
        }
        None => {}
    }
    file.write_all(buf)
        .map_err(|e| io_err(format!("write to {}", path.display()), e))
}

/// Fsyncs `file`. A fault armed at `point` fails the sync (any action —
/// syncs cannot short-write); `CrashAfter` maps to
/// [`StorageError::InjectedCrash`], the rest to an I/O error.
pub(crate) fn sync_file(
    file: &File,
    path: &Path,
    point: &'static str,
    faults: &Faults,
) -> Result<(), StorageError> {
    match fault_check(faults, point) {
        Some(FaultAction::CrashAfter(_)) => return Err(StorageError::InjectedCrash { point }),
        Some(_) => return Err(injected_io_error(point)),
        None => {}
    }
    file.sync_all()
        .map_err(|e| io_err(format!("fsync of {}", path.display()), e))
}

/// Renames `from` to `to` (atomic within a filesystem). A fault armed at
/// `point` fails before the rename executes.
pub(crate) fn rename(
    from: &Path,
    to: &Path,
    point: &'static str,
    faults: &Faults,
) -> Result<(), StorageError> {
    match fault_check(faults, point) {
        Some(FaultAction::CrashAfter(_)) => return Err(StorageError::InjectedCrash { point }),
        Some(_) => return Err(injected_io_error(point)),
        None => {}
    }
    std::fs::rename(from, to)
        .map_err(|e| io_err(format!("rename {} -> {}", from.display(), to.display()), e))
}

/// Fsyncs the directory containing `path`, making a completed rename
/// durable. Best-effort on platforms where directories cannot be opened.
pub(crate) fn sync_parent_dir(path: &Path) -> Result<(), StorageError> {
    let Some(parent) = path.parent() else {
        return Ok(());
    };
    match File::open(parent) {
        Ok(dir) => dir
            .sync_all()
            .map_err(|e| io_err(format!("fsync of directory {}", parent.display()), e)),
        // Opening a directory read-only can fail on exotic platforms; the
        // rename itself already succeeded, so degrade to OS-buffered.
        Err(_) => Ok(()),
    }
}

/// Writes `bytes` to `dst` atomically: temp file, fsync, rename, directory
/// fsync. The three fault points let tests kill the sequence at each stage.
pub(crate) fn write_file_atomic(
    dst: &Path,
    bytes: &[u8],
    write_point: &'static str,
    sync_point: &'static str,
    rename_point: &'static str,
    faults: &Faults,
) -> Result<(), StorageError> {
    let tmp = temp_path(dst);
    let mut file =
        File::create(&tmp).map_err(|e| io_err(format!("create of {}", tmp.display()), e))?;
    write_all(&mut file, bytes, &tmp, write_point, faults)?;
    sync_file(&file, &tmp, sync_point, faults)?;
    drop(file);
    rename(&tmp, dst, rename_point, faults)?;
    sync_parent_dir(dst)
}

/// The temp-file path used by [`write_file_atomic`]: `<dst>.tmp`. Recovery
/// deletes stray `.tmp` files on open — they are by construction invisible,
/// unreferenced leftovers of an interrupted write.
pub(crate) fn temp_path(dst: &Path) -> std::path::PathBuf {
    let mut name = dst.as_os_str().to_os_string();
    name.push(".tmp");
    std::path::PathBuf::from(name)
}

#[cfg(test)]
mod tests {
    use super::super::fault::points;
    use super::*;

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("lovo-io-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_round_trips() {
        let dir = scratch_dir("atomic");
        let dst = dir.join("file.bin");
        write_file_atomic(&dst, b"hello", "w", "s", "r", &None).unwrap();
        assert_eq!(std::fs::read(&dst).unwrap(), b"hello");
        // Overwrite is atomic too.
        write_file_atomic(&dst, b"goodbye", "w", "s", "r", &None).unwrap();
        assert_eq!(std::fs::read(&dst).unwrap(), b"goodbye");
        assert!(!temp_path(&dst).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_write_fault_leaves_a_torn_temp_file_only() {
        let dir = scratch_dir("short");
        let dst = dir.join("file.bin");
        let plan = Arc::new(FaultPlan::new());
        plan.inject(points::SEGMENT_WRITE, FaultAction::ShortWrite(3));
        let faults: Faults = Some(plan.clone());
        let err = write_file_atomic(
            &dst,
            b"hello world",
            points::SEGMENT_WRITE,
            points::SEGMENT_SYNC,
            points::SEGMENT_RENAME,
            &faults,
        )
        .unwrap_err();
        assert!(matches!(err, StorageError::Io { .. }), "{err:?}");
        // The destination never appeared; only the torn temp file exists.
        assert!(!dst.exists());
        assert_eq!(std::fs::read(temp_path(&dst)).unwrap(), b"hel");
        assert_eq!(plan.triggered(), vec![points::SEGMENT_WRITE.to_string()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rename_fault_fails_cleanly() {
        let dir = scratch_dir("rename");
        let dst = dir.join("file.bin");
        let plan = Arc::new(FaultPlan::new());
        plan.inject(points::MANIFEST_RENAME, FaultAction::CrashAfter(0));
        let faults: Faults = Some(plan);
        let err = write_file_atomic(
            &dst,
            b"data",
            points::MANIFEST_WRITE,
            points::MANIFEST_SYNC,
            points::MANIFEST_RENAME,
            &faults,
        )
        .unwrap_err();
        assert!(matches!(err, StorageError::InjectedCrash { .. }));
        assert!(!dst.exists());
        assert!(temp_path(&dst).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
