//! The manifest: the store's single source of truth for what is durable.
//!
//! One file (`MANIFEST`) lists every collection (name + full configuration),
//! every sealed segment file with its id/row-count/zone range, the active
//! WAL id, and the id counters. It is always replaced atomically (temp +
//! fsync + rename), so every commit of new durable state — a sealed
//! segment, a compaction, a WAL rotation — is a single manifest swap:
//! readers of the previous or the next manifest both see a consistent
//! store, never a mix. Files on disk that the manifest does not reference
//! are garbage from interrupted operations and are deleted at open.
//!
//! ## File layout
//!
//! ```text
//! magic "LMAN" | version u32 | payload_len u32 | payload_crc u32 | payload
//! payload: next_wal_id u64 | active_wal u64 | collection_count u32
//!   per collection: name string
//!     | dim u32 | index_kind u8 | normalize u8 | quantization u8
//!     | segment_capacity u64 | next_segment_id u64 | wal_watermark u64
//!     | segment_count u32
//!     | per segment: id u64 | file string | rows u64 | min_id u64 | max_id u64
//! ```

use super::codec::{ByteReader, ByteWriter, CodecError};
use super::crc::crc32;
use super::fault::points;
use super::io::{self, Faults};
use super::StorageError;
use crate::collection::CollectionConfig;
use lovo_index::{IndexKind, QuantizationOptions};
use std::path::Path;

pub(crate) const MANIFEST_MAGIC: [u8; 4] = *b"LMAN";
pub(crate) const MANIFEST_VERSION: u32 = 1;
/// The manifest's file name under the store root.
pub(crate) const MANIFEST_FILE: &str = "MANIFEST";

/// One sealed segment the manifest references.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestSegment {
    /// Segment id (unique within its collection).
    pub id: u64,
    /// File name under the store's `segments/` directory.
    pub file: String,
    /// Row count (used for loss accounting when the file is quarantined).
    pub rows: u64,
    /// Zone map lower bound.
    pub min_id: u64,
    /// Zone map upper bound.
    pub max_id: u64,
}

/// One collection's durable state.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestCollection {
    /// Collection name.
    pub name: String,
    /// Full configuration, round-tripped so open reconstructs the collection
    /// without out-of-band knowledge.
    pub config: CollectionConfig,
    /// Next segment id the collection will allocate.
    pub next_segment_id: u64,
    /// Number of records already in the active WAL when this collection was
    /// (re)created. Replay skips earlier records targeting it — they belong
    /// to a replaced incarnation whose rows must not resurrect. Reset to 0
    /// when the WAL rotates.
    pub wal_watermark: u64,
    /// Sealed segments in search order.
    pub segments: Vec<ManifestSegment>,
}

/// The decoded manifest.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Manifest {
    /// Next WAL id to allocate at rotation.
    pub next_wal_id: u64,
    /// Id of the WAL file holding the not-yet-sealed tail.
    pub active_wal: u64,
    /// Every collection in the store.
    pub collections: Vec<ManifestCollection>,
}

fn index_kind_code(kind: IndexKind) -> u8 {
    match kind {
        IndexKind::BruteForce => 0,
        IndexKind::IvfPq => 1,
        IndexKind::Hnsw => 2,
    }
}

fn index_kind_from_code(code: u8) -> Option<IndexKind> {
    match code {
        0 => Some(IndexKind::BruteForce),
        1 => Some(IndexKind::IvfPq),
        2 => Some(IndexKind::Hnsw),
        _ => None,
    }
}

fn quantization_bits(q: QuantizationOptions) -> u8 {
    u8::from(q.int8_flat) | (u8::from(q.fastscan_pq) << 1) | (u8::from(q.int8_rescore) << 2)
}

fn quantization_from_bits(bits: u8) -> QuantizationOptions {
    QuantizationOptions {
        int8_flat: bits & 1 != 0,
        fastscan_pq: bits & 2 != 0,
        int8_rescore: bits & 4 != 0,
    }
}

impl Manifest {
    /// The manifest entry for `name`, if present.
    pub fn collection(&self, name: &str) -> Option<&ManifestCollection> {
        self.collections.iter().find(|c| c.name == name)
    }

    /// Mutable access to the entry for `name`.
    pub(crate) fn collection_mut(&mut self, name: &str) -> Option<&mut ManifestCollection> {
        self.collections.iter_mut().find(|c| c.name == name)
    }

    fn encode(&self) -> Vec<u8> {
        let mut p = ByteWriter::new();
        p.u64(self.next_wal_id);
        p.u64(self.active_wal);
        p.u32(self.collections.len() as u32);
        for col in &self.collections {
            p.string(&col.name);
            p.u32(col.config.dim as u32);
            p.u8(index_kind_code(col.config.index_kind));
            p.u8(u8::from(col.config.normalize));
            p.u8(quantization_bits(col.config.quantization));
            p.u64(col.config.segment_capacity as u64);
            p.u64(col.next_segment_id);
            p.u64(col.wal_watermark);
            p.u32(col.segments.len() as u32);
            for seg in &col.segments {
                p.u64(seg.id);
                p.string(&seg.file);
                p.u64(seg.rows);
                p.u64(seg.min_id);
                p.u64(seg.max_id);
            }
        }
        let payload = p.into_bytes();
        let mut w = ByteWriter::new();
        w.bytes(&MANIFEST_MAGIC);
        w.u32(MANIFEST_VERSION);
        w.u32(payload.len() as u32);
        w.u32(crc32(&payload));
        w.bytes(&payload);
        w.into_bytes()
    }

    fn decode(bytes: &[u8], file: &Path) -> Result<Self, StorageError> {
        let corrupt = |detail: String| StorageError::Corrupt {
            file: file.display().to_string(),
            detail,
        };
        let codec = |e: CodecError| StorageError::Corrupt {
            file: file.display().to_string(),
            detail: e.to_string(),
        };
        let mut r = ByteReader::new(bytes);
        if r.bytes(4, "manifest magic").map_err(codec)? != MANIFEST_MAGIC {
            return Err(corrupt("bad manifest magic".to_string()));
        }
        let version = r.u32("manifest version").map_err(codec)?;
        if version != MANIFEST_VERSION {
            return Err(StorageError::UnsupportedVersion {
                file: file.display().to_string(),
                found: version,
                expected: MANIFEST_VERSION,
            });
        }
        let payload_len = r.u32("manifest payload length").map_err(codec)? as usize;
        let payload_crc = r.u32("manifest payload crc").map_err(codec)?;
        let payload = r.bytes(payload_len, "manifest payload").map_err(codec)?;
        if crc32(payload) != payload_crc {
            return Err(corrupt("manifest payload checksum mismatch".to_string()));
        }

        let mut p = ByteReader::new(payload);
        let next_wal_id = p.u64("next wal id").map_err(codec)?;
        let active_wal = p.u64("active wal id").map_err(codec)?;
        let collection_count = p.u32("collection count").map_err(codec)?;
        let mut collections = Vec::with_capacity(collection_count.min(1 << 16) as usize);
        for _ in 0..collection_count {
            let name = p.string("collection name").map_err(codec)?;
            let dim = p.u32("collection dim").map_err(codec)? as usize;
            let kind_code = p.u8("index kind").map_err(codec)?;
            let index_kind = index_kind_from_code(kind_code)
                .ok_or_else(|| corrupt(format!("unknown index kind code {kind_code}")))?;
            let normalize = p.u8("normalize flag").map_err(codec)? != 0;
            let quantization = quantization_from_bits(p.u8("quantization bits").map_err(codec)?);
            let segment_capacity = p.u64("segment capacity").map_err(codec)? as usize;
            let next_segment_id = p.u64("next segment id").map_err(codec)?;
            let wal_watermark = p.u64("wal watermark").map_err(codec)?;
            let segment_count = p.u32("segment count").map_err(codec)?;
            let mut segments = Vec::with_capacity(segment_count.min(1 << 20) as usize);
            for _ in 0..segment_count {
                segments.push(ManifestSegment {
                    id: p.u64("segment id").map_err(codec)?,
                    file: p.string("segment file").map_err(codec)?,
                    rows: p.u64("segment rows").map_err(codec)?,
                    min_id: p.u64("segment min id").map_err(codec)?,
                    max_id: p.u64("segment max id").map_err(codec)?,
                });
            }
            collections.push(ManifestCollection {
                name,
                config: CollectionConfig {
                    dim,
                    index_kind,
                    normalize,
                    segment_capacity,
                    quantization,
                },
                next_segment_id,
                wal_watermark,
                segments,
            });
        }
        if !p.is_exhausted() {
            return Err(corrupt("trailing bytes in manifest payload".to_string()));
        }
        Ok(Self {
            next_wal_id,
            active_wal,
            collections,
        })
    }

    /// Atomically replaces the manifest under `root`. This is THE commit
    /// point of every durable state transition.
    pub(crate) fn write(&self, root: &Path, faults: &Faults) -> Result<(), StorageError> {
        io::write_file_atomic(
            &root.join(MANIFEST_FILE),
            &self.encode(),
            points::MANIFEST_WRITE,
            points::MANIFEST_SYNC,
            points::MANIFEST_RENAME,
            faults,
        )
    }

    /// Reads and verifies the manifest under `root`.
    pub(crate) fn read(root: &Path) -> Result<Self, StorageError> {
        let path = root.join(MANIFEST_FILE);
        let bytes = std::fs::read(&path)
            .map_err(|e| io::io_err(format!("read of {}", path.display()), e))?;
        Self::decode(&bytes, &path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            next_wal_id: 5,
            active_wal: 4,
            collections: vec![ManifestCollection {
                name: "lovo_patches".to_string(),
                config: CollectionConfig::new(64)
                    .with_segment_capacity(512)
                    .with_index_kind(IndexKind::Hnsw)
                    .with_quantization(QuantizationOptions {
                        int8_flat: true,
                        fastscan_pq: false,
                        int8_rescore: true,
                    }),
                next_segment_id: 3,
                wal_watermark: 2,
                segments: vec![
                    ManifestSegment {
                        id: 0,
                        file: "seg-lovo_patches-000000.lseg".to_string(),
                        rows: 512,
                        min_id: 0,
                        max_id: 511,
                    },
                    ManifestSegment {
                        id: 1,
                        file: "seg-lovo_patches-000001.lseg".to_string(),
                        rows: 100,
                        min_id: 512,
                        max_id: 611,
                    },
                ],
            }],
        }
    }

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("lovo-man-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_read_round_trip() {
        let dir = scratch_dir("roundtrip");
        let manifest = sample();
        manifest.write(&dir, &None).unwrap();
        assert_eq!(Manifest::read(&dir).unwrap(), manifest);
        // Rewriting (the swap) replaces atomically.
        let mut next = manifest.clone();
        next.active_wal = 9;
        next.write(&dir, &None).unwrap();
        assert_eq!(Manifest::read(&dir).unwrap().active_wal, 9);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_config_field_round_trips() {
        let manifest = sample();
        let col = &Manifest::decode(&manifest.encode(), Path::new("m"))
            .unwrap()
            .collections[0];
        assert_eq!(col.config, manifest.collections[0].config);
        assert_eq!(col.next_segment_id, 3);
        assert_eq!(col.segments, manifest.collections[0].segments);
    }

    #[test]
    fn corruption_is_detected() {
        let clean = sample().encode();
        for pos in [0usize, 6, 14, 40, clean.len() - 1] {
            let mut bad = clean.clone();
            bad[pos] ^= 0x08;
            assert!(
                Manifest::decode(&bad, Path::new("m")).is_err(),
                "flip at {pos} undetected"
            );
        }
        assert!(Manifest::decode(&clean[..clean.len() - 4], Path::new("m")).is_err());
    }

    #[test]
    fn missing_manifest_is_io_error() {
        let dir = scratch_dir("missing");
        assert!(matches!(Manifest::read(&dir), Err(StorageError::Io { .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
