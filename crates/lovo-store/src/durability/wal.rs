//! Write-ahead log for the growing append buffer.
//!
//! One WAL file protects every collection's unsealed rows. Each
//! [`WalRecord`] is one ingest batch (the engine batches per key frame) and
//! is the unit of atomicity: a batch is acknowledged only after its record
//! is fully written and — under [`FsyncPolicy::Always`] — fsynced. Replay
//! on open applies complete records in order, and the first torn or
//! corrupt record truncates the log there: everything before it was
//! acknowledged (or at least fully committed), everything at and after it
//! never was.
//!
//! ## File layout
//!
//! ```text
//! header:  magic "LWAL" | version u32 | wal_id u64 | header_crc u32
//! record:  payload_len u32 | payload_crc u32 | payload bytes
//! payload: collection string
//!          | patch_count u32 | per patch: PatchRecord | vector f32-slice
//!          | aux_count u32   | per aux:   frame_key u64 | blob
//! ```
//!
//! All integers little-endian; `payload_crc` is CRC32 over the payload
//! bytes, so any bit flip — not just truncation — invalidates the record.

use super::codec::{decode_patch_record, encode_patch_record, ByteReader, ByteWriter};
use super::crc::crc32;
use super::fault::points;
use super::io::{self, Faults};
use super::{FsyncPolicy, StorageError};
use crate::metadata::PatchRecord;
use std::fs::{File, OpenOptions};
use std::io::{BufReader, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

pub(crate) const WAL_MAGIC: [u8; 4] = *b"LWAL";
pub(crate) const WAL_VERSION: u32 = 1;
const HEADER_LEN: u64 = 4 + 4 + 8 + 4;
/// Upper bound on a single record's payload; a length prefix beyond this is
/// treated as corruption rather than attempted as an allocation.
const MAX_RECORD_LEN: u32 = 1 << 30;

/// One logged ingest batch: the collection it targets, its rows (vector +
/// metadata, exactly as passed to `insert_patches`), and any auxiliary
/// blobs riding along (the engine attaches serialized key frames here so
/// they survive a crash alongside the rows they describe).
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Target collection name.
    pub collection: String,
    /// The batch rows: `(vector, metadata record)`, in insertion order.
    /// Vectors are logged pre-normalization; replay routes them through the
    /// same insert path as the original write, so the stored rows come out
    /// bit-identical.
    pub patches: Vec<(Vec<f32>, PatchRecord)>,
    /// Auxiliary blobs keyed by frame key (`video << 32 | frame`).
    pub aux: Vec<(u64, Vec<u8>)>,
}

impl WalRecord {
    fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.string(&self.collection);
        w.u32(self.patches.len() as u32);
        for (vector, record) in &self.patches {
            encode_patch_record(&mut w, record);
            w.f32_slice(vector);
        }
        w.u32(self.aux.len() as u32);
        for (frame_key, blob) in &self.aux {
            w.u64(*frame_key);
            w.blob(blob);
        }
        w.into_bytes()
    }

    fn decode(payload: &[u8]) -> Result<Self, StorageError> {
        let corrupt = |what: &str| StorageError::Corrupt {
            file: "wal record".to_string(),
            detail: what.to_string(),
        };
        let mut r = ByteReader::new(payload);
        let collection = r
            .string("wal collection")
            .map_err(|e| corrupt(&e.to_string()))?;
        let patch_count = r
            .u32("wal patch count")
            .map_err(|e| corrupt(&e.to_string()))?;
        let mut patches = Vec::with_capacity(patch_count.min(1 << 20) as usize);
        for _ in 0..patch_count {
            let record = decode_patch_record(&mut r).map_err(|e| corrupt(&e.to_string()))?;
            let vector = r
                .f32_slice("wal vector")
                .map_err(|e| corrupt(&e.to_string()))?;
            patches.push((vector, record));
        }
        let aux_count = r
            .u32("wal aux count")
            .map_err(|e| corrupt(&e.to_string()))?;
        let mut aux = Vec::with_capacity(aux_count.min(1 << 16) as usize);
        for _ in 0..aux_count {
            let frame_key = r.u64("wal aux key").map_err(|e| corrupt(&e.to_string()))?;
            let blob = r
                .blob("wal aux blob")
                .map_err(|e| corrupt(&e.to_string()))?;
            aux.push((frame_key, blob));
        }
        if !r.is_exhausted() {
            return Err(corrupt("trailing bytes after wal record payload"));
        }
        Ok(Self {
            collection,
            patches,
            aux,
        })
    }
}

/// What replay found in a WAL file.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WalReplay {
    /// Complete, checksum-valid records applied.
    pub records: usize,
    /// Bytes cut off the tail (0 when the log ended cleanly). A non-zero
    /// value means the process died mid-append: the torn record was never
    /// acknowledged, so dropping it loses nothing that was promised.
    pub truncated_bytes: u64,
}

/// An open write-ahead log positioned for appending. (The log's id lives in
/// its file name and header; the manifest's `active_wal` selects it.)
pub(crate) struct Wal {
    path: PathBuf,
    file: File,
    /// Committed length: header plus every complete record.
    len: u64,
    records: u64,
}

impl Wal {
    /// File name for WAL `id` under the store root.
    pub(crate) fn file_name(id: u64) -> String {
        format!("wal-{id:06}.log")
    }

    /// Creates a fresh WAL: writes and fsyncs the header.
    pub(crate) fn create(dir: &Path, id: u64, faults: &Faults) -> Result<Self, StorageError> {
        let path = dir.join(Self::file_name(id));
        let mut header = ByteWriter::new();
        header.bytes(&WAL_MAGIC);
        header.u32(WAL_VERSION);
        header.u64(id);
        let body = header.into_bytes();
        let crc = crc32(&body);
        let mut full = body;
        full.extend_from_slice(&crc.to_le_bytes());

        let mut file = File::create(&path)
            .map_err(|e| io::io_err(format!("create of {}", path.display()), e))?;
        io::write_all(&mut file, &full, &path, points::WAL_CREATE, faults)?;
        io::sync_file(&file, &path, points::WAL_CREATE, faults)?;
        io::sync_parent_dir(&path)?;
        Ok(Self {
            path,
            file,
            len: HEADER_LEN,
            records: 0,
        })
    }

    /// Opens an existing WAL, replays its complete records through
    /// `apply`, truncates any torn/corrupt tail, and returns the log
    /// positioned for appending after the last good record.
    pub(crate) fn open_replay(
        dir: &Path,
        id: u64,
        faults: &Faults,
        mut apply: impl FnMut(WalRecord),
    ) -> Result<(Self, WalReplay), StorageError> {
        let path = dir.join(Self::file_name(id));
        let file =
            File::open(&path).map_err(|e| io::io_err(format!("open of {}", path.display()), e))?;
        let file_len = file
            .metadata()
            .map_err(|e| io::io_err(format!("stat of {}", path.display()), e))?
            .len();
        let mut reader = BufReader::new(file);

        // Header: magic, version, id, CRC. A bad header means the whole log
        // is untrustworthy — unlike a torn tail this is hard corruption.
        let mut header = [0u8; HEADER_LEN as usize];
        reader
            .read_exact(&mut header)
            .map_err(|_| StorageError::Corrupt {
                file: path.display().to_string(),
                detail: "wal header truncated".to_string(),
            })?;
        let corrupt = |detail: &str| StorageError::Corrupt {
            file: path.display().to_string(),
            detail: detail.to_string(),
        };
        if header[..4] != WAL_MAGIC {
            return Err(corrupt("bad wal magic"));
        }
        let mut r = ByteReader::new(&header[4..]);
        let version = r.u32("wal version").map_err(|e| corrupt(&e.to_string()))?;
        if version != WAL_VERSION {
            return Err(StorageError::UnsupportedVersion {
                file: path.display().to_string(),
                found: version,
                expected: WAL_VERSION,
            });
        }
        let stored_id = r.u64("wal id").map_err(|e| corrupt(&e.to_string()))?;
        let stored_crc = r
            .u32("wal header crc")
            .map_err(|e| corrupt(&e.to_string()))?;
        if crc32(&header[..16]) != stored_crc || stored_id != id {
            return Err(corrupt("wal header checksum or id mismatch"));
        }

        // Records until EOF or the first torn/corrupt one.
        let mut replay = WalReplay::default();
        let mut good_len = HEADER_LEN;
        loop {
            let mut prefix = [0u8; 8];
            match read_exact_or_eof(&mut reader, &mut prefix) {
                ReadOutcome::Full => {}
                ReadOutcome::Eof => break,
                ReadOutcome::Partial | ReadOutcome::Error => {
                    replay.truncated_bytes = file_len - good_len;
                    break;
                }
            }
            let payload_len = u32::from_le_bytes([prefix[0], prefix[1], prefix[2], prefix[3]]);
            let payload_crc = u32::from_le_bytes([prefix[4], prefix[5], prefix[6], prefix[7]]);
            if payload_len > MAX_RECORD_LEN {
                replay.truncated_bytes = file_len - good_len;
                break;
            }
            let mut payload = vec![0u8; payload_len as usize];
            match read_exact_or_eof(&mut reader, &mut payload) {
                ReadOutcome::Full => {}
                _ => {
                    replay.truncated_bytes = file_len - good_len;
                    break;
                }
            }
            if crc32(&payload) != payload_crc {
                replay.truncated_bytes = file_len - good_len;
                break;
            }
            // A record whose framing and checksum pass but whose payload does
            // not decode is hard corruption, not a torn tail: the bytes were
            // fully committed, so something rewrote them.
            let record = WalRecord::decode(&payload)?;
            apply(record);
            replay.records += 1;
            good_len += 8 + u64::from(payload_len);
        }

        // Physically truncate the torn tail so subsequent appends start at
        // the last good byte instead of interleaving with garbage.
        let mut file = OpenOptions::new()
            .write(true)
            .open(&path)
            .map_err(|e| io::io_err(format!("reopen of {}", path.display()), e))?;
        if replay.truncated_bytes > 0 {
            file.set_len(good_len)
                .map_err(|e| io::io_err(format!("truncate of {}", path.display()), e))?;
            io::sync_file(&file, &path, points::WAL_SYNC, faults)?;
        }
        file.seek(SeekFrom::Start(good_len))
            .map_err(|e| io::io_err(format!("seek in {}", path.display()), e))?;
        Ok((
            Self {
                path,
                file,
                len: good_len,
                records: replay.records as u64,
            },
            replay,
        ))
    }

    /// Complete records currently in the log.
    pub(crate) fn record_count(&self) -> u64 {
        self.records
    }

    /// Committed length in bytes (header + complete records).
    pub(crate) fn len(&self) -> u64 {
        self.len
    }

    /// Path of the backing file.
    pub(crate) fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record. Under [`FsyncPolicy::Always`] the record is
    /// fsynced before this returns — the acknowledgement point. On any
    /// error the in-memory committed length is NOT advanced, so a torn
    /// append is invisible to later appends in the same process and
    /// truncated by replay in the next one.
    pub(crate) fn append(
        &mut self,
        record: &WalRecord,
        policy: FsyncPolicy,
        faults: &Faults,
    ) -> Result<(), StorageError> {
        let payload = record.encode();
        let mut framed = Vec::with_capacity(payload.len() + 8);
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&crc32(&payload).to_le_bytes());
        framed.extend_from_slice(&payload);
        let result = io::write_all(
            &mut self.file,
            &framed,
            &self.path,
            points::WAL_APPEND,
            faults,
        )
        .and_then(|()| {
            if matches!(policy, FsyncPolicy::Always) {
                io::sync_file(&self.file, &self.path, points::WAL_SYNC, faults)
            } else {
                Ok(())
            }
        });
        if let Err(e) = result {
            // Roll the file back to the last committed record so a retried
            // append in this process does not land after torn bytes (a crash
            // instead leaves the tail for replay to truncate).
            let _ = self.file.set_len(self.len);
            let _ = self.file.seek(SeekFrom::Start(self.len));
            return Err(e);
        }
        self.len += framed.len() as u64;
        self.records += 1;
        Ok(())
    }
}

enum ReadOutcome {
    Full,
    Eof,
    Partial,
    Error,
}

/// Reads exactly `buf.len()` bytes, distinguishing clean EOF (no bytes) from
/// a partial tail (some bytes, then EOF) — the torn-record signal.
fn read_exact_or_eof(reader: &mut impl Read, buf: &mut [u8]) -> ReadOutcome {
    let mut filled = 0;
    while filled < buf.len() {
        let Some(slot) = buf.get_mut(filled..) else {
            return ReadOutcome::Error;
        };
        match reader.read(slot) {
            Ok(0) => {
                return if filled == 0 {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Partial
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return ReadOutcome::Error,
        }
    }
    ReadOutcome::Full
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lovo-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn record(collection: &str, base: u64, rows: usize) -> WalRecord {
        WalRecord {
            collection: collection.to_string(),
            patches: (0..rows)
                .map(|i| {
                    (
                        vec![base as f32 + i as f32, 0.5, -1.25],
                        PatchRecord {
                            patch_id: base + i as u64,
                            video_id: 1,
                            frame_index: i as u32,
                            patch_index: 0,
                            bbox: (0.0, 0.0, 8.0, 8.0),
                            timestamp: i as f64 / 30.0,
                            class_code: Some(2),
                        },
                    )
                })
                .collect(),
            aux: vec![(base, vec![1, 2, 3])],
        }
    }

    #[test]
    fn append_replay_round_trip() {
        let dir = scratch_dir("roundtrip");
        let mut wal = Wal::create(&dir, 0, &None).unwrap();
        let records = [record("a", 0, 3), record("b", 100, 1)];
        for r in &records {
            wal.append(r, FsyncPolicy::Always, &None).unwrap();
        }
        assert_eq!(wal.record_count(), 2);
        drop(wal);
        let mut seen = Vec::new();
        let (wal, replay) = Wal::open_replay(&dir, 0, &None, |r| seen.push(r)).unwrap();
        assert_eq!(replay.records, 2);
        assert_eq!(replay.truncated_bytes, 0);
        assert_eq!(seen, records);
        assert_eq!(wal.record_count(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let dir = scratch_dir("torn");
        let mut wal = Wal::create(&dir, 3, &None).unwrap();
        wal.append(&record("a", 0, 2), FsyncPolicy::Always, &None)
            .unwrap();
        let good_len = wal.len();
        wal.append(&record("a", 50, 2), FsyncPolicy::Always, &None)
            .unwrap();
        let path = wal.path().to_path_buf();
        drop(wal);
        // Tear the second record: cut it 5 bytes short.
        let full = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 5).unwrap();
        drop(f);

        let mut seen = Vec::new();
        let (mut wal, replay) = Wal::open_replay(&dir, 3, &None, |r| seen.push(r)).unwrap();
        assert_eq!(replay.records, 1);
        assert_eq!(replay.truncated_bytes, full - 5 - good_len);
        assert_eq!(seen.len(), 1);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good_len);
        // The log still accepts appends after truncation.
        wal.append(&record("a", 90, 1), FsyncPolicy::Always, &None)
            .unwrap();
        drop(wal);
        let mut seen = Vec::new();
        let (_, replay) = Wal::open_replay(&dir, 3, &None, |r| seen.push(r)).unwrap();
        assert_eq!(replay.records, 2);
        assert_eq!(seen[1].patches[0].1.patch_id, 90);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_in_record_truncates_from_there() {
        let dir = scratch_dir("flip");
        let mut wal = Wal::create(&dir, 0, &None).unwrap();
        wal.append(&record("a", 0, 2), FsyncPolicy::Always, &None)
            .unwrap();
        let first_end = wal.len();
        wal.append(&record("a", 10, 2), FsyncPolicy::Always, &None)
            .unwrap();
        wal.append(&record("a", 20, 2), FsyncPolicy::Always, &None)
            .unwrap();
        let path = wal.path().to_path_buf();
        drop(wal);
        // Flip one payload byte of the second record.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[first_end as usize + 12] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let mut seen = Vec::new();
        let (_, replay) = Wal::open_replay(&dir, 0, &None, |r| seen.push(r)).unwrap();
        // Record 1 survives; records 2 AND 3 are dropped — replay never
        // resynchronizes past a corrupt record.
        assert_eq!(replay.records, 1);
        assert!(replay.truncated_bytes > 0);
        assert_eq!(seen[0].patches[0].1.patch_id, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_header_is_a_hard_error() {
        let dir = scratch_dir("header");
        let wal = Wal::create(&dir, 0, &None).unwrap();
        let path = wal.path().to_path_buf();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[1] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Wal::open_replay(&dir, 0, &None, |_| {}),
            Err(StorageError::Corrupt { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_wal_is_an_io_error() {
        let dir = scratch_dir("missing");
        assert!(matches!(
            Wal::open_replay(&dir, 9, &None, |_| {}),
            Err(StorageError::Io { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
