//! Little-endian byte codec for the on-disk formats.
//!
//! Every durable structure (WAL records, segment files, the manifest) is
//! hand-serialized through [`ByteWriter`] / [`ByteReader`]: fixed-width
//! little-endian integers and floats, length-prefixed strings and blobs.
//! There is deliberately no reflection or derive layer — the wire layout IS
//! the format specification, documented next to each `encode_*`/`decode_*`
//! pair, and a reader that runs off the end of its buffer returns a typed
//! [`CodecError`] instead of panicking (recovery feeds these readers
//! arbitrarily torn and bit-flipped bytes).

use crate::metadata::PatchRecord;

/// Decoding failure: the buffer ended early or held an out-of-range value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// Byte offset the reader was at when decoding failed.
    pub offset: usize,
    /// What the decoder was trying to read.
    pub what: &'static str,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed {} at byte offset {}", self.what, self.offset)
    }
}

impl std::error::Error for CodecError {}

/// Result alias for decoding.
pub type CodecResult<T> = std::result::Result<T, CodecError>;

/// Append-only little-endian encoder.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes raw bytes verbatim.
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian IEEE-754 `f32` (bit-exact round trip).
    pub fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian IEEE-754 `f64` (bit-exact round trip).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32`-length-prefixed UTF-8 string.
    pub fn string(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.bytes(s.as_bytes());
    }

    /// Writes a `u32`-length-prefixed blob.
    pub fn blob(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.bytes(b);
    }

    /// Writes a `u32`-count-prefixed slice of f32s.
    pub fn f32_slice(&mut self, values: &[f32]) {
        self.u32(values.len() as u32);
        for &v in values {
            self.f32(v);
        }
    }
}

/// Bounds-checked little-endian decoder over a borrowed buffer.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// True when the whole buffer has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, what: &'static str) -> CodecResult<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or(CodecError {
            offset: self.pos,
            what,
        })?;
        let slice = self.buf.get(self.pos..end).ok_or(CodecError {
            offset: self.pos,
            what,
        })?;
        self.pos = end;
        Ok(slice)
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize, what: &'static str) -> CodecResult<&'a [u8]> {
        self.take(n, what)
    }

    /// Reads one byte.
    pub fn u8(&mut self, what: &'static str) -> CodecResult<u8> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, what: &'static str) -> CodecResult<u32> {
        let b = self.take(4, what)?;
        let mut arr = [0u8; 4];
        arr.copy_from_slice(b);
        Ok(u32::from_le_bytes(arr))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, what: &'static str) -> CodecResult<u64> {
        let b = self.take(8, what)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(u64::from_le_bytes(arr))
    }

    /// Reads a little-endian `f32`.
    pub fn f32(&mut self, what: &'static str) -> CodecResult<f32> {
        let b = self.take(4, what)?;
        let mut arr = [0u8; 4];
        arr.copy_from_slice(b);
        Ok(f32::from_le_bytes(arr))
    }

    /// Reads a little-endian `f64`.
    pub fn f64(&mut self, what: &'static str) -> CodecResult<f64> {
        let b = self.take(8, what)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(f64::from_le_bytes(arr))
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn string(&mut self, what: &'static str) -> CodecResult<String> {
        let len = self.u32(what)? as usize;
        let offset = self.pos;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError { offset, what })
    }

    /// Reads a `u32`-length-prefixed blob.
    pub fn blob(&mut self, what: &'static str) -> CodecResult<Vec<u8>> {
        let len = self.u32(what)? as usize;
        Ok(self.take(len, what)?.to_vec())
    }

    /// Reads a `u32`-count-prefixed slice of f32s.
    pub fn f32_slice(&mut self, what: &'static str) -> CodecResult<Vec<f32>> {
        let count = self.u32(what)? as usize;
        // Cheap sanity bound before allocating: each element is 4 bytes.
        if count.saturating_mul(4) > self.remaining() {
            return Err(CodecError {
                offset: self.pos,
                what,
            });
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.f32(what)?);
        }
        Ok(out)
    }
}

/// Encodes one [`PatchRecord`] — the row format shared by WAL records and
/// segment metadata sections.
///
/// Layout: `patch_id u64 | video u32 | frame u32 | patch u32 | bbox 4×f32 |
/// timestamp f64 | class flag u8 (+ code u8 when 1)`.
pub fn encode_patch_record(w: &mut ByteWriter, record: &PatchRecord) {
    w.u64(record.patch_id);
    w.u32(record.video_id);
    w.u32(record.frame_index);
    w.u32(record.patch_index);
    w.f32(record.bbox.0);
    w.f32(record.bbox.1);
    w.f32(record.bbox.2);
    w.f32(record.bbox.3);
    w.f64(record.timestamp);
    match record.class_code {
        Some(code) => {
            w.u8(1);
            w.u8(code);
        }
        None => w.u8(0),
    }
}

/// Decodes one [`PatchRecord`] written by [`encode_patch_record`].
pub fn decode_patch_record(r: &mut ByteReader<'_>) -> CodecResult<PatchRecord> {
    let patch_id = r.u64("patch record id")?;
    let video_id = r.u32("patch record video")?;
    let frame_index = r.u32("patch record frame")?;
    let patch_index = r.u32("patch record patch index")?;
    let bbox = (
        r.f32("patch record bbox")?,
        r.f32("patch record bbox")?,
        r.f32("patch record bbox")?,
        r.f32("patch record bbox")?,
    );
    let timestamp = r.f64("patch record timestamp")?;
    let class_code = match r.u8("patch record class flag")? {
        0 => None,
        1 => Some(r.u8("patch record class code")?),
        _ => {
            return Err(CodecError {
                offset: r.position().saturating_sub(1),
                what: "patch record class flag",
            })
        }
    };
    Ok(PatchRecord {
        patch_id,
        video_id,
        frame_index,
        patch_index,
        bbox,
        timestamp,
        class_code,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        let mut w = ByteWriter::new();
        w.u8(0xAB);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 7);
        w.f32(-0.0);
        w.f64(f64::MIN_POSITIVE);
        w.string("héllo");
        w.blob(&[1, 2, 3]);
        w.f32_slice(&[1.5, -2.25]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8("a").unwrap(), 0xAB);
        assert_eq!(r.u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64("c").unwrap(), u64::MAX - 7);
        assert_eq!(r.f32("d").unwrap().to_bits(), (-0.0f32).to_bits());
        assert_eq!(r.f64("e").unwrap(), f64::MIN_POSITIVE);
        assert_eq!(r.string("f").unwrap(), "héllo");
        assert_eq!(r.blob("g").unwrap(), vec![1, 2, 3]);
        assert_eq!(r.f32_slice("h").unwrap(), vec![1.5, -2.25]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncated_reads_error_instead_of_panicking() {
        let mut w = ByteWriter::new();
        w.u64(42);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..5]);
        let err = r.u64("value").unwrap_err();
        assert_eq!(err.what, "value");
        // An oversized length prefix cannot allocate past the buffer.
        let mut w = ByteWriter::new();
        w.u32(u32::MAX);
        let bytes = w.into_bytes();
        assert!(ByteReader::new(&bytes).blob("blob").is_err());
        assert!(ByteReader::new(&bytes).f32_slice("vec").is_err());
        assert!(ByteReader::new(&bytes).string("str").is_err());
    }

    #[test]
    fn patch_record_round_trips_both_class_variants() {
        for class_code in [None, Some(7)] {
            let record = PatchRecord {
                patch_id: 0xABCD_EF01_2345,
                video_id: 9,
                frame_index: 1234,
                patch_index: 47,
                bbox: (1.5, -2.0, 320.25, 200.75),
                timestamp: 41.125,
                class_code,
            };
            let mut w = ByteWriter::new();
            encode_patch_record(&mut w, &record);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            assert_eq!(decode_patch_record(&mut r).unwrap(), record);
            assert!(r.is_exhausted());
        }
    }

    #[test]
    fn bad_class_flag_is_a_codec_error() {
        let record = PatchRecord {
            patch_id: 1,
            video_id: 0,
            frame_index: 0,
            patch_index: 0,
            bbox: (0.0, 0.0, 0.0, 0.0),
            timestamp: 0.0,
            class_code: None,
        };
        let mut w = ByteWriter::new();
        encode_patch_record(&mut w, &record);
        let mut bytes = w.into_bytes();
        let last = bytes.len() - 1;
        bytes[last] = 9; // invalid flag
        assert!(decode_patch_record(&mut ByteReader::new(&bytes)).is_err());
    }
}
