//! Relational metadata store.
//!
//! The vector database stores only embeddings and patch ids; everything
//! needed to turn a hit back into a user-visible answer — which video, which
//! key frame, which patch of the frame, which bounding box — lives in this
//! relational side table, keyed by the shared patch id (§V-B). The store also
//! maintains a per-frame secondary index so the rerank stage can fetch all
//! patches of a candidate frame in one call.

use crate::{Result, StoreError};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap, HashSet};

/// One row of the patch metadata table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatchRecord {
    /// Unique patch id (the join key with the vector collection).
    pub patch_id: u64,
    /// Video the patch belongs to.
    pub video_id: u32,
    /// Key-frame index within the video.
    pub frame_index: u32,
    /// Patch position in the frame's patch grid (row-major).
    pub patch_index: u32,
    /// Predicted bounding box `(x, y, w, h)` associated with the patch.
    pub bbox: (f32, f32, f32, f32),
    /// Timestamp of the key frame in seconds.
    pub timestamp: f64,
    /// Compact detector label of the patch's dominant object (`None` for
    /// background patches). The storage layer treats this as an opaque code —
    /// the engine defines the label space — but class predicates filter on it.
    pub class_code: Option<u8>,
}

impl PatchRecord {
    /// Packed `(video, frame)` key used by the per-frame secondary index.
    pub fn frame_key(&self) -> u64 {
        (u64::from(self.video_id) << 32) | u64::from(self.frame_index)
    }
}

/// A conjunctive metadata predicate over patch rows — the storage-level form
/// the query planner compiles its [`QueryPredicate`] AST into. Every
/// constraint is optional; `None` means unconstrained. The database joins
/// this against the metadata table (when the time or class constraints
/// require it) and pushes the result down to the index scans as an
/// [`lovo_index::IdFilter`] plus zone-map ranges.
///
/// [`QueryPredicate`]: https://docs.rs/lovo-video (the engine-level AST)
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PatchPredicate {
    /// Restrict to patches of these videos.
    pub video_ids: Option<BTreeSet<u32>>,
    /// Restrict to patches whose key-frame timestamp lies in this inclusive
    /// range of seconds.
    pub time_range: Option<(f64, f64)>,
    /// Restrict to patches whose dominant-object class code is one of these.
    pub class_codes: Option<BTreeSet<u8>>,
}

impl PatchPredicate {
    /// True when no constraint is set (the unfiltered fast path).
    pub fn is_unconstrained(&self) -> bool {
        self.video_ids.is_none() && self.time_range.is_none() && self.class_codes.is_none()
    }

    /// True when the predicate needs a metadata join to evaluate (timestamps
    /// and class codes live only in the relational table; video ids are
    /// recoverable from the packed patch id alone).
    pub fn needs_metadata_join(&self) -> bool {
        self.time_range.is_some() || self.class_codes.is_some()
    }

    /// True when the row satisfies every set constraint.
    pub fn matches(&self, record: &PatchRecord) -> bool {
        if let Some(videos) = &self.video_ids {
            if !videos.contains(&record.video_id) {
                return false;
            }
        }
        if let Some((start, end)) = self.time_range {
            if record.timestamp < start || record.timestamp > end {
                return false;
            }
        }
        if let Some(classes) = &self.class_codes {
            match record.class_code {
                Some(code) if classes.contains(&code) => {}
                _ => return false,
            }
        }
        true
    }
}

/// The relational metadata store: a primary table keyed by patch id and a
/// secondary index keyed by frame.
#[derive(Debug, Default, Clone)]
pub struct MetadataStore {
    rows: HashMap<u64, PatchRecord>,
    by_frame: HashMap<u64, Vec<u64>>,
}

impl MetadataStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the store has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Inserts (or replaces) a patch record.
    pub fn insert(&mut self, record: PatchRecord) {
        let frame_key = record.frame_key();
        let patch_id = record.patch_id;
        if let Some(previous) = self.rows.insert(patch_id, record) {
            // Replacement: drop the stale secondary-index entry if the frame changed.
            let old_key = previous.frame_key();
            if old_key != frame_key {
                if let Some(ids) = self.by_frame.get_mut(&old_key) {
                    ids.retain(|&id| id != patch_id);
                }
            } else {
                return; // same frame, secondary index already correct
            }
        }
        self.by_frame.entry(frame_key).or_default().push(patch_id);
    }

    /// Fetches the record for a patch id.
    pub fn get(&self, patch_id: u64) -> Result<&PatchRecord> {
        self.rows
            .get(&patch_id)
            .ok_or(StoreError::MissingMetadata(patch_id))
    }

    /// Fetches the records for a batch of patch ids, preserving order.
    pub fn get_many(&self, patch_ids: &[u64]) -> Result<Vec<&PatchRecord>> {
        patch_ids.iter().map(|&id| self.get(id)).collect()
    }

    /// All patch records belonging to a `(video, frame)` pair.
    pub fn patches_of_frame(&self, video_id: u32, frame_index: u32) -> Vec<&PatchRecord> {
        let key = (u64::from(video_id) << 32) | u64::from(frame_index);
        self.by_frame
            .get(&key)
            .map(|ids| ids.iter().filter_map(|id| self.rows.get(id)).collect())
            .unwrap_or_default()
    }

    /// Number of distinct frames referenced by the store.
    pub fn frame_count(&self) -> usize {
        self.by_frame.len()
    }

    /// Ids of every row satisfying the predicate — the metadata half of
    /// predicate pushdown. One sequential pass over the table; the result
    /// becomes the allow-set the index scans filter on.
    pub fn matching_ids(&self, predicate: &PatchPredicate) -> HashSet<u64> {
        self.rows
            .values()
            .filter(|record| predicate.matches(record))
            .map(|record| record.patch_id)
            .collect()
    }

    /// Distinct video ids referenced by the table. Recovery uses this to
    /// rebuild the engine's ingested-video set from durable state.
    pub fn video_ids(&self) -> BTreeSet<u32> {
        self.rows.values().map(|record| record.video_id).collect()
    }

    /// Approximate memory footprint in bytes (used by the storage ablation).
    pub fn memory_bytes(&self) -> usize {
        self.rows.len() * std::mem::size_of::<PatchRecord>()
            + self.by_frame.len() * std::mem::size_of::<u64>()
            + self
                .by_frame
                .values()
                .map(|v| v.len() * std::mem::size_of::<u64>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(patch_id: u64, video: u32, frame: u32) -> PatchRecord {
        PatchRecord {
            patch_id,
            video_id: video,
            frame_index: frame,
            patch_index: (patch_id % 48) as u32,
            bbox: (10.0, 20.0, 100.0, 50.0),
            timestamp: frame as f64 / 30.0,
            class_code: Some((patch_id % 3) as u8),
        }
    }

    #[test]
    fn insert_and_get_round_trip() {
        let mut store = MetadataStore::new();
        store.insert(record(1, 0, 10));
        assert_eq!(store.len(), 1);
        let r = store.get(1).unwrap();
        assert_eq!(r.video_id, 0);
        assert_eq!(r.frame_index, 10);
        assert!(store.get(2).is_err());
    }

    #[test]
    fn get_many_preserves_order() {
        let mut store = MetadataStore::new();
        for i in 0..5 {
            store.insert(record(i, 0, i as u32));
        }
        let rows = store.get_many(&[3, 1, 4]).unwrap();
        assert_eq!(
            rows.iter().map(|r| r.patch_id).collect::<Vec<_>>(),
            vec![3, 1, 4]
        );
        assert!(store.get_many(&[3, 99]).is_err());
    }

    #[test]
    fn frame_secondary_index_groups_patches() {
        let mut store = MetadataStore::new();
        store.insert(record(1, 0, 5));
        store.insert(record(2, 0, 5));
        store.insert(record(3, 0, 6));
        store.insert(record(4, 1, 5));
        let frame5 = store.patches_of_frame(0, 5);
        assert_eq!(frame5.len(), 2);
        assert!(frame5.iter().all(|r| r.frame_index == 5 && r.video_id == 0));
        assert_eq!(store.patches_of_frame(1, 5).len(), 1);
        assert!(store.patches_of_frame(9, 9).is_empty());
        assert_eq!(store.frame_count(), 3);
    }

    #[test]
    fn replacement_updates_secondary_index() {
        let mut store = MetadataStore::new();
        store.insert(record(7, 0, 1));
        store.insert(record(7, 0, 2)); // same patch id moved to another frame
        assert_eq!(store.len(), 1);
        assert!(store.patches_of_frame(0, 1).is_empty());
        assert_eq!(store.patches_of_frame(0, 2).len(), 1);
    }

    #[test]
    fn duplicate_insert_same_frame_does_not_duplicate_index_entry() {
        let mut store = MetadataStore::new();
        store.insert(record(7, 0, 1));
        store.insert(record(7, 0, 1));
        assert_eq!(store.patches_of_frame(0, 1).len(), 1);
    }

    #[test]
    fn frame_key_packs_video_and_frame() {
        let r = record(1, 3, 9);
        assert_eq!(r.frame_key(), (3u64 << 32) | 9);
    }

    #[test]
    fn predicate_matches_each_constraint() {
        let r = record(10, 2, 30); // timestamp 1.0, class 1
        assert!(PatchPredicate::default().matches(&r));
        assert!(PatchPredicate::default().is_unconstrained());

        let videos = PatchPredicate {
            video_ids: Some([2u32].into_iter().collect()),
            ..Default::default()
        };
        assert!(videos.matches(&r));
        assert!(!videos.needs_metadata_join());
        let wrong_video = PatchPredicate {
            video_ids: Some([3u32].into_iter().collect()),
            ..Default::default()
        };
        assert!(!wrong_video.matches(&r));

        let time = PatchPredicate {
            time_range: Some((0.5, 1.5)),
            ..Default::default()
        };
        assert!(time.matches(&r));
        assert!(time.needs_metadata_join());
        let early = PatchPredicate {
            time_range: Some((0.0, 0.9)),
            ..Default::default()
        };
        assert!(!early.matches(&r));

        let class = PatchPredicate {
            class_codes: Some([1u8].into_iter().collect()),
            ..Default::default()
        };
        assert!(class.matches(&r));
        let other_class = PatchPredicate {
            class_codes: Some([2u8].into_iter().collect()),
            ..Default::default()
        };
        assert!(!other_class.matches(&r));
        // Background rows (no class) never match a class predicate.
        let mut background = record(11, 2, 30);
        background.class_code = None;
        assert!(!class.matches(&background));
    }

    #[test]
    fn matching_ids_joins_the_predicate() {
        let mut store = MetadataStore::new();
        for i in 0..30u64 {
            store.insert(record(i, (i % 3) as u32, i as u32));
        }
        let pred = PatchPredicate {
            video_ids: Some([1u32].into_iter().collect()),
            time_range: Some((0.0, 0.5)), // frames 0..=15
            ..Default::default()
        };
        let ids = store.matching_ids(&pred);
        // Videos ≡ 1 mod 3, frame index ≤ 15: ids 1, 4, 7, 10, 13.
        assert_eq!(ids.len(), 5);
        assert!(ids.contains(&1) && ids.contains(&13));
        assert!(!ids.contains(&16));
    }

    #[test]
    fn memory_estimate_grows() {
        let mut store = MetadataStore::new();
        let before = store.memory_bytes();
        for i in 0..100 {
            store.insert(record(i, 0, i as u32));
        }
        assert!(store.memory_bytes() > before);
    }
}
