//! Storage segments: the unit of incremental growth of a collection.
//!
//! A collection is not one monolithic index but a set of segments, mirroring
//! the segmented storage model of the vector database the paper deploys LOVO
//! in (Milvus): new rows accumulate in a **growing** segment that answers
//! queries by brute-force scan, and once the segment reaches the collection's
//! capacity it **seals** — its rows are frozen and an ANN index is built over
//! them, bounding per-segment build cost no matter how large the collection
//! becomes. Sealed segments are immutable; appending more data never touches
//! them, which is what makes incremental ingest cheap.
//!
//! Segments retain their raw (normalized) rows alongside the built index so
//! that compaction can merge undersized sealed segments into one without
//! re-encoding anything upstream.

use crate::{Result, StoreError};
use lovo_index::{
    create_segment_index, FlatIndex, IndexKind, SearchResult, SearchStats, VectorId, VectorIndex,
};

/// Lifecycle state of a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentState {
    /// Accepting inserts; searched by brute-force scan over the append buffer.
    Growing,
    /// Frozen; searched through its built ANN index.
    Sealed,
}

/// One storage segment: an append buffer of rows plus, once sealed, a built
/// ANN index over them.
pub struct Segment {
    id: u64,
    dim: usize,
    /// Index family used when the segment seals (the growing phase always
    /// scans the buffer).
    target_kind: IndexKind,
    /// The raw rows, kept after sealing for compaction. A flat index doubles
    /// as the append buffer and the growing phase's exact search.
    buffer: FlatIndex,
    /// Present once the segment is sealed.
    index: Option<Box<dyn VectorIndex>>,
}

impl Segment {
    /// Creates an empty growing segment.
    pub fn new(id: u64, dim: usize, target_kind: IndexKind) -> Self {
        Self {
            id,
            dim,
            target_kind,
            buffer: FlatIndex::new(dim),
            index: None,
        }
    }

    /// Segment identifier (unique within its collection).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of rows stored.
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// True when the segment holds no rows.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    /// Current lifecycle state.
    pub fn state(&self) -> SegmentState {
        if self.index.is_some() {
            SegmentState::Sealed
        } else {
            SegmentState::Growing
        }
    }

    /// True once [`Segment::seal`] has run.
    pub fn is_sealed(&self) -> bool {
        self.index.is_some()
    }

    /// Family name of the index serving this segment's searches.
    pub fn family(&self) -> &'static str {
        match &self.index {
            Some(index) => index.family(),
            None => "BF",
        }
    }

    /// Appends a row. Errors once the segment is sealed — sealed segments are
    /// immutable by construction.
    pub fn insert(&mut self, id: VectorId, vector: &[f32]) -> Result<()> {
        if self.is_sealed() {
            return Err(StoreError::InvalidOperation(format!(
                "segment {} is sealed and immutable",
                self.id
            )));
        }
        self.buffer.insert(id, vector)?;
        Ok(())
    }

    /// Seals the segment: builds the ANN index over the buffered rows. The
    /// index family and its parameters are chosen for the segment's actual
    /// row count (tiny segments stay brute-force). Idempotent; on failure the
    /// buffered rows are untouched and still searchable.
    pub fn seal(&mut self) -> Result<()> {
        if self.is_sealed() {
            return Ok(());
        }
        let mut index = create_segment_index(self.target_kind, self.dim, self.len())?;
        for (id, row) in self.buffer.rows() {
            index.insert(id, row)?;
        }
        index.build()?;
        self.index = Some(index);
        Ok(())
    }

    /// Searches the segment: through the built index when sealed, by exact
    /// brute-force scan of the append buffer while growing.
    pub fn search_with_stats(
        &self,
        query: &[f32],
        k: usize,
    ) -> Result<(Vec<SearchResult>, SearchStats)> {
        match &self.index {
            Some(index) => Ok(index.search_with_stats(query, k)?),
            None => Ok(self.buffer.search_with_stats(query, k)?),
        }
    }

    /// Iterator over the raw rows, used by compaction to rebuild a merged
    /// segment without touching the encoder layer.
    pub fn raw_rows(&self) -> impl Iterator<Item = (VectorId, &[f32])> {
        self.buffer.rows()
    }

    /// Approximate memory footprint of the built index payload in bytes.
    pub fn index_bytes(&self) -> usize {
        self.index.as_ref().map_or(0, |index| index.memory_bytes())
    }

    /// Approximate raw-row payload in bytes.
    pub fn raw_bytes(&self) -> usize {
        self.buffer.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(i: usize, dim: usize) -> Vec<f32> {
        let mut v: Vec<f32> = (0..dim)
            .map(|d| ((i * 31 + d * 7) % 97) as f32 / 97.0 - 0.5)
            .collect();
        lovo_index::metric::normalize(&mut v);
        v
    }

    #[test]
    fn growing_segment_scans_without_seal() {
        let mut seg = Segment::new(0, 8, IndexKind::IvfPq);
        for i in 0..20 {
            seg.insert(i as u64, &unit(i, 8)).unwrap();
        }
        assert_eq!(seg.state(), SegmentState::Growing);
        assert_eq!(seg.family(), "BF");
        let (hits, stats) = seg.search_with_stats(&unit(3, 8), 2).unwrap();
        assert_eq!(hits[0].id, 3);
        assert_eq!(stats.vectors_scored, 20);
    }

    #[test]
    fn sealing_freezes_the_segment() {
        let mut seg = Segment::new(1, 8, IndexKind::IvfPq);
        for i in 0..50 {
            seg.insert(i as u64, &unit(i, 8)).unwrap();
        }
        seg.seal().unwrap();
        assert_eq!(seg.state(), SegmentState::Sealed);
        assert!(seg.insert(99, &unit(99, 8)).is_err());
        let (hits, _) = seg.search_with_stats(&unit(10, 8), 1).unwrap();
        assert_eq!(hits[0].id, 10);
        // Sealing again is a no-op.
        seg.seal().unwrap();
        assert_eq!(seg.len(), 50);
    }

    #[test]
    fn tiny_sealed_segment_uses_brute_force_family() {
        let mut seg = Segment::new(2, 8, IndexKind::IvfPq);
        for i in 0..10 {
            seg.insert(i as u64, &unit(i, 8)).unwrap();
        }
        seg.seal().unwrap();
        assert_eq!(seg.family(), "BF");
    }

    #[test]
    fn raw_rows_survive_sealing_for_compaction() {
        let mut seg = Segment::new(3, 4, IndexKind::BruteForce);
        seg.insert(7, &[1.0, 0.0, 0.0, 0.0]).unwrap();
        seg.seal().unwrap();
        let rows: Vec<_> = seg.raw_rows().collect();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, 7);
        assert_eq!(rows[0].1, &[1.0, 0.0, 0.0, 0.0]);
        assert!(seg.raw_bytes() > 0);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut seg = Segment::new(4, 4, IndexKind::BruteForce);
        assert!(seg.insert(0, &[1.0, 2.0]).is_err());
        seg.insert(0, &[1.0, 0.0, 0.0, 0.0]).unwrap();
        assert!(seg.search_with_stats(&[1.0, 0.0], 1).is_err());
    }
}
