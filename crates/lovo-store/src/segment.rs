//! Storage segments: the unit of incremental growth of a collection.
//!
//! A collection is not one monolithic index but a set of segments, mirroring
//! the segmented storage model of the vector database the paper deploys LOVO
//! in (Milvus): new rows accumulate in a **growing** segment that answers
//! queries by brute-force scan, and once the segment reaches the collection's
//! capacity it **seals** — its rows are frozen and an ANN index is built over
//! them, bounding per-segment build cost no matter how large the collection
//! becomes. Sealed segments are immutable; appending more data never touches
//! them, which is what makes incremental ingest cheap.
//!
//! Segments retain their raw (normalized) rows alongside the built index so
//! that compaction can merge undersized sealed segments into one without
//! re-encoding anything upstream.

use crate::{Result, StoreError};
use lovo_index::{
    create_segment_index_from_rows, create_segment_index_with, FlatIndex, IdFilter, IndexKind,
    QuantizationOptions, RowStore, SearchResult, SearchStats, VectorId, VectorIndex,
};

/// Zone map of a segment: the inclusive range of packed patch ids it holds
/// plus its row count, recorded as rows arrive and frozen at seal time.
/// Because ingestion appends videos in order, segments cover contiguous runs
/// of packed ids, so a pushed-down filter that can name its candidate id
/// ranges (e.g. a video-id predicate) prunes whole segments before fan-out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZoneMap {
    /// Smallest stored id.
    pub min_id: VectorId,
    /// Largest stored id.
    pub max_id: VectorId,
    /// Number of rows covered.
    pub rows: usize,
}

impl ZoneMap {
    /// True when the zone could contain an id in the inclusive range.
    #[inline]
    pub fn overlaps(&self, start: VectorId, end: VectorId) -> bool {
        self.min_id <= end && start <= self.max_id
    }
}

/// Lifecycle state of a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentState {
    /// Accepting inserts; searched by brute-force scan over the append buffer.
    Growing,
    /// Frozen; searched through its built ANN index.
    Sealed,
}

/// One storage segment: an append buffer of rows plus, once sealed, a built
/// ANN index over them.
pub struct Segment {
    id: u64,
    dim: usize,
    /// Index family used when the segment seals (the growing phase always
    /// scans the buffer).
    target_kind: IndexKind,
    /// Quantized scan acceleration requested for the sealed index.
    quantization: QuantizationOptions,
    /// The raw rows, kept after sealing for compaction. A flat index doubles
    /// as the append buffer and the growing phase's exact search.
    buffer: FlatIndex,
    /// Present once the segment is sealed.
    index: Option<Box<dyn VectorIndex>>,
    /// Running id range of the stored rows (`None` while empty).
    zone: Option<ZoneMap>,
}

impl Segment {
    /// Creates an empty growing segment.
    pub fn new(id: u64, dim: usize, target_kind: IndexKind) -> Self {
        Self {
            id,
            dim,
            target_kind,
            quantization: QuantizationOptions::none(),
            buffer: FlatIndex::new(dim),
            index: None,
            zone: None,
        }
    }

    /// Builder-style quantization override, consulted when the segment seals.
    pub fn with_quantization(mut self, quantization: QuantizationOptions) -> Self {
        self.quantization = quantization;
        self
    }

    /// Reconstructs a sealed segment directly from recovered parts — the
    /// row store may be a zero-copy view into a mapped segment file, in
    /// which case the retained raw rows (the `buffer`) and the rebuilt
    /// index's rescore arena *share* that mapping (cloning a mapped store
    /// clones an `Arc`, not the payload).
    ///
    /// Equivalent to inserting every `(id, row)` pair in order and sealing:
    /// the index constructors replay the exact insert-then-build sequence,
    /// so the restored segment answers queries bit-identically to one
    /// rebuilt through the insert path.
    pub fn restore_sealed(
        id: u64,
        dim: usize,
        target_kind: IndexKind,
        quantization: QuantizationOptions,
        zone: Option<ZoneMap>,
        ids: Vec<VectorId>,
        rows: RowStore,
    ) -> Result<Self> {
        let buffer = FlatIndex::from_parts(dim, ids.clone(), rows.clone())?;
        let index = create_segment_index_from_rows(target_kind, dim, quantization, ids, rows)?;
        Ok(Self {
            id,
            dim,
            target_kind,
            quantization,
            buffer,
            index: Some(index),
            zone,
        })
    }

    /// True when the retained raw rows are served from a file mapping.
    pub fn is_mapped(&self) -> bool {
        self.buffer.is_mapped()
    }

    /// Segment identifier (unique within its collection).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of rows stored.
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// True when the segment holds no rows.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    /// Current lifecycle state.
    pub fn state(&self) -> SegmentState {
        if self.index.is_some() {
            SegmentState::Sealed
        } else {
            SegmentState::Growing
        }
    }

    /// True once [`Segment::seal`] has run.
    pub fn is_sealed(&self) -> bool {
        self.index.is_some()
    }

    /// Family name of the index serving this segment's searches.
    pub fn family(&self) -> &'static str {
        match &self.index {
            Some(index) => index.family(),
            None => "BF",
        }
    }

    /// Appends a row. Errors once the segment is sealed — sealed segments are
    /// immutable by construction.
    pub fn insert(&mut self, id: VectorId, vector: &[f32]) -> Result<()> {
        if self.is_sealed() {
            return Err(StoreError::InvalidOperation(format!(
                "segment {} is sealed and immutable",
                self.id
            )));
        }
        self.buffer.insert(id, vector)?;
        self.zone = Some(match self.zone {
            None => ZoneMap {
                min_id: id,
                max_id: id,
                rows: 1,
            },
            Some(zone) => ZoneMap {
                min_id: zone.min_id.min(id),
                max_id: zone.max_id.max(id),
                rows: zone.rows + 1,
            },
        });
        Ok(())
    }

    /// The segment's zone map (`None` while the segment is empty).
    pub fn zone_map(&self) -> Option<ZoneMap> {
        self.zone
    }

    /// Seals the segment: builds the ANN index over the buffered rows. The
    /// index family and its parameters are chosen for the segment's actual
    /// row count (tiny segments stay brute-force). Idempotent; on failure the
    /// buffered rows are untouched and still searchable.
    pub fn seal(&mut self) -> Result<()> {
        if self.is_sealed() {
            return Ok(());
        }
        let mut index =
            create_segment_index_with(self.target_kind, self.dim, self.len(), self.quantization)?;
        for (id, row) in self.buffer.rows() {
            index.insert(id, row)?;
        }
        index.build()?;
        self.index = Some(index);
        Ok(())
    }

    /// Searches the segment: through the built index when sealed, by exact
    /// brute-force scan of the append buffer while growing.
    pub fn search_with_stats(
        &self,
        query: &[f32],
        k: usize,
    ) -> Result<(Vec<SearchResult>, SearchStats)> {
        self.search_filtered_with_stats(query, k, None)
    }

    /// Like [`Segment::search_with_stats`], pushing an id filter into the
    /// underlying scan when one is given.
    ///
    /// Graph escape hatch: HNSW's filtered-accept beam loses recall as
    /// selectivity drops (few accepted nodes ever enter the result beam), so
    /// when a sealed graph segment faces an allow-set much smaller than its
    /// row count, the search answers from the retained raw rows instead — an
    /// exact filtered scan whose cost is one id test per row plus one dot
    /// per *matching* row, which at that selectivity is both cheaper and
    /// exact.
    pub fn search_filtered_with_stats(
        &self,
        query: &[f32],
        k: usize,
        filter: Option<&IdFilter>,
    ) -> Result<(Vec<SearchResult>, SearchStats)> {
        let index: &dyn VectorIndex = match &self.index {
            Some(index) => index.as_ref(),
            None => &self.buffer,
        };
        match filter {
            Some(filter) => {
                if index.family() == "HNSW" && selective_allow_set(filter, self.len()) {
                    return Ok(self.buffer.search_filtered_with_stats(query, k, filter)?);
                }
                Ok(index.search_filtered_with_stats(query, k, filter)?)
            }
            None => Ok(index.search_with_stats(query, k)?),
        }
    }

    /// Iterator over the raw rows, used by compaction to rebuild a merged
    /// segment without touching the encoder layer.
    pub fn raw_rows(&self) -> impl Iterator<Item = (VectorId, &[f32])> {
        self.buffer.rows()
    }

    /// Approximate memory footprint of the built index payload in bytes.
    pub fn index_bytes(&self) -> usize {
        self.index.as_ref().map_or(0, |index| index.memory_bytes())
    }

    /// Approximate raw-row payload in bytes.
    pub fn raw_bytes(&self) -> usize {
        self.buffer.memory_bytes()
    }
}

/// True when the filter is an explicit allow-set small enough (under a tenth
/// of the segment) that a graph beam would mostly visit rejected nodes.
/// Predicate filters have unknown cardinality and stay on the index path.
fn selective_allow_set(filter: &IdFilter, rows: usize) -> bool {
    matches!(filter, IdFilter::Set(ids) if ids.len().saturating_mul(10) < rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(i: usize, dim: usize) -> Vec<f32> {
        let mut v: Vec<f32> = (0..dim)
            .map(|d| ((i * 31 + d * 7) % 97) as f32 / 97.0 - 0.5)
            .collect();
        lovo_index::metric::normalize(&mut v);
        v
    }

    #[test]
    fn growing_segment_scans_without_seal() {
        let mut seg = Segment::new(0, 8, IndexKind::IvfPq);
        for i in 0..20 {
            seg.insert(i as u64, &unit(i, 8)).unwrap();
        }
        assert_eq!(seg.state(), SegmentState::Growing);
        assert_eq!(seg.family(), "BF");
        let (hits, stats) = seg.search_with_stats(&unit(3, 8), 2).unwrap();
        assert_eq!(hits[0].id, 3);
        assert_eq!(stats.vectors_scored, 20);
    }

    #[test]
    fn sealing_freezes_the_segment() {
        let mut seg = Segment::new(1, 8, IndexKind::IvfPq);
        for i in 0..50 {
            seg.insert(i as u64, &unit(i, 8)).unwrap();
        }
        seg.seal().unwrap();
        assert_eq!(seg.state(), SegmentState::Sealed);
        assert!(seg.insert(99, &unit(99, 8)).is_err());
        let (hits, _) = seg.search_with_stats(&unit(10, 8), 1).unwrap();
        assert_eq!(hits[0].id, 10);
        // Sealing again is a no-op.
        seg.seal().unwrap();
        assert_eq!(seg.len(), 50);
    }

    #[test]
    fn tiny_sealed_segment_uses_brute_force_family() {
        let mut seg = Segment::new(2, 8, IndexKind::IvfPq);
        for i in 0..10 {
            seg.insert(i as u64, &unit(i, 8)).unwrap();
        }
        seg.seal().unwrap();
        assert_eq!(seg.family(), "BF");
    }

    #[test]
    fn raw_rows_survive_sealing_for_compaction() {
        let mut seg = Segment::new(3, 4, IndexKind::BruteForce);
        seg.insert(7, &[1.0, 0.0, 0.0, 0.0]).unwrap();
        seg.seal().unwrap();
        let rows: Vec<_> = seg.raw_rows().collect();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, 7);
        assert_eq!(rows[0].1, &[1.0, 0.0, 0.0, 0.0]);
        assert!(seg.raw_bytes() > 0);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut seg = Segment::new(4, 4, IndexKind::BruteForce);
        assert!(seg.insert(0, &[1.0, 2.0]).is_err());
        seg.insert(0, &[1.0, 0.0, 0.0, 0.0]).unwrap();
        assert!(seg.search_with_stats(&[1.0, 0.0], 1).is_err());
    }

    #[test]
    fn zone_map_tracks_id_range_through_seal() {
        let mut seg = Segment::new(5, 8, IndexKind::BruteForce);
        assert!(seg.zone_map().is_none());
        for i in [40u64, 12, 77, 30] {
            seg.insert(i, &unit(i as usize, 8)).unwrap();
        }
        let zone = seg.zone_map().unwrap();
        assert_eq!((zone.min_id, zone.max_id, zone.rows), (12, 77, 4));
        assert!(zone.overlaps(0, 12));
        assert!(zone.overlaps(77, 100));
        assert!(zone.overlaps(20, 25));
        assert!(!zone.overlaps(78, 200));
        assert!(!zone.overlaps(0, 11));
        seg.seal().unwrap();
        assert_eq!(seg.zone_map().unwrap(), zone);
    }

    #[test]
    fn selective_allow_set_on_hnsw_segment_answers_exactly_from_raw_rows() {
        // A graph beam would find few (possibly zero) of a 5-id allow-set in
        // a 600-row segment; the escape hatch must return the exact filtered
        // top-k instead.
        let mut seg = Segment::new(9, 8, IndexKind::Hnsw);
        for i in 0..600u64 {
            seg.insert(i, &unit(i as usize, 8)).unwrap();
        }
        seg.seal().unwrap();
        assert_eq!(seg.family(), "HNSW");
        let allowed: std::collections::HashSet<u64> = [3u64, 99, 250, 400, 577].into();
        let filter = IdFilter::Set(allowed.clone());
        let (hits, stats) = seg
            .search_filtered_with_stats(&unit(42, 8), 5, Some(&filter))
            .unwrap();
        // Exhaustive over the allow-set: every allowed id comes back.
        assert_eq!(hits.len(), 5);
        assert!(hits.iter().all(|h| allowed.contains(&h.id)));
        assert_eq!(stats.vectors_scored, 5);
        assert_eq!(stats.filtered_out, 595);
        // A large predicate filter stays on the graph path (beam stats, not
        // a 600-row exhaustive scan).
        let wide = IdFilter::from_predicate(|id| id % 2 == 0);
        let (_, wide_stats) = seg
            .search_filtered_with_stats(&unit(42, 8), 5, Some(&wide))
            .unwrap();
        assert!(wide_stats.vectors_scored < 600);
    }

    #[test]
    fn filtered_segment_search_masks_ids_in_both_states() {
        let mut seg = Segment::new(6, 8, IndexKind::IvfPq);
        for i in 0..60u64 {
            seg.insert(i, &unit(i as usize, 8)).unwrap();
        }
        let filter = IdFilter::from_predicate(|id| id >= 30);
        for sealed in [false, true] {
            if sealed {
                seg.seal().unwrap();
            }
            let (hits, stats) = seg
                .search_filtered_with_stats(&unit(10, 8), 5, Some(&filter))
                .unwrap();
            assert!(!hits.is_empty(), "sealed={sealed}");
            assert!(hits.iter().all(|h| h.id >= 30), "sealed={sealed}");
            assert!(stats.filtered_out > 0, "sealed={sealed}");
        }
    }
}
