//! The vector database façade: named collections + metadata, joined by patch id.
//!
//! This is the component the paper deploys inside Milvus. `lovo-core` ingests
//! per-patch embeddings and metadata through the batched
//! [`VectorDatabase::insert_patches`] (one write-lock acquisition per batch),
//! seals the growing segment once a batch is complete, and answers
//! fast-search queries with [`VectorDatabase::search`], which fans out over
//! the collection's segments and returns hits already joined with their
//! relational rows (frame id, bounding box, timestamp).

use crate::collection::{
    BatchQuery, CollectionConfig, CollectionStats, CompactionResult, PushdownFilter,
    SegmentedCollection, VectorCollection,
};
use crate::durability::wal::WalRecord;
use crate::durability::{points, DurabilityConfig, DurableStore, OpenOptions, RecoveryReport};
use crate::metadata::{MetadataStore, PatchPredicate, PatchRecord};
use crate::patchid;
use crate::segment::Segment;
use crate::{Result, StoreError};
use lovo_index::{IdFilter, SearchResult, SearchStats};
use parking_lot::{Mutex, MutexGuard, RwLock};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::path::Path;

/// A search hit joined with its metadata row.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinedHit {
    /// Patch id of the hit.
    pub patch_id: u64,
    /// Similarity score from the index.
    pub score: f32,
    /// The relational metadata row.
    pub record: PatchRecord,
}

/// The vector database: named collections plus the shared metadata store.
///
/// With a durable store attached ([`VectorDatabase::create_durable`] /
/// [`VectorDatabase::open_durable`]) every mutation is write-ahead-logged or
/// reflected in checksummed segment files before it is acknowledged, and
/// reopening the same directory recovers the pre-crash state. Lock order is
/// `durable` → `collections` → `metadata` (machine-checked from
/// ARCHITECTURE.md): the durable lock comes first on every mutating path,
/// which also serializes WAL append order with in-memory apply order.
pub struct VectorDatabase {
    durable: Option<Mutex<DurableStore>>,
    collections: RwLock<HashMap<String, VectorCollection>>,
    metadata: RwLock<MetadataStore>,
}

impl Default for VectorDatabase {
    fn default() -> Self {
        Self::new()
    }
}

impl VectorDatabase {
    /// Creates an empty in-memory database (no durability; contents are lost
    /// when the process exits).
    pub fn new() -> Self {
        Self {
            durable: None,
            collections: RwLock::new(HashMap::new()),
            metadata: RwLock::new(MetadataStore::new()),
        }
    }

    /// Creates an empty database backed by a fresh durable store under
    /// `root`. Errors if a store already exists there — use
    /// [`VectorDatabase::open_durable`] to recover an existing one.
    pub fn create_durable(root: impl AsRef<Path>, config: DurabilityConfig) -> Result<Self> {
        let store = DurableStore::create(root.as_ref(), config)?;
        Ok(Self {
            durable: Some(Mutex::new(store)),
            collections: RwLock::new(HashMap::new()),
            metadata: RwLock::new(MetadataStore::new()),
        })
    }

    /// Opens the durable store under `root` and recovers: loads every
    /// verifiable segment file (quarantining corrupt ones), rebuilds each
    /// segment's ANN index deterministically from its raw rows, replays the
    /// WAL tail through the normal insert path (skipping rows already
    /// present in sealed segments), and deletes orphaned files. The report
    /// says exactly what was recovered and what, if anything, was lost.
    pub fn open_durable(
        root: impl AsRef<Path>,
        config: DurabilityConfig,
    ) -> Result<(Self, RecoveryReport)> {
        // `DurableStore::open` resolves OpenOptions::from_env(), so setting
        // LOVO_MMAP=1 switches every default open — including existing test
        // suites — onto the mapped read path.
        let recovered = DurableStore::open(root.as_ref(), config)?;
        Self::from_recovered(recovered)
    }

    /// [`VectorDatabase::open_durable`] with explicit read-path options:
    /// `options.mmap` serves sealed-segment rows zero-copy out of the
    /// mapped `.lseg` files instead of copying them onto the heap (see
    /// [`OpenOptions`]).
    pub fn open_durable_with(
        root: impl AsRef<Path>,
        config: DurabilityConfig,
        options: OpenOptions,
    ) -> Result<(Self, RecoveryReport)> {
        let recovered = DurableStore::open_with(root.as_ref(), config, options)?;
        Self::from_recovered(recovered)
    }

    /// Rebuilds the in-memory database from a recovered durable store:
    /// restores every sealed segment (and its deterministically rebuilt ANN
    /// index), replays the WAL tail through the normal insert path, and
    /// persists anything replay re-sealed.
    fn from_recovered(
        (store, state): (DurableStore, crate::durability::RecoveredState),
    ) -> Result<(Self, RecoveryReport)> {
        let mut collections: HashMap<String, VectorCollection> = HashMap::new();
        let mut metadata = MetadataStore::new();
        let mut sealed_ids: HashMap<String, HashSet<u64>> = HashMap::new();
        for recovered in state.collections {
            let ids = sealed_ids.entry(recovered.name.clone()).or_default();
            let mut sealed = Vec::with_capacity(recovered.segments.len());
            for loaded in recovered.segments {
                ids.extend(loaded.ids.iter().copied());
                for record in loaded.meta {
                    metadata.insert(record);
                }
                // Rows were normalized before they were persisted; restore
                // them verbatim. The restore path replays the exact
                // insert-then-build sequence of the original seal, so the
                // rebuilt index is bit-identical — whether the rows live on
                // the heap or stay in the segment file's mapping.
                let segment = Segment::restore_sealed(
                    loaded.id,
                    recovered.config.dim,
                    recovered.config.index_kind,
                    recovered.config.quantization,
                    loaded.zone,
                    loaded.ids,
                    loaded.rows,
                )?;
                sealed.push(segment);
            }
            let collection = SegmentedCollection::from_recovered(
                recovered.name.clone(),
                recovered.config,
                sealed,
                recovered.next_segment_id,
            );
            collections.insert(recovered.name, collection);
        }

        // Replay the WAL tail: rows whose ids already live in a sealed
        // segment were persisted before the crash (the WAL rotates lazily),
        // the rest re-enter through the normal insert path — pre-normalization
        // vectors, so the stored rows come out bit-identical to the
        // never-crashed execution.
        let mut wal_rows_replayed = 0usize;
        for record in &state.wal_records {
            let Some(collection) = collections.get_mut(&record.collection) else {
                continue;
            };
            let known = sealed_ids.get(&record.collection);
            for (vector, row) in &record.patches {
                if known.is_some_and(|ids| ids.contains(&row.patch_id)) {
                    continue;
                }
                metadata.insert(row.clone());
                collection.insert(row.patch_id, vector)?;
                wal_rows_replayed += 1;
            }
        }
        let mut report = state.report;
        report.wal_rows_replayed = wal_rows_replayed;

        let db = Self {
            durable: Some(Mutex::new(store)),
            collections: RwLock::new(collections),
            metadata: RwLock::new(metadata),
        };
        // Replay can auto-seal (a batch that crossed segment capacity before
        // the crash re-crosses it now); persist those segments so the store
        // converges instead of re-replaying the same tail forever, and
        // rotate the WAL if everything ended up sealed.
        {
            let mut durable = db
                .durable
                .as_ref()
                .expect("just constructed durable")
                .lock();
            let collections = db.collections.read();
            let metadata = db.metadata.read();
            for collection in collections.values() {
                durable.sync_collection(collection, &metadata, points::SEGMENT_WRITE)?;
            }
            let all_empty = collections.values().all(|c| c.growing_len() == 0);
            durable.rotate_wal_if_idle(all_empty)?;
        }
        Ok((db, report))
    }

    /// True when a durable store backs this database.
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// Number of records in the active write-ahead log (0 without a durable
    /// store). Exposed for tests, stats, and the recovery benchmark.
    pub fn wal_records(&self) -> u64 {
        self.durable
            .as_ref()
            .map_or(0, |durable| durable.lock().wal_records())
    }

    /// Committed byte length of the active write-ahead log (0 without a
    /// durable store).
    pub fn wal_bytes(&self) -> u64 {
        self.durable
            .as_ref()
            .map_or(0, |durable| durable.lock().wal_bytes())
    }

    /// Pre-faults every live mapped segment (`MADV_WILLNEED`), returning
    /// the number of bytes advised. A no-op (0) on the heap read path or
    /// without a durable store; call after an mmap open that skipped
    /// `populate` to trade one up-front sequential read for demand-paging
    /// stalls on the first queries.
    pub fn warmup(&self) -> usize {
        self.durable
            .as_ref()
            .map_or(0, |durable| durable.lock().warmup())
    }

    /// Drops every live mapped segment's resident pages (`MADV_DONTNEED`),
    /// returning the number of bytes advised. The inverse of
    /// [`VectorDatabase::warmup`] and the churn knob for corpora larger
    /// than RAM: a read-only mapping loses only clean page-cache copies,
    /// and later scans demand-page them back in.
    pub fn release_pages(&self) -> usize {
        self.durable
            .as_ref()
            .map_or(0, |durable| durable.lock().release_pages())
    }

    /// Total bytes of live segment mappings (0 on the heap read path).
    pub fn mapped_bytes(&self) -> usize {
        self.durable
            .as_ref()
            .map_or(0, |durable| durable.lock().mapped_bytes())
    }

    /// Bytes of live segment mappings currently resident in page cache.
    /// The mmap-mode complement of [`VectorDatabase::total_bytes`]: it
    /// shrinks when the kernel evicts cold segment pages, which is exactly
    /// the degradation mode that lets corpora larger than RAM keep serving.
    pub fn resident_bytes(&self) -> usize {
        self.durable
            .as_ref()
            .map_or(0, |durable| durable.lock().resident_bytes())
    }

    /// Takes the durable lock when a durable store is attached — the FIRST
    /// lock of every mutating path (lock order: durable → collections →
    /// metadata).
    fn lock_durable(&self) -> Option<MutexGuard<'_, DurableStore>> {
        self.durable.as_ref().map(Mutex::lock)
    }

    /// Creates a collection with the given name and configuration. Replaces
    /// any existing collection of the same name. With a durable store the
    /// collection is registered in the manifest first, so a crash immediately
    /// after still knows it on reopen.
    pub fn create_collection(&self, name: &str, config: CollectionConfig) -> Result<()> {
        let mut durable = self.lock_durable();
        if let Some(store) = durable.as_mut() {
            store.register_collection(name, config)?;
        }
        let collection = VectorCollection::new(name, config)?;
        self.collections
            .write()
            .insert(name.to_string(), collection);
        Ok(())
    }

    /// True when a collection with the given name exists.
    pub fn has_collection(&self, name: &str) -> bool {
        self.collections.read().contains_key(name)
    }

    /// Inserts a patch: its embedding into the named collection and its
    /// metadata row into the relational store, both keyed by
    /// `record.patch_id`.
    pub fn insert_patch(
        &self,
        collection: &str,
        vector: &[f32],
        record: PatchRecord,
    ) -> Result<()> {
        self.insert_patches(collection, std::iter::once((vector, record)))
            .map(|_| ())
    }

    /// Inserts a batch of patches, taking each write lock once for the whole
    /// batch instead of once per patch. The ingest path batches per frame, so
    /// lock traffic scales with frames, not patches.
    pub fn insert_patches<'a>(
        &self,
        collection: &str,
        patches: impl IntoIterator<Item = (&'a [f32], PatchRecord)>,
    ) -> Result<usize> {
        self.insert_patches_with_aux(collection, patches, Vec::new())
    }

    /// [`VectorDatabase::insert_patches`] with auxiliary blobs riding along
    /// in the same WAL record (keyed by frame key). The engine logs its
    /// serialized key frames here so they survive a crash alongside the rows
    /// they describe; without a durable store the blobs are ignored.
    ///
    /// Durability contract: with a durable store attached, the batch is
    /// appended to the WAL (and fsynced, under the default policy) *before*
    /// anything is applied in memory. `Ok` therefore means the batch
    /// survives `kill -9`; an `Err` from the WAL append means nothing was
    /// applied at all — never partially.
    pub fn insert_patches_with_aux<'a>(
        &self,
        collection: &str,
        patches: impl IntoIterator<Item = (&'a [f32], PatchRecord)>,
        aux: Vec<(u64, Vec<u8>)>,
    ) -> Result<usize> {
        let mut durable = self.lock_durable();
        let mut collections = self.collections.write();
        let col = collections
            .get_mut(collection)
            .ok_or_else(|| StoreError::UnknownCollection(collection.to_string()))?;
        // Validate the whole batch before writing anything — neither the WAL
        // nor memory — so a bad vector cannot leave the batch half-applied.
        let batch: Vec<(&[f32], PatchRecord)> = patches.into_iter().collect();
        for (vector, _) in &batch {
            if vector.len() != col.config().dim {
                return Err(StoreError::Index(
                    lovo_index::IndexError::DimensionMismatch {
                        expected: col.config().dim,
                        actual: vector.len(),
                    },
                ));
            }
        }
        // Write-ahead: the WAL record commits (per the fsync policy) before
        // any in-memory state changes. A failed append leaves both the log
        // (rolled back to the last record) and memory untouched.
        if let Some(store) = durable.as_mut() {
            let record = WalRecord {
                collection: collection.to_string(),
                patches: batch
                    .iter()
                    .map(|(vector, record)| (vector.to_vec(), record.clone()))
                    .collect(),
                aux,
            };
            store.append_batch(&record)?;
        }
        // Metadata first, and without the metadata lock spanning the vector
        // inserts (which can trigger a growing-segment seal, i.e. an ANN
        // index build, that metadata readers must not stall behind). If a
        // vector insert still fails, the orphaned metadata rows are benign —
        // the reverse (a searchable vector with no metadata row) would make
        // every query that surfaces it error.
        {
            let mut metadata = self.metadata.write();
            for (_, record) in &batch {
                metadata.insert(record.clone());
            }
        }
        let sealed_before = col.sealed_segment_count();
        for (vector, record) in &batch {
            col.insert(record.patch_id, vector)?;
        }
        // A batch that crossed segment capacity auto-sealed mid-insert;
        // persist the new segment file(s) now. The rows stay covered by the
        // WAL until the manifest swap inside `sync_collection` commits them.
        if col.sealed_segment_count() != sealed_before {
            if let Some(store) = durable.as_mut() {
                store.sync_collection(col, &self.metadata.read(), points::SEGMENT_WRITE)?;
            }
        }
        Ok(batch.len())
    }

    /// Seals the named collection's growing segment (builds its ANN index).
    /// Call after an ingest batch; existing sealed segments are untouched.
    /// With a durable store, the sealed segment is written to a checksummed
    /// file and committed via a manifest swap before this returns, and the
    /// WAL rotates once every collection's rows live in sealed files.
    pub fn seal_collection(&self, collection: &str) -> Result<()> {
        let mut durable = self.lock_durable();
        let mut collections = self.collections.write();
        let col = collections
            .get_mut(collection)
            .ok_or_else(|| StoreError::UnknownCollection(collection.to_string()))?;
        col.seal()?;
        if let Some(store) = durable.as_mut() {
            store.sync_collection(col, &self.metadata.read(), points::SEGMENT_WRITE)?;
            let all_empty = collections.values().all(|c| c.growing_len() == 0);
            store.rotate_wal_if_idle(all_empty)?;
        }
        Ok(())
    }

    /// Builds (trains) the named collection's index. With the segmented
    /// engine this seals the growing segment; kept under the historical name.
    pub fn build_collection(&self, collection: &str) -> Result<()> {
        self.seal_collection(collection)
    }

    /// Compacts the named collection: merges undersized sealed segments to
    /// bound the search fan-out width after many incremental appends. With a
    /// durable store the merged segment files are fully written and fsynced
    /// *before* the manifest swap drops the sources, so a crash at any
    /// instant recovers either the old segment set or the new one — never a
    /// mix — and the source files are deleted only after the swap.
    pub fn compact_collection(&self, collection: &str) -> Result<CompactionResult> {
        let mut durable = self.lock_durable();
        let mut collections = self.collections.write();
        let col = collections
            .get_mut(collection)
            .ok_or_else(|| StoreError::UnknownCollection(collection.to_string()))?;
        let result = col.compact()?;
        if let Some(store) = durable.as_mut() {
            store.sync_collection(col, &self.metadata.read(), points::COMPACT_SEGMENT_WRITE)?;
        }
        Ok(result)
    }

    /// Fast search: top-`k` joined hits for the query embedding.
    pub fn search(&self, collection: &str, query: &[f32], k: usize) -> Result<Vec<JoinedHit>> {
        Ok(self.search_with_stats(collection, query, k)?.0)
    }

    /// Fast search that also reports index probe statistics.
    pub fn search_with_stats(
        &self,
        collection: &str,
        query: &[f32],
        k: usize,
    ) -> Result<(Vec<JoinedHit>, SearchStats)> {
        self.search_pushdown_with_stats(collection, query, k, None)
    }

    /// Compiles a metadata predicate into the fully pushed-down filter the
    /// index scans consume: the id test every segment applies per row, plus
    /// the candidate id ranges used to prune segments by zone map.
    ///
    /// Video-only predicates compile to a bit test over the packed patch id —
    /// no metadata access at all. Predicates involving timestamps or object
    /// classes are joined against the metadata table in one sequential pass,
    /// yielding an explicit allow-set. Returns `None` for an unconstrained
    /// predicate (the unfiltered fast path).
    pub fn resolve_filter(&self, predicate: &PatchPredicate) -> Option<PushdownFilter> {
        if predicate.is_unconstrained() {
            return None;
        }
        let video_ranges = |videos: &std::collections::BTreeSet<u32>| {
            videos.iter().map(|&v| patchid::video_id_range(v)).collect()
        };
        if predicate.needs_metadata_join() {
            let ids = self.metadata.read().matching_ids(predicate);
            let ranges: Vec<(u64, u64)> = if ids.is_empty() {
                Vec::new() // provably empty: prune every segment
            } else if let Some(videos) = &predicate.video_ids {
                video_ranges(videos)
            } else {
                let min = ids.iter().copied().min().expect("non-empty id set");
                let max = ids.iter().copied().max().expect("non-empty id set");
                vec![(min, max)]
            };
            Some(PushdownFilter::new(IdFilter::Set(ids)).with_ranges(ranges))
        } else {
            let videos = predicate
                .video_ids
                .clone()
                .expect("a constrained join-free predicate constrains video ids");
            let ranges = video_ranges(&videos);
            let filter =
                IdFilter::from_predicate(move |id| videos.contains(&patchid::video_of(id)));
            Some(PushdownFilter::new(filter).with_ranges(ranges))
        }
    }

    /// Filtered fast search: like [`VectorDatabase::search_with_stats`] but
    /// pushing a compiled filter down through the segment fan-out into every
    /// index scan.
    pub fn search_pushdown_with_stats(
        &self,
        collection: &str,
        query: &[f32],
        k: usize,
        filter: Option<&PushdownFilter>,
    ) -> Result<(Vec<JoinedHit>, SearchStats)> {
        let collections = self.collections.read();
        let col = collections
            .get(collection)
            .ok_or_else(|| StoreError::UnknownCollection(collection.to_string()))?;
        let (hits, stats) = col.search_filtered_with_stats(query, k, filter)?;
        Ok((self.join_hits(hits)?, stats))
    }

    /// Resolves a predicate and runs one filtered search in a single call
    /// (the planner times the two steps separately; this is the convenience
    /// path for tests and benchmarks).
    pub fn search_with_predicate(
        &self,
        collection: &str,
        query: &[f32],
        k: usize,
        predicate: &PatchPredicate,
    ) -> Result<(Vec<JoinedHit>, SearchStats)> {
        let filter = self.resolve_filter(predicate);
        self.search_pushdown_with_stats(collection, query, k, filter.as_ref())
    }

    /// Batched fast search: all queries fan out over the segment set together
    /// (one collection read-lock acquisition, one segment walk shared by the
    /// whole batch), each with its own `k` and optional pushed-down filter.
    /// Results come back joined with metadata, in request order.
    pub fn search_batch_with_stats(
        &self,
        collection: &str,
        requests: &[BatchQuery<'_>],
    ) -> Result<Vec<(Vec<JoinedHit>, SearchStats)>> {
        self.search_batch_with_stats_opts(collection, requests, 0)
    }

    /// [`VectorDatabase::search_batch_with_stats`] with an explicit
    /// intra-query fan-out worker count (`0` = automatic). Serving layers
    /// pass their idle worker capacity here so a lone query under low load
    /// can split its sealed segments across otherwise-idle cores.
    pub fn search_batch_with_stats_opts(
        &self,
        collection: &str,
        requests: &[BatchQuery<'_>],
        intra_query_threads: usize,
    ) -> Result<Vec<(Vec<JoinedHit>, SearchStats)>> {
        let collections = self.collections.read();
        let col = collections
            .get(collection)
            .ok_or_else(|| StoreError::UnknownCollection(collection.to_string()))?;
        let results = col.search_batch_with_stats_opts(requests, intra_query_threads)?;
        results
            .into_iter()
            .map(|(hits, stats)| Ok((self.join_hits(hits)?, stats)))
            .collect()
    }

    /// Joins raw index hits with their metadata rows.
    fn join_hits(&self, hits: Vec<SearchResult>) -> Result<Vec<JoinedHit>> {
        let metadata = self.metadata.read();
        hits.into_iter()
            .map(|hit| {
                metadata.get(hit.id).map(|record| JoinedHit {
                    patch_id: hit.id,
                    score: hit.score,
                    record: record.clone(),
                })
            })
            .collect()
    }

    /// All metadata rows of one key frame (used by the rerank stage to pull a
    /// candidate frame's patches).
    pub fn frame_patches(&self, video_id: u32, frame_index: u32) -> Vec<PatchRecord> {
        self.metadata
            .read()
            .patches_of_frame(video_id, frame_index)
            .into_iter()
            .cloned()
            .collect()
    }

    /// Metadata row of a single patch.
    pub fn patch(&self, patch_id: u64) -> Result<PatchRecord> {
        self.metadata.read().get(patch_id).cloned()
    }

    /// Explicitly advances the named collection's content generation without
    /// mutating rows — see
    /// [`crate::collection::SegmentedCollection::bump_generation`] for when
    /// that is the right tool.
    pub fn touch_collection(&self, collection: &str) -> Result<()> {
        let mut collections = self.collections.write();
        let col = collections
            .get_mut(collection)
            .ok_or_else(|| StoreError::UnknownCollection(collection.to_string()))?;
        col.bump_generation();
        Ok(())
    }

    /// Content generation of the named collection: bumped by every insert,
    /// seal and compaction. Serving layers key cache invalidation off this —
    /// a result cached at generation `g` is stale once the collection reports
    /// anything newer.
    pub fn collection_generation(&self, collection: &str) -> Result<u64> {
        let collections = self.collections.read();
        let col = collections
            .get(collection)
            .ok_or_else(|| StoreError::UnknownCollection(collection.to_string()))?;
        Ok(col.generation())
    }

    /// Storage statistics of the named collection.
    pub fn collection_stats(&self, collection: &str) -> Result<CollectionStats> {
        let collections = self.collections.read();
        let col = collections
            .get(collection)
            .ok_or_else(|| StoreError::UnknownCollection(collection.to_string()))?;
        Ok(col.stats())
    }

    /// Inclusive video-id range covered by the named collection's stored
    /// patch ids — the per-segment zone maps folded up to collection level
    /// and projected onto the video half of the packed patch id. `None` when
    /// the collection is empty or unknown. Shard routers use this as a zone
    /// map one level up: a shard whose range cannot intersect a plan's video
    /// predicate is pruned without touching its segments.
    pub fn collection_video_range(&self, collection: &str) -> Option<(u32, u32)> {
        let collections = self.collections.read();
        let (min_id, max_id) = collections.get(collection)?.id_range()?;
        let (min_video, _, _) = patchid::split_patch_id(min_id);
        let (max_video, _, _) = patchid::split_patch_id(max_id);
        Some((min_video, max_video))
    }

    /// Embedding dimensionality of a collection, or `None` if it does not
    /// exist. Engine recovery checks this against its encoder configuration
    /// before serving a reopened store built under a different config.
    pub fn collection_dim(&self, collection: &str) -> Option<usize> {
        self.collections
            .read()
            .get(collection)
            .map(|c| c.config().dim)
    }

    /// Total number of metadata rows.
    pub fn metadata_rows(&self) -> usize {
        self.metadata.read().len()
    }

    /// Distinct video ids present in the metadata table. Engine recovery
    /// rebuilds its ingested-video set from this.
    pub fn video_ids(&self) -> BTreeSet<u32> {
        self.metadata.read().video_ids()
    }

    /// Approximate total storage footprint in bytes (index + metadata).
    pub fn total_bytes(&self) -> usize {
        let collections = self.collections.read();
        let index_bytes: usize = collections.values().map(|c| c.stats().index_bytes).sum();
        index_bytes + self.metadata.read().memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lovo_index::IndexKind;

    fn record(patch_id: u64, video: u32, frame: u32) -> PatchRecord {
        PatchRecord {
            patch_id,
            video_id: video,
            frame_index: frame,
            patch_index: 0,
            bbox: (0.0, 0.0, 10.0, 10.0),
            timestamp: frame as f64 / 30.0,
            class_code: Some((patch_id % 4) as u8),
        }
    }

    fn vector(i: usize, dim: usize) -> Vec<f32> {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(i as u64 + 1);
        (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    }

    #[test]
    fn insert_search_join_round_trip() {
        let db = VectorDatabase::new();
        db.create_collection("patches", CollectionConfig::new(16))
            .unwrap();
        for i in 0..400 {
            db.insert_patch(
                "patches",
                &vector(i, 16),
                record(i as u64, 0, (i / 48) as u32),
            )
            .unwrap();
        }
        db.build_collection("patches").unwrap();
        let hits = db.search("patches", &vector(123, 16), 5).unwrap();
        assert_eq!(hits.len(), 5);
        assert_eq!(hits[0].patch_id, 123);
        assert_eq!(hits[0].record.frame_index, (123 / 48) as u32);
    }

    #[test]
    fn unknown_collection_errors() {
        let db = VectorDatabase::new();
        assert!(db
            .insert_patch("missing", &[0.0; 4], record(0, 0, 0))
            .is_err());
        assert!(db.search("missing", &[0.0; 4], 1).is_err());
        assert!(db.build_collection("missing").is_err());
        assert!(db.collection_stats("missing").is_err());
        assert!(!db.has_collection("missing"));
    }

    #[test]
    fn frame_patches_returns_all_rows_of_frame() {
        let db = VectorDatabase::new();
        db.create_collection(
            "patches",
            CollectionConfig::new(8).with_index_kind(IndexKind::BruteForce),
        )
        .unwrap();
        for i in 0..10u64 {
            db.insert_patch(
                "patches",
                &vector(i as usize, 8),
                record(i, 2, (i % 2) as u32),
            )
            .unwrap();
        }
        assert_eq!(db.frame_patches(2, 0).len(), 5);
        assert_eq!(db.frame_patches(2, 1).len(), 5);
        assert!(db.frame_patches(3, 0).is_empty());
        assert_eq!(db.metadata_rows(), 10);
    }

    #[test]
    fn patch_lookup() {
        let db = VectorDatabase::new();
        db.create_collection(
            "p",
            CollectionConfig::new(8).with_index_kind(IndexKind::BruteForce),
        )
        .unwrap();
        db.insert_patch("p", &vector(0, 8), record(77, 1, 4))
            .unwrap();
        assert_eq!(db.patch(77).unwrap().video_id, 1);
        assert!(db.patch(78).is_err());
    }

    #[test]
    fn batched_insert_matches_per_patch_insert() {
        let db = VectorDatabase::new();
        db.create_collection(
            "p",
            CollectionConfig::new(8).with_index_kind(IndexKind::BruteForce),
        )
        .unwrap();
        let batch: Vec<(Vec<f32>, PatchRecord)> = (0..20u64)
            .map(|i| (vector(i as usize, 8), record(i, 0, (i / 4) as u32)))
            .collect();
        let inserted = db
            .insert_patches("p", batch.iter().map(|(v, r)| (v.as_slice(), r.clone())))
            .unwrap();
        assert_eq!(inserted, 20);
        assert_eq!(db.metadata_rows(), 20);
        let hits = db.search("p", &vector(7, 8), 1).unwrap();
        assert_eq!(hits[0].patch_id, 7);
        assert_eq!(hits[0].record.frame_index, 1);
        assert!(db
            .insert_patches(
                "missing",
                batch.iter().map(|(v, r)| (v.as_slice(), r.clone()))
            )
            .is_err());
    }

    #[test]
    fn seal_and_compact_round_trip() {
        let db = VectorDatabase::new();
        db.create_collection("p", CollectionConfig::new(8).with_segment_capacity(64))
            .unwrap();
        // Three undersized append batches, each sealed individually.
        for batch in 0..3u64 {
            for i in 0..20u64 {
                let id = batch * 20 + i;
                db.insert_patch("p", &vector(id as usize, 8), record(id, 0, 0))
                    .unwrap();
            }
            db.seal_collection("p").unwrap();
        }
        assert_eq!(db.collection_stats("p").unwrap().sealed_segments, 3);
        let generation_before = db.collection_generation("p").unwrap();
        assert!(generation_before > 0);
        let result = db.compact_collection("p").unwrap();
        assert!(db.collection_generation("p").unwrap() > generation_before);
        assert!(db.collection_generation("missing").is_err());
        let touched = db.collection_generation("p").unwrap();
        db.touch_collection("p").unwrap();
        assert_eq!(db.collection_generation("p").unwrap(), touched + 1);
        assert!(db.touch_collection("missing").is_err());
        assert_eq!(result.segments_merged, 3);
        assert_eq!(db.collection_stats("p").unwrap().sealed_segments, 1);
        let hits = db.search("p", &vector(42, 8), 1).unwrap();
        assert_eq!(hits[0].patch_id, 42);
        assert!(db.seal_collection("missing").is_err());
        assert!(db.compact_collection("missing").is_err());
    }

    #[test]
    fn video_only_predicate_needs_no_metadata_and_prunes_segments() {
        let db = VectorDatabase::new();
        db.create_collection("p", CollectionConfig::new(8).with_segment_capacity(64))
            .unwrap();
        // Four videos × 64 patches, packed ids, sealed per video so segments
        // are video-contiguous the way real ingestion makes them.
        for video in 0..4u32 {
            for i in 0..64u64 {
                let id = patchid::patch_id(video, i as u32, 0);
                let rec = record(id, video, i as u32);
                db.insert_patch("p", &vector(video as usize * 64 + i as usize, 8), rec)
                    .unwrap();
            }
            db.seal_collection("p").unwrap();
        }
        let predicate = PatchPredicate {
            video_ids: Some([2u32].into_iter().collect()),
            ..Default::default()
        };
        assert!(!predicate.needs_metadata_join());
        let filter = db.resolve_filter(&predicate).unwrap();
        let probe = vector(2 * 64 + 11, 8);
        let (hits, stats) = db
            .search_pushdown_with_stats("p", &probe, 5, Some(&filter))
            .unwrap();
        assert!(!hits.is_empty());
        assert!(hits.iter().all(|h| h.record.video_id == 2));
        assert_eq!(hits[0].patch_id, patchid::patch_id(2, 11, 0));
        assert_eq!(stats.segments_pruned, 3);
        assert_eq!(stats.segments_probed, 1);
        // The unconstrained predicate resolves to no filter at all.
        assert!(db.resolve_filter(&PatchPredicate::default()).is_none());
    }

    #[test]
    fn metadata_join_predicates_build_an_allow_set() {
        let db = VectorDatabase::new();
        db.create_collection(
            "p",
            CollectionConfig::new(8).with_index_kind(IndexKind::BruteForce),
        )
        .unwrap();
        for i in 0..120u64 {
            // timestamp = frame/30; classes cycle 0..4.
            db.insert_patch("p", &vector(i as usize, 8), record(i, 0, (i % 60) as u32))
                .unwrap();
        }
        db.seal_collection("p").unwrap();
        // Time window 0.5..1.0 s (frames 15..=30) and class 1.
        let predicate = PatchPredicate {
            time_range: Some((0.5, 1.0)),
            class_codes: Some([1u8].into_iter().collect()),
            ..Default::default()
        };
        let (hits, stats) = db
            .search_with_predicate("p", &vector(17, 8), 50, &predicate)
            .unwrap();
        assert!(!hits.is_empty());
        for hit in &hits {
            assert!(hit.record.timestamp >= 0.5 && hit.record.timestamp <= 1.0);
            assert_eq!(hit.record.class_code, Some(1));
        }
        assert!(stats.filtered_out > 0);

        // A predicate nothing satisfies prunes everything via empty ranges.
        let impossible = PatchPredicate {
            time_range: Some((100.0, 200.0)),
            ..Default::default()
        };
        let (none, nstats) = db
            .search_with_predicate("p", &vector(17, 8), 5, &impossible)
            .unwrap();
        assert!(none.is_empty());
        assert_eq!(nstats.segments_probed, 0);
        assert!(nstats.segments_pruned >= 1);
    }

    #[test]
    fn batch_search_joins_all_requests_in_order() {
        let db = VectorDatabase::new();
        db.create_collection(
            "p",
            CollectionConfig::new(8).with_index_kind(IndexKind::BruteForce),
        )
        .unwrap();
        for i in 0..100u64 {
            db.insert_patch(
                "p",
                &vector(i as usize, 8),
                record(i, (i / 50) as u32, i as u32),
            )
            .unwrap();
        }
        db.seal_collection("p").unwrap();
        let predicate = PatchPredicate {
            time_range: Some((0.0, 1.0)), // frames 0..=30
            ..Default::default()
        };
        let filter = db.resolve_filter(&predicate).unwrap();
        let q0 = vector(5, 8);
        let q1 = vector(60, 8);
        let requests = [
            BatchQuery {
                query: &q0,
                k: 3,
                filter: Some(&filter),
            },
            BatchQuery {
                query: &q1,
                k: 2,
                filter: None,
            },
        ];
        let results = db.search_batch_with_stats("p", &requests).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].0[0].patch_id, 5);
        assert!(results[0].0.iter().all(|h| h.record.timestamp <= 1.0));
        assert_eq!(results[1].0[0].patch_id, 60);
        // Batch results match the equivalent single searches.
        let single = db
            .search_pushdown_with_stats("p", &q0, 3, Some(&filter))
            .unwrap();
        assert_eq!(results[0], single);
        assert!(db.search_batch_with_stats("missing", &requests).is_err());
    }

    #[test]
    fn stats_and_total_bytes() {
        let db = VectorDatabase::new();
        db.create_collection(
            "p",
            CollectionConfig::new(8).with_index_kind(IndexKind::BruteForce),
        )
        .unwrap();
        for i in 0..50u64 {
            db.insert_patch("p", &vector(i as usize, 8), record(i, 0, 0))
                .unwrap();
        }
        let stats = db.collection_stats("p").unwrap();
        assert_eq!(stats.entities, 50);
        assert!(db.total_bytes() > 0);
    }
}
