//! The packed *patch id*: the join key shared by the vector collection and
//! the relational metadata table (§V-B).
//!
//! Every stored embedding is addressed by a single `u64` that packs the video
//! id (bits 44..63), the key-frame index (bits 12..43) and the patch position
//! within the frame (bits 0..11). The packing lives in the storage crate —
//! rather than in the engine that assigns the ids — because the storage layer
//! itself exploits it: a video-id predicate compiles to a bit test on the id
//! (no metadata lookup), and segment zone maps prune on packed-id ranges
//! because ingestion appends videos in order, making segments video-contiguous.

use lovo_index::VectorId;

/// Largest video id that fits the patch-id packing (20 bits). Ingesting a
/// video with a larger id must be rejected upstream: the id would wrap and
/// silently collide with another video's patches.
pub const MAX_VIDEO_ID: u32 = (1 << 20) - 1;

/// Largest per-frame patch index that fits the patch-id packing (12 bits).
pub const MAX_PATCH_INDEX: u32 = (1 << 12) - 1;

/// Bit position of the video id within a packed patch id.
pub const VIDEO_ID_SHIFT: u32 = 44;

/// Globally unique patch id: video (bits 44..63), frame (bits 12..43), patch
/// position (bits 0..11).
pub fn patch_id(video_id: u32, frame_index: u32, patch_index: u32) -> VectorId {
    debug_assert!(video_id <= MAX_VIDEO_ID, "video id overflows patch id");
    debug_assert!(
        patch_index <= MAX_PATCH_INDEX,
        "patch index overflows patch id"
    );
    (u64::from(video_id) << VIDEO_ID_SHIFT)
        | (u64::from(frame_index) << 12)
        | u64::from(patch_index & 0xfff)
}

/// Inverse of [`patch_id`]: `(video_id, frame_index, patch_index)`.
pub fn split_patch_id(id: VectorId) -> (u32, u32, u32) {
    (
        (id >> VIDEO_ID_SHIFT) as u32,
        ((id >> 12) & 0xffff_ffff) as u32,
        (id & 0xfff) as u32,
    )
}

/// Video id of a packed patch id (the cheap bit test pushed-down video
/// filters use).
#[inline]
pub fn video_of(id: VectorId) -> u32 {
    (id >> VIDEO_ID_SHIFT) as u32
}

/// Inclusive range of every patch id a video can own. Because videos are
/// ingested in order, sealed segments cover contiguous runs of these ranges,
/// which is what makes zone-map pruning effective for video predicates.
pub fn video_id_range(video_id: u32) -> (VectorId, VectorId) {
    let start = u64::from(video_id) << VIDEO_ID_SHIFT;
    let end = start | ((1u64 << VIDEO_ID_SHIFT) - 1);
    (start, end)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_video_extraction() {
        let id = patch_id(3, 70_000, 39);
        assert_eq!(split_patch_id(id), (3, 70_000, 39));
        assert_eq!(video_of(id), 3);
        let boundary = patch_id(MAX_VIDEO_ID, u32::MAX, MAX_PATCH_INDEX);
        assert_eq!(
            split_patch_id(boundary),
            (MAX_VIDEO_ID, u32::MAX, MAX_PATCH_INDEX)
        );
    }

    #[test]
    fn video_range_covers_exactly_the_videos_ids() {
        let (start, end) = video_id_range(7);
        assert_eq!(start, patch_id(7, 0, 0));
        assert!(end >= patch_id(7, u32::MAX, MAX_PATCH_INDEX));
        assert!(end < patch_id(8, 0, 0));
        assert_eq!(video_of(start), 7);
        assert_eq!(video_of(end), 7);
    }
}
