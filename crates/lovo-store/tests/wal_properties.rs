//! Property test for the WAL recovery invariant: truncating the log at ANY
//! byte boundary — the on-disk shape of a crash that tore the tail — must
//! recover a valid store holding exactly some prefix of the appended batches,
//! monotone in the truncation point.

use lovo_store::{patch_id, CollectionConfig, DurabilityConfig, PatchRecord, VectorDatabase};
use std::path::{Path, PathBuf};

const DIM: usize = 6;
const COL: &str = "patches";
const BATCHES: u64 = 5;
const ROWS_PER_BATCH: u64 = 3;

fn scratch_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lovo-walprop-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn record(batch: u64, row: u64) -> PatchRecord {
    let frame = batch as u32;
    let patch = row as u32;
    PatchRecord {
        patch_id: patch_id(1, frame, patch),
        video_id: 1,
        frame_index: frame,
        patch_index: patch,
        bbox: (0.0, 0.0, 8.0, 8.0),
        timestamp: frame as f64,
        class_code: None,
    }
}

fn vector(batch: u64, row: u64) -> Vec<f32> {
    (0..DIM)
        .map(|d| ((batch * 31 + row * 7 + d as u64) as f32 * 0.113).cos())
        .collect()
}

/// Builds the reference store: one WAL holding `BATCHES` batches, no seals,
/// then returns the root. Every row lives only in the log.
fn build_reference(root: &Path) {
    let db = VectorDatabase::create_durable(root, DurabilityConfig::new()).unwrap();
    db.create_collection(COL, CollectionConfig::new(DIM))
        .unwrap();
    for b in 0..BATCHES {
        let rows: Vec<_> = (0..ROWS_PER_BATCH)
            .map(|r| (vector(b, r), record(b, r)))
            .collect();
        db.insert_patches(COL, rows.iter().map(|(v, r)| (v.as_slice(), r.clone())))
            .unwrap();
    }
}

/// Copies the reference store into a fresh root with the WAL truncated to
/// `len` bytes.
fn clone_with_truncated_wal(reference: &Path, len: u64, tag: &str) -> PathBuf {
    let root = scratch_root(tag);
    std::fs::create_dir_all(root.join("segments")).unwrap();
    std::fs::copy(reference.join("MANIFEST"), root.join("MANIFEST")).unwrap();
    let wal = std::fs::read(reference.join("wal-000000.log")).unwrap();
    std::fs::write(root.join("wal-000000.log"), &wal[..len as usize]).unwrap();
    root
}

#[test]
fn any_wal_prefix_truncation_recovers_a_valid_batch_prefix() {
    let reference = scratch_root("ref");
    build_reference(&reference);
    let full_len = std::fs::metadata(reference.join("wal-000000.log"))
        .unwrap()
        .len();

    // The WAL header is 20 bytes; anything shorter is a corrupt file, which
    // open correctly refuses (a missing/empty log is a different, hard fault
    // from a torn tail). Exhaustively sweep every truncation point at and
    // past the header.
    let mut last_rows = 0usize;
    let mut last_boundary = 20u64;
    for len in 20..=full_len {
        let root = clone_with_truncated_wal(&reference, len, "cut");
        let (db, report) = VectorDatabase::open_durable(&root, DurabilityConfig::new())
            .unwrap_or_else(|e| panic!("truncation at byte {len} must recover, got: {e}"));
        let rows = db.metadata_rows();
        // Invariant 1: recovered rows are a whole-batch prefix — a torn
        // record never surfaces partially.
        assert_eq!(
            rows as u64 % ROWS_PER_BATCH,
            0,
            "truncation at byte {len} exposed a partial batch ({rows} rows)"
        );
        let batches_recovered = rows as u64 / ROWS_PER_BATCH;
        assert!(batches_recovered <= BATCHES);
        // Invariant 2: the recovered prefix is exactly batches 0..k, in
        // order — spot-check the boundary rows exist and the next one not.
        if batches_recovered > 0 {
            let last = record(batches_recovered - 1, ROWS_PER_BATCH - 1);
            assert!(
                db.patch(last.patch_id).is_ok(),
                "byte {len}: lost an acked row"
            );
        }
        if batches_recovered < BATCHES {
            let next = record(batches_recovered, 0);
            assert!(
                db.patch(next.patch_id).is_err(),
                "byte {len}: resurrected a row past the torn tail"
            );
        }
        // Invariant 3: monotone — cutting later never recovers fewer rows.
        assert!(
            rows >= last_rows,
            "byte {len}: recovery went backwards ({last_rows} -> {rows})"
        );
        last_rows = rows;
        // Invariant 4: exact torn-byte accounting. A cut landing on a
        // record boundary is indistinguishable from a clean shutdown and
        // reports zero; anywhere else the report must cover precisely the
        // bytes past the last complete record.
        if report.wal_bytes_truncated == 0 {
            last_boundary = len;
        } else {
            assert_eq!(
                report.wal_bytes_truncated,
                len - last_boundary,
                "byte {len}: torn-byte accounting is off"
            );
        }
        // Invariant 5: the truncated store is immediately writable again
        // (sampled — the write-and-reopen round trip fsyncs, so doing it at
        // every byte would dominate the test's runtime).
        if len % 41 == 0 || len == full_len {
            let extra = [(vector(99, 0), record(99, 0))];
            db.insert_patches(COL, extra.iter().map(|(v, r)| (v.as_slice(), r.clone())))
                .unwrap();
            drop(db);
            let (db, report) =
                VectorDatabase::open_durable(&root, DurabilityConfig::new()).unwrap();
            assert!(
                report.is_clean(),
                "byte {len}: second open after repair not clean"
            );
            assert_eq!(db.metadata_rows(), rows + 1);
        }
        let _ = std::fs::remove_dir_all(&root);
    }
    assert_eq!(
        last_rows as u64,
        BATCHES * ROWS_PER_BATCH,
        "full log must recover everything"
    );
    let _ = std::fs::remove_dir_all(&reference);
}

#[test]
fn bit_flips_in_the_record_region_never_expose_corrupt_rows() {
    // Flip one byte at a sample of offsets past the header: recovery must
    // either drop the affected suffix (CRC mismatch ends replay) or, if the
    // flip lands past the last record, change nothing. It must never error
    // and never surface a mangled row.
    let reference = scratch_root("flip-ref");
    build_reference(&reference);
    let wal = std::fs::read(reference.join("wal-000000.log")).unwrap();
    for (i, offset) in (20..wal.len()).step_by(17).enumerate() {
        let root = scratch_root("flip");
        std::fs::create_dir_all(root.join("segments")).unwrap();
        std::fs::copy(reference.join("MANIFEST"), root.join("MANIFEST")).unwrap();
        let mut bytes = wal.clone();
        bytes[offset] ^= 1 << (i % 8);
        std::fs::write(root.join("wal-000000.log"), &bytes).unwrap();
        let (db, _) = VectorDatabase::open_durable(&root, DurabilityConfig::new())
            .unwrap_or_else(|e| panic!("flip at byte {offset} must not be fatal: {e}"));
        let rows = db.metadata_rows();
        assert_eq!(rows as u64 % ROWS_PER_BATCH, 0, "flip at byte {offset}");
        // Every surfaced row decodes back to exactly what was written.
        for b in 0..(rows as u64 / ROWS_PER_BATCH) {
            for r in 0..ROWS_PER_BATCH {
                let expect = record(b, r);
                let got = db.patch(expect.patch_id).unwrap();
                assert_eq!(got, expect, "flip at byte {offset} mangled a row");
            }
        }
        let _ = std::fs::remove_dir_all(&root);
    }
    let _ = std::fs::remove_dir_all(&reference);
}
