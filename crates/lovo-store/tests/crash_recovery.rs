//! Crash-recovery matrix: deterministic fault injection at every durable I/O
//! point, asserting that reopening the store always recovers exactly the
//! acknowledged writes — and that the recovered database answers queries
//! identically to a twin that never crashed.
//!
//! The crash model: a [`FaultAction::CrashAfter`] fault makes the faulted
//! operation return [`StorageError::InjectedCrash`]; the test then DROPS the
//! database without any shutdown path and reopens from disk — exactly what a
//! `kill -9` leaves behind (plus whatever bytes the faulted write landed).

use lovo_store::durability::{points, FaultAction, FaultPlan};
use lovo_store::{
    patch_id, CollectionConfig, DurabilityConfig, PatchRecord, StorageError, StoreError,
    VectorDatabase,
};
use std::path::PathBuf;
use std::sync::Arc;

const DIM: usize = 8;
const COL: &str = "lovo_patches";

fn scratch_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lovo-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn vector(i: u64) -> Vec<f32> {
    // Distinct, deterministic, non-degenerate directions. Reduce the id
    // first: packed patch ids exceed f32's 24-bit mantissa, and casting them
    // directly would collapse a whole batch onto one point.
    let x = (i % 65_537) as f32;
    (0..DIM)
        .map(|d| ((x + 1.0) * 0.37 + d as f32 * 1.31).sin())
        .collect()
}

fn record(video: u32, frame: u32, patch: u32) -> PatchRecord {
    PatchRecord {
        patch_id: patch_id(video, frame, patch),
        video_id: video,
        frame_index: frame,
        patch_index: patch,
        bbox: (patch as f32, frame as f32, 16.0, 16.0),
        timestamp: frame as f64 / 30.0,
        class_code: Some((patch % 5) as u8),
    }
}

/// One ingest batch: `per_frame` patches of one key frame.
fn batch(video: u32, frame: u32, per_frame: u32) -> Vec<(Vec<f32>, PatchRecord)> {
    (0..per_frame)
        .map(|patch| {
            let rec = record(video, frame, patch);
            (vector(rec.patch_id), rec)
        })
        .collect()
}

fn insert_batch(
    db: &VectorDatabase,
    rows: &[(Vec<f32>, PatchRecord)],
) -> lovo_store::Result<usize> {
    db.insert_patches(COL, rows.iter().map(|(v, r)| (v.as_slice(), r.clone())))
}

fn config() -> CollectionConfig {
    CollectionConfig::new(DIM).with_segment_capacity(64)
}

/// An in-memory database fed the same acknowledged batches — the
/// never-crashed twin the recovered store must be indistinguishable from.
fn twin(batches: &[Vec<(Vec<f32>, PatchRecord)>], seal: bool) -> VectorDatabase {
    let db = VectorDatabase::new();
    db.create_collection(COL, config()).unwrap();
    for rows in batches {
        insert_batch(&db, rows).unwrap();
    }
    if seal {
        db.seal_collection(COL).unwrap();
    }
    db
}

fn top_ids(db: &VectorDatabase, query: &[f32], k: usize) -> Vec<u64> {
    db.search(COL, query, k)
        .unwrap()
        .into_iter()
        .map(|h| h.patch_id)
        .collect()
}

/// Asserts the recovered database returns the same hits as the twin for a
/// spread of probes.
fn assert_matches_twin(recovered: &VectorDatabase, twin: &VectorDatabase) {
    assert_eq!(recovered.metadata_rows(), twin.metadata_rows());
    for probe in [0u64, 7, 40, 1000, 123_456] {
        let q = vector(probe);
        assert_eq!(
            top_ids(recovered, &q, 10),
            top_ids(twin, &q, 10),
            "probe {probe} diverged from the never-crashed twin"
        );
    }
}

fn is_injected_crash(err: &StoreError) -> bool {
    matches!(err, StoreError::Storage(StorageError::InjectedCrash { .. }))
}

#[test]
fn clean_reopen_restores_rows_and_results() {
    let root = scratch_root("clean");
    let batches: Vec<_> = (0..6u32).map(|f| batch(1, f, 20)).collect();
    {
        let db = VectorDatabase::create_durable(&root, DurabilityConfig::new()).unwrap();
        db.create_collection(COL, config()).unwrap();
        for rows in &batches[..4] {
            insert_batch(&db, rows).unwrap();
        }
        db.seal_collection(COL).unwrap();
        // Two more batches stay in the growing buffer, covered only by the WAL.
        for rows in &batches[4..] {
            insert_batch(&db, rows).unwrap();
        }
        assert!(db.is_durable());
        assert!(db.wal_records() > 0);
    } // dropped without any shutdown: the kill -9 model
    let (db, report) = VectorDatabase::open_durable(&root, DurabilityConfig::new()).unwrap();
    assert!(report.is_clean(), "clean shutdown must recover losslessly");
    assert!(report.segments_loaded >= 1);
    assert_eq!(report.wal_rows_replayed, 40, "two 20-row unsealed batches");
    let reference = twin(&batches, false);
    assert_matches_twin(&db, &reference);
    // The reopened store keeps working: more writes, another reopen.
    insert_batch(&db, &batch(2, 0, 20)).unwrap();
    drop(db);
    let (db, _) = VectorDatabase::open_durable(&root, DurabilityConfig::new()).unwrap();
    assert_eq!(db.metadata_rows(), 140);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn faulted_wal_append_loses_only_the_unacknowledged_batch() {
    for action in [FaultAction::Fail, FaultAction::ShortWrite(13)] {
        let root = scratch_root(&format!("append-{action:?}"));
        let plan = Arc::new(FaultPlan::new());
        let db = VectorDatabase::create_durable(
            &root,
            DurabilityConfig::new().with_faults(plan.clone()),
        )
        .unwrap();
        db.create_collection(COL, config()).unwrap();
        let acked: Vec<_> = (0..2u32).map(|f| batch(1, f, 10)).collect();
        for rows in &acked {
            insert_batch(&db, rows).unwrap();
        }
        plan.inject(points::WAL_APPEND, action);
        let err = insert_batch(&db, &batch(1, 9, 10)).unwrap_err();
        assert!(matches!(err, StoreError::Storage(_)), "{err}");
        assert_eq!(plan.triggered(), vec![points::WAL_APPEND.to_string()]);
        // The failed batch was not applied in memory either: memory and disk
        // agree that it never happened.
        assert_eq!(db.metadata_rows(), 20);
        // The log rolled back cleanly — the next append lands fine.
        insert_batch(&db, &batch(1, 3, 10)).unwrap();
        drop(db);
        let (db, report) = VectorDatabase::open_durable(&root, DurabilityConfig::new()).unwrap();
        assert!(report.is_clean());
        let reference = twin(
            &[acked[0].clone(), acked[1].clone(), batch(1, 3, 10)],
            false,
        );
        assert_matches_twin(&db, &reference);
        let _ = std::fs::remove_dir_all(&root);
    }
}

#[test]
fn crash_between_wal_append_and_fsync_drops_the_unacked_batch() {
    let root = scratch_root("wal-sync");
    let plan = Arc::new(FaultPlan::new());
    let db =
        VectorDatabase::create_durable(&root, DurabilityConfig::new().with_faults(plan.clone()))
            .unwrap();
    db.create_collection(COL, config()).unwrap();
    let acked = batch(1, 0, 12);
    insert_batch(&db, &acked).unwrap();
    plan.inject(points::WAL_SYNC, FaultAction::CrashAfter(0));
    let err = insert_batch(&db, &batch(1, 1, 12)).unwrap_err();
    assert!(is_injected_crash(&err), "{err}");
    drop(db); // killed between append and fsync
    let (db, report) = VectorDatabase::open_durable(&root, DurabilityConfig::new()).unwrap();
    // The batch was never acknowledged; recovery holding exactly the acked
    // writes means holding only batch 0.
    assert_eq!(db.metadata_rows(), 12);
    assert!(report.is_clean());
    assert_matches_twin(&db, &twin(std::slice::from_ref(&acked), false));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn torn_wal_tail_is_truncated_to_the_last_acked_batch() {
    let root = scratch_root("torn");
    let batches: Vec<_> = (0..3u32).map(|f| batch(1, f, 15)).collect();
    {
        let db = VectorDatabase::create_durable(&root, DurabilityConfig::new()).unwrap();
        db.create_collection(COL, config()).unwrap();
        for rows in &batches {
            insert_batch(&db, rows).unwrap();
        }
    }
    // Tear the last record: the crash landed only part of the final append.
    let wal = root.join("wal-000000.log");
    let len = std::fs::metadata(&wal).unwrap().len();
    let file = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
    file.set_len(len - 7).unwrap();
    drop(file);
    let (db, report) = VectorDatabase::open_durable(&root, DurabilityConfig::new()).unwrap();
    assert!(report.wal_bytes_truncated > 0);
    assert!(!report.is_clean());
    assert_eq!(db.metadata_rows(), 30, "first two batches survive");
    assert_matches_twin(&db, &twin(&batches[..2], false));
    // Post-truncation the log accepts appends and the store stays durable.
    insert_batch(&db, &batches[2]).unwrap();
    drop(db);
    let (db, report) = VectorDatabase::open_durable(&root, DurabilityConfig::new()).unwrap();
    assert!(report.is_clean());
    assert_matches_twin(&db, &twin(&batches, false));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn crash_matrix_mid_seal_recovers_every_acked_row() {
    // Kill the seal at each I/O stage: segment write (torn), segment fsync,
    // rename into place, manifest write/fsync/rename. Whatever the stage, the
    // acked rows must all come back (from the WAL, the old manifest, or the
    // new one) and queries must match the twin.
    let cases: &[(&'static str, FaultAction)] = &[
        (points::SEGMENT_WRITE, FaultAction::CrashAfter(64)),
        (points::SEGMENT_SYNC, FaultAction::CrashAfter(0)),
        (points::SEGMENT_RENAME, FaultAction::CrashAfter(0)),
        (points::MANIFEST_WRITE, FaultAction::CrashAfter(10)),
        (points::MANIFEST_SYNC, FaultAction::CrashAfter(0)),
        (points::MANIFEST_RENAME, FaultAction::CrashAfter(0)),
    ];
    let batches: Vec<_> = (0..4u32).map(|f| batch(1, f, 12)).collect();
    for (point, action) in cases {
        let root = scratch_root(&format!("seal-{}", point.replace('.', "-")));
        let plan = Arc::new(FaultPlan::new());
        let db = VectorDatabase::create_durable(
            &root,
            DurabilityConfig::new().with_faults(plan.clone()),
        )
        .unwrap();
        db.create_collection(COL, config()).unwrap();
        for rows in &batches {
            insert_batch(&db, rows).unwrap();
        }
        plan.inject(point, *action);
        let err = db.seal_collection(COL).unwrap_err();
        assert!(is_injected_crash(&err), "{point}: {err}");
        drop(db);
        let (db, report) = VectorDatabase::open_durable(&root, DurabilityConfig::new()).unwrap();
        assert!(
            report.quarantined.is_empty(),
            "{point}: a half-written segment must never be visible, let alone quarantined"
        );
        assert_matches_twin(&db, &twin(&batches, false));
        // And the recovered store can complete the interrupted seal.
        db.seal_collection(COL).unwrap();
        drop(db);
        let (db, report) = VectorDatabase::open_durable(&root, DurabilityConfig::new()).unwrap();
        assert!(report.is_clean(), "{point}");
        assert_matches_twin(&db, &twin(&batches, true));
        let _ = std::fs::remove_dir_all(&root);
    }
}

#[test]
fn crash_matrix_mid_compaction_yields_old_or_new_set_never_a_mix() {
    let cases: &[(&'static str, FaultAction)] = &[
        (points::COMPACT_SEGMENT_WRITE, FaultAction::CrashAfter(100)),
        (points::SEGMENT_SYNC, FaultAction::CrashAfter(0)),
        (points::SEGMENT_RENAME, FaultAction::CrashAfter(0)),
        (points::MANIFEST_WRITE, FaultAction::CrashAfter(0)),
        (points::MANIFEST_RENAME, FaultAction::CrashAfter(0)),
    ];
    for (point, action) in cases {
        let root = scratch_root(&format!("compact-{}", point.replace('.', "-")));
        let plan = Arc::new(FaultPlan::new());
        let db = VectorDatabase::create_durable(
            &root,
            DurabilityConfig::new().with_faults(plan.clone()),
        )
        .unwrap();
        db.create_collection(COL, config()).unwrap();
        // Three undersized sealed segments (12 rows each, capacity 64).
        let batches: Vec<_> = (0..3u32).map(|f| batch(1, f, 12)).collect();
        for rows in &batches {
            insert_batch(&db, rows).unwrap();
            db.seal_collection(COL).unwrap();
        }
        assert_eq!(db.collection_stats(COL).unwrap().sealed_segments, 3);
        plan.inject(point, *action);
        let err = db.compact_collection(COL).unwrap_err();
        assert!(is_injected_crash(&err), "{point}: {err}");
        drop(db);
        let (db, report) = VectorDatabase::open_durable(&root, DurabilityConfig::new()).unwrap();
        // Old set or new set — never a mix, never a loss, never a duplicate.
        let sealed = db.collection_stats(COL).unwrap().sealed_segments;
        assert!(
            sealed == 3 || sealed == 1,
            "{point}: recovered {sealed} segments — a mixed set"
        );
        assert_eq!(
            report.rows_loaded, 36,
            "{point}: every acked row, exactly once"
        );
        assert!(report.quarantined.is_empty(), "{point}");
        let reference = twin(&batches, true);
        assert_matches_twin(&db, &reference);
        // Compaction can complete after recovery.
        db.compact_collection(COL).unwrap();
        assert_eq!(db.collection_stats(COL).unwrap().sealed_segments, 1);
        drop(db);
        let (db, _) = VectorDatabase::open_durable(&root, DurabilityConfig::new()).unwrap();
        assert_matches_twin(&db, &reference);
        let _ = std::fs::remove_dir_all(&root);
    }
}

#[test]
fn corrupt_sealed_segment_is_quarantined_and_reported_not_fatal() {
    let root = scratch_root("quarantine");
    let healthy = batch(1, 0, 20);
    let doomed = batch(2, 0, 20);
    {
        let db = VectorDatabase::create_durable(&root, DurabilityConfig::new()).unwrap();
        db.create_collection(COL, config()).unwrap();
        insert_batch(&db, &healthy).unwrap();
        db.seal_collection(COL).unwrap();
        insert_batch(&db, &doomed).unwrap();
        db.seal_collection(COL).unwrap();
    }
    // Flip one byte in the middle of the second segment file.
    let seg_dir = root.join("segments");
    let mut files: Vec<_> = std::fs::read_dir(&seg_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    files.sort();
    assert_eq!(files.len(), 2);
    let target = files.last().unwrap();
    let mut bytes = std::fs::read(target).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(target, &bytes).unwrap();

    let (db, report) = VectorDatabase::open_durable(&root, DurabilityConfig::new()).unwrap();
    assert_eq!(report.quarantined.len(), 1);
    assert_eq!(report.rows_lost(), 20);
    assert!(!report.is_clean());
    assert_eq!(report.segments_loaded, 1);
    // The corrupt file was moved aside, not deleted: operators can inspect it.
    assert_eq!(
        std::fs::read_dir(root.join("quarantine")).unwrap().count(),
        1
    );
    // The engine degrades: the healthy segment still serves.
    assert_eq!(db.metadata_rows(), 20);
    let q = vector(healthy[3].1.patch_id);
    assert_eq!(top_ids(&db, &q, 1)[0], healthy[3].1.patch_id);
    // A second reopen is clean — the quarantine was committed to the manifest.
    drop(db);
    let (_, report) = VectorDatabase::open_durable(&root, DurabilityConfig::new()).unwrap();
    assert!(report.is_clean());
    assert_eq!(report.segments_loaded, 1);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn wal_rotates_once_every_row_is_sealed() {
    let root = scratch_root("rotate");
    let db = VectorDatabase::create_durable(&root, DurabilityConfig::new()).unwrap();
    db.create_collection(COL, config()).unwrap();
    insert_batch(&db, &batch(1, 0, 30)).unwrap();
    assert_eq!(db.wal_records(), 1);
    db.seal_collection(COL).unwrap();
    // Every row now lives in a sealed segment file: the log was rotated.
    assert_eq!(db.wal_records(), 0);
    let wal_files: Vec<_> = std::fs::read_dir(&root)
        .unwrap()
        .filter_map(|e| {
            let name = e.unwrap().file_name().to_string_lossy().into_owned();
            name.starts_with("wal-").then_some(name)
        })
        .collect();
    assert_eq!(wal_files, vec!["wal-000001.log".to_string()]);
    drop(db);
    let (db, report) = VectorDatabase::open_durable(&root, DurabilityConfig::new()).unwrap();
    assert!(report.is_clean());
    assert_eq!(report.wal_records_replayed, 0, "nothing left to replay");
    assert_eq!(db.metadata_rows(), 30);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn aux_blobs_survive_seal_compaction_and_recovery() {
    let root = scratch_root("aux");
    let frame_key = |video: u32, frame: u32| (u64::from(video) << 32) | u64::from(frame);
    {
        let db = VectorDatabase::create_durable(&root, DurabilityConfig::new()).unwrap();
        db.create_collection(COL, config()).unwrap();
        for frame in 0..3u32 {
            let rows = batch(1, frame, 10);
            db.insert_patches_with_aux(
                COL,
                rows.iter().map(|(v, r)| (v.as_slice(), r.clone())),
                vec![(frame_key(1, frame), vec![frame as u8; 9])],
            )
            .unwrap();
            db.seal_collection(COL).unwrap();
        }
    }
    // Recovered via segment AUX sections (the WAL already rotated away).
    let (db, report) = VectorDatabase::open_durable(&root, DurabilityConfig::new()).unwrap();
    for frame in 0..3u32 {
        assert_eq!(
            report.aux_blobs.get(&frame_key(1, frame)),
            Some(&vec![frame as u8; 9]),
            "frame {frame} blob lost at seal"
        );
    }
    // Compaction must carry the blobs into the merged segment's AUX section.
    db.compact_collection(COL).unwrap();
    assert_eq!(db.collection_stats(COL).unwrap().sealed_segments, 1);
    drop(db);
    let (_, report) = VectorDatabase::open_durable(&root, DurabilityConfig::new()).unwrap();
    for frame in 0..3u32 {
        assert_eq!(
            report.aux_blobs.get(&frame_key(1, frame)),
            Some(&vec![frame as u8; 9]),
            "frame {frame} blob lost at compaction"
        );
    }
    // Unsealed path: a blob logged with an unsealed batch survives via WAL.
    let (db, _) = VectorDatabase::open_durable(&root, DurabilityConfig::new()).unwrap();
    let rows = batch(1, 7, 5);
    db.insert_patches_with_aux(
        COL,
        rows.iter().map(|(v, r)| (v.as_slice(), r.clone())),
        vec![(frame_key(1, 7), vec![0xAB; 4])],
    )
    .unwrap();
    drop(db);
    let (_, report) = VectorDatabase::open_durable(&root, DurabilityConfig::new()).unwrap();
    assert_eq!(report.aux_blobs.get(&frame_key(1, 7)), Some(&vec![0xAB; 4]));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn replacing_a_collection_fences_its_stale_wal_records() {
    let root = scratch_root("replace");
    {
        let db = VectorDatabase::create_durable(&root, DurabilityConfig::new()).unwrap();
        db.create_collection(COL, config()).unwrap();
        insert_batch(&db, &batch(1, 0, 10)).unwrap(); // old incarnation, unsealed
        db.create_collection(COL, config()).unwrap(); // replace
        insert_batch(&db, &batch(2, 0, 4)).unwrap();
    }
    let (db, report) = VectorDatabase::open_durable(&root, DurabilityConfig::new()).unwrap();
    // Only the new incarnation's rows may resurrect.
    assert_eq!(db.metadata_rows(), 4);
    assert_eq!(report.wal_rows_replayed, 4);
    assert!(db.video_ids().contains(&2));
    assert!(!db.video_ids().contains(&1));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn orphaned_files_are_swept_at_open() {
    let root = scratch_root("orphans");
    {
        let db = VectorDatabase::create_durable(&root, DurabilityConfig::new()).unwrap();
        db.create_collection(COL, config()).unwrap();
        insert_batch(&db, &batch(1, 0, 10)).unwrap();
        db.seal_collection(COL).unwrap();
    }
    // Plant the debris a crash can leave: a temp file from an interrupted
    // atomic write and a segment file no manifest references.
    std::fs::write(root.join("MANIFEST.tmp"), b"torn").unwrap();
    std::fs::write(root.join("segments").join("seg-ghost-000099.lseg"), b"x").unwrap();
    let (db, report) = VectorDatabase::open_durable(&root, DurabilityConfig::new()).unwrap();
    assert_eq!(report.orphan_files_removed, 2);
    assert!(!root.join("MANIFEST.tmp").exists());
    assert!(!root.join("segments").join("seg-ghost-000099.lseg").exists());
    assert_eq!(db.metadata_rows(), 10);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn create_refuses_an_occupied_root_and_open_refuses_an_empty_one() {
    let root = scratch_root("refuse");
    let db = VectorDatabase::create_durable(&root, DurabilityConfig::new()).unwrap();
    drop(db);
    match VectorDatabase::create_durable(&root, DurabilityConfig::new()) {
        Err(StoreError::Storage(StorageError::AlreadyExists { .. })) => {}
        Err(other) => panic!("expected AlreadyExists, got: {other}"),
        Ok(_) => panic!("create over an occupied root must fail"),
    }
    let empty = scratch_root("refuse-empty");
    assert!(VectorDatabase::open_durable(&empty, DurabilityConfig::new()).is_err());
    let _ = std::fs::remove_dir_all(&root);
}
