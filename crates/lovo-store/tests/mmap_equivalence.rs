//! mmap ≡ heap equivalence: the mapped read path must be observationally
//! identical to the heap read path — bit-for-bit search results (ids AND
//! scores) across every index family, filtered and unfiltered — and must
//! degrade exactly like it: mmap failures fall back to heap, corrupt
//! segments quarantine identically, compaction releases mappings before it
//! deletes the files they map.
//!
//! The equivalence holds by construction — both paths feed the same decoded
//! rows through `Segment::restore_sealed`, which replays the exact heap
//! insert + build sequence — and these tests pin that construction against
//! regressions (a stray re-normalization, a lossy copy, an alignment slip).

use lovo_index::{IndexKind, QuantizationOptions};
use lovo_store::durability::{points, FaultAction, FaultPlan};
use lovo_store::{
    patch_id, CollectionConfig, DurabilityConfig, OpenOptions, PatchPredicate, PatchRecord,
    VectorDatabase, MMAP_SUPPORTED,
};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;

const DIM: usize = 16;
const COL: &str = "lovo_patches";

fn scratch_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lovo-mmap-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn vector(i: u64) -> Vec<f32> {
    let x = (i % 65_537) as f32;
    (0..DIM)
        .map(|d| ((x + 1.0) * 0.37 + d as f32 * 1.31).sin())
        .collect()
}

fn record(video: u32, frame: u32, patch: u32) -> PatchRecord {
    PatchRecord {
        patch_id: patch_id(video, frame, patch),
        video_id: video,
        frame_index: frame,
        patch_index: patch,
        bbox: (patch as f32, frame as f32, 16.0, 16.0),
        timestamp: frame as f64 / 30.0,
        class_code: Some((patch % 5) as u8),
    }
}

fn batch(video: u32, frame: u32, per_frame: u32) -> Vec<(Vec<f32>, PatchRecord)> {
    (0..per_frame)
        .map(|patch| {
            let rec = record(video, frame, patch);
            (vector(rec.patch_id), rec)
        })
        .collect()
}

/// Every index family the segment writer can seal: flat f32, int8 flat,
/// exact IVF-PQ, and fully quantized IVF-PQ (fast-scan codes + int8
/// rescore tier).
fn families() -> Vec<(&'static str, CollectionConfig)> {
    vec![
        (
            "flat",
            CollectionConfig::new(DIM)
                .with_index_kind(IndexKind::BruteForce)
                .with_segment_capacity(64),
        ),
        (
            "int8-flat",
            CollectionConfig::new(DIM)
                .with_index_kind(IndexKind::BruteForce)
                .with_quantization(QuantizationOptions {
                    int8_flat: true,
                    ..QuantizationOptions::none()
                })
                .with_segment_capacity(64),
        ),
        (
            "ivf-pq",
            CollectionConfig::new(DIM)
                .with_index_kind(IndexKind::IvfPq)
                .with_segment_capacity(64),
        ),
        (
            "ivf-fastscan",
            CollectionConfig::new(DIM)
                .with_index_kind(IndexKind::IvfPq)
                .with_quantization(QuantizationOptions::all())
                .with_segment_capacity(64),
        ),
    ]
}

/// Builds a durable store with three sealed segments of `per_frame` rows
/// each (two videos) plus an unsealed WAL tail, then drops it.
fn build_store_with(root: &PathBuf, config: CollectionConfig, per_frame: u32) {
    let db = VectorDatabase::create_durable(root, DurabilityConfig::new()).unwrap();
    db.create_collection(COL, config).unwrap();
    for (video, frame) in [(1u32, 0u32), (1, 1), (2, 0)] {
        let rows = batch(video, frame, per_frame);
        db.insert_patches(COL, rows.iter().map(|(v, r)| (v.as_slice(), r.clone())))
            .unwrap();
        db.seal_collection(COL).unwrap();
    }
    // A WAL-only tail: growing rows take the heap path in both modes.
    let tail = batch(2, 1, 7);
    db.insert_patches(COL, tail.iter().map(|(v, r)| (v.as_slice(), r.clone())))
        .unwrap();
}

fn build_store(root: &PathBuf, config: CollectionConfig) {
    build_store_with(root, config, 40);
}

/// Full search observation: ids plus exact score bit patterns.
fn observe(db: &VectorDatabase, query: &[f32], k: usize) -> Vec<(u64, u32)> {
    db.search(COL, query, k)
        .unwrap()
        .into_iter()
        .map(|h| (h.patch_id, h.score.to_bits()))
        .collect()
}

fn observe_filtered(
    db: &VectorDatabase,
    query: &[f32],
    k: usize,
    predicate: &PatchPredicate,
) -> Vec<(u64, u32)> {
    db.search_with_predicate(COL, query, k, predicate)
        .unwrap()
        .0
        .into_iter()
        .map(|h| (h.patch_id, h.score.to_bits()))
        .collect()
}

/// The probe set: spread over both videos, plus off-manifold directions.
fn probes() -> Vec<Vec<f32>> {
    let mut probes: Vec<Vec<f32>> = [0u64, 3, 17, 1000, 99_999]
        .iter()
        .map(|&i| vector(i))
        .collect();
    probes.push(vector(patch_id(1, 1, 5)));
    probes.push(vector(patch_id(2, 0, 31)));
    // Deterministic pseudo-random probes (LCG), not drawn from the corpus.
    let mut state = 0x9E37_79B9u64;
    for _ in 0..5 {
        let q: Vec<f32> = (0..DIM)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect();
        probes.push(q);
    }
    probes
}

fn predicates() -> Vec<PatchPredicate> {
    vec![
        PatchPredicate {
            video_ids: Some(BTreeSet::from([1u32])),
            ..PatchPredicate::default()
        },
        PatchPredicate {
            class_codes: Some(BTreeSet::from([0u8, 3])),
            ..PatchPredicate::default()
        },
        PatchPredicate {
            video_ids: Some(BTreeSet::from([2u32])),
            time_range: Some((0.0, 0.02)),
            ..PatchPredicate::default()
        },
    ]
}

/// The property: for every index family, every probe, every k, and every
/// pushed-down predicate, the mmap-opened store answers bit-identically to
/// the heap-opened store — in eager and deferred verification modes.
#[test]
fn mmap_and_heap_reads_are_bit_identical_across_index_families() {
    for (name, config) in families() {
        let root = scratch_root(&format!("equiv-{name}"));
        build_store(&root, config);

        let (heap, heap_report) = VectorDatabase::open_durable_with(
            &root,
            DurabilityConfig::new(),
            OpenOptions::default(),
        )
        .unwrap();
        assert!(heap_report.is_clean(), "{name}: heap open");
        assert_eq!(heap.mapped_bytes(), 0, "{name}: heap open must not map");

        for deferred in [false, true] {
            let options = OpenOptions::default()
                .with_mmap(true)
                .with_verify_payload(!deferred);
            let (mapped, report) =
                VectorDatabase::open_durable_with(&root, DurabilityConfig::new(), options).unwrap();
            assert!(report.is_clean(), "{name}: mmap open (deferred={deferred})");
            if MMAP_SUPPORTED {
                assert!(
                    mapped.mapped_bytes() > 0,
                    "{name}: sealed v2 segments must serve from mappings"
                );
            }
            assert_eq!(
                heap.metadata_rows(),
                mapped.metadata_rows(),
                "{name}: row counts diverge"
            );
            for (p, query) in probes().iter().enumerate() {
                for k in [1usize, 10, 50] {
                    assert_eq!(
                        observe(&heap, query, k),
                        observe(&mapped, query, k),
                        "{name}: probe {p} k={k} diverged (deferred={deferred})"
                    );
                }
                for (f, predicate) in predicates().iter().enumerate() {
                    assert_eq!(
                        observe_filtered(&heap, query, 10, predicate),
                        observe_filtered(&mapped, query, 10, predicate),
                        "{name}: probe {p} filter {f} diverged (deferred={deferred})"
                    );
                }
            }
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}

/// Warm-up touches every mapped byte and the residency gauge sees it; both
/// are advisory no-ops on the heap path.
#[test]
fn warmup_faults_mappings_in_and_reports_bytes() {
    let root = scratch_root("warmup");
    build_store(&root, families().remove(0).1);
    let (db, _) = VectorDatabase::open_durable_with(
        &root,
        DurabilityConfig::new(),
        OpenOptions::default().with_mmap(true),
    )
    .unwrap();
    if MMAP_SUPPORTED {
        assert_eq!(db.warmup(), db.mapped_bytes());
        assert!(db.resident_bytes() <= db.mapped_bytes().next_multiple_of(4096));
    } else {
        assert_eq!(db.warmup(), 0);
        assert_eq!(db.mapped_bytes(), 0);
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// An injected mmap failure (`segment.mmap`) must not fail the open: the
/// loader falls back to the heap read for that file and recovery stays
/// clean, with identical query results.
#[test]
fn mmap_fault_falls_back_to_heap_read() {
    let root = scratch_root("fault-mmap");
    build_store(&root, families().remove(0).1);
    let plan = Arc::new(FaultPlan::new());
    // Faults are one-shot: arm one per sealed segment so every map fails.
    for _ in 0..3 {
        plan.inject(points::SEGMENT_MMAP, FaultAction::Fail);
    }
    let (db, report) = VectorDatabase::open_durable_with(
        &root,
        DurabilityConfig::new().with_faults(plan.clone()),
        OpenOptions::default().with_mmap(true),
    )
    .unwrap();
    assert!(report.is_clean(), "fallback must be invisible to recovery");
    assert!(
        plan.triggered().contains(&points::SEGMENT_MMAP.to_string()),
        "the mmap point must actually have fired"
    );
    assert_eq!(
        db.mapped_bytes(),
        0,
        "the faulted file must not stay mapped"
    );
    let (heap, _) =
        VectorDatabase::open_durable_with(&root, DurabilityConfig::new(), OpenOptions::default())
            .unwrap();
    for query in probes() {
        assert_eq!(observe(&heap, &query, 10), observe(&db, &query, 10));
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// `segment.madvise` failures are advisory: warm-up reports zero bytes and
/// queries are unaffected.
#[test]
fn madvise_fault_is_advisory_only() {
    let root = scratch_root("fault-madvise");
    build_store(&root, families().remove(0).1);
    let plan = Arc::new(FaultPlan::new());
    let (db, _) = VectorDatabase::open_durable_with(
        &root,
        DurabilityConfig::new().with_faults(plan.clone()),
        OpenOptions::default().with_mmap(true),
    )
    .unwrap();
    // One one-shot fault per live mapping: every hint in the warm-up pass
    // must be refused for the total to come out zero.
    for _ in 0..3 {
        plan.inject(points::SEGMENT_MADVISE, FaultAction::Fail);
    }
    assert_eq!(db.warmup(), 0, "a refused hint reports zero bytes advised");
    if MMAP_SUPPORTED {
        assert!(
            plan.triggered()
                .contains(&points::SEGMENT_MADVISE.to_string()),
            "the madvise point must actually have fired"
        );
    }
    assert_eq!(db.search(COL, &vector(3), 5).unwrap().len(), 5);
    let _ = std::fs::remove_dir_all(&root);
}

/// A corrupt segment quarantines identically under mmap and heap opens:
/// same report shape, same survivor set, corrupt file moved aside — and the
/// mapping is dropped before the rename, or the rename would fail the test
/// on platforms that refuse to move busy files (and leak on the rest).
#[test]
fn corrupt_mapped_segment_quarantines_exactly_like_heap() {
    for options in [
        OpenOptions::default(),
        OpenOptions::default().with_mmap(true),
    ] {
        let tag = if options.mmap { "mmap" } else { "heap" };
        let root = scratch_root(&format!("quarantine-{tag}"));
        let healthy = batch(1, 0, 20);
        let doomed = batch(2, 0, 20);
        {
            let db = VectorDatabase::create_durable(&root, DurabilityConfig::new()).unwrap();
            db.create_collection(COL, CollectionConfig::new(DIM).with_segment_capacity(64))
                .unwrap();
            db.insert_patches(COL, healthy.iter().map(|(v, r)| (v.as_slice(), r.clone())))
                .unwrap();
            db.seal_collection(COL).unwrap();
            db.insert_patches(COL, doomed.iter().map(|(v, r)| (v.as_slice(), r.clone())))
                .unwrap();
            db.seal_collection(COL).unwrap();
        }
        let mut files: Vec<_> = std::fs::read_dir(root.join("segments"))
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        files.sort();
        let target = files.last().unwrap();
        let mut bytes = std::fs::read(target).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(target, &bytes).unwrap();

        let (db, report) =
            VectorDatabase::open_durable_with(&root, DurabilityConfig::new(), options).unwrap();
        assert_eq!(report.quarantined.len(), 1, "{tag}");
        assert_eq!(report.rows_lost(), 20, "{tag}");
        assert_eq!(report.segments_loaded, 1, "{tag}");
        assert_eq!(
            std::fs::read_dir(root.join("quarantine")).unwrap().count(),
            1,
            "{tag}: the corrupt file must be moved aside"
        );
        assert_eq!(db.metadata_rows(), 20, "{tag}");
        let q = vector(healthy[3].1.patch_id);
        assert_eq!(
            db.search(COL, &q, 1).unwrap()[0].patch_id,
            healthy[3].1.patch_id,
            "{tag}: the healthy segment must still serve"
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}

/// Compaction under mmap: the merged segment replaces the mapped inputs,
/// their mappings are released (not leaked), and the compacted store still
/// answers like a never-compacted heap twin.
#[test]
fn compaction_releases_input_mappings_and_preserves_results() {
    let root = scratch_root("compact");
    // 12-row segments: below the capacity/2 = 32 compaction threshold, so
    // one pass merges all three.
    build_store_with(&root, families().remove(0).1, 12);
    let (db, _) = VectorDatabase::open_durable_with(
        &root,
        DurabilityConfig::new(),
        OpenOptions::default().with_mmap(true),
    )
    .unwrap();
    let before = db.mapped_bytes();
    let reference: Vec<_> = probes().iter().map(|q| observe(&db, q, 10)).collect();
    db.compact_collection(COL).unwrap();
    assert_eq!(db.collection_stats(COL).unwrap().sealed_segments, 1);
    if MMAP_SUPPORTED {
        assert!(before > 0);
        // The inputs' mappings died with their segments; the merged segment
        // was written (and loaded) through the heap path of this process, so
        // nothing stays mapped until the next open.
        assert_eq!(db.mapped_bytes(), 0, "input mappings must be released");
    }
    let after: Vec<_> = probes().iter().map(|q| observe(&db, q, 10)).collect();
    assert_eq!(reference, after, "compaction changed results");
    drop(db);
    // The compacted store reopens mapped and clean.
    let (db, report) = VectorDatabase::open_durable_with(
        &root,
        DurabilityConfig::new(),
        OpenOptions::default().with_mmap(true),
    )
    .unwrap();
    assert!(report.is_clean());
    if MMAP_SUPPORTED {
        assert!(db.mapped_bytes() > 0);
    }
    let after: Vec<_> = probes().iter().map(|q| observe(&db, q, 10)).collect();
    assert_eq!(reference, after, "reopen after compaction changed results");
    let _ = std::fs::remove_dir_all(&root);
}

/// MAP_POPULATE is a pure pre-fault hint: results identical, residency at
/// or above the lazy mapping's.
#[test]
fn populate_changes_residency_not_results() {
    let root = scratch_root("populate");
    build_store(&root, families().remove(0).1);
    let (lazy, _) = VectorDatabase::open_durable_with(
        &root,
        DurabilityConfig::new(),
        OpenOptions::default().with_mmap(true),
    )
    .unwrap();
    let (eager, _) = VectorDatabase::open_durable_with(
        &root,
        DurabilityConfig::new(),
        OpenOptions::default().with_mmap(true).with_populate(true),
    )
    .unwrap();
    if MMAP_SUPPORTED {
        assert_eq!(eager.mapped_bytes(), lazy.mapped_bytes());
        assert_eq!(eager.resident_bytes(), eager.mapped_bytes());
    }
    for query in probes() {
        assert_eq!(observe(&lazy, &query, 10), observe(&eager, &query, 10));
    }
    let _ = std::fs::remove_dir_all(&root);
}
