//! Semantic object model: the ground-truth attributes an object carries.
//!
//! The evaluation queries in the paper (Table II / Table VI) combine an object
//! class ("car", "SUV", "bus", "person", "dog"), visual attributes ("red",
//! "white roof", "light-colored clothing"), an activity ("walking", "riding a
//! bicycle", "driving", "sitting", "dancing"), a location ("on the road", "in
//! the intersection", "inside a car", "in the room"), and spatial relations
//! ("side by side with another car", "next to a woman"). This module encodes
//! that attribute space. Both the synthetic scenes and the query parser speak
//! this vocabulary, which is what lets the reproduction compute exact ground
//! truth while still exercising the full embedding/indexing/rerank pipeline.

use serde::{Deserialize, Serialize};

/// Object categories appearing in the evaluation datasets.
///
/// `Suv` is intentionally *not* part of the predefined (MSCOCO-style) label
/// set: the paper uses "SUV" as an example of a class unseen by QA-index
/// systems, which can only answer for [`ObjectClass::coco_label`] classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectClass {
    /// A regular passenger car.
    Car,
    /// A sport-utility vehicle; novel w.r.t. the predefined label set.
    Suv,
    /// A bus.
    Bus,
    /// A truck.
    Truck,
    /// A pedestrian.
    Person,
    /// A person riding a bicycle (reported as "bicycle" + "person" by COCO detectors).
    Bicyclist,
    /// A dog.
    Dog,
    /// A traffic light or other street furniture (background clutter).
    StreetFurniture,
}

impl ObjectClass {
    /// All classes the generators may emit.
    pub const ALL: [ObjectClass; 8] = [
        ObjectClass::Car,
        ObjectClass::Suv,
        ObjectClass::Bus,
        ObjectClass::Truck,
        ObjectClass::Person,
        ObjectClass::Bicyclist,
        ObjectClass::Dog,
        ObjectClass::StreetFurniture,
    ];

    /// The MSCOCO-style label a predefined-class detector would assign, or
    /// `None` if the class is not in the predefined label set.
    ///
    /// This is what the QA-index baselines index on: an `Suv` is detected as a
    /// plain `"car"`, which is precisely why those systems cannot answer
    /// "black SUV" queries (§II).
    pub fn coco_label(&self) -> Option<&'static str> {
        match self {
            ObjectClass::Car | ObjectClass::Suv => Some("car"),
            ObjectClass::Bus => Some("bus"),
            ObjectClass::Truck => Some("truck"),
            ObjectClass::Person => Some("person"),
            ObjectClass::Bicyclist => Some("bicycle"),
            ObjectClass::Dog => Some("dog"),
            ObjectClass::StreetFurniture => None,
        }
    }

    /// Human-readable name used in query text and descriptions.
    pub fn name(&self) -> &'static str {
        match self {
            ObjectClass::Car => "car",
            ObjectClass::Suv => "suv",
            ObjectClass::Bus => "bus",
            ObjectClass::Truck => "truck",
            ObjectClass::Person => "person",
            ObjectClass::Bicyclist => "bicyclist",
            ObjectClass::Dog => "dog",
            ObjectClass::StreetFurniture => "street furniture",
        }
    }

    /// Stable small integer code used by the encoders to ground embeddings
    /// and by the metadata store as the compact detector label.
    pub fn code(&self) -> usize {
        ObjectClass::ALL
            .iter()
            .position(|c| c == self)
            .expect("class listed in ALL")
    }

    /// Inverse of [`ObjectClass::code`].
    pub fn from_code(code: usize) -> Option<ObjectClass> {
        ObjectClass::ALL.get(code).copied()
    }

    /// Typical box extent `(w, h)` in pixels for a 1280x720 frame, used by the
    /// scene generators. Vehicles are wide, people are tall, dogs are small.
    pub fn typical_extent(&self) -> (f32, f32) {
        match self {
            ObjectClass::Car => (120.0, 70.0),
            ObjectClass::Suv => (140.0, 85.0),
            ObjectClass::Bus => (260.0, 110.0),
            ObjectClass::Truck => (220.0, 100.0),
            ObjectClass::Person => (45.0, 110.0),
            ObjectClass::Bicyclist => (70.0, 120.0),
            ObjectClass::Dog => (55.0, 40.0),
            ObjectClass::StreetFurniture => (30.0, 90.0),
        }
    }

    /// Whether the class is a vehicle (drives rather than walks).
    pub fn is_vehicle(&self) -> bool {
        matches!(
            self,
            ObjectClass::Car | ObjectClass::Suv | ObjectClass::Bus | ObjectClass::Truck
        )
    }
}

/// Colour attribute of an object (vehicle body, clothing, fur, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Color {
    /// Red.
    Red,
    /// Black.
    Black,
    /// White.
    White,
    /// Green.
    Green,
    /// Blue.
    Blue,
    /// Yellow-green (the Bellevue bus livery in Q2.4).
    YellowGreen,
    /// Gray / silver.
    Gray,
    /// Light-coloured (pale clothing in Q1.2).
    Light,
    /// Dark-coloured.
    Dark,
}

impl Color {
    /// All colours the generators may emit.
    pub const ALL: [Color; 9] = [
        Color::Red,
        Color::Black,
        Color::White,
        Color::Green,
        Color::Blue,
        Color::YellowGreen,
        Color::Gray,
        Color::Light,
        Color::Dark,
    ];

    /// Human-readable name used in query text.
    pub fn name(&self) -> &'static str {
        match self {
            Color::Red => "red",
            Color::Black => "black",
            Color::White => "white",
            Color::Green => "green",
            Color::Blue => "blue",
            Color::YellowGreen => "yellow-green",
            Color::Gray => "gray",
            Color::Light => "light-colored",
            Color::Dark => "dark",
        }
    }

    /// Stable small integer code used by the encoders.
    pub fn code(&self) -> usize {
        Color::ALL
            .iter()
            .position(|c| c == self)
            .expect("colour listed in ALL")
    }

    /// Whether this colour reads as a close visual neighbour of `other`
    /// (e.g. white vs light, black vs dark, gray vs silver-ish tones). The
    /// encoders use this to give near-miss colours partially overlapping
    /// embeddings, which is what makes fast search imperfect and rerank useful.
    pub fn is_similar_to(&self, other: &Color) -> bool {
        if self == other {
            return true;
        }
        matches!(
            (self, other),
            (Color::White, Color::Light)
                | (Color::Light, Color::White)
                | (Color::Black, Color::Dark)
                | (Color::Dark, Color::Black)
                | (Color::Gray, Color::Light)
                | (Color::Light, Color::Gray)
                | (Color::Green, Color::YellowGreen)
                | (Color::YellowGreen, Color::Green)
        )
    }
}

/// Coarse size attribute ("large black car").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SizeClass {
    /// Small relative to the class's typical extent.
    Small,
    /// Typical size.
    Medium,
    /// Large relative to the class's typical extent.
    Large,
}

impl SizeClass {
    /// All sizes.
    pub const ALL: [SizeClass; 3] = [SizeClass::Small, SizeClass::Medium, SizeClass::Large];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            SizeClass::Small => "small",
            SizeClass::Medium => "medium",
            SizeClass::Large => "large",
        }
    }

    /// Stable small integer code used by the encoders.
    pub fn code(&self) -> usize {
        SizeClass::ALL
            .iter()
            .position(|c| c == self)
            .expect("size listed in ALL")
    }

    /// Multiplier applied to the class's typical extent.
    pub fn scale(&self) -> f32 {
        match self {
            SizeClass::Small => 0.7,
            SizeClass::Medium => 1.0,
            SizeClass::Large => 1.35,
        }
    }
}

/// What the object is doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activity {
    /// Walking (people).
    Walking,
    /// Riding a bicycle.
    RidingBicycle,
    /// Driving (vehicles in motion).
    Driving,
    /// Parked / stationary vehicle.
    Parked,
    /// Sitting (e.g. inside a car).
    Sitting,
    /// Smiling (QVHighlights-style queries).
    Smiling,
    /// Dancing (ActivityNet-QA EQ4).
    Dancing,
    /// Standing still.
    Standing,
    /// Carrying cargo (trucks in Q4.4).
    CarryingCargo,
}

impl Activity {
    /// All activities.
    pub const ALL: [Activity; 9] = [
        Activity::Walking,
        Activity::RidingBicycle,
        Activity::Driving,
        Activity::Parked,
        Activity::Sitting,
        Activity::Smiling,
        Activity::Dancing,
        Activity::Standing,
        Activity::CarryingCargo,
    ];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Activity::Walking => "walking",
            Activity::RidingBicycle => "riding a bicycle",
            Activity::Driving => "driving",
            Activity::Parked => "parked",
            Activity::Sitting => "sitting",
            Activity::Smiling => "smiling",
            Activity::Dancing => "dancing",
            Activity::Standing => "standing",
            Activity::CarryingCargo => "carrying cargo",
        }
    }

    /// Stable small integer code used by the encoders.
    pub fn code(&self) -> usize {
        Activity::ALL
            .iter()
            .position(|c| c == self)
            .expect("activity listed in ALL")
    }

    /// Whether the activity implies motion (drives key-frame selection).
    pub fn is_moving(&self) -> bool {
        matches!(
            self,
            Activity::Walking | Activity::RidingBicycle | Activity::Driving | Activity::Dancing
        )
    }
}

/// Where the object is in the scene.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Location {
    /// On the road surface.
    Road,
    /// In the intersection.
    Intersection,
    /// In the centre of the road.
    RoadCenter,
    /// On the sidewalk / street.
    Sidewalk,
    /// Inside a car (QVHighlights queries).
    InsideCar,
    /// Indoors, in a room (ActivityNet-QA EQ4).
    Room,
    /// Outdoors, generic (ActivityNet-QA EQ3).
    Outdoors,
    /// On a meadow / grass (ActivityNet-QA EQ1).
    Meadow,
}

impl Location {
    /// All locations.
    pub const ALL: [Location; 8] = [
        Location::Road,
        Location::Intersection,
        Location::RoadCenter,
        Location::Sidewalk,
        Location::InsideCar,
        Location::Room,
        Location::Outdoors,
        Location::Meadow,
    ];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Location::Road => "on the road",
            Location::Intersection => "in the intersection",
            Location::RoadCenter => "in the center of the road",
            Location::Sidewalk => "on the sidewalk",
            Location::InsideCar => "inside a car",
            Location::Room => "in the room",
            Location::Outdoors => "outdoors",
            Location::Meadow => "on the meadow",
        }
    }

    /// Stable small integer code used by the encoders.
    pub fn code(&self) -> usize {
        Location::ALL
            .iter()
            .position(|c| c == self)
            .expect("location listed in ALL")
    }

    /// Whether a query for `self` should accept an object located at `other`.
    ///
    /// The location hierarchy is deliberately forgiving in one direction:
    /// "on the road" is satisfied by anything on the road surface (centre,
    /// intersection), while the specific locations are not satisfied by the
    /// generic one.
    pub fn accepts(&self, other: &Location) -> bool {
        if self == other {
            return true;
        }
        match self {
            Location::Road => matches!(other, Location::RoadCenter | Location::Intersection),
            Location::Outdoors => !matches!(other, Location::Room | Location::InsideCar),
            _ => false,
        }
    }
}

/// Spatial relation between the object and another object in the same frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Relation {
    /// No notable relation.
    None,
    /// Side by side with another vehicle (Q2.2).
    SideBySideWith(ObjectClass),
    /// Next to another object (Q3.4: "next to a woman wearing black clothes").
    NextTo(ObjectClass),
}

impl Relation {
    /// Stable small integer code of the relation *kind* (ignoring the peer class).
    pub fn kind_code(&self) -> usize {
        match self {
            Relation::None => 0,
            Relation::SideBySideWith(_) => 1,
            Relation::NextTo(_) => 2,
        }
    }

    /// The peer class referenced by the relation, if any.
    pub fn peer(&self) -> Option<ObjectClass> {
        match self {
            Relation::None => None,
            Relation::SideBySideWith(c) | Relation::NextTo(c) => Some(*c),
        }
    }

    /// Whether a queried relation is satisfied by an object's relation.
    pub fn accepts(&self, other: &Relation) -> bool {
        match (self, other) {
            (Relation::None, _) => true,
            (Relation::SideBySideWith(a), Relation::SideBySideWith(b)) => a == b,
            // "next to X" is also satisfied by "side by side with X": side by
            // side implies adjacency.
            (Relation::NextTo(a), Relation::NextTo(b))
            | (Relation::NextTo(a), Relation::SideBySideWith(b)) => a == b,
            _ => false,
        }
    }
}

/// Extra descriptive details that some queries reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Accessory {
    /// Holding a dark bag (Q1.2).
    DarkBag,
    /// Wearing a black t-shirt and blue jeans (Q1.4).
    BlackTshirtBlueJeans,
    /// White roof on a vehicle (Q2.4 / Q4.2).
    WhiteRoof,
    /// White dress (Q3.2).
    WhiteDress,
    /// Red hair (Q3.2).
    RedHair,
    /// Black clothes (Q3.4).
    BlackClothes,
    /// A hat (ActivityNet-QA EQ2).
    Hat,
    /// A red life jacket (ActivityNet-QA EQ3).
    RedLifeJacket,
    /// A grey skirt (ActivityNet-QA EQ4).
    GreySkirt,
    /// Visible cargo load (Q4.4).
    CargoLoad,
}

impl Accessory {
    /// All accessories.
    pub const ALL: [Accessory; 10] = [
        Accessory::DarkBag,
        Accessory::BlackTshirtBlueJeans,
        Accessory::WhiteRoof,
        Accessory::WhiteDress,
        Accessory::RedHair,
        Accessory::BlackClothes,
        Accessory::Hat,
        Accessory::RedLifeJacket,
        Accessory::GreySkirt,
        Accessory::CargoLoad,
    ];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Accessory::DarkBag => "holding a dark bag",
            Accessory::BlackTshirtBlueJeans => "wearing a black t-shirt and blue jeans",
            Accessory::WhiteRoof => "with a white roof",
            Accessory::WhiteDress => "with a white dress",
            Accessory::RedHair => "with red hair",
            Accessory::BlackClothes => "wearing black clothes",
            Accessory::Hat => "with a hat",
            Accessory::RedLifeJacket => "in a red life jacket",
            Accessory::GreySkirt => "in a grey skirt",
            Accessory::CargoLoad => "filled with cargo",
        }
    }

    /// Stable small integer code used by the encoders.
    pub fn code(&self) -> usize {
        Accessory::ALL
            .iter()
            .position(|c| c == self)
            .expect("accessory listed in ALL")
    }
}

/// Gender presentation for person-class objects; several QVHighlights and
/// ActivityNet-QA queries reference "woman" / "man".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Gender {
    /// Unspecified / not applicable.
    #[default]
    Unspecified,
    /// Presents as a woman.
    Woman,
    /// Presents as a man.
    Man,
}

impl Gender {
    /// Stable small integer code used by the encoders.
    pub fn code(&self) -> usize {
        match self {
            Gender::Unspecified => 0,
            Gender::Woman => 1,
            Gender::Man => 2,
        }
    }
}

/// The full ground-truth attribute set of an object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectAttributes {
    /// Object category.
    pub class: ObjectClass,
    /// Primary (body / clothing) colour.
    pub color: Color,
    /// Coarse relative size.
    pub size: SizeClass,
    /// Current activity.
    pub activity: Activity,
    /// Scene location.
    pub location: Location,
    /// Spatial relation to another object.
    pub relation: Relation,
    /// Additional descriptive details.
    pub accessories: Vec<Accessory>,
    /// Gender presentation for person-class objects.
    pub gender: Gender,
}

impl ObjectAttributes {
    /// Creates a plain object of the given class with neutral defaults.
    pub fn simple(class: ObjectClass) -> Self {
        Self {
            class,
            color: Color::Gray,
            size: SizeClass::Medium,
            activity: if class.is_vehicle() {
                Activity::Driving
            } else {
                Activity::Standing
            },
            location: Location::Road,
            relation: Relation::None,
            accessories: Vec::new(),
            gender: Gender::Unspecified,
        }
    }

    /// Builder-style colour setter.
    pub fn with_color(mut self, color: Color) -> Self {
        self.color = color;
        self
    }

    /// Builder-style size setter.
    pub fn with_size(mut self, size: SizeClass) -> Self {
        self.size = size;
        self
    }

    /// Builder-style activity setter.
    pub fn with_activity(mut self, activity: Activity) -> Self {
        self.activity = activity;
        self
    }

    /// Builder-style location setter.
    pub fn with_location(mut self, location: Location) -> Self {
        self.location = location;
        self
    }

    /// Builder-style relation setter.
    pub fn with_relation(mut self, relation: Relation) -> Self {
        self.relation = relation;
        self
    }

    /// Builder-style accessory append.
    pub fn with_accessory(mut self, accessory: Accessory) -> Self {
        if !self.accessories.contains(&accessory) {
            self.accessories.push(accessory);
        }
        self
    }

    /// Builder-style gender setter.
    pub fn with_gender(mut self, gender: Gender) -> Self {
        self.gender = gender;
        self
    }

    /// True if the object carries the given accessory.
    pub fn has_accessory(&self, accessory: Accessory) -> bool {
        self.accessories.contains(&accessory)
    }

    /// A natural-language description of the object, e.g.
    /// `"large black suv driving in the intersection"`. Used by examples and
    /// the qualitative experiment (Fig. 7).
    pub fn describe(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        parts.push(format!(
            "{} {} {}",
            self.size.name(),
            self.color.name(),
            self.class.name()
        ));
        parts.push(self.activity.name().to_string());
        parts.push(self.location.name().to_string());
        for acc in &self.accessories {
            parts.push(acc.name().to_string());
        }
        match self.relation {
            Relation::None => {}
            Relation::SideBySideWith(c) => {
                parts.push(format!("side by side with another {}", c.name()))
            }
            Relation::NextTo(c) => parts.push(format!("next to a {}", c.name())),
        }
        parts.join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suv_maps_to_car_for_predefined_detectors() {
        assert_eq!(ObjectClass::Suv.coco_label(), Some("car"));
        assert_eq!(ObjectClass::Car.coco_label(), Some("car"));
        assert_eq!(ObjectClass::StreetFurniture.coco_label(), None);
    }

    #[test]
    fn codes_are_unique_and_stable() {
        let class_codes: Vec<usize> = ObjectClass::ALL.iter().map(|c| c.code()).collect();
        let mut sorted = class_codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ObjectClass::ALL.len());

        let color_codes: Vec<usize> = Color::ALL.iter().map(|c| c.code()).collect();
        assert_eq!(
            color_codes,
            (0..Color::ALL.len()).collect::<Vec<_>>(),
            "colour codes should be their position in ALL"
        );
    }

    #[test]
    fn color_similarity_is_symmetric() {
        for a in Color::ALL {
            for b in Color::ALL {
                assert_eq!(a.is_similar_to(&b), b.is_similar_to(&a));
            }
        }
        assert!(Color::White.is_similar_to(&Color::Light));
        assert!(!Color::Red.is_similar_to(&Color::Green));
    }

    #[test]
    fn location_hierarchy() {
        assert!(Location::Road.accepts(&Location::RoadCenter));
        assert!(Location::Road.accepts(&Location::Intersection));
        assert!(!Location::RoadCenter.accepts(&Location::Road));
        assert!(Location::Outdoors.accepts(&Location::Meadow));
        assert!(!Location::Outdoors.accepts(&Location::Room));
    }

    #[test]
    fn relation_acceptance() {
        let q = Relation::NextTo(ObjectClass::Car);
        assert!(q.accepts(&Relation::NextTo(ObjectClass::Car)));
        assert!(q.accepts(&Relation::SideBySideWith(ObjectClass::Car)));
        assert!(!q.accepts(&Relation::None));
        assert!(Relation::None.accepts(&Relation::SideBySideWith(ObjectClass::Bus)));
        assert!(!Relation::SideBySideWith(ObjectClass::Car)
            .accepts(&Relation::NextTo(ObjectClass::Car)));
    }

    #[test]
    fn builder_accumulates_attributes() {
        let attrs = ObjectAttributes::simple(ObjectClass::Bus)
            .with_color(Color::Green)
            .with_accessory(Accessory::WhiteRoof)
            .with_accessory(Accessory::WhiteRoof)
            .with_location(Location::Road);
        assert_eq!(attrs.accessories.len(), 1);
        assert!(attrs.has_accessory(Accessory::WhiteRoof));
        assert_eq!(attrs.color, Color::Green);
    }

    #[test]
    fn describe_mentions_key_attributes() {
        let attrs = ObjectAttributes::simple(ObjectClass::Suv)
            .with_color(Color::Black)
            .with_size(SizeClass::Large)
            .with_location(Location::Intersection);
        let d = attrs.describe();
        assert!(d.contains("black"));
        assert!(d.contains("suv"));
        assert!(d.contains("intersection"));
    }

    #[test]
    fn default_activity_follows_class() {
        assert_eq!(
            ObjectAttributes::simple(ObjectClass::Car).activity,
            Activity::Driving
        );
        assert_eq!(
            ObjectAttributes::simple(ObjectClass::Person).activity,
            Activity::Standing
        );
    }

    #[test]
    fn typical_extents_are_positive() {
        for class in ObjectClass::ALL {
            let (w, h) = class.typical_extent();
            assert!(w > 0.0 && h > 0.0);
        }
    }
}
