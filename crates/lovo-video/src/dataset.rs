//! Synthetic dataset generators standing in for the paper's evaluation
//! datasets.
//!
//! Each [`DatasetKind`] mirrors the character of one real dataset from the
//! evaluation (§VII-A): camera motion, scene content, object mix and the
//! specific target objects the Table II / Table VI queries look for. The
//! generators plant both *targets* (objects that satisfy a query exactly) and
//! *near-miss distractors* (right class but wrong colour, right colour but
//! wrong location, ...), which is what makes the retrieval problem non-trivial
//! and gives the accuracy experiments the same shape as the paper's.
//!
//! All generation is deterministic given the [`DatasetConfig::seed`].

use crate::bbox::BoundingBox;
use crate::object::{
    Accessory, Activity, Color, Gender, Location, ObjectAttributes, ObjectClass, Relation,
    SizeClass,
};
use crate::scene::{Frame, SceneObject, TrackId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which evaluation dataset a generated collection imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Urban dashcam footage (moving camera, pedestrians and cyclists).
    Cityscapes,
    /// Fixed traffic-surveillance camera at an intersection.
    Bellevue,
    /// Diverse YouTube clips (moving camera, people and pets in cars).
    Qvhighlights,
    /// Fixed camera on a resort sidewalk (buses, trucks, beach traffic).
    Beach,
    /// Everyday web videos used for the question-answering extension.
    ActivityNetQa,
}

impl DatasetKind {
    /// All dataset kinds in the order the paper reports them.
    pub const ALL: [DatasetKind; 5] = [
        DatasetKind::Cityscapes,
        DatasetKind::Bellevue,
        DatasetKind::Qvhighlights,
        DatasetKind::Beach,
        DatasetKind::ActivityNetQa,
    ];

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Cityscapes => "Cityscapes",
            DatasetKind::Bellevue => "Bellevue",
            DatasetKind::Qvhighlights => "Qvhighlights",
            DatasetKind::Beach => "Beach",
            DatasetKind::ActivityNetQa => "ActivityNet-QA",
        }
    }

    /// Whether the camera moves (dashcam / handheld) or is fixed.
    pub fn moving_camera(&self) -> bool {
        matches!(
            self,
            DatasetKind::Cityscapes | DatasetKind::Qvhighlights | DatasetKind::ActivityNetQa
        )
    }
}

/// Configuration of a synthetic video collection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Which dataset to imitate.
    pub kind: DatasetKind,
    /// Number of videos in the collection.
    pub num_videos: usize,
    /// Number of frames per video.
    pub frames_per_video: usize,
    /// Frame rate in frames/second (timestamps only; generation is per frame).
    pub fps: f64,
    /// Frame width in pixels.
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
    /// Expected number of simultaneously visible objects per frame.
    pub object_density: f32,
    /// Seed for the deterministic generator.
    pub seed: u64,
}

impl DatasetConfig {
    /// A laptop-scale default configuration for the given dataset kind.
    ///
    /// Durations are scaled down from the paper's hours-long footage to keep a
    /// full experiment run in seconds, but each collection still produces
    /// thousands of frames and tens of thousands of object observations; the
    /// scalability experiments (Fig. 10/11) sweep these knobs upward.
    pub fn for_kind(kind: DatasetKind) -> Self {
        let (num_videos, frames_per_video, density) = match kind {
            DatasetKind::Cityscapes => (3, 600, 3.0),
            DatasetKind::Bellevue => (1, 1800, 4.0),
            DatasetKind::Qvhighlights => (15, 150, 2.0),
            DatasetKind::Beach => (1, 1560, 2.5),
            DatasetKind::ActivityNetQa => (12, 180, 1.5),
        };
        Self {
            kind,
            num_videos,
            frames_per_video,
            fps: 30.0,
            width: 1280,
            height: 720,
            object_density: density,
            seed: 0x1050_0001_u64 ^ kind as u64,
        }
    }

    /// Builder-style override of the number of videos.
    pub fn with_num_videos(mut self, n: usize) -> Self {
        self.num_videos = n.max(1);
        self
    }

    /// Builder-style override of frames per video.
    pub fn with_frames_per_video(mut self, n: usize) -> Self {
        self.frames_per_video = n.max(1);
        self
    }

    /// Builder-style override of the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style override of object density.
    pub fn with_object_density(mut self, density: f32) -> Self {
        self.object_density = density.max(0.0);
        self
    }

    /// Sets the total duration (seconds) of the collection by adjusting the
    /// per-video frame count, keeping the number of videos fixed.
    pub fn with_total_duration_seconds(mut self, seconds: f64) -> Self {
        let total_frames = (seconds * self.fps).round().max(1.0) as usize;
        self.frames_per_video = (total_frames / self.num_videos).max(1);
        self
    }

    /// Total duration of the collection in seconds.
    pub fn total_duration_seconds(&self) -> f64 {
        self.num_videos as f64 * self.frames_per_video as f64 / self.fps
    }

    /// Total number of frames across all videos.
    pub fn total_frames(&self) -> usize {
        self.num_videos * self.frames_per_video
    }
}

/// A single generated video.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Video {
    /// Index of the video within its collection.
    pub id: u32,
    /// Frames in presentation order.
    pub frames: Vec<Frame>,
}

impl Video {
    /// Duration of the video in seconds (0.0 for an empty video).
    pub fn duration_seconds(&self) -> f64 {
        self.frames.last().map(|f| f.timestamp).unwrap_or(0.0)
    }
}

/// A generated collection of videos plus the configuration that produced it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VideoCollection {
    /// Generation parameters.
    pub config: DatasetConfig,
    /// The videos.
    pub videos: Vec<Video>,
}

impl VideoCollection {
    /// Generates a collection for the given configuration.
    pub fn generate(config: DatasetConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let templates = scenario_templates(config.kind);
        let videos = (0..config.num_videos)
            .map(|vid| generate_video(vid as u32, &config, &templates, &mut rng))
            .collect();
        Self { config, videos }
    }

    /// Generates the default collection for a dataset kind.
    pub fn for_kind(kind: DatasetKind) -> Self {
        Self::generate(DatasetConfig::for_kind(kind))
    }

    /// Total number of frames across all videos.
    pub fn total_frames(&self) -> usize {
        self.videos.iter().map(|v| v.frames.len()).sum()
    }

    /// Total number of object observations (object-frame pairs).
    pub fn total_object_observations(&self) -> usize {
        self.videos
            .iter()
            .flat_map(|v| v.frames.iter())
            .map(|f| f.objects.len())
            .sum()
    }

    /// Iterator over `(video id, frame)` pairs across the collection.
    pub fn iter_frames(&self) -> impl Iterator<Item = (u32, &Frame)> {
        self.videos
            .iter()
            .flat_map(|v| v.frames.iter().map(move |f| (v.id, f)))
    }
}

/// An object archetype the generator can spawn, with a sampling weight.
#[derive(Debug, Clone)]
struct Template {
    attributes: ObjectAttributes,
    weight: f32,
    /// When set, a companion object of this class is spawned adjacent to the
    /// primary one so that relation attributes are physically consistent.
    companion: Option<ObjectClass>,
}

impl Template {
    fn new(attributes: ObjectAttributes, weight: f32) -> Self {
        Self {
            attributes,
            weight,
            companion: None,
        }
    }

    fn with_companion(mut self, class: ObjectClass) -> Self {
        self.companion = Some(class);
        self
    }
}

/// The per-dataset scenario mix. Targets of the Table II / Table VI queries
/// are given modest weights so they are present but rare, as in real footage;
/// distractors get larger weights.
fn scenario_templates(kind: DatasetKind) -> Vec<Template> {
    use Accessory as Acc;
    use ObjectClass as C;
    match kind {
        DatasetKind::Cityscapes => vec![
            // Q1.1 target: a person walking on the street.
            Template::new(
                ObjectAttributes::simple(C::Person)
                    .with_activity(Activity::Walking)
                    .with_location(Location::Sidewalk)
                    .with_color(Color::Dark),
                3.0,
            ),
            // Q1.2 target: light-coloured clothing + dark bag.
            Template::new(
                ObjectAttributes::simple(C::Person)
                    .with_activity(Activity::Walking)
                    .with_location(Location::Sidewalk)
                    .with_color(Color::Light)
                    .with_accessory(Acc::DarkBag),
                1.0,
            ),
            // Q1.3 target: a person riding a bicycle.
            Template::new(
                ObjectAttributes::simple(C::Bicyclist)
                    .with_activity(Activity::RidingBicycle)
                    .with_location(Location::Road)
                    .with_color(Color::Blue),
                1.5,
            ),
            // Q1.4 target: bicyclist in black t-shirt and blue jeans.
            Template::new(
                ObjectAttributes::simple(C::Bicyclist)
                    .with_activity(Activity::RidingBicycle)
                    .with_location(Location::Road)
                    .with_color(Color::Black)
                    .with_accessory(Acc::BlackTshirtBlueJeans),
                0.8,
            ),
            // Distractors: standing pedestrians, parked cars, furniture.
            Template::new(
                ObjectAttributes::simple(C::Person)
                    .with_activity(Activity::Standing)
                    .with_location(Location::Sidewalk)
                    .with_color(Color::Light),
                2.0,
            ),
            Template::new(
                ObjectAttributes::simple(C::Car)
                    .with_activity(Activity::Parked)
                    .with_location(Location::Road)
                    .with_color(Color::Gray),
                2.5,
            ),
            Template::new(
                ObjectAttributes::simple(C::StreetFurniture).with_activity(Activity::Standing),
                1.5,
            ),
        ],
        DatasetKind::Bellevue => vec![
            // Q2.1 target: red car in the centre of the road.
            Template::new(
                ObjectAttributes::simple(C::Car)
                    .with_color(Color::Red)
                    .with_location(Location::RoadCenter)
                    .with_activity(Activity::Driving),
                1.2,
            ),
            // Q2.2 target: red car side by side with another car in the centre.
            Template::new(
                ObjectAttributes::simple(C::Car)
                    .with_color(Color::Red)
                    .with_location(Location::RoadCenter)
                    .with_activity(Activity::Driving)
                    .with_relation(Relation::SideBySideWith(C::Car)),
                0.6,
            )
            .with_companion(C::Car),
            // Q2.3 target: a bus on the road.
            Template::new(
                ObjectAttributes::simple(C::Bus)
                    .with_color(Color::Gray)
                    .with_location(Location::Road)
                    .with_activity(Activity::Driving)
                    .with_size(SizeClass::Large),
                1.0,
            ),
            // Q2.4 target: bus with white roof and yellow-green body.
            Template::new(
                ObjectAttributes::simple(C::Bus)
                    .with_color(Color::YellowGreen)
                    .with_location(Location::Road)
                    .with_activity(Activity::Driving)
                    .with_size(SizeClass::Large)
                    .with_accessory(Acc::WhiteRoof),
                0.5,
            ),
            // Motivation-query target: large black SUV in the intersection.
            Template::new(
                ObjectAttributes::simple(C::Suv)
                    .with_color(Color::Black)
                    .with_size(SizeClass::Large)
                    .with_location(Location::Intersection)
                    .with_activity(Activity::Driving),
                0.8,
            ),
            // Distractors: cars of other colours, trucks, black cars at centre.
            Template::new(
                ObjectAttributes::simple(C::Car)
                    .with_color(Color::Black)
                    .with_location(Location::RoadCenter)
                    .with_activity(Activity::Driving),
                2.0,
            ),
            Template::new(
                ObjectAttributes::simple(C::Car)
                    .with_color(Color::Red)
                    .with_location(Location::Road)
                    .with_activity(Activity::Driving),
                1.5,
            ),
            Template::new(
                ObjectAttributes::simple(C::Car)
                    .with_color(Color::White)
                    .with_location(Location::Road)
                    .with_activity(Activity::Driving),
                3.0,
            ),
            Template::new(
                ObjectAttributes::simple(C::Truck)
                    .with_color(Color::Gray)
                    .with_location(Location::Road)
                    .with_activity(Activity::Driving),
                1.0,
            ),
        ],
        DatasetKind::Qvhighlights => vec![
            // Q3.1 target: a woman smiling sitting inside a car.
            Template::new(
                ObjectAttributes::simple(C::Person)
                    .with_gender(Gender::Woman)
                    .with_activity(Activity::Sitting)
                    .with_location(Location::InsideCar)
                    .with_color(Color::Light),
                1.2,
            ),
            // Q3.2 target: red-hair woman with white dress sitting inside a car.
            Template::new(
                ObjectAttributes::simple(C::Person)
                    .with_gender(Gender::Woman)
                    .with_activity(Activity::Sitting)
                    .with_location(Location::InsideCar)
                    .with_color(Color::White)
                    .with_accessory(Acc::RedHair)
                    .with_accessory(Acc::WhiteDress),
                0.6,
            ),
            // Q3.3 target: a white dog inside a car.
            Template::new(
                ObjectAttributes::simple(C::Dog)
                    .with_color(Color::White)
                    .with_location(Location::InsideCar)
                    .with_activity(Activity::Sitting),
                0.8,
            ),
            // Q3.4 target: white dog inside a car next to a woman in black clothes.
            Template::new(
                ObjectAttributes::simple(C::Dog)
                    .with_color(Color::White)
                    .with_location(Location::InsideCar)
                    .with_activity(Activity::Sitting)
                    .with_relation(Relation::NextTo(C::Person))
                    .with_accessory(Acc::BlackClothes),
                0.5,
            )
            .with_companion(C::Person),
            // Distractors: men in cars, dogs outdoors, people outdoors.
            Template::new(
                ObjectAttributes::simple(C::Person)
                    .with_gender(Gender::Man)
                    .with_activity(Activity::Sitting)
                    .with_location(Location::InsideCar)
                    .with_color(Color::Dark),
                1.5,
            ),
            Template::new(
                ObjectAttributes::simple(C::Dog)
                    .with_color(Color::Dark)
                    .with_location(Location::Outdoors)
                    .with_activity(Activity::Walking),
                1.0,
            ),
            Template::new(
                ObjectAttributes::simple(C::Person)
                    .with_gender(Gender::Woman)
                    .with_activity(Activity::Walking)
                    .with_location(Location::Outdoors)
                    .with_color(Color::Light),
                2.0,
            ),
        ],
        DatasetKind::Beach => vec![
            // Q4.1 target: a green bus driving on the road.
            Template::new(
                ObjectAttributes::simple(C::Bus)
                    .with_color(Color::Green)
                    .with_location(Location::Road)
                    .with_activity(Activity::Driving)
                    .with_size(SizeClass::Large),
                1.0,
            ),
            // Q4.2 target: green bus with white roof.
            Template::new(
                ObjectAttributes::simple(C::Bus)
                    .with_color(Color::Green)
                    .with_location(Location::Road)
                    .with_activity(Activity::Driving)
                    .with_size(SizeClass::Large)
                    .with_accessory(Acc::WhiteRoof),
                0.5,
            ),
            // Q4.3 target: a truck driving on the road.
            Template::new(
                ObjectAttributes::simple(C::Truck)
                    .with_color(Color::Gray)
                    .with_location(Location::Road)
                    .with_activity(Activity::Driving),
                1.2,
            ),
            // Q4.4 target: small white truck filled with cargo.
            Template::new(
                ObjectAttributes::simple(C::Truck)
                    .with_color(Color::White)
                    .with_size(SizeClass::Small)
                    .with_location(Location::Road)
                    .with_activity(Activity::CarryingCargo)
                    .with_accessory(Acc::CargoLoad),
                0.6,
            ),
            // Distractors: white buses, green cars, pedestrians, parked trucks.
            Template::new(
                ObjectAttributes::simple(C::Bus)
                    .with_color(Color::White)
                    .with_location(Location::Road)
                    .with_activity(Activity::Driving)
                    .with_size(SizeClass::Large),
                1.2,
            ),
            Template::new(
                ObjectAttributes::simple(C::Car)
                    .with_color(Color::Green)
                    .with_location(Location::Road)
                    .with_activity(Activity::Driving),
                1.0,
            ),
            Template::new(
                ObjectAttributes::simple(C::Person)
                    .with_activity(Activity::Walking)
                    .with_location(Location::Sidewalk)
                    .with_color(Color::Light),
                2.5,
            ),
            Template::new(
                ObjectAttributes::simple(C::Truck)
                    .with_color(Color::White)
                    .with_size(SizeClass::Large)
                    .with_location(Location::Road)
                    .with_activity(Activity::Driving),
                0.8,
            ),
        ],
        DatasetKind::ActivityNetQa => vec![
            // EQ1 target: a car parked on the meadow.
            Template::new(
                ObjectAttributes::simple(C::Car)
                    .with_color(Color::Blue)
                    .with_activity(Activity::Parked)
                    .with_location(Location::Meadow),
                0.8,
            ),
            // EQ2 target: a man with a hat.
            Template::new(
                ObjectAttributes::simple(C::Person)
                    .with_gender(Gender::Man)
                    .with_activity(Activity::Standing)
                    .with_location(Location::Outdoors)
                    .with_accessory(Acc::Hat)
                    .with_color(Color::Dark),
                1.0,
            ),
            // EQ3 target: a person in a red life jacket outdoors.
            Template::new(
                ObjectAttributes::simple(C::Person)
                    .with_activity(Activity::Standing)
                    .with_location(Location::Outdoors)
                    .with_accessory(Acc::RedLifeJacket)
                    .with_color(Color::Red),
                0.8,
            ),
            // EQ4 target: a person in a grey skirt dancing in the room.
            Template::new(
                ObjectAttributes::simple(C::Person)
                    .with_gender(Gender::Woman)
                    .with_activity(Activity::Dancing)
                    .with_location(Location::Room)
                    .with_accessory(Acc::GreySkirt)
                    .with_color(Color::Gray),
                0.8,
            ),
            // Distractors: woman with hat, person indoors without skirt,
            // parked car on road, person in life jacket indoors.
            Template::new(
                ObjectAttributes::simple(C::Person)
                    .with_gender(Gender::Woman)
                    .with_activity(Activity::Standing)
                    .with_location(Location::Outdoors)
                    .with_accessory(Acc::Hat)
                    .with_color(Color::Light),
                1.0,
            ),
            Template::new(
                ObjectAttributes::simple(C::Person)
                    .with_gender(Gender::Man)
                    .with_activity(Activity::Dancing)
                    .with_location(Location::Room)
                    .with_color(Color::Dark),
                1.0,
            ),
            Template::new(
                ObjectAttributes::simple(C::Car)
                    .with_color(Color::Gray)
                    .with_activity(Activity::Parked)
                    .with_location(Location::Road),
                1.2,
            ),
        ],
    }
}

/// A live object track being simulated.
struct ActiveTrack {
    object: SceneObject,
    remaining_frames: usize,
}

fn sample_template<'a>(templates: &'a [Template], rng: &mut SmallRng) -> &'a Template {
    let total: f32 = templates.iter().map(|t| t.weight).sum();
    let mut pick = rng.gen_range(0.0..total.max(f32::MIN_POSITIVE));
    for t in templates {
        if pick < t.weight {
            return t;
        }
        pick -= t.weight;
    }
    templates.last().expect("templates are non-empty")
}

fn spawn_track(
    template: &Template,
    config: &DatasetConfig,
    next_track: &mut u64,
    rng: &mut SmallRng,
) -> Vec<ActiveTrack> {
    let attrs = &template.attributes;
    let (base_w, base_h) = attrs.class.typical_extent();
    let scale = attrs.size.scale() * rng.gen_range(0.85..1.15);
    let (w, h) = (base_w * scale, base_h * scale);

    // Spawn position depends on the location attribute so that spatial
    // semantics ("center of the road", "intersection") are geometrically real.
    let (cx, cy) = match attrs.location {
        Location::RoadCenter | Location::Intersection => (
            config.width as f32 * rng.gen_range(0.4..0.6),
            config.height as f32 * rng.gen_range(0.45..0.65),
        ),
        Location::Road => (
            config.width as f32 * rng.gen_range(0.1..0.9),
            config.height as f32 * rng.gen_range(0.5..0.8),
        ),
        Location::Sidewalk => (
            config.width as f32 * rng.gen_range(0.05..0.95),
            config.height as f32 * rng.gen_range(0.7..0.95),
        ),
        Location::InsideCar | Location::Room => (
            config.width as f32 * rng.gen_range(0.3..0.7),
            config.height as f32 * rng.gen_range(0.3..0.7),
        ),
        Location::Outdoors | Location::Meadow => (
            config.width as f32 * rng.gen_range(0.1..0.9),
            config.height as f32 * rng.gen_range(0.3..0.9),
        ),
    };

    let speed = match attrs.activity {
        Activity::Driving => rng.gen_range(4.0..12.0),
        Activity::CarryingCargo => rng.gen_range(3.0..8.0),
        Activity::RidingBicycle => rng.gen_range(2.0..5.0),
        Activity::Walking | Activity::Dancing => rng.gen_range(0.5..2.5),
        Activity::Parked | Activity::Sitting | Activity::Standing | Activity::Smiling => 0.0,
    };
    let direction: f32 = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
    let velocity = (speed * direction, rng.gen_range(-0.3..0.3) * speed);

    let lifetime = rng.gen_range(30..150);
    let mut tracks = Vec::with_capacity(2);
    let primary = SceneObject {
        track: TrackId(*next_track),
        attributes: attrs.clone(),
        bbox: BoundingBox::from_center(cx, cy, w, h),
        velocity,
    };
    *next_track += 1;
    tracks.push(ActiveTrack {
        object: primary,
        remaining_frames: lifetime,
    });

    // Spawn the relation companion adjacent to the primary so that "side by
    // side" / "next to" are spatially true in the generated frames.
    if let Some(companion_class) = template.companion {
        let comp_attrs = ObjectAttributes::simple(companion_class)
            .with_color(Color::ALL[rng.gen_range(0..Color::ALL.len())])
            .with_location(attrs.location)
            .with_activity(attrs.activity);
        let (cw, ch) = companion_class.typical_extent();
        let companion = SceneObject {
            track: TrackId(*next_track),
            attributes: comp_attrs,
            bbox: BoundingBox::from_center(cx + w * 1.1, cy, cw, ch),
            velocity,
        };
        *next_track += 1;
        tracks.push(ActiveTrack {
            object: companion,
            remaining_frames: lifetime,
        });
    }
    tracks
}

fn generate_video(
    id: u32,
    config: &DatasetConfig,
    templates: &[Template],
    rng: &mut SmallRng,
) -> Video {
    let mut frames = Vec::with_capacity(config.frames_per_video);
    let mut active: Vec<ActiveTrack> = Vec::new();
    let mut next_track: u64 = u64::from(id) << 32;

    // Spawn probability per frame chosen so the steady-state object count
    // approaches the configured density (lifetime averages ~90 frames).
    let spawn_prob = (config.object_density / 90.0).clamp(0.0, 1.0);

    for frame_idx in 0..config.frames_per_video {
        // Possibly spawn new tracks.
        let spawns = if frame_idx == 0 {
            config.object_density.round() as usize
        } else {
            usize::from(rng.gen_bool(f64::from(spawn_prob)))
        };
        for _ in 0..spawns {
            let template = sample_template(templates, rng);
            active.extend(spawn_track(template, config, &mut next_track, rng));
        }

        let camera_motion = if config.kind.moving_camera() {
            (
                3.0 * ((frame_idx as f32 * 0.05).sin() + rng.gen_range(-0.2..0.2)),
                1.0 * ((frame_idx as f32 * 0.08).cos()),
            )
        } else {
            (0.0, 0.0)
        };

        let mut frame = Frame::empty(
            frame_idx,
            frame_idx as f64 / config.fps,
            config.width,
            config.height,
        );
        frame.camera_motion = camera_motion;
        for track in &active {
            let clamped = track
                .object
                .bbox
                .clamped(config.width as f32, config.height as f32);
            if clamped.area() > 1.0 {
                let mut visible = track.object.clone();
                visible.bbox = clamped;
                frame.objects.push(visible);
            }
        }
        frames.push(frame);

        // Advance the simulation.
        for track in &mut active {
            track.object.bbox = track
                .object
                .bbox
                .translated(track.object.velocity.0, track.object.velocity.1);
            track.remaining_frames = track.remaining_frames.saturating_sub(1);
        }
        active.retain(|t| {
            t.remaining_frames > 0
                && t.object
                    .bbox
                    .clamped(config.width as f32, config.height as f32)
                    .area()
                    > 1.0
        });
    }

    Video { id, frames }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let config = DatasetConfig::for_kind(DatasetKind::Bellevue)
            .with_frames_per_video(120)
            .with_seed(99);
        let a = VideoCollection::generate(config.clone());
        let b = VideoCollection::generate(config);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let base = DatasetConfig::for_kind(DatasetKind::Bellevue).with_frames_per_video(200);
        let a = VideoCollection::generate(base.clone().with_seed(1));
        let b = VideoCollection::generate(base.with_seed(2));
        assert_ne!(a, b);
    }

    #[test]
    fn collection_has_requested_shape() {
        let config = DatasetConfig::for_kind(DatasetKind::Qvhighlights)
            .with_num_videos(4)
            .with_frames_per_video(50);
        let c = VideoCollection::generate(config);
        assert_eq!(c.videos.len(), 4);
        assert!(c.videos.iter().all(|v| v.frames.len() == 50));
        assert_eq!(c.total_frames(), 200);
    }

    #[test]
    fn frames_contain_objects_at_reasonable_density() {
        let c = VideoCollection::generate(
            DatasetConfig::for_kind(DatasetKind::Bellevue).with_frames_per_video(600),
        );
        let avg = c.total_object_observations() as f32 / c.total_frames() as f32;
        assert!(avg > 0.5, "average {avg} objects/frame too low");
        assert!(avg < 20.0, "average {avg} objects/frame too high");
    }

    #[test]
    fn fixed_camera_datasets_have_zero_camera_motion() {
        let c = VideoCollection::generate(
            DatasetConfig::for_kind(DatasetKind::Beach).with_frames_per_video(60),
        );
        assert!(c.iter_frames().all(|(_, f)| f.camera_motion == (0.0, 0.0)));
        let moving = VideoCollection::generate(
            DatasetConfig::for_kind(DatasetKind::Cityscapes).with_frames_per_video(60),
        );
        assert!(moving
            .iter_frames()
            .any(|(_, f)| f.camera_motion != (0.0, 0.0)));
    }

    #[test]
    fn bounding_boxes_stay_inside_frame() {
        let c = VideoCollection::generate(
            DatasetConfig::for_kind(DatasetKind::Cityscapes).with_frames_per_video(300),
        );
        for (_, frame) in c.iter_frames() {
            for obj in &frame.objects {
                assert!(obj.bbox.x >= 0.0 && obj.bbox.y >= 0.0);
                assert!(obj.bbox.right() <= frame.width as f32 + 1e-3);
                assert!(obj.bbox.bottom() <= frame.height as f32 + 1e-3);
            }
        }
    }

    #[test]
    fn each_dataset_plants_its_query_targets() {
        // Every dataset's generated content must contain at least one object
        // that its most complex query targets, otherwise accuracy experiments
        // would be vacuous.
        let bellevue = VideoCollection::for_kind(DatasetKind::Bellevue);
        assert!(bellevue
            .iter_frames()
            .any(|(_, f)| f.objects.iter().any(|o| {
                o.attributes.class == ObjectClass::Car
                    && o.attributes.color == Color::Red
                    && matches!(o.attributes.relation, Relation::SideBySideWith(_))
            })));

        let beach = VideoCollection::for_kind(DatasetKind::Beach);
        assert!(beach.iter_frames().any(|(_, f)| f.objects.iter().any(|o| {
            o.attributes.class == ObjectClass::Bus
                && o.attributes.color == Color::Green
                && o.attributes.has_accessory(Accessory::WhiteRoof)
        })));

        let qvh = VideoCollection::for_kind(DatasetKind::Qvhighlights);
        assert!(qvh.iter_frames().any(|(_, f)| f.objects.iter().any(|o| {
            o.attributes.class == ObjectClass::Dog && o.attributes.color == Color::White
        })));

        let anq = VideoCollection::for_kind(DatasetKind::ActivityNetQa);
        assert!(anq.iter_frames().any(|(_, f)| f.objects.iter().any(|o| {
            o.attributes.activity == Activity::Dancing
                && o.attributes.has_accessory(Accessory::GreySkirt)
        })));
    }

    #[test]
    fn relation_targets_usually_have_a_physical_companion() {
        // Companions share the primary's velocity so they stay adjacent, but
        // one of the pair can leave the frame a few frames before the other;
        // require that the large majority of relation observations are
        // physically consistent rather than every single one.
        let bellevue = VideoCollection::for_kind(DatasetKind::Bellevue);
        let mut with_companion = 0usize;
        let mut total = 0usize;
        for (_, frame) in bellevue.iter_frames() {
            for obj in &frame.objects {
                if let Relation::SideBySideWith(peer) = obj.attributes.relation {
                    total += 1;
                    let has_companion = frame.objects.iter().any(|other| {
                        other.track != obj.track
                            && other.attributes.class.coco_label() == peer.coco_label()
                            && obj.bbox.center_distance(&other.bbox) < 500.0
                    });
                    if has_companion {
                        with_companion += 1;
                    }
                }
            }
        }
        assert!(total > 0, "no relation objects generated");
        let fraction = with_companion as f32 / total as f32;
        assert!(
            fraction > 0.6,
            "only {fraction:.2} of relation objects have a companion"
        );
    }

    #[test]
    fn duration_helpers_round_trip() {
        let config = DatasetConfig::for_kind(DatasetKind::Bellevue)
            .with_num_videos(2)
            .with_total_duration_seconds(120.0);
        assert!((config.total_duration_seconds() - 120.0).abs() < 1.0);
        assert_eq!(config.total_frames(), config.frames_per_video * 2);
    }
}
