//! Key-frame extraction (§IV-A).
//!
//! The paper represents each video by a sequence of key frames chosen with a
//! combination of a temporal strategy (fixed sampling interval / scene
//! changes) and a content strategy (frames with notable motion-vector change,
//! detected by the MVmed compressed-domain tracker). This module implements
//! both strategies over the synthetic [`MotionField`]s and exposes them behind
//! a single [`KeyframeExtractor`], which is the component the ablation
//! "w/o Key frame" (Table IV) switches off by selecting [`KeyframePolicy::AllFrames`].

use crate::motion::{MotionEstimator, MotionField};
use crate::scene::Frame;
use serde::{Deserialize, Serialize};

/// Which strategy the extractor uses to nominate key frames.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum KeyframePolicy {
    /// MVmed-style: a frame is a key frame when the aggregate motion-vector
    /// change since the previous frame exceeds `motion_threshold`, or when
    /// `max_gap` frames have passed since the last key frame (temporal
    /// fallback so static stretches are still summarized).
    MotionAdaptive {
        /// Motion-change threshold that triggers a key frame.
        motion_threshold: f32,
        /// Maximum number of frames between key frames.
        max_gap: usize,
    },
    /// Plain fixed-interval sampling every `interval` frames.
    FixedInterval {
        /// Sampling period in frames.
        interval: usize,
    },
    /// Every frame is a key frame (the "w/o Key frame" ablation).
    AllFrames,
}

impl Default for KeyframePolicy {
    fn default() -> Self {
        KeyframePolicy::MotionAdaptive {
            motion_threshold: 2.0,
            max_gap: 30,
        }
    }
}

/// Extracts key frames from a sequence of frames.
#[derive(Debug, Clone, Default)]
pub struct KeyframeExtractor {
    /// Selection policy.
    pub policy: KeyframePolicy,
    /// Motion estimator used by the motion-adaptive policy.
    pub estimator: MotionEstimator,
}

impl KeyframeExtractor {
    /// Creates an extractor with the given policy and default block size.
    pub fn new(policy: KeyframePolicy) -> Self {
        Self {
            policy,
            estimator: MotionEstimator::default(),
        }
    }

    /// Returns the indices (into `frames`) of the selected key frames.
    ///
    /// The first frame of a non-empty video is always a key frame: something
    /// must summarize the opening content.
    pub fn select_indices(&self, frames: &[Frame]) -> Vec<usize> {
        if frames.is_empty() {
            return Vec::new();
        }
        match self.policy {
            KeyframePolicy::AllFrames => (0..frames.len()).collect(),
            KeyframePolicy::FixedInterval { interval } => {
                let step = interval.max(1);
                (0..frames.len()).step_by(step).collect()
            }
            KeyframePolicy::MotionAdaptive {
                motion_threshold,
                max_gap,
            } => self.select_motion_adaptive(frames, motion_threshold, max_gap.max(1)),
        }
    }

    fn select_motion_adaptive(
        &self,
        frames: &[Frame],
        threshold: f32,
        max_gap: usize,
    ) -> Vec<usize> {
        let mut selected = vec![0];
        let mut previous_field: Option<MotionField> = None;
        let mut last_selected = 0usize;
        for (i, frame) in frames.iter().enumerate() {
            let field = self.estimator.estimate(frame);
            if i == 0 {
                previous_field = Some(field);
                continue;
            }
            let change = previous_field
                .as_ref()
                .map(|prev| self.estimator.motion_change(prev, &field))
                .unwrap_or(0.0);
            let gap_exceeded = i - last_selected >= max_gap;
            if change > threshold || gap_exceeded {
                selected.push(i);
                last_selected = i;
            }
            previous_field = Some(field);
        }
        selected
    }

    /// Convenience wrapper returning cloned key frames rather than indices.
    pub fn select<'a>(&self, frames: &'a [Frame]) -> Vec<&'a Frame> {
        self.select_indices(frames)
            .into_iter()
            .map(|i| &frames[i])
            .collect()
    }

    /// Ratio of key frames to total frames (1.0 when every frame is kept).
    pub fn compression_ratio(&self, frames: &[Frame]) -> f32 {
        if frames.is_empty() {
            return 0.0;
        }
        self.select_indices(frames).len() as f32 / frames.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bbox::BoundingBox;
    use crate::object::{ObjectAttributes, ObjectClass};
    use crate::scene::{SceneObject, TrackId};

    /// Builds a video where a car enters at frame `burst_at` and accelerates.
    fn video_with_burst(n: usize, burst_at: usize) -> Vec<Frame> {
        (0..n)
            .map(|i| {
                let mut f = Frame::empty(i, i as f64 / 30.0, 640, 360);
                if i >= burst_at {
                    f.objects.push(SceneObject {
                        track: TrackId(1),
                        attributes: ObjectAttributes::simple(ObjectClass::Car),
                        bbox: BoundingBox::new(50.0 + i as f32 * 10.0, 150.0, 200.0, 100.0),
                        velocity: (10.0, 0.0),
                    });
                }
                f
            })
            .collect()
    }

    #[test]
    fn empty_video_selects_nothing() {
        let ex = KeyframeExtractor::default();
        assert!(ex.select_indices(&[]).is_empty());
    }

    #[test]
    fn first_frame_always_selected() {
        let ex = KeyframeExtractor::default();
        let frames = video_with_burst(10, 100);
        assert_eq!(ex.select_indices(&frames)[0], 0);
    }

    #[test]
    fn all_frames_policy_keeps_everything() {
        let ex = KeyframeExtractor::new(KeyframePolicy::AllFrames);
        let frames = video_with_burst(25, 5);
        assert_eq!(ex.select_indices(&frames).len(), 25);
        assert_eq!(ex.compression_ratio(&frames), 1.0);
    }

    #[test]
    fn fixed_interval_samples_periodically() {
        let ex = KeyframeExtractor::new(KeyframePolicy::FixedInterval { interval: 10 });
        let frames = video_with_burst(35, 100);
        assert_eq!(ex.select_indices(&frames), vec![0, 10, 20, 30]);
    }

    #[test]
    fn motion_burst_triggers_keyframe() {
        let ex = KeyframeExtractor::new(KeyframePolicy::MotionAdaptive {
            motion_threshold: 0.3,
            max_gap: 1000,
        });
        let frames = video_with_burst(60, 30);
        let selected = ex.select_indices(&frames);
        // Static prefix should not generate key frames beyond frame 0, while
        // the burst at frame 30 must be picked up within a couple of frames.
        assert!(
            selected.iter().any(|&i| (30..=32).contains(&i)),
            "burst not detected: {selected:?}"
        );
        assert!(
            selected.iter().filter(|&&i| i > 0 && i < 29).count() == 0,
            "static prefix produced key frames: {selected:?}"
        );
    }

    #[test]
    fn max_gap_fallback_covers_static_video() {
        let ex = KeyframeExtractor::new(KeyframePolicy::MotionAdaptive {
            motion_threshold: 100.0,
            max_gap: 10,
        });
        let frames = video_with_burst(45, 1000);
        let selected = ex.select_indices(&frames);
        assert_eq!(selected, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn keyframes_reduce_volume_on_mostly_static_video() {
        let ex = KeyframeExtractor::default();
        let frames = video_with_burst(120, 100);
        let ratio = ex.compression_ratio(&frames);
        assert!(ratio < 0.5, "expected compression, got ratio {ratio}");
    }
}
