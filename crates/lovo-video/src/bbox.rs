//! Axis-aligned bounding boxes in pixel coordinates.
//!
//! Boxes use the `(x, y, w, h)` convention from the paper (§IV-C): `(x, y)` is
//! the top-left corner, `w`/`h` the extent. Intersection-over-union follows
//! the MSCOCO definition used by the evaluation (a detection is a positive
//! match when IoU with a ground-truth box exceeds 0.5).

use serde::{Deserialize, Serialize};

/// An axis-aligned bounding box `(x, y, w, h)` in pixels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    /// Left edge in pixels.
    pub x: f32,
    /// Top edge in pixels.
    pub y: f32,
    /// Width in pixels (non-negative).
    pub w: f32,
    /// Height in pixels (non-negative).
    pub h: f32,
}

impl BoundingBox {
    /// Creates a box, clamping negative extents to zero.
    pub fn new(x: f32, y: f32, w: f32, h: f32) -> Self {
        Self {
            x,
            y,
            w: w.max(0.0),
            h: h.max(0.0),
        }
    }

    /// Creates a box from its center point and extent.
    pub fn from_center(cx: f32, cy: f32, w: f32, h: f32) -> Self {
        Self::new(cx - w / 2.0, cy - h / 2.0, w, h)
    }

    /// Area of the box in square pixels.
    pub fn area(&self) -> f32 {
        self.w * self.h
    }

    /// Center point `(cx, cy)`.
    pub fn center(&self) -> (f32, f32) {
        (self.x + self.w / 2.0, self.y + self.h / 2.0)
    }

    /// Right edge.
    pub fn right(&self) -> f32 {
        self.x + self.w
    }

    /// Bottom edge.
    pub fn bottom(&self) -> f32 {
        self.y + self.h
    }

    /// Intersection area with `other` (zero when disjoint).
    pub fn intersection_area(&self, other: &BoundingBox) -> f32 {
        let ix = (self.right().min(other.right()) - self.x.max(other.x)).max(0.0);
        let iy = (self.bottom().min(other.bottom()) - self.y.max(other.y)).max(0.0);
        ix * iy
    }

    /// Intersection-over-union with `other`. Returns 0.0 when both boxes are
    /// degenerate (zero area).
    pub fn iou(&self, other: &BoundingBox) -> f32 {
        let inter = self.intersection_area(other);
        let union = self.area() + other.area() - inter;
        if union <= f32::EPSILON {
            0.0
        } else {
            inter / union
        }
    }

    /// True when the IoU with `other` exceeds the MSCOCO positive-match
    /// threshold of 0.5 used throughout the evaluation (§VII-A).
    pub fn matches(&self, other: &BoundingBox) -> bool {
        self.iou(other) > 0.5
    }

    /// Euclidean distance between the two box centers.
    pub fn center_distance(&self, other: &BoundingBox) -> f32 {
        let (ax, ay) = self.center();
        let (bx, by) = other.center();
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    }

    /// Returns the box translated by `(dx, dy)`.
    pub fn translated(&self, dx: f32, dy: f32) -> BoundingBox {
        BoundingBox::new(self.x + dx, self.y + dy, self.w, self.h)
    }

    /// Clamps the box to the frame `[0, width] x [0, height]`, shrinking it if
    /// it extends past the border. A box fully outside collapses to zero area.
    pub fn clamped(&self, width: f32, height: f32) -> BoundingBox {
        let x0 = self.x.clamp(0.0, width);
        let y0 = self.y.clamp(0.0, height);
        let x1 = self.right().clamp(0.0, width);
        let y1 = self.bottom().clamp(0.0, height);
        BoundingBox::new(x0, y0, (x1 - x0).max(0.0), (y1 - y0).max(0.0))
    }

    /// Fraction of this box's area covered by `other` (0.0 for a degenerate box).
    pub fn coverage_by(&self, other: &BoundingBox) -> f32 {
        let a = self.area();
        if a <= f32::EPSILON {
            0.0
        } else {
            self.intersection_area(other) / a
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_boxes_have_iou_one() {
        let b = BoundingBox::new(10.0, 10.0, 50.0, 30.0);
        assert!((b.iou(&b) - 1.0).abs() < 1e-6);
        assert!(b.matches(&b));
    }

    #[test]
    fn disjoint_boxes_have_iou_zero() {
        let a = BoundingBox::new(0.0, 0.0, 10.0, 10.0);
        let b = BoundingBox::new(100.0, 100.0, 10.0, 10.0);
        assert_eq!(a.iou(&b), 0.0);
        assert!(!a.matches(&b));
    }

    #[test]
    fn half_overlap_iou() {
        let a = BoundingBox::new(0.0, 0.0, 10.0, 10.0);
        let b = BoundingBox::new(5.0, 0.0, 10.0, 10.0);
        // intersection 50, union 150
        assert!((a.iou(&b) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_boxes() {
        let a = BoundingBox::new(0.0, 0.0, 0.0, 0.0);
        assert_eq!(a.iou(&a), 0.0);
        assert_eq!(a.area(), 0.0);
        let neg = BoundingBox::new(0.0, 0.0, -5.0, 10.0);
        assert_eq!(neg.w, 0.0);
    }

    #[test]
    fn from_center_round_trips() {
        let b = BoundingBox::from_center(50.0, 40.0, 20.0, 10.0);
        assert_eq!(b.center(), (50.0, 40.0));
        assert_eq!(b.x, 40.0);
        assert_eq!(b.y, 35.0);
    }

    #[test]
    fn clamp_to_frame() {
        let b = BoundingBox::new(-10.0, 5.0, 30.0, 200.0).clamped(100.0, 100.0);
        assert_eq!(b.x, 0.0);
        assert_eq!(b.right(), 20.0);
        assert_eq!(b.bottom(), 100.0);
        let outside = BoundingBox::new(500.0, 500.0, 10.0, 10.0).clamped(100.0, 100.0);
        assert_eq!(outside.area(), 0.0);
    }

    #[test]
    fn coverage_fraction() {
        let patch = BoundingBox::new(0.0, 0.0, 10.0, 10.0);
        let obj = BoundingBox::new(0.0, 0.0, 5.0, 10.0);
        assert!((patch.coverage_by(&obj) - 0.5).abs() < 1e-6);
        assert!((obj.coverage_by(&patch) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn translation_moves_center() {
        let b = BoundingBox::new(0.0, 0.0, 10.0, 10.0).translated(5.0, -2.0);
        assert_eq!(b.center(), (10.0, 3.0));
    }

    #[test]
    fn center_distance_symmetric() {
        let a = BoundingBox::new(0.0, 0.0, 10.0, 10.0);
        let b = BoundingBox::new(30.0, 40.0, 10.0, 10.0);
        assert!((a.center_distance(&b) - 50.0).abs() < 1e-5);
        assert_eq!(a.center_distance(&b), b.center_distance(&a));
    }
}
