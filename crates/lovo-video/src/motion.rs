//! Synthetic motion-vector fields.
//!
//! MVmed (the key-frame / tracking algorithm the paper adopts in §IV-A) works
//! in the compressed domain: it reads the motion vectors the video codec
//! already computed and propagates detections along them, flagging frames with
//! large aggregate motion-vector change as scene changes or high-activity
//! moments. Real compressed bitstreams are not available here, so this module
//! synthesizes a plausible block-level motion-vector field directly from the
//! ground-truth kinematics: blocks covered by a moving object inherit its
//! velocity, all blocks inherit the camera motion, and a small deterministic
//! jitter models codec noise.

use crate::bbox::BoundingBox;
use crate::scene::Frame;
use serde::{Deserialize, Serialize};

/// A block-level motion-vector field, as a codec would expose it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MotionField {
    /// Number of macro-block columns.
    pub blocks_x: usize,
    /// Number of macro-block rows.
    pub blocks_y: usize,
    /// Motion vector per block, row-major, in pixels/frame.
    pub vectors: Vec<(f32, f32)>,
}

impl MotionField {
    /// Mean motion magnitude over all blocks (pixels/frame).
    pub fn mean_magnitude(&self) -> f32 {
        if self.vectors.is_empty() {
            return 0.0;
        }
        self.vectors
            .iter()
            .map(|(dx, dy)| (dx * dx + dy * dy).sqrt())
            .sum::<f32>()
            / self.vectors.len() as f32
    }

    /// Fraction of blocks whose motion magnitude exceeds `threshold`.
    pub fn active_fraction(&self, threshold: f32) -> f32 {
        if self.vectors.is_empty() {
            return 0.0;
        }
        let active = self
            .vectors
            .iter()
            .filter(|(dx, dy)| (dx * dx + dy * dy).sqrt() > threshold)
            .count();
        active as f32 / self.vectors.len() as f32
    }
}

/// Synthesizes motion-vector fields from ground-truth frames.
#[derive(Debug, Clone)]
pub struct MotionEstimator {
    /// Macro-block size in pixels (16 matches H.264/H.265 defaults).
    pub block_size: u32,
    /// Amplitude of the deterministic codec-noise jitter in pixels/frame.
    pub noise: f32,
}

impl Default for MotionEstimator {
    fn default() -> Self {
        Self {
            block_size: 16,
            noise: 0.05,
        }
    }
}

impl MotionEstimator {
    /// Creates an estimator with the given macro-block size.
    pub fn new(block_size: u32) -> Self {
        Self {
            block_size: block_size.max(1),
            noise: 0.05,
        }
    }

    /// Computes the motion field of a frame from its camera motion and the
    /// velocities of the objects covering each block.
    pub fn estimate(&self, frame: &Frame) -> MotionField {
        let bs = self.block_size as f32;
        let blocks_x = (frame.width as usize).div_ceil(self.block_size as usize);
        let blocks_y = (frame.height as usize).div_ceil(self.block_size as usize);
        let mut vectors = Vec::with_capacity(blocks_x * blocks_y);
        for by in 0..blocks_y {
            for bx in 0..blocks_x {
                let region = BoundingBox::new(bx as f32 * bs, by as f32 * bs, bs, bs);
                let mut v = frame.camera_motion;
                if let Some(obj) = frame.dominant_object_in_region(&region) {
                    v.0 += obj.velocity.0;
                    v.1 += obj.velocity.1;
                }
                // Deterministic pseudo-noise derived from the block position so
                // fields are reproducible without threading an RNG through.
                let phase = (bx * 31 + by * 17 + frame.index * 7) as f32;
                v.0 += self.noise * (phase * 0.7).sin();
                v.1 += self.noise * (phase * 1.3).cos();
                vectors.push(v);
            }
        }
        MotionField {
            blocks_x,
            blocks_y,
            vectors,
        }
    }

    /// Aggregate motion change between two consecutive frames: the mean
    /// per-block motion-vector delta over the blocks that are moving in either
    /// frame, after compensating each field for global (camera) motion. This
    /// is the statistic the key-frame extractor thresholds.
    ///
    /// Comparing *per-block* vectors rather than whole-field summary numbers
    /// is what lets the extractor see scene events: an object entering,
    /// leaving, or changing speed flips the vectors of the blocks it covers,
    /// which a difference of mean magnitudes cancels out in steady traffic.
    /// Global-motion compensation keeps a panning camera from counting every
    /// block as an event.
    pub fn motion_change(&self, previous: &MotionField, current: &MotionField) -> f32 {
        const ACTIVE_MAGNITUDE: f32 = 1.0;
        if previous.vectors.len() != current.vectors.len() {
            // Differently-sized fields (e.g. a resolution change) are by
            // definition a scene change.
            return f32::MAX;
        }
        let prev_mean = mean_vector(&previous.vectors);
        let cur_mean = mean_vector(&current.vectors);
        let mut delta_sum = 0.0f32;
        let mut active_either = 0usize;
        for (&(px, py), &(cx, cy)) in previous.vectors.iter().zip(&current.vectors) {
            let (px, py) = (px - prev_mean.0, py - prev_mean.1);
            let (cx, cy) = (cx - cur_mean.0, cy - cur_mean.1);
            let prev_active = px * px + py * py > ACTIVE_MAGNITUDE * ACTIVE_MAGNITUDE;
            let cur_active = cx * cx + cy * cy > ACTIVE_MAGNITUDE * ACTIVE_MAGNITUDE;
            if prev_active || cur_active {
                active_either += 1;
                let (dx, dy) = (cx - px, cy - py);
                delta_sum += (dx * dx + dy * dy).sqrt();
            }
        }
        if active_either == 0 {
            0.0
        } else {
            delta_sum / active_either as f32
        }
    }
}

/// Mean motion vector of a field (the global / camera component).
fn mean_vector(vectors: &[(f32, f32)]) -> (f32, f32) {
    if vectors.is_empty() {
        return (0.0, 0.0);
    }
    let (sx, sy) = vectors
        .iter()
        .fold((0.0f32, 0.0f32), |(sx, sy), &(x, y)| (sx + x, sy + y));
    (sx / vectors.len() as f32, sy / vectors.len() as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{ObjectAttributes, ObjectClass};
    use crate::scene::{SceneObject, TrackId};

    fn frame_with_moving_object(index: usize, speed: f32) -> Frame {
        let mut f = Frame::empty(index, index as f64 / 30.0, 640, 360);
        f.objects.push(SceneObject {
            track: TrackId(0),
            attributes: ObjectAttributes::simple(ObjectClass::Car),
            bbox: BoundingBox::new(100.0, 100.0, 200.0, 120.0),
            velocity: (speed, 0.0),
        });
        f
    }

    #[test]
    fn field_dimensions_cover_frame() {
        let est = MotionEstimator::new(16);
        let field = est.estimate(&Frame::empty(0, 0.0, 640, 360));
        assert_eq!(field.blocks_x, 40);
        assert_eq!(field.blocks_y, 23); // ceil(360/16)
        assert_eq!(field.vectors.len(), 40 * 23);
    }

    #[test]
    fn static_frame_has_near_zero_motion() {
        let est = MotionEstimator::new(16);
        let field = est.estimate(&Frame::empty(0, 0.0, 640, 360));
        assert!(field.mean_magnitude() < 0.2);
        assert_eq!(field.active_fraction(1.0), 0.0);
    }

    #[test]
    fn moving_object_raises_motion() {
        let est = MotionEstimator::new(16);
        let still = est.estimate(&frame_with_moving_object(0, 0.0));
        let moving = est.estimate(&frame_with_moving_object(0, 12.0));
        assert!(moving.mean_magnitude() > still.mean_magnitude());
        assert!(moving.active_fraction(1.0) > 0.0);
    }

    #[test]
    fn camera_motion_affects_all_blocks() {
        let est = MotionEstimator::new(16);
        let mut f = Frame::empty(0, 0.0, 320, 160);
        f.camera_motion = (8.0, 0.0);
        let field = est.estimate(&f);
        assert!(field.active_fraction(1.0) > 0.99);
    }

    #[test]
    fn motion_change_detects_speed_jump() {
        let est = MotionEstimator::new(16);
        let a = est.estimate(&frame_with_moving_object(0, 2.0));
        let b = est.estimate(&frame_with_moving_object(1, 2.0));
        let c = est.estimate(&frame_with_moving_object(2, 20.0));
        assert!(est.motion_change(&a, &b) < est.motion_change(&b, &c));
    }

    #[test]
    fn estimator_is_deterministic() {
        let est = MotionEstimator::default();
        let f = frame_with_moving_object(3, 6.0);
        assert_eq!(est.estimate(&f), est.estimate(&f));
    }
}
