//! Compact binary codec for [`Frame`] ground truth.
//!
//! The storage layer persists key frames as opaque auxiliary blobs (in the
//! WAL and in sealed-segment AUX sections) so that a reopened engine can
//! rebuild its in-memory scene index without re-ingesting the videos. This
//! module defines that blob format: little-endian, length-prefixed,
//! versioned, and fully self-contained — no serde format crate exists in
//! this build, and the durable formats are hand-rolled anyway so the bytes
//! are stable across compiler and library versions.
//!
//! Enums travel as their stable `code()` integers; decode looks the codes up
//! in the corresponding `ALL` tables, so adding variants at the end stays
//! wire-compatible while reordering existing ones would not be (the tables
//! are documented as append-only).

use crate::bbox::BoundingBox;
use crate::object::{
    Accessory, Activity, Color, Gender, Location, ObjectAttributes, ObjectClass, Relation,
    SizeClass,
};
use crate::scene::{Frame, SceneObject, TrackId};

/// Format version written as the first byte of every encoded frame.
pub const WIRE_VERSION: u8 = 1;

/// Decode failure: the blob does not parse as a `WIRE_VERSION` frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What failed to decode.
    pub detail: String,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "frame wire decode: {}", self.detail)
    }
}

impl std::error::Error for WireError {}

fn err<T>(detail: impl Into<String>) -> Result<T, WireError> {
    Err(WireError {
        detail: detail.into(),
    })
}

/// Serializes a frame into the stable wire format.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + frame.objects.len() * 48);
    out.push(WIRE_VERSION);
    out.extend_from_slice(&(frame.index as u64).to_le_bytes());
    out.extend_from_slice(&frame.timestamp.to_le_bytes());
    out.extend_from_slice(&frame.width.to_le_bytes());
    out.extend_from_slice(&frame.height.to_le_bytes());
    out.extend_from_slice(&frame.camera_motion.0.to_le_bytes());
    out.extend_from_slice(&frame.camera_motion.1.to_le_bytes());
    out.extend_from_slice(&(frame.objects.len() as u32).to_le_bytes());
    for object in &frame.objects {
        encode_object(&mut out, object);
    }
    out
}

fn encode_object(out: &mut Vec<u8>, object: &SceneObject) {
    out.extend_from_slice(&object.track.0.to_le_bytes());
    for v in [
        object.bbox.x,
        object.bbox.y,
        object.bbox.w,
        object.bbox.h,
        object.velocity.0,
        object.velocity.1,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    let a = &object.attributes;
    out.push(a.class.code() as u8);
    out.push(a.color.code() as u8);
    out.push(a.size.code() as u8);
    out.push(a.activity.code() as u8);
    out.push(a.location.code() as u8);
    out.push(a.relation.kind_code() as u8);
    // Peer class of the relation; 0xFF marks "no peer" (Relation::None).
    out.push(a.relation.peer().map_or(0xFF, |c| c.code() as u8));
    out.push(a.gender.code() as u8);
    out.push(a.accessories.len() as u8);
    for accessory in &a.accessories {
        out.push(accessory.code() as u8);
    }
}

/// Deserializes a frame encoded by [`encode_frame`].
pub fn decode_frame(bytes: &[u8]) -> Result<Frame, WireError> {
    let mut r = Cursor { bytes, pos: 0 };
    let version = r.u8("version")?;
    if version != WIRE_VERSION {
        return err(format!(
            "unsupported version {version} (expected {WIRE_VERSION})"
        ));
    }
    let index = r.u64("index")? as usize;
    let timestamp = r.f64("timestamp")?;
    let width = r.u32("width")?;
    let height = r.u32("height")?;
    let camera_motion = (r.f32("camera dx")?, r.f32("camera dy")?);
    let object_count = r.u32("object count")?;
    if object_count as usize > bytes.len() {
        return err(format!("object count {object_count} exceeds blob size"));
    }
    let mut objects = Vec::with_capacity(object_count as usize);
    for _ in 0..object_count {
        objects.push(decode_object(&mut r)?);
    }
    if r.pos != bytes.len() {
        return err(format!(
            "{} trailing bytes after frame",
            bytes.len() - r.pos
        ));
    }
    Ok(Frame {
        index,
        timestamp,
        width,
        height,
        camera_motion,
        objects,
    })
}

fn decode_object(r: &mut Cursor<'_>) -> Result<SceneObject, WireError> {
    let track = TrackId(r.u64("track id")?);
    let bbox = BoundingBox::new(
        r.f32("bbox x")?,
        r.f32("bbox y")?,
        r.f32("bbox w")?,
        r.f32("bbox h")?,
    );
    let velocity = (r.f32("velocity x")?, r.f32("velocity y")?);
    let class = lookup(&ObjectClass::ALL, r.u8("class")?, "object class")?;
    let color = lookup(&Color::ALL, r.u8("color")?, "color")?;
    let size = lookup(&SizeClass::ALL, r.u8("size")?, "size class")?;
    let activity = lookup(&Activity::ALL, r.u8("activity")?, "activity")?;
    let location = lookup(&Location::ALL, r.u8("location")?, "location")?;
    let relation_kind = r.u8("relation kind")?;
    let peer_code = r.u8("relation peer")?;
    let relation = match relation_kind {
        0 => Relation::None,
        1 => Relation::SideBySideWith(lookup(&ObjectClass::ALL, peer_code, "relation peer")?),
        2 => Relation::NextTo(lookup(&ObjectClass::ALL, peer_code, "relation peer")?),
        other => return err(format!("unknown relation kind {other}")),
    };
    let gender = match r.u8("gender")? {
        0 => Gender::Unspecified,
        1 => Gender::Woman,
        2 => Gender::Man,
        other => return err(format!("unknown gender code {other}")),
    };
    let accessory_count = r.u8("accessory count")?;
    let mut accessories = Vec::with_capacity(accessory_count as usize);
    for _ in 0..accessory_count {
        accessories.push(lookup(&Accessory::ALL, r.u8("accessory")?, "accessory")?);
    }
    Ok(SceneObject {
        track,
        attributes: ObjectAttributes {
            class,
            color,
            size,
            activity,
            location,
            relation,
            accessories,
            gender,
        },
        bbox,
        velocity,
    })
}

/// Decodes an enum by its `code()` via the append-only `ALL` table.
fn lookup<T: Copy>(all: &[T], code: u8, what: &str) -> Result<T, WireError> {
    match all.get(code as usize) {
        Some(v) => Ok(*v),
        None => err(format!("unknown {what} code {code}")),
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize, what: &str) -> Result<&[u8], WireError> {
        match self.bytes.get(self.pos..self.pos + n) {
            Some(slice) => {
                self.pos += n;
                Ok(slice)
            }
            None => err(format!("truncated reading {what}")),
        }
    }

    fn u8(&mut self, what: &str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn f32(&mut self, what: &str) -> Result<f32, WireError> {
        Ok(f32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn f64(&mut self, what: &str) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frame() -> Frame {
        let mut frame = Frame::empty(42, 1.4, 1920, 1080);
        frame.camera_motion = (1.5, -0.25);
        frame.objects.push(SceneObject {
            track: TrackId(7),
            attributes: ObjectAttributes::simple(ObjectClass::Car)
                .with_color(Color::Red)
                .with_size(SizeClass::Large)
                .with_activity(Activity::Driving)
                .with_location(Location::Intersection)
                .with_relation(Relation::SideBySideWith(ObjectClass::Bus))
                .with_accessory(Accessory::WhiteRoof)
                .with_accessory(Accessory::CargoLoad),
            bbox: BoundingBox::new(10.0, 20.0, 64.0, 48.0),
            velocity: (3.0, -1.0),
        });
        frame.objects.push(SceneObject {
            track: TrackId(9),
            attributes: ObjectAttributes::simple(ObjectClass::Person)
                .with_gender(Gender::Woman)
                .with_relation(Relation::NextTo(ObjectClass::Car)),
            bbox: BoundingBox::new(200.0, 300.0, 30.0, 80.0),
            velocity: (0.0, 0.0),
        });
        frame
    }

    #[test]
    fn round_trips_a_populated_frame() {
        let frame = sample_frame();
        let bytes = encode_frame(&frame);
        assert_eq!(decode_frame(&bytes).unwrap(), frame);
    }

    #[test]
    fn round_trips_an_empty_frame() {
        let frame = Frame::empty(0, 0.0, 640, 480);
        assert_eq!(decode_frame(&encode_frame(&frame)).unwrap(), frame);
    }

    #[test]
    fn rejects_bad_version_truncation_and_trailing_bytes() {
        let mut bytes = encode_frame(&sample_frame());
        let mut wrong_version = bytes.clone();
        wrong_version[0] = 99;
        assert!(decode_frame(&wrong_version).is_err());
        for cut in [0, 1, 10, bytes.len() - 1] {
            assert!(
                decode_frame(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
        bytes.push(0);
        assert!(decode_frame(&bytes).is_err(), "trailing byte must fail");
    }

    #[test]
    fn rejects_unknown_enum_codes() {
        let frame = sample_frame();
        let bytes = encode_frame(&frame);
        // The class byte of the first object sits right after the fixed
        // frame header (1+8+8+4+4+8+4) plus track id and six floats.
        let class_offset = 37 + 8 + 24;
        assert_eq!(bytes[class_offset], ObjectClass::Car.code() as u8);
        let mut bad = bytes.clone();
        bad[class_offset] = 250;
        assert!(decode_frame(&bad).is_err());
    }
}
