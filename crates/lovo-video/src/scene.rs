//! Frames, tracked objects, and video-level ground truth.
//!
//! A [`Frame`] is a light-weight description of what a real decoded frame
//! would contain: its dimensions, a timestamp, the camera motion since the
//! previous frame, and the set of [`SceneObject`]s visible in it with their
//! ground-truth bounding boxes and attributes. The visual encoder consumes
//! frames through this interface exactly as it would consume pixel data — by
//! dividing the frame into patches and looking at what each patch covers — so
//! the downstream pipeline (embedding, indexing, search, rerank) is identical
//! to the real system's.

use crate::bbox::BoundingBox;
use crate::object::ObjectAttributes;
use serde::{Deserialize, Serialize};

/// Identifier of an object track within a video (stable across frames).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TrackId(pub u64);

/// A single object instance visible in one frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneObject {
    /// Track the object belongs to; the same physical object keeps its id
    /// across frames, which is what MIRIS-style track queries rely on.
    pub track: TrackId,
    /// Ground-truth semantic attributes.
    pub attributes: ObjectAttributes,
    /// Ground-truth bounding box in pixels.
    pub bbox: BoundingBox,
    /// Per-frame velocity in pixels/frame `(vx, vy)`; drives motion vectors.
    pub velocity: (f32, f32),
}

impl SceneObject {
    /// Speed in pixels/frame.
    pub fn speed(&self) -> f32 {
        (self.velocity.0 * self.velocity.0 + self.velocity.1 * self.velocity.1).sqrt()
    }
}

/// One video frame with ground-truth contents.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// Index of the frame within its video (0-based).
    pub index: usize,
    /// Timestamp in seconds from the start of the video.
    pub timestamp: f64,
    /// Frame width in pixels.
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
    /// Camera translation since the previous frame, in pixels `(dx, dy)`.
    /// Zero for fixed surveillance cameras (Bellevue, Beach); non-zero for
    /// dashcam / handheld footage (Cityscapes, QVHighlights).
    pub camera_motion: (f32, f32),
    /// Objects visible in the frame.
    pub objects: Vec<SceneObject>,
}

impl Frame {
    /// Creates an empty frame of the given dimensions.
    pub fn empty(index: usize, timestamp: f64, width: u32, height: u32) -> Self {
        Self {
            index,
            timestamp,
            width,
            height,
            camera_motion: (0.0, 0.0),
            objects: Vec::new(),
        }
    }

    /// Number of objects visible in the frame.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Total motion energy of the frame: camera motion magnitude plus the sum
    /// of object speeds weighted by their relative area. This is the quantity
    /// the MVmed-style key-frame extractor thresholds on.
    pub fn motion_energy(&self) -> f32 {
        let frame_area = (self.width as f32) * (self.height as f32);
        let camera = (self.camera_motion.0.powi(2) + self.camera_motion.1.powi(2)).sqrt();
        let objects: f32 = self
            .objects
            .iter()
            .map(|o| o.speed() * (o.bbox.area() / frame_area).min(1.0) * 20.0)
            .sum();
        camera + objects
    }

    /// Returns the objects whose bounding boxes overlap the given patch region
    /// together with the fraction of the patch each covers, sorted by
    /// decreasing coverage.
    pub fn objects_in_region(&self, region: &BoundingBox) -> Vec<(&SceneObject, f32)> {
        let mut hits: Vec<(&SceneObject, f32)> = self
            .objects
            .iter()
            .filter_map(|o| {
                let coverage = region.coverage_by(&o.bbox);
                if coverage > 0.0 {
                    Some((o, coverage))
                } else {
                    None
                }
            })
            .collect();
        hits.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.track.cmp(&b.0.track))
        });
        hits
    }

    /// The object covering the largest share of the region, if any.
    pub fn dominant_object_in_region(&self, region: &BoundingBox) -> Option<&SceneObject> {
        self.objects_in_region(region).first().map(|(o, _)| *o)
    }
}

/// A globally unique frame identifier: `(video id, frame index)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FrameId {
    /// Index of the video within the collection.
    pub video: u32,
    /// Frame index within the video.
    pub frame: u32,
}

impl FrameId {
    /// Creates a frame id.
    pub fn new(video: u32, frame: u32) -> Self {
        Self { video, frame }
    }

    /// Packs the id into a single `u64` key (video in the high 32 bits).
    pub fn as_u64(&self) -> u64 {
        (u64::from(self.video) << 32) | u64::from(self.frame)
    }

    /// Unpacks a `u64` key produced by [`FrameId::as_u64`].
    pub fn from_u64(key: u64) -> Self {
        Self {
            video: (key >> 32) as u32,
            frame: (key & 0xffff_ffff) as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectClass;

    fn object_at(x: f32, y: f32, w: f32, h: f32, speed: f32) -> SceneObject {
        SceneObject {
            track: TrackId(1),
            attributes: ObjectAttributes::simple(ObjectClass::Car),
            bbox: BoundingBox::new(x, y, w, h),
            velocity: (speed, 0.0),
        }
    }

    #[test]
    fn empty_frame_has_zero_motion() {
        let f = Frame::empty(0, 0.0, 1280, 720);
        assert_eq!(f.object_count(), 0);
        assert_eq!(f.motion_energy(), 0.0);
    }

    #[test]
    fn motion_energy_grows_with_speed_and_camera() {
        let mut f = Frame::empty(0, 0.0, 1280, 720);
        f.objects.push(object_at(100.0, 100.0, 200.0, 100.0, 5.0));
        let slow = f.motion_energy();
        f.objects[0].velocity = (15.0, 0.0);
        let fast = f.motion_energy();
        assert!(fast > slow);
        f.camera_motion = (10.0, 0.0);
        assert!(f.motion_energy() > fast);
    }

    #[test]
    fn objects_in_region_sorted_by_coverage() {
        let mut f = Frame::empty(0, 0.0, 1000, 1000);
        f.objects.push(object_at(0.0, 0.0, 50.0, 50.0, 0.0)); // covers 25% of region
        f.objects.push(object_at(0.0, 0.0, 100.0, 100.0, 0.0)); // covers 100%
        let region = BoundingBox::new(0.0, 0.0, 100.0, 100.0);
        let hits = f.objects_in_region(&region);
        assert_eq!(hits.len(), 2);
        assert!(hits[0].1 > hits[1].1);
        assert!((hits[0].1 - 1.0).abs() < 1e-6);
        let dom = f.dominant_object_in_region(&region).unwrap();
        assert_eq!(dom.bbox.w, 100.0);
    }

    #[test]
    fn region_without_objects_is_empty() {
        let mut f = Frame::empty(0, 0.0, 1000, 1000);
        f.objects.push(object_at(0.0, 0.0, 50.0, 50.0, 0.0));
        let region = BoundingBox::new(500.0, 500.0, 100.0, 100.0);
        assert!(f.objects_in_region(&region).is_empty());
        assert!(f.dominant_object_in_region(&region).is_none());
    }

    #[test]
    fn frame_id_u64_round_trip() {
        let id = FrameId::new(7, 123_456);
        assert_eq!(FrameId::from_u64(id.as_u64()), id);
        let id2 = FrameId::new(u32::MAX, u32::MAX);
        assert_eq!(FrameId::from_u64(id2.as_u64()), id2);
    }

    #[test]
    fn object_speed() {
        let o = object_at(0.0, 0.0, 10.0, 10.0, 3.0);
        assert!((o.speed() - 3.0).abs() < 1e-6);
    }
}
