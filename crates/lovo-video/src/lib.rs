//! # lovo-video
//!
//! Synthetic video substrate for the LOVO reproduction.
//!
//! The paper evaluates on real surveillance/dashcam/web video (Cityscapes,
//! Bellevue Traffic, QVHighlights, Beach, ActivityNet-QA). Those datasets and
//! the pre-trained perception models that process them are not available in
//! this environment, so this crate provides the closest synthetic equivalent
//! that exercises the same code paths:
//!
//! * a ground-truth **scene model**: objects with semantic attributes
//!   (class, colour, size, activity, location, relations) that move through
//!   frames along simple kinematic tracks ([`scene`], [`object`]),
//! * **dataset generators** that mimic the character of each evaluation
//!   dataset (fixed vs moving camera, traffic vs everyday content, duration
//!   and object density) ([`dataset`]),
//! * synthetic **motion-vector fields** derived from object kinematics and
//!   camera motion ([`motion`]), and
//! * **key-frame extraction** in the style of MVmed: frames whose aggregate
//!   motion-vector change exceeds a threshold are key-frame candidates, with a
//!   fixed-interval fallback (§IV-A of the paper) ([`keyframe`]).
//!
//! Because the scene model carries ground truth by construction, every query
//! in the evaluation workloads can be scored exactly (the paper hand-labels
//! ground truth assisted by ByteTrack; here the generator plays that role).

pub mod bbox;
pub mod dataset;
pub mod keyframe;
pub mod motion;
pub mod object;
pub mod query;
pub mod scene;
pub mod wire;

pub use bbox::BoundingBox;
pub use dataset::{DatasetConfig, DatasetKind, Video, VideoCollection};
pub use keyframe::{KeyframeExtractor, KeyframePolicy};
pub use object::{
    Accessory, Activity, Color, Gender, Location, ObjectAttributes, ObjectClass, Relation,
    SizeClass,
};
pub use query::{ObjectQuery, QueryComplexity, QueryConstraints, QueryPredicate};
pub use scene::{Frame, FrameId, SceneObject, TrackId};
