//! Structured object queries and ground-truth matching.
//!
//! The paper's queries are natural-language sentences (Table II / Table VI).
//! A query ultimately asks for objects with a particular combination of
//! attributes, so the reproduction represents each query both ways:
//!
//! * [`ObjectQuery::text`] — the natural-language sentence, which is what the
//!   text encoder and the baselines consume, and
//! * the structured attribute constraints, which define ground truth exactly
//!   (the paper's authors hand-label ground truth; here the constraints are
//!   evaluated against the generator's ground-truth attributes).
//!
//! [`QueryComplexity`] mirrors the three complexity levels of the motivation
//! experiment (Fig. 2): a *simple* query is a bare predefined class, a
//! *normal* query adds novel attributes ("red car in road"), and a *complex*
//! query is a full-sentence description with relations or unseen classes.

use crate::object::{
    Accessory, Activity, Color, Gender, Location, ObjectAttributes, ObjectClass, Relation,
    SizeClass,
};
use crate::scene::Frame;
use serde::{Deserialize, Serialize};

/// The three complexity levels used in the motivation experiment (Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueryComplexity {
    /// A bare MSCOCO class ("car").
    Simple,
    /// A class plus novel descriptive attributes ("red car in road").
    Normal,
    /// A full-sentence description with relations, unseen classes or detailed
    /// behaviour ("red car side by side with another car, positioned in the
    /// center of the road").
    Complex,
}

impl QueryComplexity {
    /// Display name used by the experiment harness.
    pub fn name(&self) -> &'static str {
        match self {
            QueryComplexity::Simple => "Simple",
            QueryComplexity::Normal => "Normal",
            QueryComplexity::Complex => "Complex",
        }
    }
}

/// A structured object query: the conjunction of optional attribute constraints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct QueryConstraints {
    /// Required object class (None = any class).
    pub class: Option<ObjectClass>,
    /// Required colour (accepts visually similar colours at match time only
    /// when `strict_color` is false — ground truth always requires equality).
    pub color: Option<Color>,
    /// Required size.
    pub size: Option<SizeClass>,
    /// Required activity.
    pub activity: Option<Activity>,
    /// Required location (uses the [`Location::accepts`] hierarchy).
    pub location: Option<Location>,
    /// Required spatial relation.
    pub relation: Option<Relation>,
    /// Required accessories (all must be present).
    pub accessories: Vec<Accessory>,
    /// Required gender presentation.
    pub gender: Option<Gender>,
}

impl QueryConstraints {
    /// True when the ground-truth attributes satisfy every constraint.
    pub fn matches(&self, attrs: &ObjectAttributes) -> bool {
        if let Some(class) = self.class {
            // "car" accepts SUVs at the ground-truth level only when the query
            // itself asks for the generic class; querying "suv" never accepts
            // a plain car.
            let class_ok = match class {
                ObjectClass::Car => matches!(attrs.class, ObjectClass::Car | ObjectClass::Suv),
                other => attrs.class == other,
            };
            if !class_ok {
                return false;
            }
        }
        if let Some(color) = self.color {
            if attrs.color != color {
                return false;
            }
        }
        if let Some(size) = self.size {
            if attrs.size != size {
                return false;
            }
        }
        if let Some(activity) = self.activity {
            if attrs.activity != activity {
                return false;
            }
        }
        if let Some(location) = self.location {
            if !location.accepts(&attrs.location) {
                return false;
            }
        }
        if let Some(relation) = &self.relation {
            if !relation.accepts(&attrs.relation) {
                return false;
            }
        }
        for acc in &self.accessories {
            if !attrs.has_accessory(*acc) {
                return false;
            }
        }
        if let Some(gender) = self.gender {
            if gender != Gender::Unspecified && attrs.gender != gender {
                return false;
            }
        }
        true
    }

    /// Number of non-empty constraints; used to classify complexity.
    pub fn constraint_count(&self) -> usize {
        usize::from(self.class.is_some())
            + usize::from(self.color.is_some())
            + usize::from(self.size.is_some())
            + usize::from(self.activity.is_some())
            + usize::from(self.location.is_some())
            + usize::from(self.relation.is_some())
            + self.accessories.len()
            + usize::from(matches!(self.gender, Some(g) if g != Gender::Unspecified))
    }

    /// Whether the query can be answered from a predefined-class index alone
    /// (i.e. it constrains nothing but an MSCOCO class). This is what decides
    /// whether the QA-index baselines support it at all (Table I).
    pub fn is_predefined_class_only(&self) -> bool {
        self.constraint_count() == usize::from(self.class.is_some())
            && self
                .class
                .map(|c| c.coco_label().is_some() && c != ObjectClass::Suv)
                .unwrap_or(false)
    }
}

/// A metadata predicate restricting *where* a query searches, as opposed to
/// [`QueryConstraints`], which describe *what* it looks for.
///
/// This is the AST the query planner compiles and pushes down through every
/// layer: video-id subsets become bit tests on the packed patch id, time
/// windows and object classes join against the relational metadata table, and
/// the compiled filter masks candidates inside every index scan — so "find X
/// in camera 3 last Tuesday" pays for camera 3's footage, not the corpus.
/// Conjunctions intersect; a predicate whose constraints are jointly
/// unsatisfiable compiles to a provably-empty plan that searches nothing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum QueryPredicate {
    /// No restriction (search the whole corpus).
    #[default]
    Any,
    /// Restrict to the given videos (cameras).
    Videos(Vec<u32>),
    /// Restrict to key frames whose timestamp lies in the inclusive range
    /// `[start, end]` seconds.
    TimeRange {
        /// Window start in seconds.
        start: f64,
        /// Window end in seconds (inclusive).
        end: f64,
    },
    /// Restrict to patches whose dominant object is of this class. A `Car`
    /// predicate also accepts `Suv` patches, mirroring the ground-truth rule
    /// of [`QueryConstraints::matches`].
    Class(ObjectClass),
    /// Conjunction: every child must hold.
    And(Vec<QueryPredicate>),
}

impl QueryPredicate {
    /// Restrict to a set of videos.
    pub fn videos(ids: impl IntoIterator<Item = u32>) -> Self {
        QueryPredicate::Videos(ids.into_iter().collect())
    }

    /// Restrict to a time window (inclusive, seconds).
    pub fn time_range(start: f64, end: f64) -> Self {
        QueryPredicate::TimeRange { start, end }
    }

    /// Restrict to a dominant-object class.
    pub fn class(class: ObjectClass) -> Self {
        QueryPredicate::Class(class)
    }

    /// Conjunction builder: `a.and(b)` holds when both hold. `Any` is the
    /// identity; nested conjunctions are flattened.
    ///
    /// ```
    /// use lovo_video::{ObjectClass, QueryPredicate};
    ///
    /// // "a bus, in camera 1 or 2, within the first 30 seconds".
    /// let scope = QueryPredicate::videos([1, 2])
    ///     .and(QueryPredicate::time_range(0.0, 30.0))
    ///     .and(QueryPredicate::class(ObjectClass::Bus));
    /// assert!(matches!(&scope, QueryPredicate::And(children) if children.len() == 3));
    ///
    /// // `Any` is the identity, so builders compose from a neutral start.
    /// let same = QueryPredicate::Any.and(QueryPredicate::videos([7]));
    /// assert_eq!(same, QueryPredicate::videos([7]));
    /// ```
    pub fn and(self, other: QueryPredicate) -> Self {
        match (self, other) {
            (QueryPredicate::Any, other) => other,
            (this, QueryPredicate::Any) => this,
            (QueryPredicate::And(mut children), QueryPredicate::And(more)) => {
                children.extend(more);
                QueryPredicate::And(children)
            }
            (QueryPredicate::And(mut children), other) => {
                children.push(other);
                QueryPredicate::And(children)
            }
            (this, QueryPredicate::And(mut children)) => {
                children.insert(0, this);
                QueryPredicate::And(children)
            }
            (this, other) => QueryPredicate::And(vec![this, other]),
        }
    }

    /// True when the predicate restricts nothing.
    pub fn is_any(&self) -> bool {
        match self {
            QueryPredicate::Any => true,
            QueryPredicate::And(children) => children.iter().all(QueryPredicate::is_any),
            _ => false,
        }
    }

    /// Ground-truth check: does a patch from `video_id` at `timestamp` whose
    /// dominant object is `class` satisfy the predicate? (Used by tests to
    /// cross-check the compiled pushdown against the AST semantics.)
    pub fn accepts(&self, video_id: u32, timestamp: f64, class: Option<ObjectClass>) -> bool {
        match self {
            QueryPredicate::Any => true,
            QueryPredicate::Videos(ids) => ids.contains(&video_id),
            QueryPredicate::TimeRange { start, end } => timestamp >= *start && timestamp <= *end,
            QueryPredicate::Class(wanted) => match class {
                Some(actual) => match wanted {
                    ObjectClass::Car => {
                        matches!(actual, ObjectClass::Car | ObjectClass::Suv)
                    }
                    other => actual == *other,
                },
                None => false,
            },
            QueryPredicate::And(children) => children
                .iter()
                .all(|child| child.accepts(video_id, timestamp, class)),
        }
    }
}

/// A named evaluation query: id, text, structured constraints and complexity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectQuery {
    /// Paper identifier, e.g. `"Q2.2"` or `"EQ3"`.
    pub id: String,
    /// The natural-language query text.
    pub text: String,
    /// The structured constraints defining ground truth.
    pub constraints: QueryConstraints,
    /// Complexity level for the motivation experiment.
    pub complexity: QueryComplexity,
}

impl ObjectQuery {
    /// Creates a query.
    pub fn new(
        id: impl Into<String>,
        text: impl Into<String>,
        constraints: QueryConstraints,
        complexity: QueryComplexity,
    ) -> Self {
        Self {
            id: id.into(),
            text: text.into(),
            constraints,
            complexity,
        }
    }

    /// Ground-truth objects in a frame: `(object index, bbox)` of every object
    /// satisfying the constraints.
    pub fn ground_truth_in_frame<'a>(
        &self,
        frame: &'a Frame,
    ) -> Vec<&'a crate::scene::SceneObject> {
        frame
            .objects
            .iter()
            .filter(|o| self.constraints.matches(&o.attributes))
            .collect()
    }

    /// True when at least one object in the frame satisfies the query.
    pub fn frame_is_positive(&self, frame: &Frame) -> bool {
        frame
            .objects
            .iter()
            .any(|o| self.constraints.matches(&o.attributes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn red_center_car() -> ObjectAttributes {
        ObjectAttributes::simple(ObjectClass::Car)
            .with_color(Color::Red)
            .with_location(Location::RoadCenter)
    }

    #[test]
    fn empty_constraints_match_everything() {
        let q = QueryConstraints::default();
        assert!(q.matches(&red_center_car()));
        assert_eq!(q.constraint_count(), 0);
    }

    #[test]
    fn class_constraint_accepts_suv_for_car_queries_only() {
        let car_query = QueryConstraints {
            class: Some(ObjectClass::Car),
            ..Default::default()
        };
        let suv = ObjectAttributes::simple(ObjectClass::Suv);
        assert!(car_query.matches(&suv));

        let suv_query = QueryConstraints {
            class: Some(ObjectClass::Suv),
            ..Default::default()
        };
        let car = ObjectAttributes::simple(ObjectClass::Car);
        assert!(!suv_query.matches(&car));
        assert!(suv_query.matches(&suv));
    }

    #[test]
    fn color_and_location_constraints() {
        let q = QueryConstraints {
            class: Some(ObjectClass::Car),
            color: Some(Color::Red),
            location: Some(Location::RoadCenter),
            ..Default::default()
        };
        assert!(q.matches(&red_center_car()));
        assert!(!q.matches(&red_center_car().with_color(Color::Black)));
        assert!(!q.matches(&red_center_car().with_location(Location::Sidewalk)));
        // Querying the generic road accepts the centre.
        let road_q = QueryConstraints {
            location: Some(Location::Road),
            ..Default::default()
        };
        assert!(road_q.matches(&red_center_car()));
    }

    #[test]
    fn accessory_constraints_require_all() {
        let q = QueryConstraints {
            class: Some(ObjectClass::Bus),
            accessories: vec![Accessory::WhiteRoof],
            ..Default::default()
        };
        let plain_bus = ObjectAttributes::simple(ObjectClass::Bus);
        let roofed = plain_bus.clone().with_accessory(Accessory::WhiteRoof);
        assert!(!q.matches(&plain_bus));
        assert!(q.matches(&roofed));
    }

    #[test]
    fn relation_constraint_uses_acceptance_rules() {
        let q = QueryConstraints {
            relation: Some(Relation::SideBySideWith(ObjectClass::Car)),
            ..Default::default()
        };
        let with_rel = ObjectAttributes::simple(ObjectClass::Car)
            .with_relation(Relation::SideBySideWith(ObjectClass::Car));
        let without = ObjectAttributes::simple(ObjectClass::Car);
        assert!(q.matches(&with_rel));
        assert!(!q.matches(&without));
    }

    #[test]
    fn predefined_class_only_detection() {
        let simple = QueryConstraints {
            class: Some(ObjectClass::Car),
            ..Default::default()
        };
        assert!(simple.is_predefined_class_only());
        let suv = QueryConstraints {
            class: Some(ObjectClass::Suv),
            ..Default::default()
        };
        assert!(!suv.is_predefined_class_only());
        let colored = QueryConstraints {
            class: Some(ObjectClass::Car),
            color: Some(Color::Red),
            ..Default::default()
        };
        assert!(!colored.is_predefined_class_only());
    }

    #[test]
    fn ground_truth_in_frame_filters_objects() {
        let mut frame = Frame::empty(0, 0.0, 1280, 720);
        frame.objects.push(crate::scene::SceneObject {
            track: crate::scene::TrackId(1),
            attributes: red_center_car(),
            bbox: crate::bbox::BoundingBox::new(10.0, 10.0, 100.0, 60.0),
            velocity: (0.0, 0.0),
        });
        frame.objects.push(crate::scene::SceneObject {
            track: crate::scene::TrackId(2),
            attributes: ObjectAttributes::simple(ObjectClass::Bus),
            bbox: crate::bbox::BoundingBox::new(300.0, 10.0, 200.0, 90.0),
            velocity: (0.0, 0.0),
        });
        let q = ObjectQuery::new(
            "T1",
            "a red car in the center of the road",
            QueryConstraints {
                class: Some(ObjectClass::Car),
                color: Some(Color::Red),
                location: Some(Location::RoadCenter),
                ..Default::default()
            },
            QueryComplexity::Normal,
        );
        assert_eq!(q.ground_truth_in_frame(&frame).len(), 1);
        assert!(q.frame_is_positive(&frame));
    }

    #[test]
    fn predicate_builders_and_acceptance() {
        let pred = QueryPredicate::videos([1, 3])
            .and(QueryPredicate::time_range(10.0, 20.0))
            .and(QueryPredicate::class(ObjectClass::Car));
        assert!(pred.accepts(3, 15.0, Some(ObjectClass::Car)));
        // Car predicates accept SUVs, mirroring the ground-truth rule.
        assert!(pred.accepts(3, 15.0, Some(ObjectClass::Suv)));
        assert!(
            !pred.accepts(2, 15.0, Some(ObjectClass::Car)),
            "wrong video"
        );
        assert!(
            !pred.accepts(3, 25.0, Some(ObjectClass::Car)),
            "outside window"
        );
        assert!(
            !pred.accepts(3, 15.0, Some(ObjectClass::Bus)),
            "wrong class"
        );
        assert!(!pred.accepts(3, 15.0, None), "background patch");
        // Suv predicates stay strict.
        assert!(!QueryPredicate::class(ObjectClass::Suv).accepts(0, 0.0, Some(ObjectClass::Car)));
    }

    #[test]
    fn predicate_any_is_conjunction_identity() {
        assert!(QueryPredicate::default().is_any());
        let pred = QueryPredicate::Any.and(QueryPredicate::videos([7]));
        assert_eq!(pred, QueryPredicate::Videos(vec![7]));
        let pred = QueryPredicate::videos([7]).and(QueryPredicate::Any);
        assert_eq!(pred, QueryPredicate::Videos(vec![7]));
        assert!(QueryPredicate::And(vec![QueryPredicate::Any]).is_any());
        assert!(!pred.is_any());
    }

    #[test]
    fn predicate_conjunctions_flatten() {
        let a = QueryPredicate::videos([1]).and(QueryPredicate::time_range(0.0, 1.0));
        let b = QueryPredicate::class(ObjectClass::Bus).and(QueryPredicate::videos([2]));
        match a.and(b) {
            QueryPredicate::And(children) => assert_eq!(children.len(), 4),
            other => panic!("expected flattened conjunction, got {other:?}"),
        }
    }

    #[test]
    fn class_codes_round_trip() {
        for class in ObjectClass::ALL {
            assert_eq!(ObjectClass::from_code(class.code()), Some(class));
        }
        assert_eq!(ObjectClass::from_code(99), None);
    }

    #[test]
    fn gender_constraint() {
        let q = QueryConstraints {
            class: Some(ObjectClass::Person),
            gender: Some(Gender::Woman),
            ..Default::default()
        };
        let woman = ObjectAttributes::simple(ObjectClass::Person).with_gender(Gender::Woman);
        let man = ObjectAttributes::simple(ObjectClass::Person).with_gender(Gender::Man);
        assert!(q.matches(&woman));
        assert!(!q.matches(&man));
    }
}
