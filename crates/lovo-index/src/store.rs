//! Borrowed-or-owned row storage for index arenas.
//!
//! The zero-copy read path (PR 9) serves sealed segments straight out of
//! memory-mapped `.lseg` files. The scan kernels don't care where their
//! row-major `&[f32]` lives, so every arena that used to be a `Vec<f32>`
//! ([`crate::FlatIndex`]'s data, [`crate::QuantizedFlatIndex`]'s exact rows,
//! the IVF rescore arena) becomes a [`RowStore`]: either an owned heap
//! vector (the historical representation, still used for growing buffers
//! and non-mmap opens) or a [`MappedSlice`] view into a mapping kept alive
//! by an `Arc` owner.
//!
//! This crate knows nothing about files or `mmap` — the storage layer
//! (which owns the mapping type) constructs [`MappedSlice`]s and hands them
//! down. The owner is type-erased as `Arc<dyn Any + Send + Sync>` so no
//! dependency cycle forms between the index and storage crates.

use std::any::Any;
use std::sync::Arc;

/// A read-only `f32` slice borrowed from a reference-counted owner (in
/// practice: a memory-mapped segment file). Cloning is cheap — it clones
/// the `Arc`, not the data — so one mapping can back several arenas.
pub struct MappedSlice {
    /// Keeps the backing allocation (the mapping) alive. The slice below
    /// points into memory this owner controls; dropping the last clone
    /// releases the mapping.
    owner: Arc<dyn Any + Send + Sync>,
    ptr: *const f32,
    len: usize,
}

// The view is read-only over immutable bytes (a PROT_READ file mapping)
// and has no interior mutability, so sharing or moving it across threads
// cannot race.
// SAFETY: immutable data, and the owner keeping it alive is Send + Sync.
unsafe impl Send for MappedSlice {}
// SAFETY: see the Send impl — immutable data, Send + Sync owner.
unsafe impl Sync for MappedSlice {}

impl MappedSlice {
    /// Wraps `bytes` as an `f32` row view kept alive by `owner`.
    ///
    /// Returns `None` (caller should fall back to a heap copy) unless
    /// `bytes` is 4-byte aligned and a whole number of `f32`s — the segment
    /// writer 64-byte-aligns vector sections precisely so this succeeds,
    /// but legacy files make no such promise.
    ///
    /// # Safety
    ///
    /// `bytes` must point into memory that stays valid and unmodified for
    /// as long as `owner` (or any clone of it) is alive. The storage layer
    /// upholds this by deriving `bytes` from the mapping it passes as
    /// `owner`.
    // SAFETY: the body performs no unsafe operation — the `unsafe` keyword
    // carries the caller contract documented above (bytes outlive owner).
    pub unsafe fn new(owner: Arc<dyn Any + Send + Sync>, bytes: &[u8]) -> Option<Self> {
        if bytes.as_ptr().align_offset(std::mem::align_of::<f32>()) != 0
            || bytes.len() % std::mem::size_of::<f32>() != 0
        {
            return None;
        }
        Some(Self {
            owner,
            ptr: bytes.as_ptr().cast::<f32>(),
            len: bytes.len() / std::mem::size_of::<f32>(),
        })
    }

    /// The rows as one row-major `f32` slice.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        // Construction checked alignment and length, and every f32 bit
        // pattern is a valid value, so there is no initialization hazard.
        // SAFETY: the owner Arc held by self keeps ptr..ptr+len valid and
        // immutable for the lifetime of the returned borrow.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// The `Arc` that keeps the backing mapping alive (exposed so the
    /// storage layer can recognise which mapping a view borrows from).
    pub fn owner(&self) -> &Arc<dyn Any + Send + Sync> {
        &self.owner
    }
}

impl Clone for MappedSlice {
    fn clone(&self) -> Self {
        Self {
            owner: Arc::clone(&self.owner),
            ptr: self.ptr,
            len: self.len,
        }
    }
}

impl std::fmt::Debug for MappedSlice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MappedSlice({} f32s)", self.len)
    }
}

/// Row-major `f32` storage that is either heap-owned or a view into a
/// memory-mapped file. The scan paths only ever call [`RowStore::as_slice`],
/// so both representations score bit-identically; mutation goes through
/// [`RowStore::to_mut`], which transparently copies a mapped store onto the
/// heap first (mapped segments are sealed, so this only happens on the rare
/// post-restore insert paths).
#[derive(Debug, Clone)]
pub enum RowStore {
    /// Heap-owned rows — the historical `Vec<f32>` arena.
    Owned(Vec<f32>),
    /// Zero-copy view into a mapping.
    Mapped(MappedSlice),
}

impl Default for RowStore {
    fn default() -> Self {
        RowStore::Owned(Vec::new())
    }
}

impl From<Vec<f32>> for RowStore {
    fn from(rows: Vec<f32>) -> Self {
        RowStore::Owned(rows)
    }
}

impl RowStore {
    /// An empty owned store (what every growing arena starts as).
    pub fn new() -> Self {
        Self::default()
    }

    /// All values as one contiguous slice.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        match self {
            RowStore::Owned(rows) => rows.as_slice(),
            RowStore::Mapped(view) => view.as_slice(),
        }
    }

    /// Number of `f32` values stored (rows × dim for an arena).
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            RowStore::Owned(rows) => rows.len(),
            RowStore::Mapped(view) => view.len,
        }
    }

    /// True when no values are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the rows live in a mapping rather than on the heap.
    pub fn is_mapped(&self) -> bool {
        matches!(self, RowStore::Mapped(_))
    }

    /// Mutable access as a heap vector. A mapped store is first copied onto
    /// the heap (and stays owned thereafter) — mappings are read-only.
    pub fn to_mut(&mut self) -> &mut Vec<f32> {
        if let RowStore::Mapped(view) = self {
            *self = RowStore::Owned(view.as_slice().to_vec());
        }
        match self {
            RowStore::Owned(rows) => rows,
            // lint:allow(panic, the arm above replaced any Mapped variant)
            RowStore::Mapped(_) => unreachable!("mapped store was just converted to owned"),
        }
    }

    /// Heap bytes held by this store: the full payload when owned, zero
    /// when mapped (mapped rows are file-backed page cache, not heap).
    pub fn heap_bytes(&self) -> usize {
        match self {
            RowStore::Owned(rows) => rows.len() * std::mem::size_of::<f32>(),
            RowStore::Mapped(_) => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a MappedSlice over an Arc'd Vec<f32>, the test stand-in for a
    /// file mapping (same ownership shape: bytes live as long as the Arc).
    /// The f32 backing buffer guarantees 4-byte alignment, which a Vec<u8>
    /// would not.
    fn mapped_from_f32s(values: &[f32]) -> (Arc<Vec<f32>>, MappedSlice) {
        let owner = Arc::new(values.to_vec());
        // SAFETY: reinterprets the owner's f32 buffer as its raw bytes —
        // same allocation, same length in bytes.
        let bytes: &[u8] = unsafe {
            std::slice::from_raw_parts(
                owner.as_ptr().cast::<u8>(),
                owner.len() * std::mem::size_of::<f32>(),
            )
        };
        // SAFETY: `bytes` borrows from the Vec inside `owner`, which the
        // returned view keeps alive; the Vec never reallocates after
        // construction here.
        let view = unsafe { MappedSlice::new(owner.clone() as Arc<dyn Any + Send + Sync>, bytes) }
            .expect("an f32 buffer is 4-byte aligned");
        (owner, view)
    }

    #[test]
    fn owned_and_mapped_expose_identical_slices() {
        let values = [1.0f32, -2.5, 3.25, 0.0, f32::MIN_POSITIVE];
        let owned = RowStore::Owned(values.to_vec());
        let (_owner, view) = mapped_from_f32s(&values);
        let mapped = RowStore::Mapped(view);
        assert_eq!(owned.as_slice(), mapped.as_slice());
        assert_eq!(owned.len(), mapped.len());
        assert!(!owned.is_mapped());
        assert!(mapped.is_mapped());
        assert_eq!(owned.heap_bytes(), values.len() * 4);
        assert_eq!(mapped.heap_bytes(), 0);
    }

    #[test]
    fn to_mut_copies_mapped_rows_onto_the_heap() {
        let values = [4.0f32, 5.0, 6.0];
        let (_owner, view) = mapped_from_f32s(&values);
        let mut store = RowStore::Mapped(view);
        store.to_mut().push(7.0);
        assert!(!store.is_mapped());
        assert_eq!(store.as_slice(), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn misaligned_or_ragged_bytes_are_refused() {
        // f32 backing buffer so the base pointer is guaranteed 4-aligned;
        // offsetting it by one byte is then guaranteed misaligned.
        let buffer = Arc::new(vec![0.0f32; 16]);
        // SAFETY: raw byte view of the f32 buffer — same allocation.
        let bytes: &[u8] = unsafe { std::slice::from_raw_parts(buffer.as_ptr().cast::<u8>(), 64) };
        let owner: Arc<dyn Any + Send + Sync> = buffer.clone();
        // Length not a multiple of 4.
        // SAFETY: bytes borrow from the Arc'd Vec passed as owner.
        assert!(unsafe { MappedSlice::new(owner.clone(), &bytes[..33]) }.is_none());
        // Offset by one byte: misaligned for f32.
        // SAFETY: as above.
        assert!(unsafe { MappedSlice::new(owner.clone(), &bytes[1..33]) }.is_none());
        // Aligned whole-f32 window works.
        // SAFETY: as above.
        assert!(unsafe { MappedSlice::new(owner, &bytes[..32]) }.is_some());
    }

    #[test]
    fn clones_share_the_owner() {
        let (owner, view) = mapped_from_f32s(&[9.0f32; 16]);
        let a = RowStore::Mapped(view.clone());
        let b = RowStore::Mapped(view);
        drop(a);
        assert_eq!(b.as_slice(), &[9.0f32; 16]);
        // owner + the Arc inside b's view.
        assert!(Arc::strong_count(&owner) >= 2);
    }
}
