//! Product quantization (§V-B).
//!
//! A `D'`-dimensional embedding is split into `P` subspaces of `m = D'/P`
//! dimensions; each subspace has its own codebook of `M` centroids trained by
//! Lloyd's iteration. A vector is stored as `P` one-byte codes (its nearest
//! centroid per subspace). Query scoring uses asymmetric distance computation
//! (ADC): the query's inner product with every centroid of every subspace is
//! tabulated once, after which scoring any stored code is `P` table lookups —
//! this is the "distance lookup-table" Algorithm 1 references.

use crate::kmeans::{lloyd, nearest_centroid, KMeansConfig};
use crate::metric::dot;
use crate::{IndexError, Result};
use serde::{Deserialize, Serialize};

/// Configuration of the product quantizer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PqConfig {
    /// Total vector dimensionality `D'`.
    pub dim: usize,
    /// Number of subspaces `P` (`dim` must be divisible by it).
    pub num_subspaces: usize,
    /// Number of centroids per subspace codebook `M` (≤ 256 so codes fit a byte).
    pub centroids_per_subspace: usize,
    /// Seed used for codebook training.
    pub seed: u64,
}

impl PqConfig {
    /// A sensible default: 8 subspaces, 64 centroids each, adjusted down for
    /// very small dimensions.
    pub fn for_dim(dim: usize) -> Self {
        let num_subspaces = if dim % 8 == 0 {
            8
        } else if dim % 4 == 0 {
            4
        } else {
            1
        };
        Self {
            dim,
            num_subspaces,
            centroids_per_subspace: 64,
            seed: 0x90a7,
        }
    }

    /// Dimension of each subspace.
    pub fn subspace_dim(&self) -> usize {
        self.dim / self.num_subspaces.max(1)
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.dim == 0 || self.num_subspaces == 0 {
            return Err(IndexError::InvalidConfig(
                "PQ dim and num_subspaces must be positive".into(),
            ));
        }
        if self.dim % self.num_subspaces != 0 {
            return Err(IndexError::InvalidConfig(format!(
                "PQ dim {} not divisible by num_subspaces {}",
                self.dim, self.num_subspaces
            )));
        }
        if self.centroids_per_subspace == 0 || self.centroids_per_subspace > 256 {
            return Err(IndexError::InvalidConfig(
                "PQ centroids_per_subspace must be in 1..=256".into(),
            ));
        }
        Ok(())
    }
}

/// A quantized vector: one centroid code per subspace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PqCode(pub Vec<u8>);

impl PqCode {
    /// Number of subspace codes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the code is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// A trained product quantizer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProductQuantizer {
    config: PqConfig,
    /// `codebooks[p][m]` is the `m`-th centroid of subspace `p` (length `subspace_dim`).
    codebooks: Vec<Vec<Vec<f32>>>,
}

/// ADC lookup table for one query, stored as one contiguous strided buffer:
/// `table[p * M + m]` is the inner product of the query's `p`-th sub-vector
/// with centroid `m` of subspace `p` (`M` = centroids per subspace).
///
/// The flat layout replaces the earlier `Vec<Vec<f32>>`: the whole table for
/// the default configuration (8 × 64 entries) is 2 KiB of consecutive memory,
/// so an ADC scan over a code list never chases an outer-vec pointer.
#[derive(Debug, Clone)]
pub struct AdcTable {
    table: Vec<f32>,
    centroids_per_subspace: usize,
}

impl AdcTable {
    /// Approximate inner product between the tabulated query and a stored code.
    #[inline]
    pub fn score(&self, code: &PqCode) -> f32 {
        self.score_codes(&code.0)
    }

    /// Approximate inner product for one code stored as a raw byte slice
    /// (one byte per subspace), as kept in contiguous inverted-list storage.
    #[inline]
    pub fn score_codes(&self, codes: &[u8]) -> f32 {
        let mut base = 0usize;
        let mut acc = 0.0f32;
        for &c in codes {
            acc += self.table[base + c as usize];
            base += self.centroids_per_subspace;
        }
        acc
    }

    /// Scores a whole inverted list stored as one contiguous code buffer
    /// (`codes.len() / stride` entries of `stride` bytes each), appending one
    /// approximate score per entry to `out`. This is the bulk ADC kernel: the
    /// table stays resident in L1 while the code bytes stream sequentially,
    /// and four entries are scored per pass so their independent accumulator
    /// chains overlap — one entry alone is latency-bound on its serial float
    /// adds. Each entry still accumulates left-to-right across subspaces, so
    /// scores are bit-identical to [`AdcTable::score_codes`].
    pub fn score_list(&self, codes: &[u8], stride: usize, out: &mut Vec<f32>) {
        debug_assert!(stride > 0);
        debug_assert_eq!(codes.len() % stride, 0);
        out.reserve(codes.len() / stride);
        let mut quads = codes.chunks_exact(stride * 4);
        for quad in &mut quads {
            let (c0, rest) = quad.split_at(stride);
            let (c1, rest) = rest.split_at(stride);
            let (c2, c3) = rest.split_at(stride);
            let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            let mut base = 0usize;
            for i in 0..stride {
                s0 += self.table[base + c0[i] as usize];
                s1 += self.table[base + c1[i] as usize];
                s2 += self.table[base + c2[i] as usize];
                s3 += self.table[base + c3[i] as usize];
                base += self.centroids_per_subspace;
            }
            out.extend_from_slice(&[s0, s1, s2, s3]);
        }
        for entry in quads.remainder().chunks_exact(stride) {
            out.push(self.score_codes(entry));
        }
    }

    /// Per-subspace partial score (used by the inverted multi-index search).
    #[inline]
    pub fn subspace_score(&self, subspace: usize, code: u8) -> f32 {
        self.table[subspace * self.centroids_per_subspace + code as usize]
    }

    /// The raw flat table: `num_subspaces * centroids_per_subspace` entries,
    /// strided by [`AdcTable::stride`]. The fast-scan path re-quantizes this
    /// buffer into its in-register u8 lookup tables.
    pub fn raw_table(&self) -> &[f32] {
        &self.table
    }

    /// Entries per subspace in [`AdcTable::raw_table`].
    pub fn stride(&self) -> usize {
        self.centroids_per_subspace
    }

    /// Builds a table directly from a flat entry buffer (`table.len()` must
    /// be a multiple of `centroids_per_subspace`). Tests and benchmarks use
    /// this to exercise scan kernels on synthetic tables without training a
    /// quantizer first.
    pub fn from_raw(table: Vec<f32>, centroids_per_subspace: usize) -> Result<Self> {
        if centroids_per_subspace == 0 || table.len() % centroids_per_subspace != 0 {
            return Err(IndexError::InvalidState(format!(
                "ADC table of {} entries is not a multiple of {} centroids per subspace",
                table.len(),
                centroids_per_subspace
            )));
        }
        Ok(AdcTable {
            table,
            centroids_per_subspace,
        })
    }
}

impl ProductQuantizer {
    /// Trains the quantizer on the given sample of vectors.
    ///
    /// Training requires at least one vector; if the sample is smaller than
    /// the number of centroids, duplicated points pad the codebooks (the
    /// k-means trainer guarantees the requested codebook size).
    pub fn train(config: PqConfig, sample: &[Vec<f32>]) -> Result<Self> {
        config.validate()?;
        if sample.is_empty() {
            return Err(IndexError::InvalidState(
                "cannot train PQ on an empty sample".into(),
            ));
        }
        let sub_dim = config.subspace_dim();
        let mut codebooks = Vec::with_capacity(config.num_subspaces);
        for p in 0..config.num_subspaces {
            let sub_points: Vec<Vec<f32>> = sample
                .iter()
                .map(|v| {
                    if v.len() != config.dim {
                        Err(IndexError::DimensionMismatch {
                            expected: config.dim,
                            actual: v.len(),
                        })
                    } else {
                        Ok(v[p * sub_dim..(p + 1) * sub_dim].to_vec())
                    }
                })
                .collect::<Result<_>>()?;
            let km = lloyd(
                &sub_points,
                sub_dim,
                &KMeansConfig::new(config.centroids_per_subspace)
                    .with_seed(config.seed ^ (p as u64).wrapping_mul(0x9e37_79b9)),
            )?;
            codebooks.push(km.centroids);
        }
        Ok(Self { config, codebooks })
    }

    /// The configuration the quantizer was trained with.
    pub fn config(&self) -> &PqConfig {
        &self.config
    }

    /// Encodes a vector into its per-subspace centroid codes.
    pub fn encode(&self, vector: &[f32]) -> Result<PqCode> {
        if vector.len() != self.config.dim {
            return Err(IndexError::DimensionMismatch {
                expected: self.config.dim,
                actual: vector.len(),
            });
        }
        let sub_dim = self.config.subspace_dim();
        let codes = (0..self.config.num_subspaces)
            .map(|p| {
                let sub = &vector[p * sub_dim..(p + 1) * sub_dim];
                nearest_centroid(sub, &self.codebooks[p]) as u8
            })
            .collect();
        Ok(PqCode(codes))
    }

    /// Reconstructs the approximate vector represented by a code.
    pub fn decode(&self, code: &PqCode) -> Result<Vec<f32>> {
        if code.len() != self.config.num_subspaces {
            return Err(IndexError::InvalidState(format!(
                "code has {} subspaces, quantizer has {}",
                code.len(),
                self.config.num_subspaces
            )));
        }
        let mut out = Vec::with_capacity(self.config.dim);
        for (p, &c) in code.0.iter().enumerate() {
            let centroid = self
                .codebooks
                .get(p)
                .and_then(|cb| cb.get(c as usize))
                .ok_or_else(|| {
                    IndexError::InvalidState("code references missing centroid".into())
                })?;
            out.extend_from_slice(centroid);
        }
        Ok(out)
    }

    /// Builds the ADC inner-product lookup table for a query vector.
    pub fn adc_table(&self, query: &[f32]) -> Result<AdcTable> {
        if query.len() != self.config.dim {
            return Err(IndexError::DimensionMismatch {
                expected: self.config.dim,
                actual: query.len(),
            });
        }
        let sub_dim = self.config.subspace_dim();
        let centroids = self.config.centroids_per_subspace;
        let mut table = Vec::with_capacity(self.config.num_subspaces * centroids);
        for (p, codebook) in self.codebooks.iter().enumerate() {
            let q_sub = &query[p * sub_dim..(p + 1) * sub_dim];
            table.extend(codebook.iter().map(|c| dot(q_sub, c)));
            // Lloyd's trainer guarantees `centroids` rows per codebook, so the
            // stride of the flat layout is uniform.
            debug_assert_eq!(table.len(), (p + 1) * centroids);
        }
        Ok(AdcTable {
            table,
            centroids_per_subspace: centroids,
        })
    }

    /// Mean squared reconstruction error over a sample (a quality diagnostic
    /// used by tests and the micro benchmarks).
    pub fn reconstruction_error(&self, sample: &[Vec<f32>]) -> Result<f32> {
        if sample.is_empty() {
            return Ok(0.0);
        }
        let mut total = 0.0f32;
        for v in sample {
            let decoded = self.decode(&self.encode(v)?)?;
            total += crate::metric::squared_l2(v, &decoded);
        }
        Ok(total / sample.len() as f32)
    }

    /// Bytes needed to store one encoded vector.
    pub fn code_bytes(&self) -> usize {
        self.config.num_subspaces
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_unit_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
                crate::metric::normalize(&mut v);
                v
            })
            .collect()
    }

    #[test]
    fn config_validation() {
        assert!(PqConfig {
            dim: 64,
            num_subspaces: 8,
            centroids_per_subspace: 16,
            seed: 1
        }
        .validate()
        .is_ok());
        assert!(PqConfig {
            dim: 10,
            num_subspaces: 3,
            centroids_per_subspace: 16,
            seed: 1
        }
        .validate()
        .is_err());
        assert!(PqConfig {
            dim: 8,
            num_subspaces: 2,
            centroids_per_subspace: 300,
            seed: 1
        }
        .validate()
        .is_err());
    }

    #[test]
    fn encode_decode_reduces_but_preserves_direction() {
        let dim = 32;
        let sample = random_unit_vectors(500, dim, 7);
        let pq = ProductQuantizer::train(
            PqConfig {
                dim,
                num_subspaces: 8,
                centroids_per_subspace: 32,
                seed: 3,
            },
            &sample,
        )
        .unwrap();
        let err = pq.reconstruction_error(&sample).unwrap();
        assert!(err < 0.5, "reconstruction error too high: {err}");
        // A decoded vector should be much closer to the original than to an
        // unrelated vector.
        let decoded = pq.decode(&pq.encode(&sample[0]).unwrap()).unwrap();
        let self_sim = dot(&sample[0], &decoded);
        let other_sim = dot(&sample[250], &decoded);
        assert!(self_sim > other_sim);
    }

    #[test]
    fn adc_score_approximates_exact_inner_product() {
        let dim = 32;
        let sample = random_unit_vectors(800, dim, 11);
        let pq = ProductQuantizer::train(
            PqConfig {
                dim,
                num_subspaces: 8,
                centroids_per_subspace: 64,
                seed: 5,
            },
            &sample,
        )
        .unwrap();
        let query = &sample[13];
        let table = pq.adc_table(query).unwrap();
        let mut total_abs_err = 0.0f32;
        for v in sample.iter().take(100) {
            let code = pq.encode(v).unwrap();
            let approx = table.score(&code);
            let exact = dot(query, v);
            total_abs_err += (approx - exact).abs();
        }
        let mean_err = total_abs_err / 100.0;
        assert!(mean_err < 0.15, "mean ADC error too high: {mean_err}");
    }

    #[test]
    fn adc_preserves_ranking_of_clear_winners() {
        let dim = 16;
        // Construct clusters along axes so the nearest neighbour is unambiguous.
        let mut sample = Vec::new();
        for axis in 0..4 {
            for i in 0..50 {
                let mut v = vec![0.02 * (i as f32 % 5.0); dim];
                v[axis * 4] = 1.0;
                crate::metric::normalize(&mut v);
                sample.push(v);
            }
        }
        let pq = ProductQuantizer::train(
            PqConfig {
                dim,
                num_subspaces: 4,
                centroids_per_subspace: 16,
                seed: 2,
            },
            &sample,
        )
        .unwrap();
        let mut query = vec![0.0; dim];
        query[0] = 1.0;
        let table = pq.adc_table(&query).unwrap();
        // Vectors in the first cluster must outrank vectors in other clusters.
        let first = table.score(&pq.encode(&sample[0]).unwrap());
        let other = table.score(&pq.encode(&sample[150]).unwrap());
        assert!(first > other);
    }

    #[test]
    fn code_size_matches_subspaces() {
        let sample = random_unit_vectors(50, 24, 1);
        let pq = ProductQuantizer::train(
            PqConfig {
                dim: 24,
                num_subspaces: 4,
                centroids_per_subspace: 8,
                seed: 1,
            },
            &sample,
        )
        .unwrap();
        let code = pq.encode(&sample[0]).unwrap();
        assert_eq!(code.len(), 4);
        assert_eq!(pq.code_bytes(), 4);
        assert!(!code.is_empty());
    }

    #[test]
    fn dimension_errors_are_reported() {
        let sample = random_unit_vectors(50, 16, 1);
        let pq = ProductQuantizer::train(PqConfig::for_dim(16), &sample).unwrap();
        assert!(pq.encode(&[0.0; 8]).is_err());
        assert!(pq.adc_table(&[0.0; 8]).is_err());
        assert!(pq.decode(&PqCode(vec![0u8; 3])).is_err());
    }

    #[test]
    fn training_on_empty_sample_fails() {
        assert!(ProductQuantizer::train(PqConfig::for_dim(16), &[]).is_err());
    }

    #[test]
    fn for_dim_produces_valid_configs() {
        for dim in [16usize, 24, 32, 64, 96, 128, 7] {
            let cfg = PqConfig::for_dim(dim);
            assert!(
                cfg.validate().is_ok(),
                "invalid default config for dim {dim}"
            );
        }
    }
}
