//! Lloyd's k-means (the paper cites Lloyd's iteration for training PQ
//! codebooks, §V-B).
//!
//! The trainer is deterministic given its seed: initialization uses a
//! k-means++-style D² seeding driven by a `SmallRng`, followed by standard
//! assign/update iterations until assignments stop changing or the iteration
//! budget is exhausted. Empty clusters are re-seeded from the point farthest
//! from its centroid so the requested number of centroids is always produced.

use crate::metric::squared_l2;
use crate::{IndexError, Result};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster centroids, `k` rows of `dim` values.
    pub centroids: Vec<Vec<f32>>,
    /// Index of the centroid assigned to each training point.
    pub assignments: Vec<usize>,
    /// Final within-cluster sum of squared distances.
    pub inertia: f32,
    /// Number of Lloyd iterations performed.
    pub iterations: usize,
}

/// Configuration of the trainer.
#[derive(Debug, Clone, Copy)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iterations: usize,
    /// RNG seed for initialization.
    pub seed: u64,
}

impl KMeansConfig {
    /// Creates a configuration with the default iteration budget (25).
    pub fn new(k: usize) -> Self {
        Self {
            k,
            max_iterations: 25,
            seed: 0x5eed,
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style iteration budget override.
    pub fn with_max_iterations(mut self, iters: usize) -> Self {
        self.max_iterations = iters.max(1);
        self
    }
}

/// Runs Lloyd's algorithm on `points` (each of dimension `dim`).
///
/// Returns an error when there are no points, the dimension is zero, or `k`
/// is zero. When there are fewer points than clusters, duplicated points seed
/// the surplus centroids (every requested centroid is still produced, which is
/// what the PQ codebook training relies on).
pub fn lloyd(points: &[Vec<f32>], dim: usize, config: &KMeansConfig) -> Result<KMeansResult> {
    if config.k == 0 {
        return Err(IndexError::InvalidConfig("k must be positive".into()));
    }
    if dim == 0 {
        return Err(IndexError::InvalidConfig("dim must be positive".into()));
    }
    if points.is_empty() {
        return Err(IndexError::InvalidState(
            "cannot train k-means on zero points".into(),
        ));
    }
    if let Some(bad) = points.iter().find(|p| p.len() != dim) {
        return Err(IndexError::DimensionMismatch {
            expected: dim,
            actual: bad.len(),
        });
    }

    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut centroids = init_plus_plus(points, config.k, &mut rng);
    let mut assignments = vec![0usize; points.len()];
    let mut iterations = 0;

    for iter in 0..config.max_iterations {
        iterations = iter + 1;
        // Assignment step.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = nearest_centroid(p, &centroids);
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // Update step.
        let mut sums = vec![vec![0.0f32; dim]; centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for (p, &a) in points.iter().zip(assignments.iter()) {
            counts[a] += 1;
            for (s, v) in sums[a].iter_mut().zip(p.iter()) {
                *s += v;
            }
        }
        for (c, (sum, &count)) in centroids.iter_mut().zip(sums.iter().zip(counts.iter())) {
            if count > 0 {
                for (cv, sv) in c.iter_mut().zip(sum.iter()) {
                    *cv = sv / count as f32;
                }
            }
        }
        // Re-seed empty clusters from the worst-fit point.
        for cluster in 0..centroids.len() {
            if counts[cluster] == 0 {
                if let Some((worst_idx, _)) = points
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (i, squared_l2(p, &centroids[assignments[i]])))
                    .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                {
                    centroids[cluster] = points[worst_idx].clone();
                    changed = true;
                }
            }
        }
        if !changed && iter > 0 {
            break;
        }
    }

    let inertia = points
        .iter()
        .zip(assignments.iter())
        .map(|(p, &a)| squared_l2(p, &centroids[a]))
        .sum();

    Ok(KMeansResult {
        centroids,
        assignments,
        inertia,
        iterations,
    })
}

/// Index of the centroid nearest (in squared L2) to `point`.
pub fn nearest_centroid(point: &[f32], centroids: &[Vec<f32>]) -> usize {
    let mut best = 0;
    let mut best_dist = f32::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = squared_l2(point, c);
        if d < best_dist {
            best_dist = d;
            best = i;
        }
    }
    best
}

/// k-means++ D² seeding.
fn init_plus_plus(points: &[Vec<f32>], k: usize, rng: &mut SmallRng) -> Vec<Vec<f32>> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    let mut dists: Vec<f32> = points
        .iter()
        .map(|p| squared_l2(p, &centroids[0]))
        .collect();
    while centroids.len() < k {
        let total: f32 = dists.iter().sum();
        let next = if total <= f32::EPSILON {
            // All points coincide with existing centroids; duplicate one.
            points[rng.gen_range(0..points.len())].clone()
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = points.len() - 1;
            for (i, &d) in dists.iter().enumerate() {
                if target < d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            points[chosen].clone()
        };
        for (d, p) in dists.iter_mut().zip(points.iter()) {
            *d = d.min(squared_l2(p, &next));
        }
        centroids.push(next);
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs(n: usize) -> Vec<Vec<f32>> {
        // Two well-separated clusters around (0,0) and (10,10).
        (0..n)
            .map(|i| {
                let offset = if i % 2 == 0 { 0.0 } else { 10.0 };
                let jitter = (i as f32 * 0.37).sin() * 0.3;
                vec![offset + jitter, offset - jitter]
            })
            .collect()
    }

    #[test]
    fn separates_two_blobs() {
        let points = two_blobs(200);
        let result = lloyd(&points, 2, &KMeansConfig::new(2)).unwrap();
        assert_eq!(result.centroids.len(), 2);
        let mut centers: Vec<f32> = result.centroids.iter().map(|c| c[0]).collect();
        centers.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(centers[0].abs() < 1.0, "low centroid at {}", centers[0]);
        assert!(
            (centers[1] - 10.0).abs() < 1.0,
            "high centroid at {}",
            centers[1]
        );
        // Points alternate between blobs, so assignments must alternate too.
        assert_ne!(result.assignments[0], result.assignments[1]);
        assert_eq!(result.assignments[0], result.assignments[2]);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let points = two_blobs(64);
        let a = lloyd(&points, 2, &KMeansConfig::new(4).with_seed(5)).unwrap();
        let b = lloyd(&points, 2, &KMeansConfig::new(4).with_seed(5)).unwrap();
        assert_eq!(a.centroids, b.centroids);
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn produces_requested_k_even_with_few_points() {
        let points = vec![vec![1.0, 1.0], vec![2.0, 2.0]];
        let result = lloyd(&points, 2, &KMeansConfig::new(5)).unwrap();
        assert_eq!(result.centroids.len(), 5);
    }

    #[test]
    fn rejects_bad_inputs() {
        let points = vec![vec![1.0, 2.0]];
        assert!(lloyd(&points, 2, &KMeansConfig::new(0)).is_err());
        assert!(lloyd(&[], 2, &KMeansConfig::new(2)).is_err());
        assert!(lloyd(&points, 0, &KMeansConfig::new(2)).is_err());
        let ragged = vec![vec![1.0, 2.0], vec![1.0]];
        assert!(lloyd(&ragged, 2, &KMeansConfig::new(2)).is_err());
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let points = two_blobs(100);
        let one = lloyd(&points, 2, &KMeansConfig::new(1)).unwrap();
        let four = lloyd(&points, 2, &KMeansConfig::new(4)).unwrap();
        assert!(four.inertia <= one.inertia);
    }

    #[test]
    fn identical_points_do_not_panic() {
        let points = vec![vec![3.0, 3.0]; 20];
        let result = lloyd(&points, 2, &KMeansConfig::new(4)).unwrap();
        assert_eq!(result.centroids.len(), 4);
        assert!(result.inertia < 1e-6);
    }

    #[test]
    fn nearest_centroid_picks_closest() {
        let centroids = vec![vec![0.0, 0.0], vec![5.0, 5.0]];
        assert_eq!(nearest_centroid(&[1.0, 1.0], &centroids), 0);
        assert_eq!(nearest_centroid(&[4.0, 6.0], &centroids), 1);
    }
}
