//! 4-bit fast-scan PQ kernels (the FAISS "PQ4 fast scan" layout).
//!
//! The classic ADC loop ([`crate::pq::AdcTable::score_list`]) does one
//! table *load* per (vector, subspace) pair: the lookup table lives in L1,
//! but every lookup is still a scalar load-add chain. The fast-scan layout
//! removes the loads entirely on SIMD hardware:
//!
//! * codebooks are restricted to **16 centroids per subspace**, so a code is
//!   a nibble and a whole per-subspace lookup table is 16 bytes — exactly one
//!   SIMD register on SSE/AVX;
//! * codes are **transposed into blocks of 32 vectors**: for each pair of
//!   subspaces, one contiguous 32-byte plane holds the packed nibbles of all
//!   32 vectors (low nibble = even subspace, high nibble = odd subspace);
//! * the f32 ADC table is **quantized to u8** (per-subspace minimum
//!   subtracted, one global scale), so 32 lookups become one
//!   `pshufb`/`_mm256_shuffle_epi8` and scores accumulate in u16 lanes.
//!
//! The scalar fallback performs the *same* u8 lookups and u16 integer adds in
//! the same order, so its sums are bit-identical to the SIMD kernel's — the
//! property suite in `tests/fastscan_properties.rs` holds both paths to that.
//!
//! Kernel selection happens once per process ([`FastScanKernel::detect`]),
//! honours the `LOVO_DISABLE_SIMD` environment switch, and can be pinned to
//! scalar explicitly for deterministic tests.

use crate::pq::AdcTable;
use crate::{IndexError, Result};
use std::sync::OnceLock;

/// Vectors per fast-scan block: 32 packed nibbles fill one 256-bit register
/// plane per subspace pair.
pub const FASTSCAN_BLOCK: usize = 32;

/// Centroids per subspace the fast-scan layout supports (codes are nibbles).
pub const FASTSCAN_CENTROIDS: usize = 16;

/// Environment variable that force-disables every SIMD kernel when set to a
/// non-empty value other than `0` — CI uses it to exercise the scalar
/// fallback on any runner.
pub const DISABLE_SIMD_ENV: &str = "LOVO_DISABLE_SIMD";

/// Which accumulation kernel a [`FastScanKernel`] dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KernelKind {
    /// Portable u8-lookup / u16-add loop, bit-identical to the SIMD path.
    Scalar,
    /// AVX2 `_mm256_shuffle_epi8` in-register lookups (x86_64 only).
    #[cfg(target_arch = "x86_64")]
    Avx2,
}

fn simd_disabled_by_env() -> bool {
    match std::env::var(DISABLE_SIMD_ENV) {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    }
}

static DETECTED: OnceLock<KernelKind> = OnceLock::new();

fn detect_kind() -> KernelKind {
    *DETECTED.get_or_init(|| {
        if simd_disabled_by_env() {
            return KernelKind::Scalar;
        }
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            return KernelKind::Avx2;
        }
        KernelKind::Scalar
    })
}

/// Runtime-dispatched fast-scan accumulation kernel.
///
/// One instance is selected per process and shared by every sealed segment;
/// the choice is visible in benchmarks via [`FastScanKernel::name`].
#[derive(Debug, Clone, Copy)]
pub struct FastScanKernel {
    kind: KernelKind,
}

impl FastScanKernel {
    /// Selects the best kernel the CPU supports, unless `LOVO_DISABLE_SIMD`
    /// pins the scalar path. Detection runs once per process.
    pub fn detect() -> Self {
        Self {
            kind: detect_kind(),
        }
    }

    /// The portable scalar kernel, unconditionally — deterministic tests use
    /// this to compare the SIMD path against the fallback on the same host.
    pub fn scalar() -> Self {
        Self {
            kind: KernelKind::Scalar,
        }
    }

    /// Human-readable kernel name for benchmark output.
    pub fn name(&self) -> &'static str {
        match self.kind {
            KernelKind::Scalar => "scalar",
            #[cfg(target_arch = "x86_64")]
            KernelKind::Avx2 => "avx2",
        }
    }

    /// True when this kernel uses SIMD intrinsics.
    pub fn is_simd(&self) -> bool {
        !matches!(self.kind, KernelKind::Scalar)
    }

    /// Accumulates one block: for each of the 32 vectors of `block`, sums the
    /// u8 LUT entries of every subspace into `sums`. `block` holds
    /// `pairs * 32` bytes (one 32-byte nibble plane per subspace pair) and
    /// `luts` holds `pairs * 2` tables of 16 bytes each.
    #[inline]
    fn accumulate_block(&self, luts: &[u8], block: &[u8], pairs: usize, sums: &mut [u16; 32]) {
        debug_assert_eq!(block.len(), pairs * FASTSCAN_BLOCK);
        debug_assert_eq!(luts.len(), pairs * 2 * FASTSCAN_CENTROIDS);
        match self.kind {
            KernelKind::Scalar => accumulate_block_scalar(luts, block, pairs, sums),
            #[cfg(target_arch = "x86_64")]
            KernelKind::Avx2 => {
                // SAFETY: `KernelKind::Avx2` is only constructed after AVX2
                // detection succeeded, so the target feature is present.
                unsafe { avx2::accumulate_block_avx2(luts, block, pairs, sums) }
            }
        }
    }
}

/// Portable reference kernel: identical u8 lookups and u16 additions to the
/// SIMD path (per vector: LUT bytes summed pair-plane by pair-plane), so the
/// two produce bit-identical sums.
fn accumulate_block_scalar(luts: &[u8], block: &[u8], pairs: usize, sums: &mut [u16; 32]) {
    for p in 0..pairs {
        let lut_lo = &luts[2 * p * FASTSCAN_CENTROIDS..(2 * p + 1) * FASTSCAN_CENTROIDS];
        let lut_hi = &luts[(2 * p + 1) * FASTSCAN_CENTROIDS..(2 * p + 2) * FASTSCAN_CENTROIDS];
        let plane = &block[p * FASTSCAN_BLOCK..(p + 1) * FASTSCAN_BLOCK];
        for (j, &byte) in plane.iter().enumerate() {
            sums[j] += lut_lo[(byte & 0x0F) as usize] as u16 + lut_hi[(byte >> 4) as usize] as u16;
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! AVX2 in-register lookup kernel.
    //!
    //! Per subspace pair: one 32-byte plane of packed nibbles is loaded into a
    //! 256-bit register; `_mm256_shuffle_epi8` performs all 32 low-nibble
    //! lookups in one instruction (and another for the high nibbles), and the
    //! u8 results widen into two u16 accumulators. With ≤256 subspaces each
    //! contributing ≤255, the u16 lanes cannot overflow, so the sums equal
    //! the scalar kernel's bit for bit.

    use super::{FASTSCAN_BLOCK, FASTSCAN_CENTROIDS};
    use std::arch::x86_64::*;

    /// Accumulates one 32-vector block with AVX2 shuffles.
    ///
    /// # Safety
    /// The caller must ensure the CPU supports AVX2 (checked once at kernel
    /// detection). Slice lengths are the same contract as the scalar kernel:
    /// `block.len() == pairs * 32`, `luts.len() == pairs * 2 * 16`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn accumulate_block_avx2(
        luts: &[u8],
        block: &[u8],
        pairs: usize,
        sums: &mut [u16; 32],
    ) {
        let low_mask = _mm256_set1_epi8(0x0F);
        let zero = _mm256_setzero_si256();
        // acc_a accumulates vectors [0..8) and [16..24); acc_b accumulates
        // [8..16) and [24..32) — the per-128-bit-lane split of unpacklo/hi.
        let mut acc_a = _mm256_setzero_si256();
        let mut acc_b = _mm256_setzero_si256();
        for p in 0..pairs {
            // SAFETY: the length contract gives `pairs * 32` bytes in `block`
            // and `pairs * 2 * 16` bytes in `luts`, so every pointer below
            // stays in bounds; loadu has no alignment requirement.
            let plane = _mm256_loadu_si256(block.as_ptr().add(p * FASTSCAN_BLOCK).cast());
            let lut_lo128 = _mm_loadu_si128(luts.as_ptr().add(2 * p * FASTSCAN_CENTROIDS).cast());
            let lut_hi128 =
                _mm_loadu_si128(luts.as_ptr().add((2 * p + 1) * FASTSCAN_CENTROIDS).cast());
            let lut_lo = _mm256_broadcastsi128_si256(lut_lo128);
            let lut_hi = _mm256_broadcastsi128_si256(lut_hi128);
            let lo_nibbles = _mm256_and_si256(plane, low_mask);
            let hi_nibbles = _mm256_and_si256(_mm256_srli_epi16(plane, 4), low_mask);
            let vals_lo = _mm256_shuffle_epi8(lut_lo, lo_nibbles);
            let vals_hi = _mm256_shuffle_epi8(lut_hi, hi_nibbles);
            acc_a = _mm256_add_epi16(acc_a, _mm256_unpacklo_epi8(vals_lo, zero));
            acc_b = _mm256_add_epi16(acc_b, _mm256_unpackhi_epi8(vals_lo, zero));
            acc_a = _mm256_add_epi16(acc_a, _mm256_unpacklo_epi8(vals_hi, zero));
            acc_b = _mm256_add_epi16(acc_b, _mm256_unpackhi_epi8(vals_hi, zero));
        }
        let mut a = [0u16; 16];
        let mut b = [0u16; 16];
        // SAFETY: both arrays are exactly 32 bytes, matching the store width.
        _mm256_storeu_si256(a.as_mut_ptr().cast(), acc_a);
        _mm256_storeu_si256(b.as_mut_ptr().cast(), acc_b);
        // De-interleave the per-lane unpack order back into vector order.
        for j in 0..8 {
            sums[j] += a[j];
            sums[8 + j] += b[j];
            sums[16 + j] += a[8 + j];
            sums[24 + j] += b[8 + j];
        }
    }
}

/// PQ codes re-laid-out for fast scanning: blocks of 32 vectors, one 32-byte
/// packed-nibble plane per subspace pair. Supports incremental appends (cells
/// of a built IVF index keep growing), padding the trailing partial block
/// with zero codes that are never read back as scores.
#[derive(Debug, Clone, Default)]
pub struct FastScanCodes {
    /// Subspaces per vector as stored by the caller (may be odd; the layout
    /// pads odd counts with a zero subspace whose LUT is all-zero).
    num_subspaces: usize,
    /// `ceil(num_subspaces / 2)` nibble planes per block.
    pairs: usize,
    /// Number of vectors appended.
    len: usize,
    /// `ceil(len / 32) * pairs * 32` bytes of packed planes.
    packed: Vec<u8>,
}

impl FastScanCodes {
    /// Creates an empty layout for vectors of `num_subspaces` codes, each
    /// code `< 16`.
    pub fn new(num_subspaces: usize) -> Self {
        Self {
            num_subspaces,
            pairs: num_subspaces.div_ceil(2),
            len: 0,
            packed: Vec::new(),
        }
    }

    /// Number of vectors appended.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no vector has been appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes held by the packed layout.
    pub fn memory_bytes(&self) -> usize {
        self.packed.len()
    }

    /// Appends one vector's codes (one byte per subspace, each `< 16`).
    pub fn append(&mut self, codes: &[u8]) -> Result<()> {
        if codes.len() != self.num_subspaces {
            return Err(IndexError::InvalidState(format!(
                "fast-scan append of {} codes into a {}-subspace layout",
                codes.len(),
                self.num_subspaces
            )));
        }
        if codes.iter().any(|&c| c >= FASTSCAN_CENTROIDS as u8) {
            return Err(IndexError::InvalidState(
                "fast-scan codes must be 4-bit (< 16 centroids per subspace)".into(),
            ));
        }
        let slot = self.len % FASTSCAN_BLOCK;
        if slot == 0 {
            // Open a fresh zeroed block; padding slots score as garbage but
            // are sliced off by `scores`, which only emits `len` entries.
            self.packed
                .resize(self.packed.len() + self.pairs * FASTSCAN_BLOCK, 0);
        }
        let block_base = (self.len / FASTSCAN_BLOCK) * self.pairs * FASTSCAN_BLOCK;
        for p in 0..self.pairs {
            let lo = codes[2 * p];
            let hi = codes.get(2 * p + 1).copied().unwrap_or(0);
            self.packed[block_base + p * FASTSCAN_BLOCK + slot] = (hi << 4) | lo;
        }
        self.len += 1;
        Ok(())
    }

    /// Scores every appended vector against a quantized LUT, appending one
    /// approximate f32 score per vector to `out` (same order as appended,
    /// same shape as [`crate::pq::AdcTable::score_list`]).
    pub fn scores(
        &self,
        lut: &QuantizedLut,
        kernel: FastScanKernel,
        out: &mut Vec<f32>,
    ) -> Result<()> {
        if lut.num_subspaces != self.num_subspaces {
            return Err(IndexError::InvalidState(format!(
                "quantized LUT has {} subspaces, layout has {}",
                lut.num_subspaces, self.num_subspaces
            )));
        }
        out.reserve(self.len);
        let block_bytes = self.pairs * FASTSCAN_BLOCK;
        let mut remaining = self.len;
        for block in self.packed.chunks_exact(block_bytes) {
            let mut sums = [0u16; FASTSCAN_BLOCK];
            kernel.accumulate_block(&lut.luts, block, self.pairs, &mut sums);
            let valid = remaining.min(FASTSCAN_BLOCK);
            out.extend(
                sums[..valid]
                    .iter()
                    .map(|&s| lut.bias + lut.delta * s as f32),
            );
            remaining -= valid;
        }
        Ok(())
    }

    /// Raw u16 block sums (before de-quantization) for every appended vector
    /// — the bit-identity property tests compare scalar and SIMD kernels on
    /// these exact integers.
    pub fn raw_sums(&self, lut: &QuantizedLut, kernel: FastScanKernel) -> Vec<u16> {
        let block_bytes = self.pairs * FASTSCAN_BLOCK;
        let mut out = Vec::with_capacity(self.len);
        let mut remaining = self.len;
        for block in self.packed.chunks_exact(block_bytes) {
            let mut sums = [0u16; FASTSCAN_BLOCK];
            kernel.accumulate_block(&lut.luts, block, self.pairs, &mut sums);
            let valid = remaining.min(FASTSCAN_BLOCK);
            out.extend_from_slice(&sums[..valid]);
            remaining -= valid;
        }
        out
    }
}

/// A per-query ADC lookup table quantized to u8 for in-register shuffles.
///
/// Per subspace `m`, the f32 entries are shifted by their minimum and scaled
/// by one *global* step `delta` (so u16 sums across subspaces stay
/// commensurable): `q[m][c] = round((table[m][c] - min_m) / delta)` with
/// `delta = max_m(range_m) / 255`. A score is reconstructed as
/// `bias + delta * sum` where `bias = Σ_m min_m`; the worst-case error is
/// [`QuantizedLut::error_bound`] = `num_subspaces * delta / 2`.
#[derive(Debug, Clone)]
pub struct QuantizedLut {
    /// `pairs * 2` tables of 16 bytes (odd subspace counts get an all-zero
    /// padding table matching the layout's zero padding codes).
    luts: Vec<u8>,
    num_subspaces: usize,
    /// Sum of the per-subspace minima.
    bias: f32,
    /// Global quantization step.
    delta: f32,
}

impl QuantizedLut {
    /// Quantizes a f32 ADC table with 16 centroids per subspace.
    pub fn from_adc(adc: &AdcTable) -> Result<Self> {
        let stride = adc.stride();
        if stride != FASTSCAN_CENTROIDS {
            return Err(IndexError::InvalidState(format!(
                "fast-scan needs {FASTSCAN_CENTROIDS} centroids per subspace, table has {stride}"
            )));
        }
        let table = adc.raw_table();
        let num_subspaces = table.len() / stride;
        let mut mins = Vec::with_capacity(num_subspaces);
        let mut max_range = 0.0f32;
        for sub in table.chunks_exact(stride) {
            let mut min = f32::INFINITY;
            let mut max = f32::NEG_INFINITY;
            for &v in sub {
                min = min.min(v);
                max = max.max(v);
            }
            max_range = max_range.max(max - min);
            mins.push(min);
        }
        let delta = if max_range > 0.0 {
            max_range / 255.0
        } else {
            1.0
        };
        let pairs = num_subspaces.div_ceil(2);
        let mut luts = vec![0u8; pairs * 2 * FASTSCAN_CENTROIDS];
        for (m, (sub, &min)) in table.chunks_exact(stride).zip(&mins).enumerate() {
            for (c, &v) in sub.iter().enumerate() {
                let q = ((v - min) / delta).round().clamp(0.0, 255.0);
                luts[m * FASTSCAN_CENTROIDS + c] = q as u8;
            }
        }
        Ok(Self {
            luts,
            num_subspaces,
            bias: mins.iter().sum(),
            delta,
        })
    }

    /// Worst-case absolute error of a reconstructed score versus the f32 ADC
    /// sum: each subspace contributes at most half a quantization step.
    pub fn error_bound(&self) -> f32 {
        self.num_subspaces as f32 * self.delta / 2.0
    }

    /// The global quantization step (benchmark diagnostic).
    pub fn delta(&self) -> f32 {
        self.delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pq::{PqConfig, ProductQuantizer};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                crate::metric::normalize(&mut v);
                v
            })
            .collect()
    }

    fn pq16(dim: usize, subspaces: usize, sample: &[Vec<f32>]) -> ProductQuantizer {
        ProductQuantizer::train(
            PqConfig {
                dim,
                num_subspaces: subspaces,
                centroids_per_subspace: FASTSCAN_CENTROIDS,
                seed: 0xfa57,
            },
            sample,
        )
        .unwrap()
    }

    #[test]
    fn append_rejects_bad_codes() {
        let mut codes = FastScanCodes::new(4);
        assert!(codes.append(&[1, 2, 3]).is_err());
        assert!(codes.append(&[1, 2, 3, 16]).is_err());
        assert!(codes.append(&[1, 2, 3, 15]).is_ok());
        assert_eq!(codes.len(), 1);
        assert!(!codes.is_empty());
        assert!(codes.memory_bytes() > 0);
    }

    #[test]
    fn scores_match_adc_within_error_bound() {
        let dim = 32;
        let sample = random_vectors(400, dim, 3);
        let pq = pq16(dim, 8, &sample);
        let query = &sample[0];
        let adc = pq.adc_table(query).unwrap();
        let lut = QuantizedLut::from_adc(&adc).unwrap();

        let mut packed = FastScanCodes::new(8);
        let mut flat_codes = Vec::new();
        for v in sample.iter().take(100) {
            let code = pq.encode(v).unwrap();
            packed.append(&code.0).unwrap();
            flat_codes.extend_from_slice(&code.0);
        }
        let mut exact = Vec::new();
        adc.score_list(&flat_codes, 8, &mut exact);
        let mut fast = Vec::new();
        packed
            .scores(&lut, FastScanKernel::scalar(), &mut fast)
            .unwrap();
        assert_eq!(fast.len(), exact.len());
        let bound = lut.error_bound() + 1e-4;
        for (f, e) in fast.iter().zip(&exact) {
            assert!(
                (f - e).abs() <= bound,
                "fast {f} vs adc {e} (bound {bound})"
            );
        }
    }

    #[test]
    fn detected_kernel_sums_are_bit_identical_to_scalar() {
        let dim = 32;
        let sample = random_vectors(300, dim, 9);
        let pq = pq16(dim, 8, &sample);
        let adc = pq.adc_table(&sample[7]).unwrap();
        let lut = QuantizedLut::from_adc(&adc).unwrap();
        let mut packed = FastScanCodes::new(8);
        for v in &sample {
            packed.append(&pq.encode(v).unwrap().0).unwrap();
        }
        let scalar = packed.raw_sums(&lut, FastScanKernel::scalar());
        let detected = packed.raw_sums(&lut, FastScanKernel::detect());
        assert_eq!(scalar, detected);
    }

    #[test]
    fn odd_subspace_count_pads_with_zero_plane() {
        let dim = 30;
        let sample = random_vectors(200, dim, 5);
        let pq = pq16(dim, 5, &sample);
        let adc = pq.adc_table(&sample[1]).unwrap();
        let lut = QuantizedLut::from_adc(&adc).unwrap();
        let mut packed = FastScanCodes::new(5);
        let mut flat_codes = Vec::new();
        for v in sample.iter().take(50) {
            let code = pq.encode(v).unwrap();
            packed.append(&code.0).unwrap();
            flat_codes.extend_from_slice(&code.0);
        }
        let mut exact = Vec::new();
        adc.score_list(&flat_codes, 5, &mut exact);
        let mut fast = Vec::new();
        packed
            .scores(&lut, FastScanKernel::scalar(), &mut fast)
            .unwrap();
        let bound = lut.error_bound() + 1e-4;
        for (f, e) in fast.iter().zip(&exact) {
            assert!((f - e).abs() <= bound);
        }
    }

    #[test]
    fn partial_trailing_block_emits_exactly_len_scores() {
        let dim = 16;
        let sample = random_vectors(100, dim, 1);
        let pq = pq16(dim, 4, &sample);
        let adc = pq.adc_table(&sample[0]).unwrap();
        let lut = QuantizedLut::from_adc(&adc).unwrap();
        for n in [1usize, 31, 32, 33, 63, 65] {
            let mut packed = FastScanCodes::new(4);
            for v in sample.iter().take(n) {
                packed.append(&pq.encode(v).unwrap().0).unwrap();
            }
            let mut fast = Vec::new();
            packed
                .scores(&lut, FastScanKernel::scalar(), &mut fast)
                .unwrap();
            assert_eq!(fast.len(), n);
        }
    }

    #[test]
    fn lut_requires_16_centroids() {
        let dim = 16;
        let sample = random_vectors(200, dim, 2);
        let pq = ProductQuantizer::train(
            PqConfig {
                dim,
                num_subspaces: 4,
                centroids_per_subspace: 32,
                seed: 1,
            },
            &sample,
        )
        .unwrap();
        let adc = pq.adc_table(&sample[0]).unwrap();
        assert!(QuantizedLut::from_adc(&adc).is_err());
    }

    #[test]
    fn kernel_names_and_scalar_pin() {
        assert_eq!(FastScanKernel::scalar().name(), "scalar");
        assert!(!FastScanKernel::scalar().is_simd());
        // Detection never fails; its name is one of the known kernels.
        let k = FastScanKernel::detect();
        assert!(["scalar", "avx2"].contains(&k.name()));
    }

    #[test]
    fn lut_mismatch_is_an_error() {
        let dim = 32;
        let sample = random_vectors(200, dim, 4);
        let pq = pq16(dim, 8, &sample);
        let adc = pq.adc_table(&sample[0]).unwrap();
        let lut = QuantizedLut::from_adc(&adc).unwrap();
        let packed = FastScanCodes::new(4);
        let mut out = Vec::new();
        assert!(packed
            .scores(&lut, FastScanKernel::scalar(), &mut out)
            .is_err());
        assert!(lut.delta() > 0.0);
    }
}
