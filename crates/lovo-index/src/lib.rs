//! # lovo-index
//!
//! Vector-index substrate for the LOVO reproduction (§V of the paper).
//!
//! The paper stores per-patch class embeddings in a vector database indexed
//! with product quantization and an inverted multi-index, and answers queries
//! with the approximate nearest-neighbour search of Algorithm 1. Table V also
//! compares against brute force and a graph-based (HNSW) index. This crate
//! implements all of those from scratch:
//!
//! * [`metric`] — similarity metrics (§V-A): normalized dot product /
//!   cosine, and the distance relationship `d = sqrt(2 - 2 s)`;
//! * [`kmeans`] — Lloyd's iteration, used to train PQ codebooks and the
//!   coarse quantizers;
//! * [`pq`] — product quantization with asymmetric-distance (ADC) lookup
//!   tables;
//! * [`ivf`] — the inverted multi-index (Cartesian product of per-subspace
//!   coarse codebooks) plus Algorithm 1's search: per-subspace centroid
//!   scoring, Top-A cluster selection, residual-corrected approximate scores,
//!   exact re-scoring of the top-k, and the patch-id majority vote;
//! * [`hnsw`] — a hierarchical navigable small-world graph index;
//! * [`flat`] — exhaustive (brute-force) search, the accuracy upper bound;
//! * [`fastscan`] — 4-bit fast-scan PQ kernels: blocked nibble layout,
//!   u8-quantized lookup tables, runtime-dispatched SIMD (`pshufb`) with a
//!   bit-identical scalar fallback;
//! * [`quant`] — int8 scalar quantization of row storage with per-row affine
//!   parameters and exact-f32 re-scoring of final candidates.
//!
//! All indexes implement the common [`VectorIndex`] trait so the storage layer
//! (`lovo-store`) and LOVO itself can switch between them (the Table V
//! experiment does exactly that).

#![warn(missing_docs)]

pub mod fastscan;
pub mod flat;
pub mod hnsw;
pub mod ivf;
pub mod kmeans;
pub mod metric;
pub mod pq;
pub mod quant;
pub mod store;

pub use fastscan::{FastScanCodes, FastScanKernel, QuantizedLut, DISABLE_SIMD_ENV};
pub use flat::FlatIndex;
pub use hnsw::{HnswConfig, HnswIndex};
pub use ivf::{IvfPqConfig, IvfPqIndex};
pub use metric::Metric;
pub use pq::{PqCode, PqConfig, ProductQuantizer};
pub use quant::{Int8Arena, QuantizedFlatIndex};
pub use store::{MappedSlice, RowStore};

use serde::{Deserialize, Serialize};

/// Errors produced by index construction and search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// A vector had the wrong dimensionality.
    DimensionMismatch {
        /// Dimension the index expects.
        expected: usize,
        /// Dimension that was provided.
        actual: usize,
    },
    /// The index cannot be built or searched in its current state.
    InvalidState(String),
    /// A configuration parameter was invalid.
    InvalidConfig(String),
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            IndexError::InvalidState(msg) => write!(f, "invalid index state: {msg}"),
            IndexError::InvalidConfig(msg) => write!(f, "invalid index config: {msg}"),
        }
    }
}

impl std::error::Error for IndexError {}

/// Result alias for index operations.
pub type Result<T> = std::result::Result<T, IndexError>;

/// External identifier of an indexed vector. LOVO uses the *patch id*: a
/// unique key per (key frame, patch) pair that also links to the relational
/// metadata store.
pub type VectorId = u64;

/// One search hit: the stored vector's id and its similarity to the query
/// (higher is more similar; the inner-product metric on unit vectors).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchResult {
    /// Identifier of the matched vector (the patch id).
    pub id: VectorId,
    /// Similarity score (inner product of unit vectors ⇒ cosine).
    pub score: f32,
}

/// Statistics describing the work a search performed, used by the runtime and
/// ablation experiments to report probe counts next to wall-clock latency.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SearchStats {
    /// Number of stored vectors whose (approximate or exact) score was computed.
    pub vectors_scored: usize,
    /// Number of coarse clusters / graph nodes visited.
    pub cells_probed: usize,
    /// Number of candidates that were exactly re-scored.
    pub exact_rescored: usize,
    /// Number of storage segments probed. A single index reports 0; the
    /// segmented collection layer sets this to its fan-out width.
    pub segments_probed: usize,
    /// Number of storage segments skipped entirely because their zone map
    /// could not intersect the pushed-down filter. A single index reports 0.
    pub segments_pruned: usize,
    /// Number of candidates offered to bounded [`TopK`] selectors. Selection
    /// is O(n log k) in this, versus the O(n log n) of a full sort.
    pub heap_pushes: usize,
    /// Number of stored vectors a pushed-down [`IdFilter`] rejected before
    /// they could enter candidate selection (rows masked in a flat scan,
    /// codes skipped before ADC scoring, graph nodes visited but not
    /// accepted into the beam).
    pub filtered_out: usize,
    /// Number of segments scanned by intra-query parallel workers. 0 for a
    /// sequential walk; equal to `segments_probed` when the collection layer
    /// split one query's segments across threads (each worker counts the
    /// segments it claimed; the merge sums them, so the total is
    /// deterministic regardless of work-stealing order).
    pub parallel_segments: usize,
    /// Number of engine shards a routed query actually executed on. A
    /// single-engine search reports 0; the shard router sets this to the
    /// post-pruning fan-out width.
    pub shards_probed: usize,
    /// Number of engine shards skipped entirely because their video
    /// placement could not intersect the plan's video predicate — the
    /// zone-map pruning idea lifted one level up. A single-engine search
    /// reports 0.
    pub shards_pruned: usize,
}

impl SearchStats {
    /// Folds another search's work counters into this one. The segmented
    /// storage layer uses this to aggregate per-segment statistics into one
    /// collection-level report.
    pub fn merge(&mut self, other: &SearchStats) {
        self.vectors_scored += other.vectors_scored;
        self.cells_probed += other.cells_probed;
        self.exact_rescored += other.exact_rescored;
        self.segments_probed += other.segments_probed;
        self.segments_pruned += other.segments_pruned;
        self.heap_pushes += other.heap_pushes;
        self.filtered_out += other.filtered_out;
        self.parallel_segments += other.parallel_segments;
        self.shards_probed += other.shards_probed;
        self.shards_pruned += other.shards_pruned;
    }
}

/// A pushed-down predicate over external vector ids, evaluated inside every
/// index scan so rejected rows never reach candidate selection (and, for the
/// quantized and graph families, are never fully scored).
///
/// The storage layer compiles metadata predicates (video subsets, time
/// windows, object classes) into one of these before fanning a query out to
/// its segments; see `lovo-store`'s `PushdownFilter` for the zone-map half of
/// the pushdown.
pub enum IdFilter {
    /// Explicit allow-set of ids (the shape metadata joins produce).
    Set(std::collections::HashSet<VectorId>),
    /// Arbitrary predicate over the id bits (e.g. a packed video-id test
    /// that needs no materialized set at all).
    Predicate(Box<dyn Fn(VectorId) -> bool + Send + Sync>),
}

impl IdFilter {
    /// Builds an allow-set filter from an id iterator.
    pub fn from_ids(ids: impl IntoIterator<Item = VectorId>) -> Self {
        IdFilter::Set(ids.into_iter().collect())
    }

    /// Builds a predicate filter from a closure over the id bits.
    pub fn from_predicate(pred: impl Fn(VectorId) -> bool + Send + Sync + 'static) -> Self {
        IdFilter::Predicate(Box::new(pred))
    }

    /// True when the filter accepts the id.
    #[inline]
    pub fn accepts(&self, id: VectorId) -> bool {
        match self {
            IdFilter::Set(ids) => ids.contains(&id),
            IdFilter::Predicate(pred) => pred(id),
        }
    }
}

impl std::fmt::Debug for IdFilter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IdFilter::Set(ids) => write!(f, "IdFilter::Set({} ids)", ids.len()),
            IdFilter::Predicate(_) => write!(f, "IdFilter::Predicate"),
        }
    }
}

/// One candidate held by a [`TopK`] selector: the score, the external id used
/// for deterministic tie-breaking, and a caller-defined payload carried along
/// (e.g. the rescore-arena row of an IVF candidate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopKEntry<P: Copy = ()> {
    /// Similarity score, higher is better.
    pub score: f32,
    /// External id; equal scores rank the smaller id first.
    pub id: VectorId,
    /// Caller payload, ignored by the ordering.
    pub payload: P,
}

impl<P: Copy> TopKEntry<P> {
    /// True when `self` outranks `other` under the crate-wide result order:
    /// score descending, then id ascending.
    #[inline]
    fn beats(&self, other: &Self) -> bool {
        match self.score.partial_cmp(&other.score) {
            Some(std::cmp::Ordering::Greater) => true,
            Some(std::cmp::Ordering::Less) => false,
            _ => self.id < other.id,
        }
    }
}

/// Heap wrapper whose `Ord` ranks the *worst* entry greatest, so a max-heap
/// of `Worst` keeps its peek on the next eviction candidate.
#[derive(Debug, Clone, Copy)]
struct Worst<P: Copy>(TopKEntry<P>);

impl<P: Copy> PartialEq for Worst<P> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl<P: Copy> Eq for Worst<P> {}

impl<P: Copy> Ord for Worst<P> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Greater = worse: lower score first, then higher id. NaN scores
        // compare equal, consistent with every sort in this crate.
        other
            .0
            .score
            .partial_cmp(&self.0.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(self.0.id.cmp(&other.0.id))
    }
}

impl<P: Copy> PartialOrd for Worst<P> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Bounded top-k selection: a size-`k` min-heap that keeps the `k` best
/// candidates seen so far in O(log k) per offer, replacing the
/// collect-everything + `sort_by` + `truncate` pattern (O(n log n) and a
/// candidate-count-sized allocation) on every search path.
///
/// The selected set and its final ordering are identical to a full sort by
/// score descending with ties broken by ascending id — the crate's
/// determinism contract — which the property tests in
/// `tests/hot_path_properties.rs` assert exhaustively.
///
/// ```
/// use lovo_index::TopK;
///
/// let mut top = TopK::new(2);
/// for (id, score) in [(4u64, 0.3f32), (3, 0.9), (2, 0.5), (1, 0.9)] {
///     top.push_hit(id, score);
/// }
/// assert_eq!(top.pushes(), 4);
/// let best: Vec<(u64, f32)> = top
///     .into_sorted_results()
///     .into_iter()
///     .map(|hit| (hit.id, hit.score))
///     .collect();
/// // Best-first; the 0.9 tie breaks toward the smaller id.
/// assert_eq!(best, vec![(1, 0.9), (3, 0.9)]);
/// ```
#[derive(Debug, Clone)]
pub struct TopK<P: Copy = ()> {
    k: usize,
    heap: std::collections::BinaryHeap<Worst<P>>,
    pushes: usize,
}

impl<P: Copy> TopK<P> {
    /// Creates a selector keeping the best `k` entries.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            heap: std::collections::BinaryHeap::with_capacity(k.min(4096).saturating_add(1)),
            pushes: 0,
        }
    }

    /// Offers one candidate. Kept only if fewer than `k` entries are held or
    /// it beats the current worst (score descending, id ascending on ties).
    #[inline]
    pub fn push(&mut self, id: VectorId, score: f32, payload: P) {
        self.pushes += 1;
        let entry = TopKEntry { score, id, payload };
        if self.heap.len() < self.k {
            self.heap.push(Worst(entry));
        } else if let Some(mut worst) = self.heap.peek_mut() {
            if entry.beats(&worst.0) {
                *worst = Worst(entry);
            }
        }
    }

    /// Number of entries currently held (≤ k).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no entry has been kept.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total candidates offered via [`TopK::push`], for `heap_pushes` stats.
    pub fn pushes(&self) -> usize {
        self.pushes
    }

    /// Consumes the selector, returning the kept entries best-first.
    pub fn into_sorted_entries(self) -> Vec<TopKEntry<P>> {
        // Ascending `Worst` order is exactly best-first.
        self.heap
            .into_sorted_vec()
            .into_iter()
            .map(|w| w.0)
            .collect()
    }
}

impl TopK<()> {
    /// Payload-free convenience for callers selecting plain search hits.
    #[inline]
    pub fn push_hit(&mut self, id: VectorId, score: f32) {
        self.push(id, score, ());
    }

    /// Consumes the selector, returning the kept hits best-first.
    pub fn into_sorted_results(self) -> Vec<SearchResult> {
        self.into_sorted_entries()
            .into_iter()
            .map(|e| SearchResult {
                id: e.id,
                score: e.score,
            })
            .collect()
    }
}

/// Common interface over all index families (Flat, IVF-PQ, HNSW).
pub trait VectorIndex: Send + Sync {
    /// Dimensionality of indexed vectors.
    fn dim(&self) -> usize;

    /// Number of vectors currently stored.
    fn len(&self) -> usize;

    /// True when the index holds no vectors.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Adds a vector with the given external id. Vectors are expected to be
    /// L2-normalized by the caller (the storage layer enforces this).
    fn insert(&mut self, id: VectorId, vector: &[f32]) -> Result<()>;

    /// Builds / trains any internal structures (codebooks, graphs). Indexes
    /// that need no training treat this as a no-op. Must be called after the
    /// final insert and before `search` for training-based indexes.
    fn build(&mut self) -> Result<()>;

    /// Returns the `k` most similar vectors to `query`, best first.
    fn search(&self, query: &[f32], k: usize) -> Result<Vec<SearchResult>> {
        Ok(self.search_with_stats(query, k)?.0)
    }

    /// Like [`VectorIndex::search`] but also reports work statistics.
    fn search_with_stats(
        &self,
        query: &[f32],
        k: usize,
    ) -> Result<(Vec<SearchResult>, SearchStats)>;

    /// Returns the `k` most similar vectors whose ids pass `filter`, best
    /// first. Every family evaluates the filter *inside* its scan so rejected
    /// vectors are skipped as early as the layout allows: flat masks rows
    /// during the block scan, IVF-PQ skips non-matching codes before ADC
    /// scoring and rescores only matching candidates, HNSW visits the graph
    /// unfiltered but accepts only matching nodes into the result beam.
    fn search_filtered_with_stats(
        &self,
        query: &[f32],
        k: usize,
        filter: &IdFilter,
    ) -> Result<(Vec<SearchResult>, SearchStats)>;

    /// [`VectorIndex::search_filtered_with_stats`] without the statistics.
    fn search_filtered(
        &self,
        query: &[f32],
        k: usize,
        filter: &IdFilter,
    ) -> Result<Vec<SearchResult>> {
        Ok(self.search_filtered_with_stats(query, k, filter)?.0)
    }

    /// Human-readable name of the index family (for reports).
    fn family(&self) -> &'static str;

    /// Approximate memory footprint of the index payload in bytes.
    fn memory_bytes(&self) -> usize;
}

/// Index families the system can be configured with (Table V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IndexKind {
    /// Exhaustive brute-force search.
    BruteForce,
    /// Quantization-based inverted multi-index (the paper's default).
    IvfPq,
    /// Graph-based index.
    Hnsw,
}

impl IndexKind {
    /// Display name matching the paper's Table V rows.
    pub fn name(&self) -> &'static str {
        match self {
            IndexKind::BruteForce => "BF",
            IndexKind::IvfPq => "IVF-PQ",
            IndexKind::Hnsw => "HNSW",
        }
    }

    /// All index kinds.
    pub const ALL: [IndexKind; 3] = [IndexKind::BruteForce, IndexKind::IvfPq, IndexKind::Hnsw];

    /// True when the family requires an explicit [`VectorIndex::build`]
    /// (codebook training) before it can be searched. Families that answer
    /// queries straight after insertion return false.
    pub fn needs_build(&self) -> bool {
        matches!(self, IndexKind::IvfPq)
    }
}

/// Minimum number of rows for which training-based families are worth their
/// build cost; segments below this threshold fall back to brute force.
pub const MIN_TRAINED_SEGMENT_ROWS: usize = 256;

/// Quantization tiers applied when a segment seals, carried on the storage
/// layer's collection configuration. The selection rides *alongside*
/// [`IndexKind`] rather than adding variants to it, so the Table V experiment
/// loops over `IndexKind::ALL` are unaffected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct QuantizationOptions {
    /// Seal brute-force segments as [`QuantizedFlatIndex`] (int8 rows with
    /// exact-f32 re-scoring) instead of [`FlatIndex`]. Inner-product only.
    pub int8_flat: bool,
    /// Seal IVF-PQ segments with 4-bit fast-scan residual codes (16 centroids
    /// per subspace, blocked nibble layout, SIMD LUT kernels).
    pub fastscan_pq: bool,
    /// Add an int8 pre-rescore tier to IVF-PQ segments: candidates are first
    /// narrowed against the quantized arena, and only the survivors touch the
    /// exact f32 arena.
    pub int8_rescore: bool,
}

impl QuantizationOptions {
    /// No quantization: the exact configuration previous releases shipped.
    pub fn none() -> Self {
        Self::default()
    }

    /// Every quantization tier enabled — the fastest configuration at 100k+
    /// rows; quality is governed by the measured recall curve
    /// (`fastscan_bench --curve`).
    pub fn all() -> Self {
        Self {
            int8_flat: true,
            fastscan_pq: true,
            int8_rescore: true,
        }
    }

    /// True when any tier is enabled.
    pub fn any(&self) -> bool {
        self.int8_flat || self.fastscan_pq || self.int8_rescore
    }
}

/// Creates an index of the given family for `dim`-dimensional vectors using
/// default parameters sized for the reproduction's workloads.
pub fn create_index(kind: IndexKind, dim: usize) -> Result<Box<dyn VectorIndex>> {
    match kind {
        IndexKind::BruteForce => Ok(Box::new(FlatIndex::new(dim))),
        IndexKind::IvfPq => Ok(Box::new(IvfPqIndex::new(IvfPqConfig::for_dim(dim))?)),
        IndexKind::Hnsw => Ok(Box::new(HnswIndex::new(HnswConfig::for_dim(dim))?)),
    }
}

/// Segment-aware index construction: creates an index of the requested family
/// sized for a segment of `rows` vectors.
///
/// Training-based families degrade on tiny segments (Lloyd's iteration with
/// more centroids than points, PQ codebooks trained on a handful of samples),
/// so segments below [`MIN_TRAINED_SEGMENT_ROWS`] fall back to brute force —
/// which is also faster to both build and scan at that size. Larger IVF-PQ
/// segments shrink their coarse codebooks to keep at least ~8 vectors per
/// coarse centroid.
pub fn create_segment_index(
    kind: IndexKind,
    dim: usize,
    rows: usize,
) -> Result<Box<dyn VectorIndex>> {
    create_segment_index_with(kind, dim, rows, QuantizationOptions::none())
}

/// [`create_segment_index`] with explicit seal-time quantization tiers: int8
/// flat storage replaces the exact flat family (including the small-segment
/// IVF fallback), and IVF-PQ segments can enable 4-bit fast-scan codes and/or
/// the int8 pre-rescore arena.
pub fn create_segment_index_with(
    kind: IndexKind,
    dim: usize,
    rows: usize,
    quantization: QuantizationOptions,
) -> Result<Box<dyn VectorIndex>> {
    let flat = |dim: usize| -> Box<dyn VectorIndex> {
        if quantization.int8_flat {
            Box::new(QuantizedFlatIndex::new(dim))
        } else {
            Box::new(FlatIndex::new(dim))
        }
    };
    match kind {
        IndexKind::BruteForce => Ok(flat(dim)),
        IndexKind::IvfPq if rows < MIN_TRAINED_SEGMENT_ROWS => Ok(flat(dim)),
        IndexKind::IvfPq => {
            let base = IvfPqConfig::for_dim(dim);
            let centroids = (rows / 8).clamp(4, base.coarse_centroids);
            let mut config = base.with_coarse_centroids(centroids);
            if quantization.fastscan_pq {
                config = config.with_fastscan();
            }
            if quantization.int8_rescore {
                config = config.with_int8_rescore();
            }
            Ok(Box::new(IvfPqIndex::new(config)?))
        }
        IndexKind::Hnsw => create_index(kind, dim),
    }
}

/// Reconstructs a sealed segment's index directly over already-stored rows
/// (the storage layer's restore path): `ids[i]` owns `rows[i*dim..(i+1)*dim]`.
///
/// Family selection and sizing are identical to [`create_segment_index_with`]
/// for `rows = ids.len()`, and each family's restore constructor replicates
/// its insert-then-build sequence over the same rows in the same order, so
/// the restored index answers queries bit-identically to the one originally
/// sealed — whether `rows` is heap-owned or a zero-copy view into a mapped
/// segment file. The flat, int8-flat, and IVF families adopt the store as
/// their scan/rescore arena without copying; HNSW builds its graph from the
/// rows (graph construction is inherently heap-resident).
pub fn create_segment_index_from_rows(
    kind: IndexKind,
    dim: usize,
    quantization: QuantizationOptions,
    ids: Vec<VectorId>,
    rows: RowStore,
) -> Result<Box<dyn VectorIndex>> {
    let n = ids.len();
    let flat = |ids: Vec<VectorId>, rows: RowStore| -> Result<Box<dyn VectorIndex>> {
        if quantization.int8_flat {
            Ok(Box::new(QuantizedFlatIndex::from_parts(dim, ids, rows)?))
        } else {
            Ok(Box::new(FlatIndex::from_parts(dim, ids, rows)?))
        }
    };
    match kind {
        IndexKind::BruteForce => flat(ids, rows),
        IndexKind::IvfPq if n < MIN_TRAINED_SEGMENT_ROWS => flat(ids, rows),
        IndexKind::IvfPq => {
            let base = IvfPqConfig::for_dim(dim);
            let centroids = (n / 8).clamp(4, base.coarse_centroids);
            let mut config = base.with_coarse_centroids(centroids);
            if quantization.fastscan_pq {
                config = config.with_fastscan();
            }
            if quantization.int8_rescore {
                config = config.with_int8_rescore();
            }
            Ok(Box::new(IvfPqIndex::build_from_rows(config, ids, rows)?))
        }
        IndexKind::Hnsw => {
            if rows.len() != ids.len() * dim.max(1) {
                return Err(IndexError::InvalidState(format!(
                    "HNSW restore shape mismatch: {} values for {} rows of dim {dim}",
                    rows.len(),
                    ids.len()
                )));
            }
            let mut index = create_index(kind, dim)?;
            let data = rows.as_slice();
            for (i, &id) in ids.iter().enumerate() {
                index.insert(id, &data[i * dim..(i + 1) * dim])?;
            }
            index.build()?;
            Ok(index)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_kind_names_match_table_v() {
        assert_eq!(IndexKind::BruteForce.name(), "BF");
        assert_eq!(IndexKind::IvfPq.name(), "IVF-PQ");
        assert_eq!(IndexKind::Hnsw.name(), "HNSW");
    }

    #[test]
    fn create_index_produces_each_family() {
        for kind in IndexKind::ALL {
            let idx = create_index(kind, 32).unwrap();
            assert_eq!(idx.dim(), 32);
            assert!(idx.is_empty());
        }
    }

    #[test]
    fn search_stats_merge_sums_counters() {
        let mut a = SearchStats {
            vectors_scored: 10,
            cells_probed: 2,
            exact_rescored: 5,
            segments_probed: 1,
            segments_pruned: 4,
            heap_pushes: 11,
            filtered_out: 2,
            parallel_segments: 1,
            shards_probed: 2,
            shards_pruned: 6,
        };
        a.merge(&SearchStats {
            vectors_scored: 7,
            cells_probed: 3,
            exact_rescored: 4,
            segments_probed: 2,
            segments_pruned: 1,
            heap_pushes: 6,
            filtered_out: 3,
            parallel_segments: 2,
            shards_probed: 1,
            shards_pruned: 3,
        });
        assert_eq!(a.vectors_scored, 17);
        assert_eq!(a.cells_probed, 5);
        assert_eq!(a.exact_rescored, 9);
        assert_eq!(a.segments_probed, 3);
        assert_eq!(a.segments_pruned, 5);
        assert_eq!(a.heap_pushes, 17);
        assert_eq!(a.filtered_out, 5);
        assert_eq!(a.parallel_segments, 3);
        assert_eq!(a.shards_probed, 3);
        assert_eq!(a.shards_pruned, 9);
    }

    #[test]
    fn id_filter_set_and_predicate_accept() {
        let set = IdFilter::from_ids([3u64, 5, 9]);
        assert!(set.accepts(5));
        assert!(!set.accepts(4));
        let even = IdFilter::from_predicate(|id| id % 2 == 0);
        assert!(even.accepts(8));
        assert!(!even.accepts(9));
        assert!(format!("{set:?}").contains("3 ids"));
        assert!(format!("{even:?}").contains("Predicate"));
    }

    #[test]
    fn top_k_keeps_best_with_id_tie_break() {
        let mut top = TopK::new(3);
        for (id, score) in [(9u64, 0.5f32), (2, 0.9), (7, 0.5), (1, 0.1), (4, 0.9)] {
            top.push_hit(id, score);
        }
        assert_eq!(top.pushes(), 5);
        assert_eq!(top.len(), 3);
        let hits = top.into_sorted_results();
        // Score descending, ties (0.9, 0.9) and (0.5, 0.5) by ascending id.
        assert_eq!(hits.iter().map(|h| h.id).collect::<Vec<_>>(), vec![2, 4, 7],);
        assert_eq!(hits[2].score, 0.5);
    }

    #[test]
    fn top_k_zero_capacity_keeps_nothing() {
        let mut top = TopK::new(0);
        top.push_hit(1, 1.0);
        assert!(top.is_empty());
        assert_eq!(top.pushes(), 1);
        assert!(top.into_sorted_results().is_empty());
    }

    #[test]
    fn top_k_carries_payload() {
        let mut top: TopK<u32> = TopK::new(2);
        top.push(10, 0.3, 100);
        top.push(20, 0.8, 200);
        top.push(30, 0.5, 300);
        let entries = top.into_sorted_entries();
        assert_eq!(entries.len(), 2);
        assert_eq!((entries[0].id, entries[0].payload), (20, 200));
        assert_eq!((entries[1].id, entries[1].payload), (30, 300));
    }

    #[test]
    fn only_ivf_pq_needs_build() {
        assert!(IndexKind::IvfPq.needs_build());
        assert!(!IndexKind::BruteForce.needs_build());
        assert!(!IndexKind::Hnsw.needs_build());
    }

    #[test]
    fn tiny_ivf_segment_falls_back_to_brute_force() {
        let small = create_segment_index(IndexKind::IvfPq, 32, 50).unwrap();
        assert_eq!(small.family(), "BF");
        let large = create_segment_index(IndexKind::IvfPq, 32, 10_000).unwrap();
        assert_eq!(large.family(), "IVF-PQ");
        let hnsw = create_segment_index(IndexKind::Hnsw, 32, 50).unwrap();
        assert_eq!(hnsw.family(), "HNSW");
    }

    #[test]
    fn segment_index_round_trips_small_and_large() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        for rows in [40usize, 600] {
            let dim = 32;
            let mut idx = create_segment_index(IndexKind::IvfPq, dim, rows).unwrap();
            let mut rng = SmallRng::seed_from_u64(0x5eed);
            let vectors: Vec<Vec<f32>> = (0..rows)
                .map(|_| {
                    let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                    metric::normalize(&mut v);
                    v
                })
                .collect();
            for (i, v) in vectors.iter().enumerate() {
                idx.insert(i as u64, v).unwrap();
            }
            idx.build().unwrap();
            let hits = idx.search(&vectors[7], 3).unwrap();
            assert_eq!(hits[0].id, 7, "rows={rows}");
            assert!((hits[0].score - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn error_display_is_informative() {
        let e = IndexError::DimensionMismatch {
            expected: 8,
            actual: 4,
        };
        assert!(e.to_string().contains("expected 8"));
        assert!(IndexError::InvalidState("x".into())
            .to_string()
            .contains('x'));
    }
}
