//! # lovo-index
//!
//! Vector-index substrate for the LOVO reproduction (§V of the paper).
//!
//! The paper stores per-patch class embeddings in a vector database indexed
//! with product quantization and an inverted multi-index, and answers queries
//! with the approximate nearest-neighbour search of Algorithm 1. Table V also
//! compares against brute force and a graph-based (HNSW) index. This crate
//! implements all of those from scratch:
//!
//! * [`metric`] — similarity metrics (§V-A): normalized dot product /
//!   cosine, and the distance relationship `d = sqrt(2 - 2 s)`;
//! * [`kmeans`] — Lloyd's iteration, used to train PQ codebooks and the
//!   coarse quantizers;
//! * [`pq`] — product quantization with asymmetric-distance (ADC) lookup
//!   tables;
//! * [`ivf`] — the inverted multi-index (Cartesian product of per-subspace
//!   coarse codebooks) plus Algorithm 1's search: per-subspace centroid
//!   scoring, Top-A cluster selection, residual-corrected approximate scores,
//!   exact re-scoring of the top-k, and the patch-id majority vote;
//! * [`hnsw`] — a hierarchical navigable small-world graph index;
//! * [`flat`] — exhaustive (brute-force) search, the accuracy upper bound.
//!
//! All indexes implement the common [`VectorIndex`] trait so the storage layer
//! (`lovo-store`) and LOVO itself can switch between them (the Table V
//! experiment does exactly that).

pub mod flat;
pub mod hnsw;
pub mod ivf;
pub mod kmeans;
pub mod metric;
pub mod pq;

pub use flat::FlatIndex;
pub use hnsw::{HnswConfig, HnswIndex};
pub use ivf::{IvfPqConfig, IvfPqIndex};
pub use metric::Metric;
pub use pq::{PqCode, PqConfig, ProductQuantizer};

use serde::{Deserialize, Serialize};

/// Errors produced by index construction and search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// A vector had the wrong dimensionality.
    DimensionMismatch {
        /// Dimension the index expects.
        expected: usize,
        /// Dimension that was provided.
        actual: usize,
    },
    /// The index cannot be built or searched in its current state.
    InvalidState(String),
    /// A configuration parameter was invalid.
    InvalidConfig(String),
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            IndexError::InvalidState(msg) => write!(f, "invalid index state: {msg}"),
            IndexError::InvalidConfig(msg) => write!(f, "invalid index config: {msg}"),
        }
    }
}

impl std::error::Error for IndexError {}

/// Result alias for index operations.
pub type Result<T> = std::result::Result<T, IndexError>;

/// External identifier of an indexed vector. LOVO uses the *patch id*: a
/// unique key per (key frame, patch) pair that also links to the relational
/// metadata store.
pub type VectorId = u64;

/// One search hit: the stored vector's id and its similarity to the query
/// (higher is more similar; the inner-product metric on unit vectors).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchResult {
    /// Identifier of the matched vector (the patch id).
    pub id: VectorId,
    /// Similarity score (inner product of unit vectors ⇒ cosine).
    pub score: f32,
}

/// Statistics describing the work a search performed, used by the runtime and
/// ablation experiments to report probe counts next to wall-clock latency.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SearchStats {
    /// Number of stored vectors whose (approximate or exact) score was computed.
    pub vectors_scored: usize,
    /// Number of coarse clusters / graph nodes visited.
    pub cells_probed: usize,
    /// Number of candidates that were exactly re-scored.
    pub exact_rescored: usize,
    /// Number of storage segments probed. A single index reports 0; the
    /// segmented collection layer sets this to its fan-out width.
    pub segments_probed: usize,
}

impl SearchStats {
    /// Folds another search's work counters into this one. The segmented
    /// storage layer uses this to aggregate per-segment statistics into one
    /// collection-level report.
    pub fn merge(&mut self, other: &SearchStats) {
        self.vectors_scored += other.vectors_scored;
        self.cells_probed += other.cells_probed;
        self.exact_rescored += other.exact_rescored;
        self.segments_probed += other.segments_probed;
    }
}

/// Common interface over all index families (Flat, IVF-PQ, HNSW).
pub trait VectorIndex: Send + Sync {
    /// Dimensionality of indexed vectors.
    fn dim(&self) -> usize;

    /// Number of vectors currently stored.
    fn len(&self) -> usize;

    /// True when the index holds no vectors.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Adds a vector with the given external id. Vectors are expected to be
    /// L2-normalized by the caller (the storage layer enforces this).
    fn insert(&mut self, id: VectorId, vector: &[f32]) -> Result<()>;

    /// Builds / trains any internal structures (codebooks, graphs). Indexes
    /// that need no training treat this as a no-op. Must be called after the
    /// final insert and before `search` for training-based indexes.
    fn build(&mut self) -> Result<()>;

    /// Returns the `k` most similar vectors to `query`, best first.
    fn search(&self, query: &[f32], k: usize) -> Result<Vec<SearchResult>> {
        Ok(self.search_with_stats(query, k)?.0)
    }

    /// Like [`VectorIndex::search`] but also reports work statistics.
    fn search_with_stats(
        &self,
        query: &[f32],
        k: usize,
    ) -> Result<(Vec<SearchResult>, SearchStats)>;

    /// Human-readable name of the index family (for reports).
    fn family(&self) -> &'static str;

    /// Approximate memory footprint of the index payload in bytes.
    fn memory_bytes(&self) -> usize;
}

/// Index families the system can be configured with (Table V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IndexKind {
    /// Exhaustive brute-force search.
    BruteForce,
    /// Quantization-based inverted multi-index (the paper's default).
    IvfPq,
    /// Graph-based index.
    Hnsw,
}

impl IndexKind {
    /// Display name matching the paper's Table V rows.
    pub fn name(&self) -> &'static str {
        match self {
            IndexKind::BruteForce => "BF",
            IndexKind::IvfPq => "IVF-PQ",
            IndexKind::Hnsw => "HNSW",
        }
    }

    /// All index kinds.
    pub const ALL: [IndexKind; 3] = [IndexKind::BruteForce, IndexKind::IvfPq, IndexKind::Hnsw];

    /// True when the family requires an explicit [`VectorIndex::build`]
    /// (codebook training) before it can be searched. Families that answer
    /// queries straight after insertion return false.
    pub fn needs_build(&self) -> bool {
        matches!(self, IndexKind::IvfPq)
    }
}

/// Minimum number of rows for which training-based families are worth their
/// build cost; segments below this threshold fall back to brute force.
pub const MIN_TRAINED_SEGMENT_ROWS: usize = 256;

/// Creates an index of the given family for `dim`-dimensional vectors using
/// default parameters sized for the reproduction's workloads.
pub fn create_index(kind: IndexKind, dim: usize) -> Result<Box<dyn VectorIndex>> {
    match kind {
        IndexKind::BruteForce => Ok(Box::new(FlatIndex::new(dim))),
        IndexKind::IvfPq => Ok(Box::new(IvfPqIndex::new(IvfPqConfig::for_dim(dim))?)),
        IndexKind::Hnsw => Ok(Box::new(HnswIndex::new(HnswConfig::for_dim(dim))?)),
    }
}

/// Segment-aware index construction: creates an index of the requested family
/// sized for a segment of `rows` vectors.
///
/// Training-based families degrade on tiny segments (Lloyd's iteration with
/// more centroids than points, PQ codebooks trained on a handful of samples),
/// so segments below [`MIN_TRAINED_SEGMENT_ROWS`] fall back to brute force —
/// which is also faster to both build and scan at that size. Larger IVF-PQ
/// segments shrink their coarse codebooks to keep at least ~8 vectors per
/// coarse centroid.
pub fn create_segment_index(
    kind: IndexKind,
    dim: usize,
    rows: usize,
) -> Result<Box<dyn VectorIndex>> {
    match kind {
        IndexKind::IvfPq if rows < MIN_TRAINED_SEGMENT_ROWS => Ok(Box::new(FlatIndex::new(dim))),
        IndexKind::IvfPq => {
            let base = IvfPqConfig::for_dim(dim);
            let centroids = (rows / 8).clamp(4, base.coarse_centroids);
            Ok(Box::new(IvfPqIndex::new(
                base.with_coarse_centroids(centroids),
            )?))
        }
        other => create_index(other, dim),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_kind_names_match_table_v() {
        assert_eq!(IndexKind::BruteForce.name(), "BF");
        assert_eq!(IndexKind::IvfPq.name(), "IVF-PQ");
        assert_eq!(IndexKind::Hnsw.name(), "HNSW");
    }

    #[test]
    fn create_index_produces_each_family() {
        for kind in IndexKind::ALL {
            let idx = create_index(kind, 32).unwrap();
            assert_eq!(idx.dim(), 32);
            assert!(idx.is_empty());
        }
    }

    #[test]
    fn search_stats_merge_sums_counters() {
        let mut a = SearchStats {
            vectors_scored: 10,
            cells_probed: 2,
            exact_rescored: 5,
            segments_probed: 1,
        };
        a.merge(&SearchStats {
            vectors_scored: 7,
            cells_probed: 3,
            exact_rescored: 4,
            segments_probed: 2,
        });
        assert_eq!(a.vectors_scored, 17);
        assert_eq!(a.cells_probed, 5);
        assert_eq!(a.exact_rescored, 9);
        assert_eq!(a.segments_probed, 3);
    }

    #[test]
    fn only_ivf_pq_needs_build() {
        assert!(IndexKind::IvfPq.needs_build());
        assert!(!IndexKind::BruteForce.needs_build());
        assert!(!IndexKind::Hnsw.needs_build());
    }

    #[test]
    fn tiny_ivf_segment_falls_back_to_brute_force() {
        let small = create_segment_index(IndexKind::IvfPq, 32, 50).unwrap();
        assert_eq!(small.family(), "BF");
        let large = create_segment_index(IndexKind::IvfPq, 32, 10_000).unwrap();
        assert_eq!(large.family(), "IVF-PQ");
        let hnsw = create_segment_index(IndexKind::Hnsw, 32, 50).unwrap();
        assert_eq!(hnsw.family(), "HNSW");
    }

    #[test]
    fn segment_index_round_trips_small_and_large() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        for rows in [40usize, 600] {
            let dim = 32;
            let mut idx = create_segment_index(IndexKind::IvfPq, dim, rows).unwrap();
            let mut rng = SmallRng::seed_from_u64(0x5eed);
            let vectors: Vec<Vec<f32>> = (0..rows)
                .map(|_| {
                    let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                    metric::normalize(&mut v);
                    v
                })
                .collect();
            for (i, v) in vectors.iter().enumerate() {
                idx.insert(i as u64, v).unwrap();
            }
            idx.build().unwrap();
            let hits = idx.search(&vectors[7], 3).unwrap();
            assert_eq!(hits[0].id, 7, "rows={rows}");
            assert!((hits[0].score - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn error_display_is_informative() {
        let e = IndexError::DimensionMismatch {
            expected: 8,
            actual: 4,
        };
        assert!(e.to_string().contains("expected 8"));
        assert!(IndexError::InvalidState("x".into())
            .to_string()
            .contains('x'));
    }
}
