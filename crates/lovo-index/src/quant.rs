//! Int8 scalar quantization of row storage (the "SQ8" tier).
//!
//! A 100k-row flat scan at dim 64 streams 25 MiB of f32 per query — far past
//! L2, so PR 3's batch kernels are memory-bandwidth-bound. Storing rows as
//! one i8 code per dimension with a per-row affine `(scale, offset)` cuts the
//! scanned bytes 4x; the approximate inner product
//!
//! ```text
//! dot(q, v̂) = scale_r · Σ_i q_i·code_i  +  offset_r · Σ_i q_i
//! ```
//!
//! needs one f32×i8 kernel pass plus two fused multiplies per row (`Σ q_i`
//! is precomputed once per query). Result quality is governed by exact-f32
//! re-scoring of the top `k × overfetch` candidates, so the knob trades
//! rescore work against recall along a *measured* curve (the
//! `int8_overfetch_curve` emitted by `fastscan_bench`), never by silent
//! truncation.

use crate::metric::{dot, Metric};
use crate::store::RowStore;
use crate::{IdFilter, IndexError, Result, SearchResult, SearchStats, TopK, VectorId, VectorIndex};

/// Default exact-rescore overfetch: the int8 scan keeps `k * overfetch`
/// candidates for f32 re-scoring. 4 holds recall@10 within noise of f32 on
/// unit-vector workloads (see `docs/benchmarks.md`).
pub const DEFAULT_OVERFETCH: usize = 4;

/// Per-row affine dequantization parameters: `v ≈ scale * code + offset`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowParams {
    /// Multiplier applied to the i8 code.
    pub scale: f32,
    /// Additive offset (the row's value-range midpoint).
    pub offset: f32,
}

/// Quantizes one row to i8 codes in [-127, 127], appending to `codes`.
///
/// The offset is the midpoint of the row's value range and the scale maps
/// that range onto 254 steps, so the worst-case per-component error is half
/// a step. Degenerate (constant) rows use scale 1 and code 0 everywhere.
pub fn quantize_row(row: &[f32], codes: &mut Vec<i8>) -> RowParams {
    let mut min = f32::INFINITY;
    let mut max = f32::NEG_INFINITY;
    for &v in row {
        min = min.min(v);
        max = max.max(v);
    }
    let (scale, offset) = if row.is_empty() || max <= min {
        (1.0, if row.is_empty() { 0.0 } else { min })
    } else {
        ((max - min) / 254.0, (max + min) / 2.0)
    };
    let inv = 1.0 / scale;
    codes.reserve(row.len());
    for &v in row {
        let q = ((v - offset) * inv).round().clamp(-127.0, 127.0);
        codes.push(q as i8);
    }
    RowParams { scale, offset }
}

/// Inner product of a f32 query with an i8 code row, 8-lane unrolled with the
/// same fixed reduction order as [`crate::metric::dot`] so results are
/// deterministic for a given length.
#[inline]
pub fn dot_i8(query: &[f32], codes: &[i8]) -> f32 {
    debug_assert_eq!(query.len(), codes.len());
    let mut lanes = [0.0f32; 8];
    let q_chunks = query.chunks_exact(8);
    let c_chunks = codes.chunks_exact(8);
    let q_rem = q_chunks.remainder();
    let c_rem = c_chunks.remainder();
    for (cq, cc) in q_chunks.zip(c_chunks) {
        lanes[0] += cq[0] * cc[0] as f32;
        lanes[1] += cq[1] * cc[1] as f32;
        lanes[2] += cq[2] * cc[2] as f32;
        lanes[3] += cq[3] * cc[3] as f32;
        lanes[4] += cq[4] * cc[4] as f32;
        lanes[5] += cq[5] * cc[5] as f32;
        lanes[6] += cq[6] * cc[6] as f32;
        lanes[7] += cq[7] * cc[7] as f32;
    }
    let mut acc = ((lanes[0] + lanes[4]) + (lanes[1] + lanes[5]))
        + ((lanes[2] + lanes[6]) + (lanes[3] + lanes[7]));
    for (x, y) in q_rem.iter().zip(c_rem) {
        acc += x * *y as f32;
    }
    acc
}

/// A row-major arena of int8-quantized vectors with per-row affine params.
/// Used both by [`QuantizedFlatIndex`] and as the optional IVF rescore tier.
#[derive(Debug, Clone, Default)]
pub struct Int8Arena {
    dim: usize,
    codes: Vec<i8>,
    params: Vec<RowParams>,
}

impl Int8Arena {
    /// Creates an empty arena for `dim`-dimensional rows.
    pub fn new(dim: usize) -> Self {
        Self {
            dim,
            codes: Vec::new(),
            params: Vec::new(),
        }
    }

    /// Number of rows stored.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when no row is stored.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Quantizes and appends one row, returning its row number.
    pub fn push(&mut self, row: &[f32]) -> Result<u32> {
        if row.len() != self.dim {
            return Err(IndexError::DimensionMismatch {
                expected: self.dim,
                actual: row.len(),
            });
        }
        let params = quantize_row(row, &mut self.codes);
        self.params.push(params);
        Ok((self.params.len() - 1) as u32)
    }

    /// Re-quantizes an existing row in place (id-overwrite semantics of the
    /// IVF insert path).
    pub fn overwrite(&mut self, row: u32, values: &[f32]) -> Result<()> {
        let row = row as usize;
        if values.len() != self.dim || row >= self.params.len() {
            return Err(IndexError::InvalidState(
                "int8 arena overwrite out of bounds".into(),
            ));
        }
        let mut fresh = Vec::with_capacity(self.dim);
        let params = quantize_row(values, &mut fresh);
        self.codes[row * self.dim..(row + 1) * self.dim].copy_from_slice(&fresh);
        self.params[row] = params;
        Ok(())
    }

    /// Approximate inner product of `query` against row `row`, given the
    /// precomputed component sum of the query (`Σ q_i`).
    #[inline]
    pub fn score_row(&self, query: &[f32], query_sum: f32, row: usize) -> f32 {
        let p = self.params[row];
        let codes = &self.codes[row * self.dim..(row + 1) * self.dim];
        p.scale * dot_i8(query, codes) + p.offset * query_sum
    }

    /// Bytes held by the quantized payload.
    pub fn memory_bytes(&self) -> usize {
        self.codes.len() + self.params.len() * std::mem::size_of::<RowParams>()
    }
}

/// A flat index that scans int8-quantized rows and exactly re-scores the top
/// `k * overfetch` candidates from a retained f32 copy.
///
/// Supports the inner-product metric only (the system normalizes every
/// embedding, so this is the deployed configuration); the affine decomposition
/// above has no equally cheap L2 form.
#[derive(Debug, Clone)]
pub struct QuantizedFlatIndex {
    dim: usize,
    overfetch: usize,
    ids: Vec<VectorId>,
    arena: Int8Arena,
    /// Exact rows for final re-scoring, row-major (same layout as
    /// [`crate::FlatIndex`]'s arena). A zero-copy view into the segment
    /// file on the mmap restore path; the int8 scan codes above are always
    /// heap-derived from it.
    exact: RowStore,
}

impl QuantizedFlatIndex {
    /// Creates an empty quantized flat index with the default overfetch.
    pub fn new(dim: usize) -> Self {
        Self::with_overfetch(dim, DEFAULT_OVERFETCH)
    }

    /// Creates an empty quantized flat index keeping `k * overfetch`
    /// candidates for exact re-scoring (minimum 1).
    pub fn with_overfetch(dim: usize, overfetch: usize) -> Self {
        Self {
            dim,
            overfetch: overfetch.max(1),
            ids: Vec::new(),
            arena: Int8Arena::new(dim),
            exact: RowStore::new(),
        }
    }

    /// Reconstructs a quantized flat index from already-stored rows (the
    /// segment restore path). Each row of `exact` is quantized into the
    /// int8 arena in order — the exact sequence [`VectorIndex::insert`]
    /// performs — so scan order, codes, and scores are bit-identical to the
    /// index originally sealed from these rows.
    pub fn from_parts(dim: usize, ids: Vec<VectorId>, exact: RowStore) -> Result<Self> {
        if dim == 0 || exact.len() != ids.len() * dim {
            return Err(IndexError::InvalidState(format!(
                "quantized flat restore shape mismatch: {} values for {} rows of dim {dim}",
                exact.len(),
                ids.len()
            )));
        }
        let mut arena = Int8Arena::new(dim);
        for row in exact.as_slice().chunks_exact(dim) {
            arena.push(row)?;
        }
        Ok(Self {
            dim,
            overfetch: DEFAULT_OVERFETCH,
            ids,
            arena,
            exact,
        })
    }

    /// True when the exact-rescore rows are a zero-copy view into a mapped
    /// file.
    pub fn is_mapped(&self) -> bool {
        self.exact.is_mapped()
    }

    fn search_impl(
        &self,
        query: &[f32],
        k: usize,
        filter: Option<&IdFilter>,
    ) -> Result<(Vec<SearchResult>, SearchStats)> {
        if query.len() != self.dim {
            return Err(IndexError::DimensionMismatch {
                expected: self.dim,
                actual: query.len(),
            });
        }
        let mut stats = SearchStats {
            cells_probed: 1,
            ..SearchStats::default()
        };
        let query_sum: f32 = query.iter().sum();
        let keep = k.saturating_mul(self.overfetch).max(k);
        let mut approx: TopK<u32> = TopK::new(keep);
        for (row, &id) in self.ids.iter().enumerate() {
            if let Some(f) = filter {
                if !f.accepts(id) {
                    stats.filtered_out += 1;
                    continue;
                }
            }
            stats.vectors_scored += 1;
            approx.push(id, self.arena.score_row(query, query_sum, row), row as u32);
        }
        stats.heap_pushes += approx.pushes();
        let mut top = TopK::new(k);
        let exact_rows = self.exact.as_slice();
        for entry in approx.into_sorted_entries() {
            let row = entry.payload as usize;
            let exact = dot(query, &exact_rows[row * self.dim..(row + 1) * self.dim]);
            stats.exact_rescored += 1;
            top.push_hit(entry.id, exact);
        }
        stats.heap_pushes += top.pushes();
        Ok((top.into_sorted_results(), stats))
    }
}

impl VectorIndex for QuantizedFlatIndex {
    fn dim(&self) -> usize {
        self.dim
    }

    fn len(&self) -> usize {
        self.ids.len()
    }

    fn insert(&mut self, id: VectorId, vector: &[f32]) -> Result<()> {
        if vector.len() != self.dim {
            return Err(IndexError::DimensionMismatch {
                expected: self.dim,
                actual: vector.len(),
            });
        }
        self.arena.push(vector)?;
        self.ids.push(id);
        self.exact.to_mut().extend_from_slice(vector);
        Ok(())
    }

    fn build(&mut self) -> Result<()> {
        Ok(())
    }

    fn search_with_stats(
        &self,
        query: &[f32],
        k: usize,
    ) -> Result<(Vec<SearchResult>, SearchStats)> {
        self.search_impl(query, k, None)
    }

    fn search_filtered_with_stats(
        &self,
        query: &[f32],
        k: usize,
        filter: &IdFilter,
    ) -> Result<(Vec<SearchResult>, SearchStats)> {
        self.search_impl(query, k, Some(filter))
    }

    fn family(&self) -> &'static str {
        "BF-SQ8"
    }

    fn memory_bytes(&self) -> usize {
        // The f32 copy is rescore storage, not scan storage; it is counted so
        // capacity planning sees the true footprint (0 when mapped — the
        // rescore rows are then file-backed page cache, not heap).
        self.arena.memory_bytes()
            + self.exact.heap_bytes()
            + self.ids.len() * std::mem::size_of::<VectorId>()
    }
}

/// The inner-product metric the quantized scan implements; exposed so the
/// seal path can assert compatibility before choosing this family.
pub const QUANTIZED_METRIC: Metric = Metric::InnerProduct;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::normalize;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_unit(dim: usize, rng: &mut SmallRng) -> Vec<f32> {
        let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        normalize(&mut v);
        v
    }

    #[test]
    fn quantize_round_trips_within_half_step() {
        let row = [0.5f32, -0.25, 0.125, 0.9, -0.9];
        let mut codes = Vec::new();
        let p = quantize_row(&row, &mut codes);
        for (&v, &c) in row.iter().zip(&codes) {
            let back = p.scale * c as f32 + p.offset;
            assert!((back - v).abs() <= p.scale / 2.0 + 1e-6, "{back} vs {v}");
        }
    }

    #[test]
    fn degenerate_rows_are_stable() {
        let mut codes = Vec::new();
        let p = quantize_row(&[0.7, 0.7, 0.7], &mut codes);
        assert_eq!(codes, vec![0, 0, 0]);
        assert!((p.scale * codes[0] as f32 + p.offset - 0.7).abs() < 1e-6);
        codes.clear();
        let p = quantize_row(&[], &mut codes);
        assert!(codes.is_empty());
        assert_eq!(p.scale, 1.0);
    }

    #[test]
    fn dot_i8_matches_naive() {
        let q: Vec<f32> = (0..13).map(|i| (i as f32 * 0.31).sin()).collect();
        let c: Vec<i8> = (0..13).map(|i| (i * 17 % 255) as i8).collect();
        let naive: f32 = q.iter().zip(&c).map(|(x, &y)| x * y as f32).sum();
        assert!((dot_i8(&q, &c) - naive).abs() < 1e-3);
    }

    #[test]
    fn arena_score_approximates_exact_dot() {
        let dim = 32;
        let mut rng = SmallRng::seed_from_u64(0x5c8);
        let mut arena = Int8Arena::new(dim);
        let rows: Vec<Vec<f32>> = (0..50).map(|_| random_unit(dim, &mut rng)).collect();
        for r in &rows {
            arena.push(r).unwrap();
        }
        let q = random_unit(dim, &mut rng);
        let q_sum: f32 = q.iter().sum();
        for (i, r) in rows.iter().enumerate() {
            let approx = arena.score_row(&q, q_sum, i);
            let exact = dot(&q, r);
            assert!(
                (approx - exact).abs() < 0.05,
                "row {i}: {approx} vs {exact}"
            );
        }
        assert_eq!(arena.len(), 50);
        assert!(arena.memory_bytes() < 50 * dim * 4);
    }

    #[test]
    fn arena_overwrite_refreshes_row() {
        let mut arena = Int8Arena::new(4);
        arena.push(&[1.0, 0.0, 0.0, 0.0]).unwrap();
        arena.overwrite(0, &[0.0, 1.0, 0.0, 0.0]).unwrap();
        let q = [0.0f32, 1.0, 0.0, 0.0];
        let s = arena.score_row(&q, 1.0, 0);
        assert!(s > 0.9, "overwritten row should score ~1, got {s}");
        assert!(arena.overwrite(5, &[0.0; 4]).is_err());
        assert!(arena.overwrite(0, &[0.0; 3]).is_err());
    }

    #[test]
    fn quantized_flat_finds_exact_neighbors() {
        let dim = 32;
        let mut rng = SmallRng::seed_from_u64(42);
        let rows: Vec<Vec<f32>> = (0..500).map(|_| random_unit(dim, &mut rng)).collect();
        let mut idx = QuantizedFlatIndex::new(dim);
        for (i, r) in rows.iter().enumerate() {
            idx.insert(i as u64, r).unwrap();
        }
        idx.build().unwrap();
        assert_eq!(idx.family(), "BF-SQ8");
        assert_eq!(idx.dim(), dim);
        assert_eq!(idx.len(), 500);
        for probe in [0usize, 123, 499] {
            let hits = idx.search(&rows[probe], 1).unwrap();
            assert_eq!(hits[0].id, probe as u64);
            assert!((hits[0].score - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn rescore_returns_exact_scores() {
        // Final scores come from the f32 rows, so they must equal the exact
        // flat index's scores for the ids both return.
        let dim = 16;
        let mut rng = SmallRng::seed_from_u64(7);
        let rows: Vec<Vec<f32>> = (0..300).map(|_| random_unit(dim, &mut rng)).collect();
        let mut q8 = QuantizedFlatIndex::new(dim);
        let mut exact = crate::FlatIndex::new(dim);
        for (i, r) in rows.iter().enumerate() {
            q8.insert(i as u64, r).unwrap();
            exact.insert(i as u64, r).unwrap();
        }
        let q = random_unit(dim, &mut rng);
        let approx_hits = q8.search(&q, 10).unwrap();
        let exact_hits = exact.search(&q, 10).unwrap();
        for h in &approx_hits {
            if let Some(e) = exact_hits.iter().find(|e| e.id == h.id) {
                assert_eq!(h.score, e.score, "rescored score must be exact");
            }
        }
    }

    #[test]
    fn filtered_scan_counts_and_masks() {
        let dim = 8;
        let mut rng = SmallRng::seed_from_u64(11);
        let mut idx = QuantizedFlatIndex::new(dim);
        for i in 0..40u64 {
            idx.insert(i, &random_unit(dim, &mut rng)).unwrap();
        }
        let filter = IdFilter::from_predicate(|id| id % 4 == 0);
        let (hits, stats) = idx
            .search_filtered_with_stats(&random_unit(dim, &mut rng), 5, &filter)
            .unwrap();
        assert_eq!(hits.len(), 5);
        assert!(hits.iter().all(|h| h.id % 4 == 0));
        assert_eq!(stats.vectors_scored, 10);
        assert_eq!(stats.filtered_out, 30);
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let mut idx = QuantizedFlatIndex::new(8);
        assert!(idx.insert(0, &[0.0; 4]).is_err());
        idx.insert(0, &[0.1; 8]).unwrap();
        assert!(idx.search(&[0.0; 4], 1).is_err());
        assert!(idx.memory_bytes() > 0);
        assert_eq!(QUANTIZED_METRIC, Metric::InnerProduct);
    }
}
