//! Inverted multi-index with product-quantized residuals, and the
//! approximate nearest-neighbour search of Algorithm 1 (§V-B, §V-C).
//!
//! Structure (mirroring the paper):
//!
//! * The **coarse level** is an inverted *multi*-index: the embedding space is
//!   split into `P` coarse subspaces, each with its own codebook of `M`
//!   centroids trained by Lloyd's iteration. A cell of the index is an element
//!   of the Cartesian product `C = C_1 × … × C_P`; every stored vector belongs
//!   to the cell given by its nearest centroid in each subspace.
//! * Inside a cell, vectors are stored as **product-quantized residuals**
//!   (vector minus its concatenated coarse centroid), plus the external id
//!   (LOVO's patch id) used to join the relational metadata store.
//! * **Search** follows Algorithm 1: score the query's sub-vectors against
//!   every coarse centroid, keep the Top-A centroids per subspace, visit the
//!   cells in the product of those lists (best combinations first), compute
//!   approximate scores as `coarse score + ADC(residual)` using the
//!   precomputed lookup table, keep the best `k·refine` candidates, exactly
//!   re-score them against the stored original vectors, and return the top-k.
//!   The patch-id majority vote of Algorithm 1 (line 16) is exposed as
//!   [`majority_patch_id`] and applied when per-subspace candidate lists are
//!   merged.

use crate::fastscan::{FastScanCodes, FastScanKernel, QuantizedLut, FASTSCAN_CENTROIDS};
use crate::kmeans::{lloyd, nearest_centroid, KMeansConfig};
use crate::metric::dot;
use crate::pq::{PqConfig, ProductQuantizer};
use crate::quant::Int8Arena;
use crate::store::RowStore;
use crate::{IdFilter, IndexError, Result, SearchResult, SearchStats, TopK, VectorId, VectorIndex};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Configuration of the inverted multi-index.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IvfPqConfig {
    /// Vector dimensionality `D'`.
    pub dim: usize,
    /// Number of coarse subspaces `P` of the multi-index (2 in the classic
    /// inverted multi-index construction).
    pub coarse_subspaces: usize,
    /// Centroids per coarse subspace `M`; the index has `M^P` cells.
    pub coarse_centroids: usize,
    /// Number of best clusters probed per subspace at query time (the `A` of
    /// Algorithm 1, i.e. `nprobe`).
    pub nprobe: usize,
    /// Residual product-quantizer parameters.
    pub pq: PqConfig,
    /// The search exactly re-scores `k * refine_factor` candidates.
    pub refine_factor: usize,
    /// Maximum number of vectors sampled for codebook training.
    pub max_training_sample: usize,
    /// Seed for codebook training.
    pub seed: u64,
    /// Store residual codes in the blocked 4-bit fast-scan layout and score
    /// cells with the runtime-dispatched SIMD kernel
    /// ([`crate::fastscan`]). Requires ≤ 16 centroids per PQ subspace;
    /// [`IvfPqConfig::with_fastscan`] forces exactly 16.
    pub fastscan: bool,
    /// Narrow approximate candidates against an int8 arena before the exact
    /// f32 re-score, cutting rescore memory traffic 4x at high refine
    /// factors ([`crate::quant`]).
    pub int8_rescore: bool,
}

impl IvfPqConfig {
    /// A default configuration sized for the reproduction's workloads
    /// (tens of thousands to a few million vectors of dimension 32–128).
    pub fn for_dim(dim: usize) -> Self {
        Self {
            dim,
            coarse_subspaces: 2,
            coarse_centroids: 32,
            nprobe: 6,
            pq: PqConfig::for_dim(dim),
            refine_factor: 4,
            max_training_sample: 20_000,
            seed: 0x1f5a,
            fastscan: false,
            int8_rescore: false,
        }
    }

    /// Builder-style override of the number of probed clusters per subspace.
    pub fn with_nprobe(mut self, nprobe: usize) -> Self {
        self.nprobe = nprobe.max(1);
        self
    }

    /// Builder-style override of the coarse codebook size.
    pub fn with_coarse_centroids(mut self, m: usize) -> Self {
        self.coarse_centroids = m.max(1);
        self
    }

    /// Builder-style override of the refine factor.
    pub fn with_refine_factor(mut self, refine: usize) -> Self {
        self.refine_factor = refine.max(1);
        self
    }

    /// Enables the 4-bit fast-scan layout, forcing the residual PQ to 16
    /// centroids per subspace (the nibble-code requirement). The coarser
    /// codebook costs some ADC fidelity; the exact re-score of the top
    /// `k · refine_factor` keeps end-to-end recall on the measured curve.
    pub fn with_fastscan(mut self) -> Self {
        self.fastscan = true;
        self.pq.centroids_per_subspace = FASTSCAN_CENTROIDS;
        self
    }

    /// Enables the int8 pre-rescore tier.
    pub fn with_int8_rescore(mut self) -> Self {
        self.int8_rescore = true;
        self
    }

    /// Dimension of each coarse subspace.
    pub fn coarse_subspace_dim(&self) -> usize {
        self.dim / self.coarse_subspaces.max(1)
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.dim == 0 {
            return Err(IndexError::InvalidConfig("dim must be positive".into()));
        }
        if self.coarse_subspaces == 0 || self.dim % self.coarse_subspaces != 0 {
            return Err(IndexError::InvalidConfig(format!(
                "dim {} must be divisible by coarse_subspaces {}",
                self.dim, self.coarse_subspaces
            )));
        }
        if self.coarse_centroids == 0 || self.coarse_centroids > 256 {
            return Err(IndexError::InvalidConfig(
                "coarse_centroids must be in 1..=256".into(),
            ));
        }
        if self.nprobe == 0 {
            return Err(IndexError::InvalidConfig("nprobe must be positive".into()));
        }
        if self.pq.dim != self.dim {
            return Err(IndexError::InvalidConfig(
                "residual PQ dim must equal index dim".into(),
            ));
        }
        if self.fastscan && self.pq.centroids_per_subspace != FASTSCAN_CENTROIDS {
            return Err(IndexError::InvalidConfig(format!(
                "fast-scan codes are 4-bit: centroids_per_subspace must be exactly \
                 {FASTSCAN_CENTROIDS} (use with_fastscan to set it)"
            )));
        }
        self.pq.validate()
    }
}

/// One cell of the inverted multi-index, in structure-of-arrays layout:
/// entry `i` is (`ids[i]`, `rows[i]`, `codes[i*P..(i+1)*P]`) where `P` is the
/// residual PQ's subspace count. Keeping every PQ code of a list in one
/// contiguous byte buffer (instead of one heap-allocated `PqCode` per entry)
/// lets an ADC pass score the whole list with a single sequential stream.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
struct Cell {
    ids: Vec<VectorId>,
    /// Row of each entry in the rescore arena.
    rows: Vec<u32>,
    /// Concatenated PQ codes, stride = `pq.num_subspaces`. Kept even when a
    /// fast-scan layout exists: the filtered path compacts matching entries
    /// from this canonical buffer.
    codes: Vec<u8>,
    /// Blocked 4-bit layout of the same codes, present when the index was
    /// configured with `fastscan` (entry order matches `ids`/`rows`).
    packed: Option<FastScanCodes>,
}

impl Cell {
    fn len(&self) -> usize {
        self.ids.len()
    }
}

/// The trained portion of the index.
#[derive(Debug, Clone)]
struct BuiltState {
    /// `coarse_codebooks[p][m]` is centroid `m` of coarse subspace `p`.
    coarse_codebooks: Vec<Vec<Vec<f32>>>,
    /// Residual product quantizer.
    pq: ProductQuantizer,
    /// Cells keyed by the packed per-subspace centroid codes.
    cells: HashMap<u64, Cell>,
    /// Row-major arena of the original vectors for exact re-scoring:
    /// `arena_ids[row]` owns `arena[row * dim..(row + 1) * dim]`. Candidates
    /// carry their arena row, so the rescore loop streams contiguous memory
    /// with no per-candidate hash lookup (this replaced a
    /// `HashMap<VectorId, Vec<f32>>`). On the mmap restore path this is a
    /// zero-copy view into the segment file; post-restore inserts convert
    /// it to a heap copy via [`RowStore::to_mut`].
    arena: RowStore,
    arena_ids: Vec<VectorId>,
    /// Arena row of each id. Touched only on the **insert** path, never
    /// during search: re-inserting an id after build overwrites its arena
    /// row in place, so every cell entry of that id rescores against the
    /// latest vector (the overwrite semantics of the HashMap this replaced).
    id_rows: HashMap<VectorId, u32>,
    /// Int8 mirror of `arena` (same row numbering) when the config enables
    /// the pre-rescore tier.
    arena_i8: Option<Int8Arena>,
}

/// The inverted multi-index with PQ-compressed residuals.
pub struct IvfPqIndex {
    config: IvfPqConfig,
    pending: Vec<(VectorId, Vec<f32>)>,
    built: Option<BuiltState>,
}

impl IvfPqIndex {
    /// Creates an empty index with the given configuration.
    pub fn new(config: IvfPqConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self {
            config,
            pending: Vec::new(),
            built: None,
        })
    }

    /// The index configuration.
    pub fn config(&self) -> &IvfPqConfig {
        &self.config
    }

    /// Number of non-empty cells (diagnostic).
    pub fn cell_count(&self) -> usize {
        self.built.as_ref().map(|b| b.cells.len()).unwrap_or(0)
    }

    fn pack_cell_key(codes: &[usize]) -> u64 {
        let mut key = 0u64;
        for &c in codes {
            key = (key << 8) | (c as u64 & 0xff);
        }
        key
    }

    /// Assigns a vector to its cell: nearest coarse centroid per subspace.
    fn assign_cell(&self, built: &BuiltState, vector: &[f32]) -> (u64, Vec<usize>) {
        let sub_dim = self.config.coarse_subspace_dim();
        let codes: Vec<usize> = built
            .coarse_codebooks
            .iter()
            .enumerate()
            .map(|(p, codebook)| {
                nearest_centroid(&vector[p * sub_dim..(p + 1) * sub_dim], codebook)
            })
            .collect();
        (Self::pack_cell_key(&codes), codes)
    }

    /// Concatenated coarse centroid for a set of per-subspace codes.
    fn cell_centroid(&self, built: &BuiltState, codes: &[usize]) -> Vec<f32> {
        let mut centroid = Vec::with_capacity(self.config.dim);
        for (p, &c) in codes.iter().enumerate() {
            centroid.extend_from_slice(&built.coarse_codebooks[p][c]);
        }
        centroid
    }

    fn insert_built(&mut self, id: VectorId, vector: &[f32]) -> Result<()> {
        let built = self
            .built
            .as_ref()
            .ok_or_else(|| IndexError::InvalidState("insert_built called before build".into()))?;
        let (key, codes) = self.assign_cell(built, vector);
        let centroid = self.cell_centroid(built, &codes);
        let residual: Vec<f32> = vector
            .iter()
            .zip(centroid.iter())
            .map(|(v, c)| v - c)
            .collect();
        let built = self
            .built
            .as_mut()
            .ok_or_else(|| IndexError::InvalidState("insert_built called before build".into()))?;
        let code = built.pq.encode(&residual)?;
        let dim = self.config.dim;
        let row = match built.id_rows.entry(id) {
            std::collections::hash_map::Entry::Occupied(entry) => {
                // Same id inserted again: refresh its arena row in place so
                // earlier cell entries also rescore against the new vector.
                let row = *entry.get();
                built.arena.to_mut()[row as usize * dim..(row as usize + 1) * dim]
                    .copy_from_slice(vector);
                if let Some(int8) = built.arena_i8.as_mut() {
                    int8.overwrite(row, vector)?;
                }
                row
            }
            std::collections::hash_map::Entry::Vacant(entry) => {
                let row = built.arena_ids.len() as u32;
                entry.insert(row);
                built.arena_ids.push(id);
                built.arena.to_mut().extend_from_slice(vector);
                if let Some(int8) = built.arena_i8.as_mut() {
                    int8.push(vector)?;
                }
                row
            }
        };
        let stride = self.config.pq.num_subspaces;
        let cell = built.cells.entry(key).or_default();
        cell.ids.push(id);
        cell.rows.push(row);
        cell.codes.extend_from_slice(&code.0);
        if self.config.fastscan {
            cell.packed
                .get_or_insert_with(|| FastScanCodes::new(stride))
                .append(&code.0)?;
        }
        Ok(())
    }

    /// Builds an index directly over already-stored rows (the segment
    /// restore path): `ids[i]` owns `rows[i*dim..(i+1)*dim]`, and the store
    /// itself — owned or a zero-copy mapped view — becomes the exact-rescore
    /// arena without a heap copy.
    ///
    /// Training (sampling stride, k-means seeds, PQ codebooks) and cell
    /// assignment replicate [`VectorIndex::build`] over the same rows in the
    /// same order exactly, so a restored index scores bit-identically to the
    /// one originally sealed. Duplicate ids fall back to the legacy
    /// insert-then-build path (which heap-copies) because their overwrite
    /// semantics cannot be expressed over a read-only arena.
    pub fn build_from_rows(
        config: IvfPqConfig,
        ids: Vec<VectorId>,
        rows: RowStore,
    ) -> Result<Self> {
        config.validate()?;
        let dim = config.dim;
        if rows.len() != ids.len() * dim {
            return Err(IndexError::InvalidState(format!(
                "IVF restore shape mismatch: {} values for {} rows of dim {dim}",
                rows.len(),
                ids.len()
            )));
        }
        if ids.is_empty() {
            return Err(IndexError::InvalidState(
                "cannot build an IVF-PQ index with no vectors".into(),
            ));
        }
        let unique: HashSet<VectorId> = ids.iter().copied().collect();
        if unique.len() != ids.len() {
            let mut index = Self::new(config)?;
            let data = rows.as_slice();
            for (i, &id) in ids.iter().enumerate() {
                index.insert(id, &data[i * dim..(i + 1) * dim])?;
            }
            index.build()?;
            return Ok(index);
        }

        // --- Training: the exact sequence of `build()` over these rows. ---
        let data = rows.as_slice();
        let sub_dim = config.coarse_subspace_dim();
        let sample_len = ids.len().min(config.max_training_sample);
        let stride = (ids.len() / sample_len).max(1);
        let sample: Vec<&[f32]> = (0..ids.len())
            .step_by(stride)
            .take(sample_len)
            .map(|i| &data[i * dim..(i + 1) * dim])
            .collect();
        let mut coarse_codebooks = Vec::with_capacity(config.coarse_subspaces);
        for p in 0..config.coarse_subspaces {
            let sub_points: Vec<Vec<f32>> = sample
                .iter()
                .map(|v| v[p * sub_dim..(p + 1) * sub_dim].to_vec())
                .collect();
            let km = lloyd(
                &sub_points,
                sub_dim,
                &KMeansConfig::new(config.coarse_centroids)
                    .with_seed(config.seed ^ (p as u64 + 1).wrapping_mul(0xABCD)),
            )?;
            coarse_codebooks.push(km.centroids);
        }
        let residual_sample: Vec<Vec<f32>> = sample
            .iter()
            .map(|v| {
                let mut residual = Vec::with_capacity(dim);
                for (p, codebook) in coarse_codebooks.iter().enumerate() {
                    let sub = &v[p * sub_dim..(p + 1) * sub_dim];
                    let c = &codebook[nearest_centroid(sub, codebook)];
                    residual.extend(sub.iter().zip(c.iter()).map(|(a, b)| a - b));
                }
                residual
            })
            .collect();
        let pq = ProductQuantizer::train(config.pq, &residual_sample)?;

        // --- Cell assignment: `insert_built` for each row in order, minus
        // the arena writes (rows already live in the adopted store; unique
        // ids mean every insert takes the vacant path, so row numbers are
        // simply 0..n in order). ---
        let pq_stride = config.pq.num_subspaces;
        let mut cells: HashMap<u64, Cell> = HashMap::new();
        let mut arena_i8 = config.int8_rescore.then(|| Int8Arena::new(dim));
        for (i, &id) in ids.iter().enumerate() {
            let vector = &data[i * dim..(i + 1) * dim];
            let codes: Vec<usize> = coarse_codebooks
                .iter()
                .enumerate()
                .map(|(p, codebook)| {
                    nearest_centroid(&vector[p * sub_dim..(p + 1) * sub_dim], codebook)
                })
                .collect();
            let key = Self::pack_cell_key(&codes);
            let mut residual = Vec::with_capacity(dim);
            for (p, &c) in codes.iter().enumerate() {
                let centroid = &coarse_codebooks[p][c];
                residual.extend(
                    vector[p * sub_dim..(p + 1) * sub_dim]
                        .iter()
                        .zip(centroid.iter())
                        .map(|(v, c)| v - c),
                );
            }
            let code = pq.encode(&residual)?;
            let cell = cells.entry(key).or_default();
            cell.ids.push(id);
            cell.rows.push(i as u32);
            cell.codes.extend_from_slice(&code.0);
            if config.fastscan {
                cell.packed
                    .get_or_insert_with(|| FastScanCodes::new(pq_stride))
                    .append(&code.0)?;
            }
            if let Some(int8) = arena_i8.as_mut() {
                int8.push(vector)?;
            }
        }
        let id_rows: HashMap<VectorId, u32> = ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i as u32))
            .collect();
        Ok(Self {
            config,
            pending: Vec::new(),
            built: Some(BuiltState {
                coarse_codebooks,
                pq,
                cells,
                arena: rows,
                arena_ids: ids,
                id_rows,
                arena_i8,
            }),
        })
    }

    /// True when the exact-rescore arena is a zero-copy view into a mapped
    /// file.
    pub fn is_mapped(&self) -> bool {
        self.built
            .as_ref()
            .map(|b| b.arena.is_mapped())
            .unwrap_or(false)
    }
}

impl VectorIndex for IvfPqIndex {
    fn dim(&self) -> usize {
        self.config.dim
    }

    fn len(&self) -> usize {
        self.pending.len() + self.built.as_ref().map(|b| b.arena_ids.len()).unwrap_or(0)
    }

    fn insert(&mut self, id: VectorId, vector: &[f32]) -> Result<()> {
        if vector.len() != self.config.dim {
            return Err(IndexError::DimensionMismatch {
                expected: self.config.dim,
                actual: vector.len(),
            });
        }
        if self.built.is_some() {
            // Incremental insertion into an already-built index: assign to the
            // nearest existing cell (the paper's future-work incremental path).
            self.insert_built(id, vector)
        } else {
            self.pending.push((id, vector.to_vec()));
            Ok(())
        }
    }

    fn build(&mut self) -> Result<()> {
        if self.built.is_some() {
            return Ok(());
        }
        if self.pending.is_empty() {
            return Err(IndexError::InvalidState(
                "cannot build an IVF-PQ index with no vectors".into(),
            ));
        }
        let sub_dim = self.config.coarse_subspace_dim();
        let sample_len = self.pending.len().min(self.config.max_training_sample);
        // Deterministic stride sampling keeps training cheap on huge inserts.
        let stride = (self.pending.len() / sample_len).max(1);
        let sample: Vec<&Vec<f32>> = self
            .pending
            .iter()
            .step_by(stride)
            .take(sample_len)
            .map(|(_, v)| v)
            .collect();

        // Train the coarse codebook of each subspace.
        let mut coarse_codebooks = Vec::with_capacity(self.config.coarse_subspaces);
        for p in 0..self.config.coarse_subspaces {
            let sub_points: Vec<Vec<f32>> = sample
                .iter()
                .map(|v| v[p * sub_dim..(p + 1) * sub_dim].to_vec())
                .collect();
            let km = lloyd(
                &sub_points,
                sub_dim,
                &KMeansConfig::new(self.config.coarse_centroids)
                    .with_seed(self.config.seed ^ (p as u64 + 1).wrapping_mul(0xABCD)),
            )?;
            coarse_codebooks.push(km.centroids);
        }

        // Compute residuals of the training sample and train the PQ on them.
        let residual_sample: Vec<Vec<f32>> = sample
            .iter()
            .map(|v| {
                let mut residual = Vec::with_capacity(self.config.dim);
                for (p, codebook) in coarse_codebooks.iter().enumerate() {
                    let sub = &v[p * sub_dim..(p + 1) * sub_dim];
                    let c = &codebook[nearest_centroid(sub, codebook)];
                    residual.extend(sub.iter().zip(c.iter()).map(|(a, b)| a - b));
                }
                residual
            })
            .collect();
        let pq = ProductQuantizer::train(self.config.pq, &residual_sample)?;

        self.built = Some(BuiltState {
            coarse_codebooks,
            pq,
            cells: HashMap::new(),
            arena: RowStore::Owned(Vec::with_capacity(self.pending.len() * self.config.dim)),
            arena_ids: Vec::with_capacity(self.pending.len()),
            id_rows: HashMap::with_capacity(self.pending.len()),
            arena_i8: self
                .config
                .int8_rescore
                .then(|| Int8Arena::new(self.config.dim)),
        });

        // Move every pending vector into its cell.
        let pending = std::mem::take(&mut self.pending);
        for (id, vector) in pending {
            self.insert_built(id, &vector)?;
        }
        Ok(())
    }

    fn search_with_stats(
        &self,
        query: &[f32],
        k: usize,
    ) -> Result<(Vec<SearchResult>, SearchStats)> {
        self.search_impl(query, k, None)
    }

    fn search_filtered_with_stats(
        &self,
        query: &[f32],
        k: usize,
        filter: &IdFilter,
    ) -> Result<(Vec<SearchResult>, SearchStats)> {
        self.search_impl(query, k, Some(filter))
    }

    fn family(&self) -> &'static str {
        "IVF-PQ"
    }

    fn memory_bytes(&self) -> usize {
        let Some(built) = &self.built else {
            return self.pending.len() * self.config.dim * std::mem::size_of::<f32>();
        };
        let code_bytes: usize = built
            .cells
            .values()
            .map(|c| {
                c.codes.len()
                    + c.packed.as_ref().map_or(0, |p| p.memory_bytes())
                    + c.ids.len() * std::mem::size_of::<VectorId>()
                    + c.rows.len() * std::mem::size_of::<u32>()
            })
            .sum();
        let centroid_bytes = self.config.coarse_subspaces
            * self.config.coarse_centroids
            * self.config.coarse_subspace_dim()
            * std::mem::size_of::<f32>();
        // The originals kept for exact re-scoring live in the storage layer in
        // a real deployment; they are counted separately so experiments can
        // report the compressed index size the way the paper does.
        code_bytes + centroid_bytes
    }
}

impl IvfPqIndex {
    /// Algorithm 1 with optional predicate pushdown: when a filter is
    /// present, non-matching entries are dropped *before* ADC scoring — the
    /// matching subset of each probed cell is compacted into one contiguous
    /// code run so the list kernel still streams sequentially — and only
    /// matching candidates are ever exactly re-scored.
    fn search_impl(
        &self,
        query: &[f32],
        k: usize,
        filter: Option<&IdFilter>,
    ) -> Result<(Vec<SearchResult>, SearchStats)> {
        if query.len() != self.config.dim {
            return Err(IndexError::DimensionMismatch {
                expected: self.config.dim,
                actual: query.len(),
            });
        }
        let built = self.built.as_ref().ok_or_else(|| {
            IndexError::InvalidState("IVF-PQ index must be built before searching".into())
        })?;
        if k == 0 {
            return Ok((Vec::new(), SearchStats::default()));
        }

        let sub_dim = self.config.coarse_subspace_dim();
        let mut stats = SearchStats::default();

        // --- Algorithm 1, lines 2–7: per-subspace centroid scores, Top-A. ---
        // Bounded selection; centroid index doubles as the tie-break id, which
        // matches the stable sort this replaced (ties kept ascending index).
        let mut top_per_subspace: Vec<Vec<(usize, f32)>> =
            Vec::with_capacity(self.config.coarse_subspaces);
        for (p, codebook) in built.coarse_codebooks.iter().enumerate() {
            let q_sub = &query[p * sub_dim..(p + 1) * sub_dim];
            let mut top = TopK::new(self.config.nprobe);
            for (m, c) in codebook.iter().enumerate() {
                top.push_hit(m as u64, dot(q_sub, c));
            }
            stats.heap_pushes += top.pushes();
            top_per_subspace.push(
                top.into_sorted_entries()
                    .into_iter()
                    .map(|e| (e.id as usize, e.score))
                    .collect(),
            );
        }

        // --- Algorithm 1, lines 8–12: approximate scores via the ADC table. ---
        // Every cell in the Cartesian product of the Top-A lists is probed and
        // the candidate selection below is order-independent, so the cells
        // need no best-first sort. Each non-empty cell's contiguous code list
        // is scored in one ADC pass; candidates carry their rescore-arena row
        // through the bounded selector.
        let adc = built.pq.adc_table(query)?;
        // Fast-scan tier: quantize the ADC table once per query and score
        // whole cells with the runtime-selected kernel. The filtered arm
        // below stays on the f32 table — it compacts a *subset* of a cell,
        // which the blocked layout cannot address.
        let kernel = FastScanKernel::detect();
        let qlut = if self.config.fastscan {
            Some(QuantizedLut::from_adc(&adc)?)
        } else {
            None
        };
        let stride = self.config.pq.num_subspaces;
        let keep = k.saturating_mul(self.config.refine_factor).max(k);
        let mut approx: TopK<u32> = TopK::new(keep);
        let mut list_scores: Vec<f32> = Vec::new();
        // Scratch for the filtered path: the matching subset of a cell,
        // compacted so one ADC pass still streams a contiguous code run.
        let mut kept_ids: Vec<VectorId> = Vec::new();
        let mut kept_rows: Vec<u32> = Vec::new();
        let mut kept_codes: Vec<u8> = Vec::new();
        enumerate_cells(&top_per_subspace, &mut |codes, coarse_score| {
            let Some(cell) = built.cells.get(&Self::pack_cell_key(codes)) else {
                return;
            };
            stats.cells_probed += 1;
            match filter {
                None => {
                    stats.vectors_scored += cell.len();
                    list_scores.clear();
                    // In-register fast scan when the blocked layout is
                    // present and consistent; the f32 ADC list kernel is the
                    // always-correct fallback.
                    let fast_scanned = match (&qlut, cell.packed.as_ref()) {
                        (Some(lut), Some(packed)) if packed.len() == cell.len() => {
                            packed.scores(lut, kernel, &mut list_scores).is_ok()
                        }
                        _ => false,
                    };
                    if !fast_scanned {
                        list_scores.clear();
                        adc.score_list(&cell.codes, stride, &mut list_scores);
                    }
                    for ((&id, &row), &adc_score) in
                        cell.ids.iter().zip(&cell.rows).zip(&list_scores)
                    {
                        approx.push(id, coarse_score + adc_score, row);
                    }
                }
                Some(filter) => {
                    kept_ids.clear();
                    kept_rows.clear();
                    kept_codes.clear();
                    for (entry, (&id, &row)) in cell.ids.iter().zip(&cell.rows).enumerate() {
                        if filter.accepts(id) {
                            kept_ids.push(id);
                            kept_rows.push(row);
                            kept_codes.extend_from_slice(
                                &cell.codes[entry * stride..(entry + 1) * stride],
                            );
                        }
                    }
                    stats.filtered_out += cell.len() - kept_ids.len();
                    stats.vectors_scored += kept_ids.len();
                    if kept_ids.is_empty() {
                        return;
                    }
                    list_scores.clear();
                    adc.score_list(&kept_codes, stride, &mut list_scores);
                    for ((&id, &row), &adc_score) in
                        kept_ids.iter().zip(&kept_rows).zip(&list_scores)
                    {
                        approx.push(id, coarse_score + adc_score, row);
                    }
                }
            }
        });
        stats.heap_pushes += approx.pushes();

        // --- Algorithm 1, lines 13–17: exact re-scoring and final ordering. ---
        // The arena rows of the kept candidates stream straight out of the
        // row-major arena — no hash lookup per candidate. With the int8 tier
        // enabled, candidates are first narrowed against the quantized arena
        // (¼ the traffic) and only the top `2k` survivors touch f32 rows.
        let dim = self.config.dim;
        let mut entries = approx.into_sorted_entries();
        if let Some(int8) = &built.arena_i8 {
            let narrowed_k = k.saturating_mul(2).max(k);
            if entries.len() > narrowed_k {
                let query_sum: f32 = query.iter().sum();
                let mut narrowed: TopK<u32> = TopK::new(narrowed_k);
                for entry in entries {
                    let row = entry.payload as usize;
                    narrowed.push(
                        entry.id,
                        int8.score_row(query, query_sum, row),
                        entry.payload,
                    );
                }
                stats.heap_pushes += narrowed.pushes();
                entries = narrowed.into_sorted_entries();
            }
        }
        let mut top = TopK::new(k);
        let arena = built.arena.as_slice();
        for entry in entries {
            let row = entry.payload as usize;
            let exact = dot(query, &arena[row * dim..(row + 1) * dim]);
            stats.exact_rescored += 1;
            top.push_hit(entry.id, exact);
        }
        stats.heap_pushes += top.pushes();
        Ok((top.into_sorted_results(), stats))
    }
}

/// Recursively enumerates the Cartesian product of per-subspace Top-A lists,
/// invoking `visit(codes, combined_score)` for every combination.
fn enumerate_cells(top_per_subspace: &[Vec<(usize, f32)>], visit: &mut impl FnMut(&[usize], f32)) {
    fn rec(
        lists: &[Vec<(usize, f32)>],
        depth: usize,
        codes: &mut Vec<usize>,
        score: f32,
        visit: &mut impl FnMut(&[usize], f32),
    ) {
        if depth == lists.len() {
            visit(codes, score);
            return;
        }
        for &(code, s) in &lists[depth] {
            codes.push(code);
            rec(lists, depth + 1, codes, score + s, visit);
            codes.pop();
        }
    }
    let mut codes = Vec::with_capacity(top_per_subspace.len());
    rec(top_per_subspace, 0, &mut codes, 0.0, visit);
}

/// The patch-id majority vote of Algorithm 1 (line 16): when a candidate is
/// assembled from components that originate from different database vectors,
/// the patch id occurring most often among the components is selected.
/// Ties break toward the smaller id for determinism.
pub fn majority_patch_id(component_ids: &[VectorId]) -> Option<VectorId> {
    if component_ids.is_empty() {
        return None;
    }
    let mut counts: HashMap<VectorId, usize> = HashMap::new();
    for &id in component_ids {
        *counts.entry(id).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
        .map(|(id, _)| id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use crate::metric::normalize;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_unit(dim: usize, rng: &mut SmallRng) -> Vec<f32> {
        let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        normalize(&mut v);
        v
    }

    fn build_index(n: usize, dim: usize, seed: u64) -> (IvfPqIndex, FlatIndex, Vec<Vec<f32>>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let vectors: Vec<Vec<f32>> = (0..n).map(|_| random_unit(dim, &mut rng)).collect();
        let mut ivf = IvfPqIndex::new(IvfPqConfig::for_dim(dim)).unwrap();
        let mut flat = FlatIndex::new(dim);
        for (i, v) in vectors.iter().enumerate() {
            ivf.insert(i as u64, v).unwrap();
            flat.insert(i as u64, v).unwrap();
        }
        ivf.build().unwrap();
        flat.build().unwrap();
        (ivf, flat, vectors)
    }

    #[test]
    fn config_validation_catches_mistakes() {
        let mut cfg = IvfPqConfig::for_dim(32);
        assert!(cfg.validate().is_ok());
        cfg.coarse_subspaces = 5;
        assert!(cfg.validate().is_err());
        let mut cfg2 = IvfPqConfig::for_dim(32);
        cfg2.nprobe = 0;
        assert!(cfg2.validate().is_err());
        let mut cfg3 = IvfPqConfig::for_dim(32);
        cfg3.pq.dim = 16;
        assert!(cfg3.validate().is_err());
    }

    #[test]
    fn search_before_build_fails() {
        let mut idx = IvfPqIndex::new(IvfPqConfig::for_dim(16)).unwrap();
        idx.insert(0, &[0.25; 16]).unwrap();
        assert!(idx.search(&[0.25; 16], 1).is_err());
    }

    #[test]
    fn build_with_no_vectors_fails() {
        let mut idx = IvfPqIndex::new(IvfPqConfig::for_dim(16)).unwrap();
        assert!(idx.build().is_err());
    }

    #[test]
    fn self_query_returns_itself() {
        let (ivf, _, vectors) = build_index(2_000, 32, 42);
        for probe in [0usize, 500, 1500] {
            let hits = ivf.search(&vectors[probe], 1).unwrap();
            assert_eq!(hits[0].id, probe as u64, "self-query missed for {probe}");
            assert!(hits[0].score > 0.999);
        }
    }

    /// Clustered data resembling real embedding distributions (the encoders
    /// place semantically similar patches near shared attribute directions).
    fn clustered_unit_vectors(n: usize, dim: usize, clusters: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let centers: Vec<Vec<f32>> = (0..clusters).map(|_| random_unit(dim, &mut rng)).collect();
        (0..n)
            .map(|i| {
                let center = &centers[i % clusters];
                let mut v: Vec<f32> = center
                    .iter()
                    .map(|c| c + rng.gen_range(-0.15f32..0.15))
                    .collect();
                normalize(&mut v);
                v
            })
            .collect()
    }

    #[test]
    fn recall_against_brute_force_is_high() {
        // Embeddings produced by the encoders are clustered by attribute, so
        // measure recall on clustered data rather than uniform noise (the
        // worst case for any inverted index).
        let dim = 32;
        let vectors = clustered_unit_vectors(3_000, dim, 40, 7);
        let mut ivf = IvfPqIndex::new(IvfPqConfig::for_dim(dim)).unwrap();
        let mut flat = FlatIndex::new(dim);
        for (i, v) in vectors.iter().enumerate() {
            ivf.insert(i as u64, v).unwrap();
            flat.insert(i as u64, v).unwrap();
        }
        ivf.build().unwrap();
        let mut rng = SmallRng::seed_from_u64(99);
        let mut recall_hits = 0usize;
        let mut total = 0usize;
        for _ in 0..20 {
            let q = &vectors[rng.gen_range(0..vectors.len())];
            let exact: Vec<u64> = flat.search(q, 10).unwrap().iter().map(|r| r.id).collect();
            let approx: Vec<u64> = ivf.search(q, 10).unwrap().iter().map(|r| r.id).collect();
            total += exact.len();
            recall_hits += exact.iter().filter(|id| approx.contains(id)).count();
        }
        let recall = recall_hits as f32 / total as f32;
        assert!(recall > 0.7, "recall@10 too low: {recall}");
    }

    #[test]
    fn search_probes_fewer_vectors_than_brute_force() {
        let (ivf, flat, vectors) = build_index(4_000, 32, 3);
        let (_, ivf_stats) = ivf.search_with_stats(&vectors[17], 10).unwrap();
        let (_, flat_stats) = flat.search_with_stats(&vectors[17], 10).unwrap();
        assert!(
            ivf_stats.vectors_scored < flat_stats.vectors_scored / 2,
            "IVF probed {} of {}",
            ivf_stats.vectors_scored,
            flat_stats.vectors_scored
        );
        assert!(ivf_stats.cells_probed >= 1);
    }

    #[test]
    fn nprobe_one_is_faster_but_coarser_than_nprobe_many() {
        let dim = 32;
        let mut rng = SmallRng::seed_from_u64(21);
        let vectors: Vec<Vec<f32>> = (0..3_000).map(|_| random_unit(dim, &mut rng)).collect();
        let mut narrow = IvfPqIndex::new(IvfPqConfig::for_dim(dim).with_nprobe(1)).unwrap();
        let mut wide = IvfPqIndex::new(IvfPqConfig::for_dim(dim).with_nprobe(16)).unwrap();
        for (i, v) in vectors.iter().enumerate() {
            narrow.insert(i as u64, v).unwrap();
            wide.insert(i as u64, v).unwrap();
        }
        narrow.build().unwrap();
        wide.build().unwrap();
        let (_, narrow_stats) = narrow.search_with_stats(&vectors[5], 10).unwrap();
        let (_, wide_stats) = wide.search_with_stats(&vectors[5], 10).unwrap();
        assert!(narrow_stats.vectors_scored <= wide_stats.vectors_scored);
        assert!(narrow_stats.cells_probed <= wide_stats.cells_probed);
    }

    #[test]
    fn incremental_insert_after_build_is_searchable() {
        let (mut ivf, _, _) = build_index(1_000, 32, 11);
        let mut rng = SmallRng::seed_from_u64(123);
        let new_vec = random_unit(32, &mut rng);
        ivf.insert(999_999, &new_vec).unwrap();
        let hits = ivf.search(&new_vec, 1).unwrap();
        assert_eq!(hits[0].id, 999_999);
    }

    #[test]
    fn reinserting_an_existing_id_refreshes_its_vector() {
        // Post-build re-insertion of an id must behave like the overwrite it
        // historically was: len() still counts distinct ids, and every cell
        // entry of that id rescores against the latest vector.
        let (mut ivf, _, _) = build_index(1_000, 32, 77);
        let len_before = ivf.len();
        let mut rng = SmallRng::seed_from_u64(321);
        let replacement = random_unit(32, &mut rng);
        ivf.insert(123, &replacement).unwrap();
        assert_eq!(ivf.len(), len_before);
        let hits = ivf.search(&replacement, 1).unwrap();
        assert_eq!(hits[0].id, 123);
        assert!(hits[0].score > 0.999);
    }

    #[test]
    fn memory_is_far_smaller_than_raw_vectors() {
        let (ivf, flat, _) = build_index(5_000, 32, 13);
        assert!(
            ivf.memory_bytes() < flat.memory_bytes() / 2,
            "IVF-PQ {} bytes vs flat {} bytes",
            ivf.memory_bytes(),
            flat.memory_bytes()
        );
        assert!(ivf.cell_count() > 1);
    }

    #[test]
    fn majority_patch_id_votes_correctly() {
        assert_eq!(majority_patch_id(&[]), None);
        assert_eq!(majority_patch_id(&[5]), Some(5));
        assert_eq!(majority_patch_id(&[1, 2, 2, 3]), Some(2));
        // Ties break toward the smaller id.
        assert_eq!(majority_patch_id(&[7, 3, 7, 3]), Some(3));
    }

    #[test]
    fn dimension_mismatch_checked_on_insert_and_search() {
        let mut idx = IvfPqIndex::new(IvfPqConfig::for_dim(32)).unwrap();
        assert!(idx.insert(0, &[0.0; 16]).is_err());
        let (built, _, _) = build_index(500, 32, 17);
        assert!(built.search(&[0.0; 16], 5).is_err());
    }

    #[test]
    fn zero_k_returns_empty() {
        let (ivf, _, vectors) = build_index(500, 32, 19);
        assert!(ivf.search(&vectors[0], 0).unwrap().is_empty());
    }

    fn build_with_config(
        n: usize,
        dim: usize,
        seed: u64,
        config: IvfPqConfig,
    ) -> (IvfPqIndex, Vec<Vec<f32>>) {
        let vectors = clustered_unit_vectors(n, dim, 30, seed);
        let mut ivf = IvfPqIndex::new(config).unwrap();
        for (i, v) in vectors.iter().enumerate() {
            ivf.insert(i as u64, v).unwrap();
        }
        ivf.build().unwrap();
        (ivf, vectors)
    }

    #[test]
    fn fastscan_config_is_validated() {
        let cfg = IvfPqConfig::for_dim(32).with_fastscan();
        assert!(cfg.fastscan);
        assert_eq!(cfg.pq.centroids_per_subspace, FASTSCAN_CENTROIDS);
        assert!(cfg.validate().is_ok());
        let mut bad = cfg;
        bad.pq.centroids_per_subspace = 64;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn fastscan_recall_tracks_plain_ivf() {
        let dim = 32;
        let (fast, vectors) =
            build_with_config(2_500, dim, 31, IvfPqConfig::for_dim(dim).with_fastscan());
        let mut flat = FlatIndex::new(dim);
        for (i, v) in vectors.iter().enumerate() {
            flat.insert(i as u64, v).unwrap();
        }
        let mut rng = SmallRng::seed_from_u64(17);
        let mut hits = 0usize;
        let mut total = 0usize;
        for _ in 0..20 {
            let q = &vectors[rng.gen_range(0..vectors.len())];
            let exact: Vec<u64> = flat.search(q, 10).unwrap().iter().map(|r| r.id).collect();
            let approx: Vec<u64> = fast.search(q, 10).unwrap().iter().map(|r| r.id).collect();
            total += exact.len();
            hits += exact.iter().filter(|id| approx.contains(id)).count();
        }
        let recall = hits as f32 / total as f32;
        assert!(recall > 0.6, "fast-scan recall@10 too low: {recall}");
    }

    #[test]
    fn fastscan_self_query_and_incremental_insert() {
        let dim = 32;
        let (mut fast, vectors) =
            build_with_config(1_500, dim, 77, IvfPqConfig::for_dim(dim).with_fastscan());
        let hits = fast.search(&vectors[42], 1).unwrap();
        assert_eq!(hits[0].id, 42);
        // Appends after build extend the packed blocks incrementally.
        let mut rng = SmallRng::seed_from_u64(5);
        let fresh = random_unit(dim, &mut rng);
        fast.insert(888_888, &fresh).unwrap();
        let hits = fast.search(&fresh, 1).unwrap();
        assert_eq!(hits[0].id, 888_888);
    }

    #[test]
    fn fastscan_filtered_matches_all_pass_exactness() {
        // The filtered arm compacts from the canonical byte codes (f32 ADC),
        // so its exact-rescored results must agree with the unfiltered
        // search on the returned ids' scores.
        let dim = 32;
        let (fast, vectors) =
            build_with_config(1_200, dim, 13, IvfPqConfig::for_dim(dim).with_fastscan());
        let all = IdFilter::from_predicate(|_| true);
        let (filtered, _) = fast
            .search_filtered_with_stats(&vectors[9], 10, &all)
            .unwrap();
        let (plain, _) = fast.search_with_stats(&vectors[9], 10).unwrap();
        // Final scores are exact f32 rescored on both paths; candidate sets
        // may differ slightly (u8 vs f32 approximate ordering), but the
        // top hit is the exact self-match either way.
        assert_eq!(filtered[0], plain[0]);
        for h in &filtered {
            if let Some(p) = plain.iter().find(|p| p.id == h.id) {
                assert_eq!(h.score, p.score);
            }
        }
    }

    #[test]
    fn int8_rescore_keeps_self_query_exact() {
        let dim = 32;
        let config = IvfPqConfig::for_dim(dim)
            .with_int8_rescore()
            .with_refine_factor(8);
        let (ivf, vectors) = build_with_config(2_000, dim, 23, config);
        for probe in [3usize, 700, 1999] {
            let hits = ivf.search(&vectors[probe], 1).unwrap();
            assert_eq!(hits[0].id, probe as u64);
            assert!(hits[0].score > 0.999, "final scores stay exact f32");
        }
        // Re-inserting an id refreshes both arenas.
        let mut ivf = ivf;
        let mut rng = SmallRng::seed_from_u64(3);
        let replacement = random_unit(dim, &mut rng);
        ivf.insert(7, &replacement).unwrap();
        let hits = ivf.search(&replacement, 1).unwrap();
        assert_eq!(hits[0].id, 7);
    }

    #[test]
    fn filtered_search_skips_codes_and_matches_all_pass() {
        let (ivf, _, vectors) = build_index(2_000, 32, 55);
        let filter = IdFilter::from_predicate(|id| id < 500);
        let (hits, stats) = ivf
            .search_filtered_with_stats(&vectors[123], 10, &filter)
            .unwrap();
        assert!(!hits.is_empty());
        assert!(hits.iter().all(|h| h.id < 500));
        assert_eq!(hits[0].id, 123);
        assert!(stats.filtered_out > 0, "{stats:?}");
        // Only matching candidates are scored and rescored.
        let (_, unfiltered_stats) = ivf.search_with_stats(&vectors[123], 10).unwrap();
        assert_eq!(
            stats.vectors_scored + stats.filtered_out,
            unfiltered_stats.vectors_scored
        );
        assert!(stats.exact_rescored <= unfiltered_stats.exact_rescored);

        // An all-pass filter goes through the compaction path yet must stay
        // bit-identical to the unfiltered search.
        let all = IdFilter::from_predicate(|_| true);
        let (filtered, fstats) = ivf
            .search_filtered_with_stats(&vectors[7], 10, &all)
            .unwrap();
        let (plain, _) = ivf.search_with_stats(&vectors[7], 10).unwrap();
        assert_eq!(filtered, plain);
        assert_eq!(fstats.filtered_out, 0);
    }
}
