//! Similarity metrics (§V-A).
//!
//! LOVO normalizes every embedding to unit L2 norm so that the inner product
//! equals cosine similarity and relates to Euclidean distance by
//! `d = sqrt(2 - 2 s)`. The index implementations score with the inner
//! product (higher = better); the k-means trainer works in distance space.

use serde::{Deserialize, Serialize};

/// Which similarity/distance the index optimizes for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Metric {
    /// Inner product of L2-normalized vectors (equivalently cosine similarity).
    #[default]
    InnerProduct,
    /// Squared Euclidean distance.
    L2,
}

impl Metric {
    /// Similarity score for the metric: higher is always better.
    ///
    /// For [`Metric::L2`] the score is the negated squared distance so the
    /// same "descending score" ordering applies everywhere.
    #[inline]
    pub fn score(&self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            Metric::InnerProduct => dot(a, b),
            Metric::L2 => -squared_l2(a, b),
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Metric::InnerProduct => "IP",
            Metric::L2 => "L2",
        }
    }
}

/// Inner product of two equal-length vectors.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    // Unrolled by 4: the hot loop of every search path in this crate.
    let chunks = a.len() / 4 * 4;
    let mut i = 0;
    while i < chunks {
        acc += a[i] * b[i] + a[i + 1] * b[i + 1] + a[i + 2] * b[i + 2] + a[i + 3] * b[i + 3];
        i += 4;
    }
    while i < a.len() {
        acc += a[i] * b[i];
        i += 1;
    }
    acc
}

/// Squared Euclidean distance of two equal-length vectors.
#[inline]
pub fn squared_l2(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Normalizes a vector to unit L2 norm in place; zero vectors are left alone.
pub fn normalize(v: &mut [f32]) {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > f32::EPSILON {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

/// Returns a normalized copy of the vector.
pub fn normalized(v: &[f32]) -> Vec<f32> {
    let mut out = v.to_vec();
    normalize(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive_for_odd_lengths() {
        let a: Vec<f32> = (0..13).map(|i| i as f32 * 0.3).collect();
        let b: Vec<f32> = (0..13).map(|i| (13 - i) as f32 * 0.2).collect();
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-4);
    }

    #[test]
    fn l2_score_is_negated_distance() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        assert_eq!(Metric::L2.score(&a, &b), -2.0);
        assert_eq!(Metric::InnerProduct.score(&a, &b), 0.0);
    }

    #[test]
    fn inner_product_on_unit_vectors_equals_cosine() {
        let a = normalized(&[3.0, 4.0]);
        let b = normalized(&[4.0, 3.0]);
        let ip = Metric::InnerProduct.score(&a, &b);
        assert!((ip - 24.0 / 25.0).abs() < 1e-5);
    }

    #[test]
    fn higher_score_means_smaller_distance_for_unit_vectors() {
        let q = normalized(&[1.0, 1.0, 0.0]);
        let close = normalized(&[1.0, 0.9, 0.1]);
        let far = normalized(&[-1.0, 0.2, 0.5]);
        assert!(Metric::InnerProduct.score(&q, &close) > Metric::InnerProduct.score(&q, &far));
        assert!(squared_l2(&q, &close) < squared_l2(&q, &far));
    }

    #[test]
    fn normalize_handles_zero() {
        let mut v = vec![0.0, 0.0, 0.0];
        normalize(&mut v);
        assert_eq!(v, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn metric_names() {
        assert_eq!(Metric::InnerProduct.name(), "IP");
        assert_eq!(Metric::L2.name(), "L2");
        assert_eq!(Metric::default(), Metric::InnerProduct);
    }
}
