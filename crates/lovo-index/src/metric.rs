//! Similarity metrics (§V-A).
//!
//! LOVO normalizes every embedding to unit L2 norm so that the inner product
//! equals cosine similarity and relates to Euclidean distance by
//! `d = sqrt(2 - 2 s)`. The index implementations score with the inner
//! product (higher = better); the k-means trainer works in distance space.

use serde::{Deserialize, Serialize};

/// Which similarity/distance the index optimizes for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Metric {
    /// Inner product of L2-normalized vectors (equivalently cosine similarity).
    #[default]
    InnerProduct,
    /// Squared Euclidean distance.
    L2,
}

impl Metric {
    /// Similarity score for the metric: higher is always better.
    ///
    /// For [`Metric::L2`] the score is the negated squared distance so the
    /// same "descending score" ordering applies everywhere.
    #[inline]
    pub fn score(&self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            Metric::InnerProduct => dot(a, b),
            Metric::L2 => -squared_l2(a, b),
        }
    }

    /// Scores a contiguous row-major block of vectors against `query`,
    /// appending one score per row to `out`. The metric dispatch happens once
    /// per block, not once per vector, and the inner-product arm streams the
    /// block through [`dot_batch`].
    pub fn score_batch(&self, query: &[f32], rows: &[f32], dim: usize, out: &mut Vec<f32>) {
        match self {
            Metric::InnerProduct => dot_batch(query, rows, dim, out),
            Metric::L2 => {
                debug_assert_eq!(rows.len() % dim.max(1), 0);
                out.reserve(rows.len() / dim.max(1));
                for row in rows.chunks_exact(dim) {
                    out.push(-squared_l2(query, row));
                }
            }
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Metric::InnerProduct => "IP",
            Metric::L2 => "L2",
        }
    }
}

/// Inner product of two equal-length vectors.
///
/// Unrolled 8-wide with one accumulator per lane: a single running sum chains
/// every add on the previous one, so the loop runs at add-latency speed; eight
/// independent lanes let LLVM keep the whole accumulator in one SIMD register
/// and issue fused multiply-adds back to back. The lane-reduction order is
/// fixed, so results are deterministic for a given input length.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0f32; 8];
    let a_chunks = a.chunks_exact(8);
    let b_chunks = b.chunks_exact(8);
    let a_rem = a_chunks.remainder();
    let b_rem = b_chunks.remainder();
    for (ca, cb) in a_chunks.zip(b_chunks) {
        lanes[0] += ca[0] * cb[0];
        lanes[1] += ca[1] * cb[1];
        lanes[2] += ca[2] * cb[2];
        lanes[3] += ca[3] * cb[3];
        lanes[4] += ca[4] * cb[4];
        lanes[5] += ca[5] * cb[5];
        lanes[6] += ca[6] * cb[6];
        lanes[7] += ca[7] * cb[7];
    }
    let mut acc = ((lanes[0] + lanes[4]) + (lanes[1] + lanes[5]))
        + ((lanes[2] + lanes[6]) + (lanes[3] + lanes[7]));
    for (x, y) in a_rem.iter().zip(b_rem) {
        acc += x * y;
    }
    acc
}

/// Scores a contiguous row-major block of `rows.len() / dim` vectors against
/// `query`, appending one inner product per row to `out`.
///
/// This is the bulk kernel behind every flat scan and exact re-score: rows
/// stream through the cache line-by-line with no per-vector pointer chase, and
/// the inlined 8-wide [`dot`] keeps the multiply units busy.
pub fn dot_batch(query: &[f32], rows: &[f32], dim: usize, out: &mut Vec<f32>) {
    debug_assert!(dim > 0);
    debug_assert_eq!(rows.len() % dim, 0);
    debug_assert_eq!(query.len(), dim);
    out.reserve(rows.len() / dim);
    for row in rows.chunks_exact(dim) {
        out.push(dot(query, row));
    }
}

/// Squared Euclidean distance of two equal-length vectors.
///
/// Same 8-lane accumulator scheme as [`dot`]; see there for why the single
/// running sum it replaces could not autovectorize.
#[inline]
pub fn squared_l2(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0f32; 8];
    let a_chunks = a.chunks_exact(8);
    let b_chunks = b.chunks_exact(8);
    let a_rem = a_chunks.remainder();
    let b_rem = b_chunks.remainder();
    for (ca, cb) in a_chunks.zip(b_chunks) {
        let d0 = ca[0] - cb[0];
        let d1 = ca[1] - cb[1];
        let d2 = ca[2] - cb[2];
        let d3 = ca[3] - cb[3];
        let d4 = ca[4] - cb[4];
        let d5 = ca[5] - cb[5];
        let d6 = ca[6] - cb[6];
        let d7 = ca[7] - cb[7];
        lanes[0] += d0 * d0;
        lanes[1] += d1 * d1;
        lanes[2] += d2 * d2;
        lanes[3] += d3 * d3;
        lanes[4] += d4 * d4;
        lanes[5] += d5 * d5;
        lanes[6] += d6 * d6;
        lanes[7] += d7 * d7;
    }
    let mut acc = ((lanes[0] + lanes[4]) + (lanes[1] + lanes[5]))
        + ((lanes[2] + lanes[6]) + (lanes[3] + lanes[7]));
    for (x, y) in a_rem.iter().zip(b_rem) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Normalizes a vector to unit L2 norm in place; zero vectors are left alone.
pub fn normalize(v: &mut [f32]) {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > f32::EPSILON {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

/// Returns a normalized copy of the vector.
pub fn normalized(v: &[f32]) -> Vec<f32> {
    let mut out = v.to_vec();
    normalize(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive_for_odd_lengths() {
        let a: Vec<f32> = (0..13).map(|i| i as f32 * 0.3).collect();
        let b: Vec<f32> = (0..13).map(|i| (13 - i) as f32 * 0.2).collect();
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-4);
    }

    #[test]
    fn l2_score_is_negated_distance() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        assert_eq!(Metric::L2.score(&a, &b), -2.0);
        assert_eq!(Metric::InnerProduct.score(&a, &b), 0.0);
    }

    #[test]
    fn inner_product_on_unit_vectors_equals_cosine() {
        let a = normalized(&[3.0, 4.0]);
        let b = normalized(&[4.0, 3.0]);
        let ip = Metric::InnerProduct.score(&a, &b);
        assert!((ip - 24.0 / 25.0).abs() < 1e-5);
    }

    #[test]
    fn higher_score_means_smaller_distance_for_unit_vectors() {
        let q = normalized(&[1.0, 1.0, 0.0]);
        let close = normalized(&[1.0, 0.9, 0.1]);
        let far = normalized(&[-1.0, 0.2, 0.5]);
        assert!(Metric::InnerProduct.score(&q, &close) > Metric::InnerProduct.score(&q, &far));
        assert!(squared_l2(&q, &close) < squared_l2(&q, &far));
    }

    #[test]
    fn dot_batch_matches_per_row_dot() {
        for dim in [3usize, 8, 13, 32] {
            let rows_n = 9;
            let rows: Vec<f32> = (0..rows_n * dim).map(|i| (i as f32 * 0.37).sin()).collect();
            let query: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.11).cos()).collect();
            let mut out = Vec::new();
            dot_batch(&query, &rows, dim, &mut out);
            assert_eq!(out.len(), rows_n);
            for (r, &score) in out.iter().enumerate() {
                assert_eq!(
                    score,
                    dot(&query, &rows[r * dim..(r + 1) * dim]),
                    "dim={dim}"
                );
            }
        }
    }

    #[test]
    fn score_batch_dispatches_both_metrics() {
        let dim = 5;
        let rows: Vec<f32> = (0..4 * dim).map(|i| i as f32 * 0.1).collect();
        let query = vec![0.3; dim];
        for metric in [Metric::InnerProduct, Metric::L2] {
            let mut out = Vec::new();
            metric.score_batch(&query, &rows, dim, &mut out);
            assert_eq!(out.len(), 4);
            for (r, &score) in out.iter().enumerate() {
                assert_eq!(score, metric.score(&query, &rows[r * dim..(r + 1) * dim]));
            }
        }
    }

    #[test]
    fn normalize_handles_zero() {
        let mut v = vec![0.0, 0.0, 0.0];
        normalize(&mut v);
        assert_eq!(v, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn metric_names() {
        assert_eq!(Metric::InnerProduct.name(), "IP");
        assert_eq!(Metric::L2.name(), "L2");
        assert_eq!(Metric::default(), Metric::InnerProduct);
    }
}
