//! Hierarchical Navigable Small World (HNSW) graph index.
//!
//! The Table V "graph-based indexing" variant of LOVO. The implementation is
//! the standard construction: each element receives a random level from a
//! geometric distribution; links are built greedily layer by layer, searching
//! with an `ef_construction` beam and keeping the closest `m` neighbours;
//! queries descend from the entry point with a beam of 1 until layer 0, where
//! an `ef_search` beam produces the candidate set. Scores are inner products
//! of unit vectors (higher is better), consistent with the rest of the crate.

use crate::metric::dot;
use crate::{IdFilter, IndexError, Result, SearchResult, SearchStats, VectorId, VectorIndex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Configuration of the HNSW index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HnswConfig {
    /// Vector dimensionality.
    pub dim: usize,
    /// Maximum number of neighbours per node on layers above 0 (layer 0 keeps `2 m`).
    pub m: usize,
    /// Beam width used while inserting.
    pub ef_construction: usize,
    /// Beam width used while searching.
    pub ef_search: usize,
    /// Seed of the level generator.
    pub seed: u64,
}

impl HnswConfig {
    /// Default parameters sized for the reproduction's workloads.
    pub fn for_dim(dim: usize) -> Self {
        Self {
            dim,
            m: 16,
            ef_construction: 100,
            ef_search: 64,
            seed: 0x45f1,
        }
    }

    /// Builder-style override of the search beam width.
    pub fn with_ef_search(mut self, ef: usize) -> Self {
        self.ef_search = ef.max(1);
        self
    }

    /// Builder-style override of the connectivity parameter.
    pub fn with_m(mut self, m: usize) -> Self {
        self.m = m.max(2);
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.dim == 0 {
            return Err(IndexError::InvalidConfig("dim must be positive".into()));
        }
        if self.m < 2 {
            return Err(IndexError::InvalidConfig("m must be at least 2".into()));
        }
        if self.ef_construction == 0 || self.ef_search == 0 {
            return Err(IndexError::InvalidConfig(
                "ef_construction and ef_search must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// Internal node: the stored vector, its external id, and per-layer adjacency.
#[derive(Debug, Clone)]
struct Node {
    id: VectorId,
    vector: Vec<f32>,
    /// `neighbors[layer]` lists the node's links on that layer.
    neighbors: Vec<Vec<u32>>,
}

/// Max-heap entry ordered by score.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Scored {
    score: f32,
    node: u32,
}

impl Eq for Scored {}

impl Ord for Scored {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score
            .partial_cmp(&other.score)
            .unwrap_or(Ordering::Equal)
            .then(other.node.cmp(&self.node))
    }
}

impl PartialOrd for Scored {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-heap adapter (reverse ordering) used for the result frontier.
#[derive(Debug, Clone, Copy, PartialEq)]
struct MinScored(Scored);

impl Eq for MinScored {}

impl Ord for MinScored {
    fn cmp(&self, other: &Self) -> Ordering {
        other.0.cmp(&self.0)
    }
}

impl PartialOrd for MinScored {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable per-search scratch: the visited set, both beam heaps, and the
/// best-first output buffer survive across the layers of one search (and the
/// descent hops plus connection beams of one insert), so each query pays one
/// set of allocations instead of one per layer visit.
#[derive(Debug, Default)]
struct SearchScratch {
    visited: HashSet<u32>,
    candidates: BinaryHeap<Scored>,
    results: BinaryHeap<MinScored>,
    /// Best-first output of the last [`HnswIndex::search_layer`] call.
    out: Vec<Scored>,
    /// Work counters accumulated across the layer visits of one search.
    stats: SearchStats,
}

/// The HNSW index.
pub struct HnswIndex {
    config: HnswConfig,
    nodes: Vec<Node>,
    entry_point: Option<u32>,
    max_level: usize,
    rng: SmallRng,
    /// Scratch reused by [`HnswIndex::link`]'s neighbour pruning.
    prune_scratch: Vec<(u32, f32)>,
}

impl HnswIndex {
    /// Creates an empty index.
    pub fn new(config: HnswConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self {
            rng: SmallRng::seed_from_u64(config.seed),
            config,
            nodes: Vec::new(),
            entry_point: None,
            max_level: 0,
            prune_scratch: Vec::new(),
        })
    }

    /// The index configuration.
    pub fn config(&self) -> &HnswConfig {
        &self.config
    }

    fn random_level(&mut self) -> usize {
        // Geometric distribution with the standard 1/ln(m) normalization.
        let ml = 1.0 / (self.config.m as f64).ln();
        let uniform: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        (-uniform.ln() * ml).floor() as usize
    }

    fn score(&self, query: &[f32], node: u32) -> f32 {
        dot(query, &self.nodes[node as usize].vector)
    }

    /// Greedy best-first search on one layer, leaving up to `ef` best nodes
    /// (best first) in `scratch.out`. All working state lives in `scratch` so
    /// repeated layer visits of one search reuse the same allocations; work
    /// counters accumulate into `scratch.stats`.
    ///
    /// With a filter the beam is *unfiltered-visit / filtered-accept*: every
    /// scored node may still guide the traversal through the candidate heap
    /// (rejecting them there would disconnect the graph under selective
    /// predicates), but only nodes whose external id passes the filter enter
    /// the `results` beam — so the output is filtered, while connectivity is
    /// not. Recall under a filter is therefore bounded by the beam width, not
    /// exact; highly selective predicates should be answered by the pruned
    /// flat/IVF paths instead.
    fn search_layer(
        &self,
        query: &[f32],
        entry: u32,
        ef: usize,
        layer: usize,
        scratch: &mut SearchScratch,
        filter: Option<&IdFilter>,
    ) {
        let SearchScratch {
            visited,
            candidates,
            results,
            out,
            stats,
        } = scratch;
        visited.clear();
        candidates.clear();
        results.clear();
        visited.insert(entry);
        let entry_scored = Scored {
            score: self.score(query, entry),
            node: entry,
        };
        stats.vectors_scored += 1;
        candidates.push(entry_scored);
        if filter.map_or(true, |f| f.accepts(self.nodes[entry as usize].id)) {
            results.push(MinScored(entry_scored));
        } else {
            stats.filtered_out += 1;
        }

        while let Some(current) = candidates.pop() {
            let worst = results
                .peek()
                .map(|m| m.0.score)
                .unwrap_or(f32::NEG_INFINITY);
            if current.score < worst && results.len() >= ef {
                break;
            }
            stats.cells_probed += 1;
            let node = &self.nodes[current.node as usize];
            if let Some(links) = node.neighbors.get(layer) {
                for &next in links {
                    if !visited.insert(next) {
                        continue;
                    }
                    let s = Scored {
                        score: self.score(query, next),
                        node: next,
                    };
                    stats.vectors_scored += 1;
                    let worst = results
                        .peek()
                        .map(|m| m.0.score)
                        .unwrap_or(f32::NEG_INFINITY);
                    if results.len() < ef || s.score > worst {
                        candidates.push(s);
                        if filter.map_or(true, |f| f.accepts(self.nodes[next as usize].id)) {
                            results.push(MinScored(s));
                            if results.len() > ef {
                                results.pop();
                            }
                        } else {
                            stats.filtered_out += 1;
                        }
                    }
                }
            }
        }
        out.clear();
        out.extend(results.drain().map(|m| m.0));
        // Unstable sort: `Scored`'s ordering is total (score, then node id),
        // and the beam never holds the same node twice, so no two elements
        // compare equal and stability could not change the result.
        out.sort_unstable_by(|a, b| b.cmp(a));
    }

    fn link(&mut self, a: u32, b: u32, layer: usize) {
        let max_links = if layer == 0 {
            self.config.m * 2
        } else {
            self.config.m
        };
        for (from, to) in [(a, b), (b, a)] {
            let links = &mut self.nodes[from as usize].neighbors[layer];
            if !links.contains(&to) {
                links.push(to);
            }
            if self.nodes[from as usize].neighbors[layer].len() > max_links {
                // Prune to the closest neighbours of `from`, scoring into the
                // index-level scratch (taken to appease the borrow on nodes).
                let mut scored = std::mem::take(&mut self.prune_scratch);
                scored.clear();
                let from_node = &self.nodes[from as usize];
                scored.extend(
                    from_node.neighbors[layer]
                        .iter()
                        .map(|&n| (n, dot(&from_node.vector, &self.nodes[n as usize].vector))),
                );
                // Unstable sort: the node-id tie-break makes the comparator a
                // total order over a duplicate-free link list, so no two
                // entries compare equal and stability is irrelevant.
                scored.sort_unstable_by(|x, y| {
                    y.1.partial_cmp(&x.1)
                        .unwrap_or(Ordering::Equal)
                        .then(x.0.cmp(&y.0))
                });
                let links = &mut self.nodes[from as usize].neighbors[layer];
                links.clear();
                links.extend(scored.iter().take(max_links).map(|&(n, _)| n));
                self.prune_scratch = scored;
            }
        }
    }
}

impl VectorIndex for HnswIndex {
    fn dim(&self) -> usize {
        self.config.dim
    }

    fn len(&self) -> usize {
        self.nodes.len()
    }

    fn insert(&mut self, id: VectorId, vector: &[f32]) -> Result<()> {
        if vector.len() != self.config.dim {
            return Err(IndexError::DimensionMismatch {
                expected: self.config.dim,
                actual: vector.len(),
            });
        }
        let level = self.random_level();
        let new_index = self.nodes.len() as u32;
        self.nodes.push(Node {
            id,
            vector: vector.to_vec(),
            neighbors: vec![Vec::new(); level + 1],
        });

        let Some(mut current) = self.entry_point else {
            self.entry_point = Some(new_index);
            self.max_level = level;
            return Ok(());
        };

        let mut scratch = SearchScratch::default();
        // Descend through the layers above the new node's level greedily.
        for layer in (level + 1..=self.max_level).rev() {
            loop {
                self.search_layer(vector, current, 1, layer, &mut scratch, None);
                let best = scratch.out[0];
                if best.node == current {
                    break;
                }
                if best.score > self.score(vector, current) {
                    current = best.node;
                } else {
                    break;
                }
            }
        }
        // Connect on every layer from min(level, max_level) down to 0. The
        // chosen neighbours are copied out of the scratch so `link` can take
        // `&mut self` while the next layer reuses the same buffers.
        let mut selected: Vec<u32> = Vec::with_capacity(self.config.m);
        for layer in (0..=level.min(self.max_level)).rev() {
            self.search_layer(
                vector,
                current,
                self.config.ef_construction,
                layer,
                &mut scratch,
                None,
            );
            current = scratch.out.first().map(|s| s.node).unwrap_or(current);
            selected.clear();
            selected.extend(scratch.out.iter().take(self.config.m).map(|s| s.node));
            for &neighbor in &selected {
                self.link(new_index, neighbor, layer);
            }
        }
        if level > self.max_level {
            self.max_level = level;
            self.entry_point = Some(new_index);
        }
        Ok(())
    }

    fn build(&mut self) -> Result<()> {
        // HNSW builds incrementally on insert.
        Ok(())
    }

    fn search_with_stats(
        &self,
        query: &[f32],
        k: usize,
    ) -> Result<(Vec<SearchResult>, SearchStats)> {
        self.search_impl(query, k, None)
    }

    fn search_filtered_with_stats(
        &self,
        query: &[f32],
        k: usize,
        filter: &IdFilter,
    ) -> Result<(Vec<SearchResult>, SearchStats)> {
        self.search_impl(query, k, Some(filter))
    }

    fn family(&self) -> &'static str {
        "HNSW"
    }

    fn memory_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| {
                n.vector.len() * std::mem::size_of::<f32>()
                    + n.neighbors
                        .iter()
                        .map(|l| l.len() * std::mem::size_of::<u32>())
                        .sum::<usize>()
                    + std::mem::size_of::<VectorId>()
            })
            .sum()
    }
}

impl HnswIndex {
    /// Query descent shared by the filtered and unfiltered paths. The upper
    /// layers are pure navigation and always run unfiltered; the filter (if
    /// any) applies only to the layer-0 beam that produces the candidate set.
    fn search_impl(
        &self,
        query: &[f32],
        k: usize,
        filter: Option<&IdFilter>,
    ) -> Result<(Vec<SearchResult>, SearchStats)> {
        if query.len() != self.config.dim {
            return Err(IndexError::DimensionMismatch {
                expected: self.config.dim,
                actual: query.len(),
            });
        }
        let Some(entry) = self.entry_point else {
            return Ok((Vec::new(), SearchStats::default()));
        };
        if k == 0 {
            return Ok((Vec::new(), SearchStats::default()));
        }
        let mut scratch = SearchScratch::default();
        let mut current = entry;
        for layer in (1..=self.max_level).rev() {
            self.search_layer(query, current, 1, layer, &mut scratch, None);
            current = scratch.out[0].node;
        }
        let ef = self.config.ef_search.max(k);
        self.search_layer(query, current, ef, 0, &mut scratch, filter);
        let results: Vec<SearchResult> = scratch
            .out
            .iter()
            .take(k)
            .map(|s| SearchResult {
                id: self.nodes[s.node as usize].id,
                score: s.score,
            })
            .collect();
        let mut stats = scratch.stats;
        stats.exact_rescored = results.len();
        Ok((results, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use crate::metric::normalize;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_unit(dim: usize, rng: &mut SmallRng) -> Vec<f32> {
        let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        normalize(&mut v);
        v
    }

    fn build(n: usize, dim: usize, seed: u64) -> (HnswIndex, FlatIndex, Vec<Vec<f32>>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let vectors: Vec<Vec<f32>> = (0..n).map(|_| random_unit(dim, &mut rng)).collect();
        let mut hnsw = HnswIndex::new(HnswConfig::for_dim(dim)).unwrap();
        let mut flat = FlatIndex::new(dim);
        for (i, v) in vectors.iter().enumerate() {
            hnsw.insert(i as u64, v).unwrap();
            flat.insert(i as u64, v).unwrap();
        }
        (hnsw, flat, vectors)
    }

    #[test]
    fn empty_index_returns_no_results() {
        let idx = HnswIndex::new(HnswConfig::for_dim(8)).unwrap();
        assert!(idx.search(&[0.0; 8], 5).unwrap().is_empty());
        assert!(idx.is_empty());
    }

    #[test]
    fn single_element_is_found() {
        let mut idx = HnswIndex::new(HnswConfig::for_dim(4)).unwrap();
        idx.insert(42, &[1.0, 0.0, 0.0, 0.0]).unwrap();
        let hits = idx.search(&[1.0, 0.0, 0.0, 0.0], 3).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 42);
    }

    #[test]
    fn self_queries_hit_themselves() {
        let (hnsw, _, vectors) = build(1_500, 32, 5);
        let mut hit = 0;
        for probe in (0..1_500).step_by(100) {
            let res = hnsw.search(&vectors[probe], 1).unwrap();
            if res[0].id == probe as u64 {
                hit += 1;
            }
        }
        assert!(hit >= 14, "only {hit}/15 self-queries succeeded");
    }

    #[test]
    fn recall_against_brute_force() {
        let (hnsw, flat, vectors) = build(2_000, 32, 9);
        let mut rng = SmallRng::seed_from_u64(77);
        let mut recall_hits = 0usize;
        let mut total = 0usize;
        for _ in 0..20 {
            let q = &vectors[rng.gen_range(0..vectors.len())];
            let exact: Vec<u64> = flat.search(q, 10).unwrap().iter().map(|r| r.id).collect();
            let approx: Vec<u64> = hnsw.search(q, 10).unwrap().iter().map(|r| r.id).collect();
            total += exact.len();
            recall_hits += exact.iter().filter(|id| approx.contains(id)).count();
        }
        let recall = recall_hits as f32 / total as f32;
        assert!(recall > 0.8, "HNSW recall@10 too low: {recall}");
    }

    #[test]
    fn probes_fewer_vectors_than_brute_force() {
        let (hnsw, flat, vectors) = build(4_000, 32, 3);
        let (_, h_stats) = hnsw.search_with_stats(&vectors[100], 10).unwrap();
        let (_, f_stats) = flat.search_with_stats(&vectors[100], 10).unwrap();
        assert!(h_stats.vectors_scored < f_stats.vectors_scored / 2);
    }

    #[test]
    fn larger_ef_search_scores_more_candidates() {
        let mut rng = SmallRng::seed_from_u64(31);
        let vectors: Vec<Vec<f32>> = (0..2_000).map(|_| random_unit(32, &mut rng)).collect();
        let mut small = HnswIndex::new(HnswConfig::for_dim(32).with_ef_search(8)).unwrap();
        let mut large = HnswIndex::new(HnswConfig::for_dim(32).with_ef_search(128)).unwrap();
        for (i, v) in vectors.iter().enumerate() {
            small.insert(i as u64, v).unwrap();
            large.insert(i as u64, v).unwrap();
        }
        let (_, s) = small.search_with_stats(&vectors[0], 5).unwrap();
        let (_, l) = large.search_with_stats(&vectors[0], 5).unwrap();
        assert!(s.vectors_scored < l.vectors_scored);
    }

    #[test]
    fn results_sorted_descending_and_k_respected() {
        let (hnsw, _, vectors) = build(800, 16, 1);
        let hits = hnsw.search(&vectors[3], 7).unwrap();
        assert_eq!(hits.len(), 7);
        for pair in hits.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut idx = HnswIndex::new(HnswConfig::for_dim(16)).unwrap();
        assert!(idx.insert(0, &[0.0; 8]).is_err());
        idx.insert(0, &[0.1; 16]).unwrap();
        assert!(idx.search(&[0.0; 8], 1).is_err());
    }

    #[test]
    fn filtered_beam_accepts_only_matching_nodes() {
        let (hnsw, flat, vectors) = build(2_000, 32, 13);
        let filter = IdFilter::from_predicate(|id| id % 2 == 0);
        let (hits, stats) = hnsw
            .search_filtered_with_stats(&vectors[100], 10, &filter)
            .unwrap();
        assert!(!hits.is_empty());
        assert!(hits.iter().all(|h| h.id % 2 == 0));
        assert!(stats.filtered_out > 0);
        for pair in hits.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
        // Recall against the exact filtered reference stays reasonable at
        // 50% selectivity.
        let exact: Vec<u64> = flat
            .search_filtered(&vectors[100], 10, &filter)
            .unwrap()
            .iter()
            .map(|r| r.id)
            .collect();
        let overlap = exact
            .iter()
            .filter(|id| hits.iter().any(|h| h.id == **id))
            .count();
        assert!(overlap >= 6, "filtered recall too low: {overlap}/10");

        // An all-pass filter must reproduce the unfiltered search exactly.
        let all = IdFilter::from_predicate(|_| true);
        let (filtered, _) = hnsw
            .search_filtered_with_stats(&vectors[3], 7, &all)
            .unwrap();
        let (plain, _) = hnsw.search_with_stats(&vectors[3], 7).unwrap();
        assert_eq!(filtered, plain);
    }

    #[test]
    fn config_validation() {
        assert!(HnswConfig::for_dim(0).validate().is_err());
        let mut c = HnswConfig::for_dim(8);
        c.m = 1;
        assert!(c.validate().is_err());
        c = HnswConfig::for_dim(8);
        c.ef_search = 0;
        assert!(c.validate().is_err());
    }
}
