//! Exhaustive (brute-force) index: the accuracy upper bound in Table V.

use crate::metric::Metric;
use crate::store::RowStore;
use crate::{IdFilter, IndexError, Result, SearchResult, SearchStats, TopK, VectorId, VectorIndex};

/// Rows scored per batch-kernel pass: 256 rows of ≤128-dim f32 keep the
/// score buffer and the active slice of the arena inside L1/L2 while the
/// `TopK` pushes run on still-hot scores.
const SCAN_BLOCK_ROWS: usize = 256;

/// A flat index that stores every vector and scans all of them per query.
#[derive(Debug, Clone)]
pub struct FlatIndex {
    dim: usize,
    metric: Metric,
    ids: Vec<VectorId>,
    /// All vectors concatenated row-major; `ids[i]` owns
    /// `data[i*dim..(i+1)*dim]`. Owned for growing buffers; a zero-copy
    /// view into a mapped segment file on the mmap restore path.
    data: RowStore,
}

impl FlatIndex {
    /// Creates an empty flat index for `dim`-dimensional vectors with the
    /// default inner-product metric.
    pub fn new(dim: usize) -> Self {
        Self::with_metric(dim, Metric::InnerProduct)
    }

    /// Creates an empty flat index with an explicit metric.
    pub fn with_metric(dim: usize, metric: Metric) -> Self {
        Self {
            dim,
            metric,
            ids: Vec::new(),
            data: RowStore::new(),
        }
    }

    /// Reconstructs a flat index from already-stored rows (the segment
    /// restore path): `ids[i]` owns `data[i*dim..(i+1)*dim]`. Scores are
    /// bit-identical to inserting the same rows in order, whether `data` is
    /// owned or a mapped view. Inner-product metric, matching the sealed
    /// segments the storage layer persists.
    pub fn from_parts(dim: usize, ids: Vec<VectorId>, data: RowStore) -> Result<Self> {
        if dim == 0 || data.len() != ids.len() * dim {
            return Err(IndexError::InvalidState(format!(
                "flat restore shape mismatch: {} values for {} rows of dim {dim}",
                data.len(),
                ids.len()
            )));
        }
        Ok(Self {
            dim,
            metric: Metric::InnerProduct,
            ids,
            data,
        })
    }

    /// True when the row arena is a zero-copy view into a mapped file.
    pub fn is_mapped(&self) -> bool {
        self.data.is_mapped()
    }

    /// Borrow the stored vector for an id, if present (linear scan; test helper).
    pub fn vector(&self, id: VectorId) -> Option<&[f32]> {
        self.ids
            .iter()
            .position(|&i| i == id)
            .map(|pos| &self.data.as_slice()[pos * self.dim..(pos + 1) * self.dim])
    }

    /// Iterator over the stored `(id, vector)` rows in insertion order. The
    /// segmented storage layer uses a flat index as its append buffer and
    /// reads the raw rows back when sealing or compacting a segment.
    pub fn rows(&self) -> impl Iterator<Item = (VectorId, &[f32])> {
        let data = self.data.as_slice();
        self.ids
            .iter()
            .enumerate()
            .map(move |(pos, &id)| (id, &data[pos * self.dim..(pos + 1) * self.dim]))
    }
}

impl VectorIndex for FlatIndex {
    fn dim(&self) -> usize {
        self.dim
    }

    fn len(&self) -> usize {
        self.ids.len()
    }

    fn insert(&mut self, id: VectorId, vector: &[f32]) -> Result<()> {
        if vector.len() != self.dim {
            return Err(IndexError::DimensionMismatch {
                expected: self.dim,
                actual: vector.len(),
            });
        }
        self.ids.push(id);
        self.data.to_mut().extend_from_slice(vector);
        Ok(())
    }

    fn build(&mut self) -> Result<()> {
        Ok(())
    }

    fn search_with_stats(
        &self,
        query: &[f32],
        k: usize,
    ) -> Result<(Vec<SearchResult>, SearchStats)> {
        if query.len() != self.dim {
            return Err(IndexError::DimensionMismatch {
                expected: self.dim,
                actual: query.len(),
            });
        }
        // The metric dispatches once per block (not once per row), each block
        // streams through the row-major arena with the batch kernel, and a
        // bounded TopK replaces the collect-all + sort + truncate pattern.
        let mut top = TopK::new(k);
        let mut scores: Vec<f32> = Vec::with_capacity(SCAN_BLOCK_ROWS.min(self.ids.len()));
        let data = self.data.as_slice();
        if !data.is_empty() {
            let mut base_row = 0usize;
            for block in data.chunks(SCAN_BLOCK_ROWS * self.dim) {
                scores.clear();
                self.metric.score_batch(query, block, self.dim, &mut scores);
                for (offset, &score) in scores.iter().enumerate() {
                    top.push_hit(self.ids[base_row + offset], score);
                }
                base_row += scores.len();
            }
        }
        let stats = SearchStats {
            vectors_scored: self.ids.len(),
            cells_probed: 1,
            exact_rescored: top.len(),
            heap_pushes: top.pushes(),
            ..SearchStats::default()
        };
        Ok((top.into_sorted_results(), stats))
    }

    /// Filtered scan: the filter masks rows *before* they are scored, so at
    /// low selectivity the scan skips most of its dot products instead of
    /// discarding them afterwards. Blocks whose rows all pass keep the batch
    /// kernel ([`Metric::score_batch`] delegates to the same per-row kernel,
    /// so scores are bit-identical between the two paths).
    fn search_filtered_with_stats(
        &self,
        query: &[f32],
        k: usize,
        filter: &IdFilter,
    ) -> Result<(Vec<SearchResult>, SearchStats)> {
        if query.len() != self.dim {
            return Err(IndexError::DimensionMismatch {
                expected: self.dim,
                actual: query.len(),
            });
        }
        let mut top = TopK::new(k);
        let mut scores: Vec<f32> = Vec::with_capacity(SCAN_BLOCK_ROWS.min(self.ids.len()));
        let mut mask: Vec<bool> = Vec::with_capacity(SCAN_BLOCK_ROWS);
        // Masked-batch scratch for mixed blocks: the passing rows compact
        // into one contiguous run so the batch kernel streams them exactly
        // like an all-pass block.
        let mut gathered: Vec<f32> = Vec::new();
        let mut gathered_ids: Vec<VectorId> = Vec::new();
        let mut scored = 0usize;
        let mut filtered_out = 0usize;
        let data = self.data.as_slice();
        if !data.is_empty() {
            let mut base_row = 0usize;
            for block in data.chunks(SCAN_BLOCK_ROWS * self.dim) {
                let rows = block.len() / self.dim;
                mask.clear();
                mask.extend((0..rows).map(|offset| filter.accepts(self.ids[base_row + offset])));
                let pass = mask.iter().filter(|&&keep| keep).count();
                filtered_out += rows - pass;
                scored += pass;
                if pass == rows {
                    // Fully-passing block: stream it through the batch kernel.
                    scores.clear();
                    self.metric.score_batch(query, block, self.dim, &mut scores);
                    for (offset, &score) in scores.iter().enumerate() {
                        top.push_hit(self.ids[base_row + offset], score);
                    }
                } else if pass > 0 {
                    // Mixed block: gather the passing rows and run the batch
                    // kernel once — the metric dispatch is hoisted out of the
                    // row loop, and `score_batch` delegates to the same
                    // per-row kernel, so scores are bit-identical to the
                    // per-row path this replaced.
                    gathered.clear();
                    gathered_ids.clear();
                    for (offset, &keep) in mask.iter().enumerate() {
                        if keep {
                            gathered.extend_from_slice(
                                &block[offset * self.dim..(offset + 1) * self.dim],
                            );
                            gathered_ids.push(self.ids[base_row + offset]);
                        }
                    }
                    scores.clear();
                    self.metric
                        .score_batch(query, &gathered, self.dim, &mut scores);
                    for (&id, &score) in gathered_ids.iter().zip(&scores) {
                        top.push_hit(id, score);
                    }
                }
                base_row += rows;
            }
        }
        let stats = SearchStats {
            vectors_scored: scored,
            cells_probed: 1,
            exact_rescored: top.len(),
            heap_pushes: top.pushes(),
            filtered_out,
            ..SearchStats::default()
        };
        Ok((top.into_sorted_results(), stats))
    }

    fn family(&self) -> &'static str {
        "BF"
    }

    fn memory_bytes(&self) -> usize {
        // Mapped rows are file-backed page cache, not heap, so they report 0.
        self.data.heap_bytes() + self.ids.len() * std::mem::size_of::<VectorId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::normalized;

    fn unit(v: &[f32]) -> Vec<f32> {
        normalized(v)
    }

    #[test]
    fn exact_top_k_ordering() {
        let mut idx = FlatIndex::new(3);
        idx.insert(1, &unit(&[1.0, 0.0, 0.0])).unwrap();
        idx.insert(2, &unit(&[0.0, 1.0, 0.0])).unwrap();
        idx.insert(3, &unit(&[0.9, 0.1, 0.0])).unwrap();
        idx.build().unwrap();
        let hits = idx.search(&unit(&[1.0, 0.0, 0.0]), 2).unwrap();
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].id, 1);
        assert_eq!(hits[1].id, 3);
        assert!(hits[0].score >= hits[1].score);
    }

    #[test]
    fn k_larger_than_len_returns_everything() {
        let mut idx = FlatIndex::new(2);
        idx.insert(7, &[1.0, 0.0]).unwrap();
        let hits = idx.search(&[1.0, 0.0], 10).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 7);
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let mut idx = FlatIndex::new(4);
        assert!(idx.insert(1, &[1.0, 2.0]).is_err());
        idx.insert(1, &[1.0, 0.0, 0.0, 0.0]).unwrap();
        assert!(idx.search(&[1.0, 0.0], 1).is_err());
    }

    #[test]
    fn stats_count_all_vectors() {
        let mut idx = FlatIndex::new(2);
        for i in 0..50 {
            idx.insert(i, &unit(&[i as f32 + 1.0, 1.0])).unwrap();
        }
        let (_, stats) = idx.search_with_stats(&unit(&[1.0, 1.0]), 5).unwrap();
        assert_eq!(stats.vectors_scored, 50);
        assert_eq!(stats.exact_rescored, 5);
    }

    #[test]
    fn memory_grows_with_inserts() {
        let mut idx = FlatIndex::new(8);
        let before = idx.memory_bytes();
        idx.insert(1, &[0.5; 8]).unwrap();
        assert!(idx.memory_bytes() > before);
    }

    #[test]
    fn vector_lookup_round_trips() {
        let mut idx = FlatIndex::new(3);
        let v = unit(&[0.2, 0.5, 0.8]);
        idx.insert(42, &v).unwrap();
        assert_eq!(idx.vector(42).unwrap(), v.as_slice());
        assert!(idx.vector(43).is_none());
    }

    #[test]
    fn l2_metric_orders_by_distance() {
        let mut idx = FlatIndex::with_metric(2, Metric::L2);
        idx.insert(1, &[0.0, 0.0]).unwrap();
        idx.insert(2, &[5.0, 5.0]).unwrap();
        let hits = idx.search(&[0.5, 0.5], 2).unwrap();
        assert_eq!(hits[0].id, 1);
        assert_eq!(idx.family(), "BF");
    }

    #[test]
    fn filtered_scan_masks_rows_and_counts_them() {
        let mut idx = FlatIndex::new(2);
        for i in 0..40u64 {
            idx.insert(i, &unit(&[i as f32 + 1.0, 1.0])).unwrap();
        }
        let filter = IdFilter::from_predicate(|id| id % 4 == 0);
        let (hits, stats) = idx
            .search_filtered_with_stats(&unit(&[50.0, 1.0]), 5, &filter)
            .unwrap();
        assert_eq!(hits.len(), 5);
        assert!(hits.iter().all(|h| h.id % 4 == 0));
        assert_eq!(stats.vectors_scored, 10);
        assert_eq!(stats.filtered_out, 30);

        // An all-pass filter is score-identical to the unfiltered scan.
        let all = IdFilter::from_predicate(|_| true);
        let q = unit(&[3.0, 2.0]);
        let (filtered, fstats) = idx.search_filtered_with_stats(&q, 7, &all).unwrap();
        let (plain, _) = idx.search_with_stats(&q, 7).unwrap();
        assert_eq!(filtered, plain);
        assert_eq!(fstats.filtered_out, 0);
    }

    #[test]
    fn ties_break_by_id_for_determinism() {
        let mut idx = FlatIndex::new(2);
        idx.insert(9, &[1.0, 0.0]).unwrap();
        idx.insert(3, &[1.0, 0.0]).unwrap();
        let hits = idx.search(&[1.0, 0.0], 2).unwrap();
        assert_eq!(hits[0].id, 3);
        assert_eq!(hits[1].id, 9);
    }
}
