//! Property tests for predicate pushdown: `search_filtered(pred)` must be
//! indistinguishable from "unfiltered search over everything + post-filter +
//! truncate" — score- and tie-break-identical for the exact paths (Flat, and
//! IVF-PQ when the refine budget covers every probed candidate), and
//! recall-bounded for the beam-limited HNSW path.

use lovo_index::metric::{dot, normalize};
use lovo_index::{
    FlatIndex, HnswConfig, HnswIndex, IdFilter, IvfPqConfig, IvfPqIndex, SearchResult, VectorIndex,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Reference implementation: exhaustively retrieve everything unfiltered,
/// drop ids the filter rejects, truncate to `k`.
fn post_filter_reference(
    index: &dyn VectorIndex,
    query: &[f32],
    k: usize,
    filter: &IdFilter,
) -> Vec<SearchResult> {
    index
        .search(query, index.len())
        .unwrap()
        .into_iter()
        .filter(|hit| filter.accepts(hit.id))
        .take(k)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Flat: the filtered block scan must equal the post-filtered full scan
    // exactly — same ids, same (bit-identical) scores, same id tie-breaks.
    // The mask mixes fully-passing blocks (batch kernel) with mixed blocks
    // (per-row kernel); both kernels share the per-row dot, so equality is
    // exact, not approximate.
    #[test]
    fn flat_filtered_equals_post_filter(
        rows in prop::collection::vec(prop::collection::vec(-1.0f32..1.0, 8), 20..150),
        mask in prop::collection::vec(any::<bool>(), 150),
        query in prop::collection::vec(-1.0f32..1.0, 8),
        k in 0usize..12,
    ) {
        let mut flat = FlatIndex::new(8);
        for (i, v) in rows.iter().enumerate() {
            flat.insert(i as u64, v).unwrap();
        }
        let allowed: std::collections::HashSet<u64> = rows
            .iter()
            .enumerate()
            .filter(|(i, _)| mask[*i])
            .map(|(i, _)| i as u64)
            .collect();
        let set_filter = IdFilter::Set(allowed.clone());
        let reference = post_filter_reference(&flat, &query, k, &set_filter);

        let (set_hits, set_stats) = flat
            .search_filtered_with_stats(&query, k, &set_filter)
            .unwrap();
        prop_assert_eq!(&set_hits, &reference);
        prop_assert_eq!(set_stats.vectors_scored, allowed.len());
        prop_assert_eq!(set_stats.filtered_out, rows.len() - allowed.len());

        // The same filter expressed as a predicate takes the same path.
        let moved = allowed.clone();
        let pred_filter = IdFilter::from_predicate(move |id| moved.contains(&id));
        let (pred_hits, _) = flat
            .search_filtered_with_stats(&query, k, &pred_filter)
            .unwrap();
        prop_assert_eq!(pred_hits, reference);
    }
}

/// Clustered unit vectors resembling real embedding distributions.
fn clustered_unit_vectors(n: usize, dim: usize, clusters: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let centers: Vec<Vec<f32>> = (0..clusters)
        .map(|_| {
            let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            normalize(&mut v);
            v
        })
        .collect();
    (0..n)
        .map(|i| {
            let center = &centers[i % clusters];
            let mut v: Vec<f32> = center
                .iter()
                .map(|c| c + rng.gen_range(-0.15f32..0.15))
                .collect();
            normalize(&mut v);
            v
        })
        .collect()
}

// IVF-PQ: with a refine budget covering every probed candidate, both the
// filtered and unfiltered searches exactly re-score everything they probe,
// so filtered(k) must equal post-filter(unfiltered(everything)) truncated to
// k — including scores (exact dots) and id tie-breaks. This exercises the
// code-skipping compaction: a wrongly skipped (or wrongly kept) code would
// change the result set.
#[test]
fn ivf_filtered_equals_post_filter_under_full_refine() {
    let dim = 32;
    let n = 1_500;
    let vectors = clustered_unit_vectors(n, dim, 30, 0x1f11);
    let config = IvfPqConfig::for_dim(dim).with_refine_factor(n);
    let mut ivf = IvfPqIndex::new(config).unwrap();
    for (i, v) in vectors.iter().enumerate() {
        ivf.insert(i as u64, v).unwrap();
    }
    ivf.build().unwrap();

    let filters: Vec<IdFilter> = vec![
        IdFilter::from_predicate(|id| id < 400),
        IdFilter::from_predicate(|id| id % 3 == 0),
        IdFilter::from_ids((700..900).chain(100..150)),
    ];
    for (which, filter) in filters.iter().enumerate() {
        for &probe in &[11usize, 502, 1203] {
            let query = &vectors[probe];
            let reference = post_filter_reference(&ivf, query, 10, filter);
            let (hits, stats) = ivf.search_filtered_with_stats(query, 10, filter).unwrap();
            assert_eq!(hits, reference, "filter {which}, probe {probe}");
            assert!(hits.iter().all(|h| filter.accepts(h.id)));
            assert_eq!(
                stats.exact_rescored, stats.vectors_scored,
                "full refine rescores every kept candidate (filter {which}, probe {probe})"
            );
        }
    }
}

// HNSW: the unfiltered-visit/filtered-accept beam cannot promise exactness,
// so the property is bounded: every hit passes the filter, scores are the
// exact inner products of the stored vectors, ordering is the crate-wide
// (score desc, id asc), and recall against the exact filtered reference
// stays high at moderate selectivity with a generous beam.
#[test]
fn hnsw_filtered_is_recall_bounded() {
    let dim = 32;
    let n = 2_000;
    let vectors = clustered_unit_vectors(n, dim, 25, 0x533d);
    let mut hnsw = HnswIndex::new(HnswConfig::for_dim(dim).with_ef_search(128)).unwrap();
    let mut flat = FlatIndex::new(dim);
    for (i, v) in vectors.iter().enumerate() {
        hnsw.insert(i as u64, v).unwrap();
        flat.insert(i as u64, v).unwrap();
    }

    let filter = IdFilter::from_predicate(|id| id % 2 == 1);
    let mut recall_hits = 0usize;
    let mut total = 0usize;
    for &probe in &[3usize, 401, 777, 1200, 1999] {
        let query = &vectors[probe];
        let (hits, _) = hnsw.search_filtered_with_stats(query, 10, &filter).unwrap();
        for hit in &hits {
            assert_eq!(hit.id % 2, 1, "filtered-out id escaped the beam");
            // Scores are exact inner products of the stored vector.
            let stored = flat.vector(hit.id).unwrap();
            assert_eq!(hit.score, dot(query, stored));
        }
        for pair in hits.windows(2) {
            assert!(
                pair[0].score > pair[1].score
                    || (pair[0].score == pair[1].score && pair[0].id < pair[1].id),
                "result order violates (score desc, id asc)"
            );
        }
        let exact = post_filter_reference(&flat, query, 10, &filter);
        total += exact.len();
        recall_hits += exact
            .iter()
            .filter(|e| hits.iter().any(|h| h.id == e.id))
            .count();
    }
    let recall = recall_hits as f64 / total as f64;
    assert!(recall >= 0.7, "filtered recall@10 too low: {recall}");
}
