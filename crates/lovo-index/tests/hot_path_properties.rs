//! Property tests for the hot-path overhaul: the bounded [`TopK`] selector
//! must be indistinguishable from the full-sort + truncate pattern it
//! replaced (including score ties broken by ascending id), and the flattened
//! strided [`AdcTable`] plus contiguous code-list storage must score
//! bit-identically to a nested per-subspace reference built from public
//! decode output.

use lovo_index::metric::dot;
use lovo_index::pq::{PqCode, PqConfig, ProductQuantizer};
use lovo_index::{SearchResult, TopK};
use proptest::prelude::*;

/// Reference implementation: collect everything, stable-sort by score
/// descending with ties broken by ascending id, truncate to `k`.
fn full_sort_top_k(hits: &[SearchResult], k: usize) -> Vec<SearchResult> {
    let mut sorted = hits.to_vec();
    sorted.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.id.cmp(&b.id))
    });
    sorted.truncate(k);
    sorted
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Coarse integer scores force heavy ties, so the id tie-break is
    // exercised on nearly every case; ids are the (unique) insertion index.
    #[test]
    fn top_k_selection_matches_full_sort(
        raw_scores in prop::collection::vec(0u32..12, 1..180),
        k in 0usize..16,
    ) {
        let hits: Vec<SearchResult> = raw_scores
            .iter()
            .enumerate()
            .map(|(i, &s)| SearchResult {
                id: i as u64,
                score: s as f32 * 0.125,
            })
            .collect();
        let reference = full_sort_top_k(&hits, k);

        let mut top = TopK::new(k);
        for hit in &hits {
            top.push_hit(hit.id, hit.score);
        }
        prop_assert_eq!(top.pushes(), hits.len());
        prop_assert_eq!(top.into_sorted_results(), reference.clone());

        // Push order must not matter: feed the same hits in reverse.
        let mut reversed = TopK::new(k);
        for hit in hits.iter().rev() {
            reversed.push_hit(hit.id, hit.score);
        }
        prop_assert_eq!(reversed.into_sorted_results(), reference);
    }

    // Payload-carrying selection keeps payloads attached to the right entry.
    #[test]
    fn top_k_payload_follows_its_entry(
        raw_scores in prop::collection::vec(0u32..8, 1..60),
        k in 1usize..8,
    ) {
        let mut top: TopK<u32> = TopK::new(k);
        for (i, &s) in raw_scores.iter().enumerate() {
            top.push(i as u64, s as f32, i as u32 * 10);
        }
        for entry in top.into_sorted_entries() {
            prop_assert_eq!(entry.payload as u64, entry.id * 10);
        }
    }
}

proptest! {
    // Each case trains a PQ (Lloyd's iteration), so keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(24))]

    // The strided one-vector table must score bit-identically to a nested
    // `table[p][m]` reference reconstructed through the public decode API
    // (decoding a one-hot code yields the raw centroid, and the reference
    // accumulates partial scores in the same subspace order).
    #[test]
    fn flat_adc_table_matches_nested_reference(
        sample in prop::collection::vec(prop::collection::vec(-1.0f32..1.0, 16), 20..40),
        query in prop::collection::vec(-1.0f32..1.0, 16),
    ) {
        let dim = 16;
        let config = PqConfig {
            dim,
            num_subspaces: 4,
            centroids_per_subspace: 8,
            seed: 0xadc,
        };
        let sub_dim = dim / config.num_subspaces;
        let pq = ProductQuantizer::train(config, &sample).unwrap();
        let table = pq.adc_table(&query).unwrap();

        // Nested reference: `nested[p][m]` = dot(query sub-vector, centroid).
        let nested: Vec<Vec<f32>> = (0..config.num_subspaces)
            .map(|p| {
                (0..config.centroids_per_subspace)
                    .map(|m| {
                        let mut one_hot = vec![0u8; config.num_subspaces];
                        one_hot[p] = m as u8;
                        let decoded = pq.decode(&PqCode(one_hot)).unwrap();
                        dot(
                            &query[p * sub_dim..(p + 1) * sub_dim],
                            &decoded[p * sub_dim..(p + 1) * sub_dim],
                        )
                    })
                    .collect()
            })
            .collect();

        for (p, row) in nested.iter().enumerate() {
            for (m, &expected) in row.iter().enumerate() {
                prop_assert_eq!(table.subspace_score(p, m as u8), expected);
            }
        }

        // Whole-code scoring: same left-to-right subspace accumulation order
        // as the reference sum, so equality is exact, not approximate.
        for v in &sample {
            let code = pq.encode(v).unwrap();
            let mut reference = 0.0f32;
            for (p, &m) in code.0.iter().enumerate() {
                reference += nested[p][m as usize];
            }
            prop_assert_eq!(table.score(&code), reference);
            prop_assert_eq!(table.score_codes(&code.0), reference);
        }
    }

    // Contiguous code-list storage (one `Vec<u8>`, stride = subspaces) must
    // score bit-identically to per-entry `PqCode` scoring.
    #[test]
    fn contiguous_code_list_matches_per_entry_scores(
        sample in prop::collection::vec(prop::collection::vec(-1.0f32..1.0, 16), 24..48),
        query in prop::collection::vec(-1.0f32..1.0, 16),
    ) {
        let config = PqConfig {
            dim: 16,
            num_subspaces: 4,
            centroids_per_subspace: 8,
            seed: 0x11f,
        };
        let pq = ProductQuantizer::train(config, &sample).unwrap();
        let table = pq.adc_table(&query).unwrap();
        let codes: Vec<PqCode> = sample.iter().map(|v| pq.encode(v).unwrap()).collect();
        let contiguous: Vec<u8> = codes
            .iter()
            .flat_map(|code| code.0.iter().copied())
            .collect();

        let mut list_scores = Vec::new();
        table.score_list(&contiguous, config.num_subspaces, &mut list_scores);
        prop_assert_eq!(list_scores.len(), codes.len());
        for (code, &listed) in codes.iter().zip(&list_scores) {
            prop_assert_eq!(listed, table.score(code));
        }
    }
}
