//! Property tests for the quantized scan tier: the 4-bit fast-scan layout
//! must track the f32 ADC scores within the quantized LUT's declared error
//! bound, the scalar fallback must be *bit-identical* to whatever kernel
//! runtime detection picks (the SIMD path does the same u8 lookups and u16
//! adds, just 32 at a time), and the int8 flat index's exact-rescore design
//! must keep recall against the f32 flat index above a hard floor.

use lovo_index::metric::normalize;
use lovo_index::pq::{PqConfig, ProductQuantizer};
use lovo_index::{
    FastScanCodes, FastScanKernel, FlatIndex, QuantizedFlatIndex, QuantizedLut, VectorIndex,
};
use proptest::prelude::*;

const FASTSCAN_CENTROIDS: usize = 16;

/// Builds unit vectors from raw proptest floats (normalization keeps the
/// inner-product scores in a sane range without constraining the generator).
fn unit_rows(raw: &[Vec<f32>]) -> Vec<Vec<f32>> {
    raw.iter()
        .map(|row| {
            let mut v = row.clone();
            // An all-zero row normalizes to zero; nudge it off the origin so
            // every row is a valid unit vector.
            if v.iter().all(|&x| x.abs() < 1e-6) {
                v[0] = 1.0;
            }
            normalize(&mut v);
            v
        })
        .collect()
}

proptest! {
    // Each case trains a 16-centroid PQ (Lloyd's iterations), so the case
    // count stays low; the assertions inside each case cover every row.
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Fast-scan scores = bias + delta * u16_sum must stay within the LUT's
    // declared worst-case quantization error of the exact f32 ADC scores,
    // for every row including the padded trailing partial block.
    #[test]
    fn fast_scan_tracks_adc_within_error_bound(
        raw in prop::collection::vec(prop::collection::vec(-1.0f32..1.0, 16), 40..90),
        qraw in prop::collection::vec(-1.0f32..1.0, 16),
    ) {
        let rows = unit_rows(&raw);
        let query = unit_rows(std::slice::from_ref(&qraw)).remove(0);
        let pq = ProductQuantizer::train(
            PqConfig {
                dim: 16,
                num_subspaces: 4,
                centroids_per_subspace: FASTSCAN_CENTROIDS,
                seed: 0xfa57,
            },
            &rows,
        )
        .unwrap();
        let adc = pq.adc_table(&query).unwrap();
        let lut = QuantizedLut::from_adc(&adc).unwrap();

        let mut packed = FastScanCodes::new(4);
        let mut flat_codes = Vec::new();
        for row in &rows {
            let code = pq.encode(row).unwrap();
            packed.append(&code.0).unwrap();
            flat_codes.extend_from_slice(&code.0);
        }
        let mut exact = Vec::new();
        adc.score_list(&flat_codes, 4, &mut exact);
        let mut fast = Vec::new();
        packed.scores(&lut, FastScanKernel::scalar(), &mut fast).unwrap();
        prop_assert_eq!(fast.len(), exact.len());
        // Small f32 slack on top of the integer-quantization bound: the
        // reconstruction multiplies the u16 sum by delta in f32.
        let bound = lut.error_bound() + 1e-4;
        for (f, e) in fast.iter().zip(&exact) {
            prop_assert!((f - e).abs() <= bound, "fast {} vs adc {} (bound {})", f, e, bound);
        }
    }

    // The detected kernel (AVX2 where the host supports it, scalar
    // otherwise) must produce the same raw u16 sums as the scalar fallback,
    // bit for bit, and therefore identical f32 scores. Arbitrary codes — not
    // just trained ones — so the equivalence is over the whole input domain.
    #[test]
    fn detected_kernel_is_bit_identical_to_scalar_fallback(
        codes in prop::collection::vec(prop::collection::vec(0u8..16, 5), 1..70),
        luts in prop::collection::vec(prop::collection::vec(0u8..255, FASTSCAN_CENTROIDS), 5),
        delta_step in 1u32..200,
    ) {
        // Build the LUT through the public f32 path: a synthetic ADC table
        // whose entries are exact multiples of one shared delta with a zero
        // per-subspace minimum, so quantization reproduces the arbitrary u8
        // tables exactly and the kernels see the full u8 input domain.
        let delta = delta_step as f32 * 1e-3;
        let table: Vec<f32> = luts
            .iter()
            .flat_map(|sub| {
                // Force each subspace's minimum to 0 so the quantizer's
                // per-subspace shift is the identity.
                let mut sub = sub.clone();
                sub[0] = 0;
                sub.into_iter().map(move |q| q as f32 * delta)
            })
            .collect();
        let adc = lovo_index::pq::AdcTable::from_raw(table, FASTSCAN_CENTROIDS).unwrap();
        let lut = QuantizedLut::from_adc(&adc).unwrap();

        let mut packed = FastScanCodes::new(5);
        for code in &codes {
            packed.append(code).unwrap();
        }
        let scalar_sums = packed.raw_sums(&lut, FastScanKernel::scalar());
        let detected_sums = packed.raw_sums(&lut, FastScanKernel::detect());
        prop_assert_eq!(&scalar_sums, &detected_sums);

        let mut scalar_scores = Vec::new();
        packed.scores(&lut, FastScanKernel::scalar(), &mut scalar_scores).unwrap();
        let mut detected_scores = Vec::new();
        packed.scores(&lut, FastScanKernel::detect(), &mut detected_scores).unwrap();
        prop_assert_eq!(scalar_scores, detected_scores);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // The int8 flat index overfetches and exactly re-scores, so (a) every
    // score it returns must equal the f32 flat index's score for that id,
    // and (b) recall@k against the exact top-k must stay above a hard floor
    // (in practice it is ~1.0; 0.6 catches any structural regression
    // without flaking on adversarial random draws).
    #[test]
    fn int8_flat_rescoring_keeps_recall_above_floor(
        raw in prop::collection::vec(prop::collection::vec(-1.0f32..1.0, 12), 30..120),
        qraw in prop::collection::vec(-1.0f32..1.0, 12),
        k in 1usize..8,
    ) {
        let rows = unit_rows(&raw);
        let query = unit_rows(std::slice::from_ref(&qraw)).remove(0);
        let mut quantized = QuantizedFlatIndex::new(12);
        let mut exact = FlatIndex::new(12);
        for (i, row) in rows.iter().enumerate() {
            quantized.insert(i as u64, row).unwrap();
            exact.insert(i as u64, row).unwrap();
        }
        let approx_hits = quantized.search(&query, k).unwrap();
        let exact_hits = exact.search(&query, k).unwrap();
        prop_assert_eq!(approx_hits.len(), exact_hits.len());

        // (a) Returned scores are exact f32 inner products.
        for hit in &approx_hits {
            let row = &rows[hit.id as usize];
            let truth = lovo_index::metric::dot(&query, row);
            prop_assert_eq!(hit.score, truth, "id {} not exactly rescored", hit.id);
        }

        // (b) Recall floor against the exact top-k.
        let truth_ids: std::collections::HashSet<u64> =
            exact_hits.iter().map(|h| h.id).collect();
        let recalled = approx_hits.iter().filter(|h| truth_ids.contains(&h.id)).count();
        let recall = recalled as f64 / exact_hits.len().max(1) as f64;
        prop_assert!(recall >= 0.6, "recall@{} = {:.2}", k, recall);
    }
}
