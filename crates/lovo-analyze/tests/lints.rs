//! Fixture-driven integration tests: each lint family must fire on
//! known-bad input and stay quiet when the code is fixed or the finding is
//! suppressed with a reasoned allow marker.

use lovo_analyze::lints::invariants::StatsPair;
use lovo_analyze::lints::locks::LockConfig;
use lovo_analyze::lints::panics::PanicConfig;
use lovo_analyze::{analyze, parse_hierarchy_doc, Config, Finding, Severity, Workspace};
use std::path::PathBuf;

fn fixture(name: &str) -> (PathBuf, String) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let source = std::fs::read_to_string(&path).expect("read fixture");
    (PathBuf::from(name), source)
}

/// A config with every lint family unscoped: only path-independent lints
/// (lock-order, float-sort, safety-comment, allow-reason) can fire.
fn quiet_config() -> Config {
    Config {
        panics: PanicConfig {
            panic_paths: vec![],
            index_paths: vec![],
        },
        locks: LockConfig { hierarchy: vec![] },
        stats: vec![],
    }
}

fn run(names: &[&str], config: &Config) -> Vec<Finding> {
    let ws = Workspace::from_sources(names.iter().map(|n| fixture(n)).collect());
    analyze(&ws, config)
}

fn of_lint<'a>(findings: &'a [Finding], lint: &str) -> Vec<&'a Finding> {
    findings.iter().filter(|f| f.lint == lint).collect()
}

// --- panic / index audit ---

fn panic_config_for(name: &str) -> Config {
    Config {
        panics: PanicConfig {
            panic_paths: vec![name.to_string()],
            index_paths: vec![name.to_string()],
        },
        locks: LockConfig { hierarchy: vec![] },
        stats: vec![],
    }
}

#[test]
fn panic_audit_fires_on_every_denied_construct() {
    let findings = run(&["panics_bad.rs"], &panic_config_for("panics_bad.rs"));
    let panics = of_lint(&findings, "panic");
    let indexes = of_lint(&findings, "index");
    // unwrap, expect, panic! — and the one slice index.
    assert_eq!(panics.len(), 3, "panic findings: {findings:?}");
    assert_eq!(indexes.len(), 1, "index findings: {findings:?}");
    assert!(findings.iter().all(|f| f.severity == Severity::Error));
}

#[test]
fn panic_audit_exempts_test_code() {
    // The #[cfg(test)] module in the fixture unwraps and indexes freely;
    // nothing in it may be reported (all findings sit above line 19).
    let findings = run(&["panics_bad.rs"], &panic_config_for("panics_bad.rs"));
    assert!(
        findings.iter().all(|f| f.line < 19),
        "findings: {findings:?}"
    );
}

#[test]
fn panic_audit_is_scoped_to_configured_paths() {
    let findings = run(
        &["panics_bad.rs"],
        &panic_config_for("some_other_module.rs"),
    );
    assert!(findings.is_empty(), "findings: {findings:?}");
}

#[test]
fn reasoned_allow_markers_suppress_the_panic_audit() {
    let findings = run(
        &["panics_allowed.rs"],
        &panic_config_for("panics_allowed.rs"),
    );
    assert!(findings.is_empty(), "findings: {findings:?}");
}

#[test]
fn allow_marker_without_reason_is_itself_an_error() {
    let source = "pub fn f(v: Option<u32>) -> u32 {\n    v.unwrap() // lint:allow(panic)\n}\n";
    let ws = Workspace::from_sources(vec![(PathBuf::from("demo.rs"), source.to_string())]);
    let findings = analyze(&ws, &panic_config_for("demo.rs"));
    assert_eq!(findings.len(), 1, "findings: {findings:?}");
    assert_eq!(findings[0].lint, "allow-reason");
    assert_eq!(findings[0].severity, Severity::Error);
}

// --- lock-order analysis ---

#[test]
fn opposite_acquisition_orders_are_a_cycle() {
    let findings = run(&["lock_cycle.rs"], &quiet_config());
    let errors: Vec<_> = of_lint(&findings, "lock-order")
        .into_iter()
        .filter(|f| f.severity == Severity::Error)
        .collect();
    assert_eq!(errors.len(), 1, "findings: {findings:?}");
    assert!(errors[0].message.contains("cycle"), "{}", errors[0].message);
    assert!(errors[0].message.contains("Pair.left"));
    assert!(errors[0].message.contains("Pair.right"));
}

#[test]
fn nested_acquisition_through_a_call_is_an_edge() {
    // Undocumented: the inter-procedural edge surfaces as a warning naming
    // the callee it flows through.
    let findings = run(&["lock_interproc.rs"], &quiet_config());
    let warnings = of_lint(&findings, "lock-order");
    assert_eq!(warnings.len(), 1, "findings: {findings:?}");
    assert_eq!(warnings[0].severity, Severity::Warning);
    assert!(warnings[0].message.contains("Store.data -> Store.meta"));
    assert!(warnings[0].message.contains("bump_meta"));
}

#[test]
fn documented_edges_are_clean() {
    let config = Config {
        locks: LockConfig {
            hierarchy: vec![("Store.data".to_string(), "Store.meta".to_string())],
        },
        ..quiet_config()
    };
    let findings = run(&["lock_interproc.rs"], &config);
    assert!(findings.is_empty(), "findings: {findings:?}");
}

#[test]
fn contradicting_the_documented_hierarchy_is_an_error() {
    let config = Config {
        locks: LockConfig {
            hierarchy: vec![("Db.catalog".to_string(), "Db.journal".to_string())],
        },
        ..quiet_config()
    };
    let findings = run(&["lock_contra.rs"], &config);
    assert_eq!(findings.len(), 1, "findings: {findings:?}");
    assert_eq!(findings[0].lint, "lock-order");
    assert_eq!(findings[0].severity, Severity::Error);
    assert!(findings[0].message.contains("contradicts"));
}

#[test]
fn allow_marker_drops_the_lock_edge() {
    let config = Config {
        locks: LockConfig {
            hierarchy: vec![("Db.catalog".to_string(), "Db.journal".to_string())],
        },
        ..quiet_config()
    };
    let findings = run(&["lock_allow.rs"], &config);
    assert!(findings.is_empty(), "findings: {findings:?}");
}

#[test]
fn stale_hierarchy_entries_warn() {
    let config = Config {
        locks: LockConfig {
            hierarchy: vec![("Gone.lock".to_string(), "Db.journal".to_string())],
        },
        ..quiet_config()
    };
    let findings = run(&["lock_contra.rs"], &config);
    assert!(
        findings
            .iter()
            .any(|f| f.severity == Severity::Warning && f.message.contains("Gone.lock")),
        "findings: {findings:?}"
    );
}

// --- invariant lints ---

#[test]
fn float_sort_shapes() {
    let findings = run(&["float_sort.rs"], &quiet_config());
    let sorts = of_lint(&findings, "float-sort");
    assert_eq!(sorts.len(), 2, "findings: {findings:?}");
    // `bad` unwraps: error. `lax` is panic-free but non-total: warning.
    assert_eq!(sorts[0].severity, Severity::Error);
    assert!(sorts[0].message.contains("NaN"));
    assert_eq!(sorts[1].severity, Severity::Warning);
    assert!(sorts[1].message.contains("tie-break"));
    // `good` (total_cmp) and `tied` (unwrap_or + then_with) are clean.
    assert_eq!(findings.len(), 2);
}

#[test]
fn stats_merge_coverage() {
    let config = Config {
        stats: vec![
            StatsPair {
                struct_name: "PoolStats".to_string(),
                merge_fn: "merge".to_string(),
            },
            StatsPair {
                struct_name: "OrphanStats".to_string(),
                merge_fn: "merge".to_string(),
            },
        ],
        ..quiet_config()
    };
    let findings = run(&["stats_bad.rs"], &config);
    let merges = of_lint(&findings, "stats-merge");
    assert_eq!(merges.len(), 2, "findings: {findings:?}");
    assert!(merges.iter().any(|f| f.message.contains("evictions")));
    assert!(merges
        .iter()
        .any(|f| f.message.contains("OrphanStats") && f.message.contains("no `fn merge`")));

    let config = Config {
        stats: vec![StatsPair {
            struct_name: "PoolStats".to_string(),
            merge_fn: "merge".to_string(),
        }],
        ..quiet_config()
    };
    let findings = run(&["stats_good.rs"], &config);
    assert!(findings.is_empty(), "findings: {findings:?}");
}

#[test]
fn unsafe_requires_a_safety_comment() {
    let findings = run(&["safety.rs"], &quiet_config());
    let safety = of_lint(&findings, "safety-comment");
    assert_eq!(safety.len(), 1, "findings: {findings:?}");
    assert_eq!(safety[0].line, 4); // `undocumented` only
}

#[test]
fn target_feature_fn_declaration_is_exempt_but_call_sites_are_not() {
    let findings = run(&["target_feature.rs"], &quiet_config());
    let safety = of_lint(&findings, "safety-comment");
    // The `#[target_feature] unsafe fn` declaration must NOT fire; the
    // undocumented call of it and the undocumented plain block both must.
    let lines: Vec<u32> = safety.iter().map(|f| f.line).collect();
    assert_eq!(lines, vec![17, 21], "findings: {findings:?}");
}

// --- hierarchy doc parsing ---

#[test]
fn hierarchy_doc_round_trip() {
    let markdown = "\
# Concurrency

```lock-order
# comments are skipped
A.x -> B.y
B.y -> C.z
```

```rust
// other fences are ignored, even with arrows: X -> Y
```
";
    assert_eq!(
        parse_hierarchy_doc(markdown),
        vec![
            ("A.x".to_string(), "B.y".to_string()),
            ("B.y".to_string(), "C.z".to_string()),
        ]
    );
}
