//! The same denied constructs as `panics_bad.rs`, each suppressed with a
//! reasoned allow marker — the audit must stay silent.

pub fn first(values: &[u32]) -> u32 {
    // lint:allow(index, caller guarantees a non-empty slice)
    values[0]
}

pub fn must(value: Option<u32>) -> u32 {
    value.unwrap() // lint:allow(panic, invariant: checked Some by admission)
}

pub fn boom() -> u32 {
    // lint:allow(panic, unreachable by construction: all variants matched)
    panic!("boom")
}
