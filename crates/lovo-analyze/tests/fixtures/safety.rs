//! `unsafe` with and without the mandatory `// SAFETY:` comment.

pub fn undocumented(values: &[u32]) -> u32 {
    unsafe { *values.as_ptr() }
}

pub fn documented(values: &[u32]) -> u32 {
    // SAFETY: callers pass a non-empty slice, so the pointer is readable.
    unsafe { *values.as_ptr() }
}
