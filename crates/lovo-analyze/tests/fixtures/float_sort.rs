//! Float comparator patterns: an unwrapping comparator (error), a
//! panic-free but non-total one (warning), and the two accepted shapes.

pub fn bad(xs: &mut Vec<f32>) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn lax(pairs: &mut Vec<(u32, f32)>) {
    pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
}

pub fn good(xs: &mut Vec<f32>) {
    xs.sort_by(|a, b| a.total_cmp(b));
}

pub fn tied(pairs: &mut Vec<(u32, f32)>) {
    pairs.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
}
