//! Stats structs that violate merge coverage: `PoolStats::merge` forgets
//! `evictions`, and `OrphanStats` has no merge function at all.

#[derive(Default)]
pub struct PoolStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

impl PoolStats {
    pub fn merge(&mut self, other: &PoolStats) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

#[derive(Default)]
pub struct OrphanStats {
    pub ticks: u64,
}
