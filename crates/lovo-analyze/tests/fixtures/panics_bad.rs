//! Every construct the panic audit denies, one per function. Test code at
//! the bottom uses the same constructs and must stay exempt.

pub fn first(values: &[u32]) -> u32 {
    values[0]
}

pub fn must(value: Option<u32>) -> u32 {
    value.unwrap()
}

pub fn must_msg(value: Option<u32>) -> u32 {
    value.expect("present")
}

pub fn boom() -> u32 {
    panic!("boom")
}

#[cfg(test)]
mod tests {
    #[test]
    fn asserts_may_unwrap_and_index() {
        let values = vec![1u32];
        assert_eq!(values[0], Some(1u32).unwrap());
    }
}
