//! Acquires `journal` before `catalog`; the test documents the opposite
//! hierarchy, so the analyzer must report a contradiction.

use std::sync::Mutex;

pub struct Db {
    catalog: Mutex<u32>,
    journal: Mutex<u32>,
}

impl Db {
    pub fn commit(&self) -> u32 {
        let journal = self.journal.lock();
        let catalog = self.catalog.lock();
        *journal + *catalog
    }
}
