//! Same shape as `lock_contra.rs`, but the out-of-order acquisition carries
//! an allow marker: the edge must be dropped before graph analysis.

use std::sync::Mutex;

pub struct Db {
    catalog: Mutex<u32>,
    journal: Mutex<u32>,
}

impl Db {
    pub fn commit(&self) -> u32 {
        let journal = self.journal.lock();
        // lint:allow(lock-order, startup path runs strictly single-threaded)
        let catalog = self.catalog.lock();
        *journal + *catalog
    }
}
