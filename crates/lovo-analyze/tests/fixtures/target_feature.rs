//! `#[target_feature]` fn declarations vs. ordinary `unsafe`.
//!
//! The declaration is `unsafe` only by signature (callers must prove the
//! CPU feature); the lint must NOT fire there. The undocumented *call* of
//! it is a real unsafe operation and must still fire, as must the plain
//! undocumented unsafe block.

#[target_feature(enable = "avx2")]
pub unsafe fn accumulate(values: &[u32]) -> u32 {
    values.iter().sum()
}

pub fn undocumented_call(values: &[u32]) -> u32 {
    if !std::arch::is_x86_feature_detected!("avx2") {
        return values.iter().sum();
    }
    unsafe { accumulate(values) }
}

pub fn undocumented_block(values: &[u32]) -> u32 {
    let first = unsafe { *values.as_ptr() };
    first
}

pub fn documented_call(values: &[u32]) -> u32 {
    // SAFETY: the avx2 check above this call path guarantees the feature.
    unsafe { accumulate(values) }
}
