//! A nested acquisition that only exists through the call graph:
//! `write_data` holds `data` while calling `bump_meta`, which takes `meta`.
//! The analyzer must surface the `Store.data -> Store.meta` edge.

use std::sync::Mutex;

pub struct Store {
    data: Mutex<u32>,
    meta: Mutex<u32>,
}

impl Store {
    fn bump_meta(&self) {
        let mut meta = self.meta.lock();
        *meta += 1;
    }

    pub fn write_data(&self) {
        let data = self.data.lock();
        self.bump_meta();
        drop(data);
    }
}
