//! Full merge coverage: every field is folded, so the lint stays silent.

#[derive(Default)]
pub struct PoolStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

impl PoolStats {
    pub fn merge(&mut self, other: &PoolStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
    }
}
