//! Workspace-aware static analysis for the LOVO codebase.
//!
//! `lovo-analyze` is a dependency-free analyzer (its Rust lexer is
//! hand-rolled, see [`lexer`]) with three lint families:
//!
//! - **lock-order** ([`lints::locks`]) — extracts per-function
//!   lock-acquisition sequences, builds an inter-procedural lock-order graph
//!   through the call graph, and reports cycles (potential deadlocks) and
//!   orders contradicting the hierarchy documented in ARCHITECTURE.md.
//! - **panic / index** ([`lints::panics`]) — denies `unwrap`/`expect`/
//!   `panic!`-family macros and unchecked slice indexing in designated
//!   always-on modules (the serve tier, the executor, the index scan
//!   kernels).
//! - **float-sort / stats-merge / safety-comment** ([`lints::invariants`]) —
//!   total-order float comparators, full field coverage in stats `merge`
//!   bodies, and `// SAFETY:` comments on `unsafe`.
//!
//! Intentional violations are suppressed inline with
//! `// lint:allow(<lint>, <reason>)` on the offending line or the line
//! above; the reason is mandatory.
//!
//! Run it as the CI gate with
//! `cargo run -p lovo-analyze --release -- --deny-warnings`, or embed it:
//!
//! ```
//! use lovo_analyze::lints::locks::LockConfig;
//! use lovo_analyze::lints::panics::PanicConfig;
//! use lovo_analyze::{analyze, Config, Workspace};
//! use std::path::PathBuf;
//!
//! let config = Config {
//!     panics: PanicConfig {
//!         panic_paths: vec!["demo.rs".to_string()],
//!         index_paths: vec![],
//!     },
//!     locks: LockConfig { hierarchy: vec![] },
//!     stats: vec![],
//! };
//! let source = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
//! let ws = Workspace::from_sources(vec![(PathBuf::from("demo.rs"), source.to_string())]);
//! let findings = analyze(&ws, &config);
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].lint, "panic");
//! ```

pub mod lexer;
pub mod lints;
pub mod model;

use lints::invariants::StatsPair;
use lints::locks::LockConfig;
use lints::panics::PanicConfig;
use model::ParsedFile;
use std::path::{Path, PathBuf};

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Advisory; fails the build only under `--deny-warnings`.
    Warning,
    /// Always fails the build.
    Error,
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// File the finding is anchored in.
    pub file: PathBuf,
    /// 1-based line (0 for file/workspace-level findings).
    pub line: u32,
    /// Lint name, matching the allow-marker vocabulary.
    pub lint: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// Human-readable description with the suggested fix.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sev = match self.severity {
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        write!(
            f,
            "{sev}[{lint}] {file}:{line}: {msg}",
            lint = self.lint,
            file = self.file.display(),
            line = self.line,
            msg = self.message
        )
    }
}

/// The full analyzer configuration.
pub struct Config {
    /// Panic-audit scope.
    pub panics: PanicConfig,
    /// Documented lock hierarchy.
    pub locks: LockConfig,
    /// Stats structs whose merge coverage is enforced.
    pub stats: Vec<StatsPair>,
}

/// The default configuration for this repository: panic-denied modules are
/// the serve tier, the executor, and the index scan kernels; the covered
/// stats structs are `SearchStats`/`ServeStats`/`IngestStats`/`ShardStats`;
/// the lock hierarchy is whatever `hierarchy` pairs the caller parsed from
/// ARCHITECTURE.md (see [`parse_hierarchy_doc`]).
pub fn default_config(hierarchy: &[(String, String)]) -> Config {
    Config {
        panics: PanicConfig {
            panic_paths: vec![
                "lovo-serve/src".to_string(),
                "lovo-core/src/exec.rs".to_string(),
                "lovo-index/src/flat.rs".to_string(),
                "lovo-index/src/ivf.rs".to_string(),
                "lovo-index/src/hnsw.rs".to_string(),
                "lovo-index/src/pq.rs".to_string(),
                "lovo-index/src/fastscan.rs".to_string(),
                "lovo-index/src/quant.rs".to_string(),
                // The durability layer: recovery code that panics on a
                // corrupt byte defeats its whole purpose — every parse
                // failure must surface as a typed StorageError (quarantine,
                // truncate, or report) instead. The directory prefix covers
                // durability/mmap.rs too: raw-syscall mapping code must turn
                // every failure into a typed error so the caller can fall
                // back to the heap read path.
                "lovo-store/src/durability".to_string(),
                // The borrowed-or-owned row store hands mapped bytes straight
                // into the scan kernels above; a panic here is a panic on the
                // query path.
                "lovo-index/src/store.rs".to_string(),
            ],
            index_paths: vec![
                "lovo-serve/src/service.rs".to_string(),
                "lovo-serve/src/cache.rs".to_string(),
                // The shard router and its gather loop: a slice index that
                // panics here takes down a scatter worker mid-gather.
                "lovo-serve/src/shard".to_string(),
                "lovo-core/src/exec.rs".to_string(),
            ],
        },
        locks: LockConfig {
            hierarchy: hierarchy.to_vec(),
        },
        stats: vec![
            StatsPair {
                struct_name: "SearchStats".to_string(),
                merge_fn: "merge".to_string(),
            },
            StatsPair {
                struct_name: "ServeStats".to_string(),
                merge_fn: "merge".to_string(),
            },
            StatsPair {
                struct_name: "IngestStats".to_string(),
                merge_fn: "accumulate".to_string(),
            },
            StatsPair {
                struct_name: "ShardStats".to_string(),
                merge_fn: "merge".to_string(),
            },
        ],
    }
}

/// A parsed set of source files to analyze together.
pub struct Workspace {
    /// The parsed files.
    pub files: Vec<ParsedFile>,
}

impl Workspace {
    /// Parses in-memory sources — the fixture-test entry point.
    pub fn from_sources(sources: Vec<(PathBuf, String)>) -> Self {
        Workspace {
            files: sources
                .into_iter()
                .map(|(path, src)| ParsedFile::parse(path, &src))
                .collect(),
        }
    }

    /// Loads and parses every `.rs` file under `crates/*/src` and `src/`
    /// relative to `root`. Paths in findings are workspace-relative.
    pub fn load(root: &Path) -> std::io::Result<Self> {
        let mut paths = Vec::new();
        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.is_dir())
                .collect();
            crate_dirs.sort();
            for crate_dir in crate_dirs {
                collect_rs(&crate_dir.join("src"), &mut paths)?;
            }
        }
        collect_rs(&root.join("src"), &mut paths)?;
        let mut files = Vec::new();
        for path in paths {
            let source = std::fs::read_to_string(&path)?;
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            files.push(ParsedFile::parse(rel, &source));
        }
        Ok(Workspace { files })
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            collect_rs(&entry, out)?;
        } else if entry.extension().is_some_and(|ext| ext == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// Extracts the documented lock hierarchy from a markdown document: the
/// fenced code block tagged `lock-order`, one `A -> B` pair per line
/// (`#`-prefixed lines inside the block are comments).
pub fn parse_hierarchy_doc(markdown: &str) -> Vec<(String, String)> {
    let mut pairs = Vec::new();
    let mut in_block = false;
    for line in markdown.lines() {
        let trimmed = line.trim();
        if trimmed.starts_with("```") {
            if in_block {
                in_block = false;
            } else if trimmed.trim_start_matches('`').trim() == "lock-order" {
                in_block = true;
            }
            continue;
        }
        if !in_block || trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if let Some((from, to)) = trimmed.split_once("->") {
            pairs.push((from.trim().to_string(), to.trim().to_string()));
        }
    }
    pairs
}

/// Runs every lint family over the workspace and returns the findings,
/// sorted by file then line.
pub fn analyze(ws: &Workspace, config: &Config) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Allow markers must carry a reason — an empty one is itself a finding.
    for file in &ws.files {
        for marker in &file.allows {
            if marker.reason.is_empty() {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: marker.end_line,
                    lint: "allow-reason",
                    severity: Severity::Error,
                    message: format!(
                        "`lint:allow({})` without a reason — write \
                         `// lint:allow({}, why this is sound)`",
                        marker.name, marker.name
                    ),
                });
            }
        }
    }

    for file in &ws.files {
        lints::panics::check(file, &config.panics, &mut findings);
        lints::invariants::check_file(file, &mut findings);
    }
    lints::invariants::check_stats_merge(&ws.files, &config.stats, &mut findings);
    lints::locks::check(&ws.files, &config.locks, &mut findings);

    findings.sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    findings
}
