//! CLI entry point: walks the workspace, runs every lint, prints findings,
//! and exits nonzero when the build should fail.
//!
//! ```text
//! cargo run -p lovo-analyze --release -- [--deny-warnings] [--root <dir>]
//! ```
//!
//! Exit codes: 0 clean, 1 findings at failing severity, 2 usage or I/O
//! error.

// The analyzer is a terminal tool; stdout IS its interface.
#![allow(clippy::print_stdout)]

use lovo_analyze::{analyze, default_config, parse_hierarchy_doc, Severity, Workspace};
use std::path::PathBuf;

fn main() {
    let mut deny_warnings = false;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-warnings" => deny_warnings = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root requires a directory argument");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "lovo-analyze: workspace static analysis\n\n\
                     USAGE: lovo-analyze [--deny-warnings] [--root <dir>]\n\n\
                     Lints: lock-order, panic, index, float-sort, stats-merge, \
                     safety-comment.\n\
                     Suppress intentional findings with `// lint:allow(<lint>, <reason>)`."
                );
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let hierarchy = match std::fs::read_to_string(root.join("ARCHITECTURE.md")) {
        Ok(doc) => parse_hierarchy_doc(&doc),
        Err(_) => Vec::new(), // no doc, no documented hierarchy to check against
    };
    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(err) => {
            eprintln!("failed to load workspace under {}: {err}", root.display());
            std::process::exit(2);
        }
    };
    let config = default_config(&hierarchy);
    let findings = analyze(&ws, &config);

    let mut errors = 0usize;
    let mut warnings = 0usize;
    for finding in &findings {
        println!("{finding}");
        match finding.severity {
            Severity::Error => errors += 1,
            Severity::Warning => warnings += 1,
        }
    }
    println!(
        "lovo-analyze: {} files, {} errors, {} warnings{}",
        ws.files.len(),
        errors,
        warnings,
        if deny_warnings {
            " (warnings denied)"
        } else {
            ""
        }
    );
    if errors > 0 || (deny_warnings && warnings > 0) {
        std::process::exit(1);
    }
}
