//! Invariant lints: total-order float comparators, stats merge coverage, and
//! `// SAFETY:` comments on `unsafe` blocks.
//!
//! These encode repo-specific correctness rules that `rustc`/clippy cannot
//! know about:
//!
//! - **float-sort** — `sort_by`/`sort_unstable_by` comparators built on
//!   `partial_cmp` panic on NaN when unwrapped, and (since the Rust 1.81
//!   sort rewrite) a non-total comparator can panic *inside the sort
//!   itself*. Comparators must use `total_cmp` or the documented
//!   `unwrap_or(Equal)`-plus-tie-break pattern (see
//!   `lovo_baselines::finalize_hits`).
//! - **stats-merge** — every field of the configured stats structs must be
//!   mentioned in the corresponding `merge`/`accumulate` body, catching the
//!   add-a-counter-forget-to-merge bug class at lint time.
//! - **safety-comment** — any `unsafe` block must carry a `// SAFETY:`
//!   comment on the same or the preceding two lines. `unsafe fn`
//!   declarations carrying `#[target_feature(..)]` are exempt: there the
//!   `unsafe` is the *signature* (calling without the CPU feature is UB, so
//!   pre-2024 editions force the keyword), not an unsafe operation — the
//!   SAFETY obligation sits at the call sites, which the lint still checks.

use crate::model::{matching_close, ParsedFile};
use crate::{Finding, Severity};

/// Lint name for non-total float comparators.
pub const FLOAT_SORT_LINT: &str = "float-sort";
/// Lint name for stats structs whose merge body misses fields.
pub const STATS_MERGE_LINT: &str = "stats-merge";
/// Lint name for `unsafe` without a `// SAFETY:` comment.
pub const SAFETY_LINT: &str = "safety-comment";

/// A `(struct, merge_fn)` pair whose field coverage is enforced.
#[derive(Debug, Clone)]
pub struct StatsPair {
    /// The stats struct name, e.g. `SearchStats`.
    pub struct_name: String,
    /// The merge-like method name, e.g. `merge` or `accumulate`.
    pub merge_fn: String,
}

/// Checks float-sort comparators and SAFETY comments in one file.
pub fn check_file(file: &ParsedFile, findings: &mut Vec<Finding>) {
    check_float_sorts(file, findings);
    check_safety_comments(file, findings);
}

const SORT_METHODS: [&str; 2] = ["sort_by", "sort_unstable_by"];
const SELECT_METHODS: [&str; 2] = ["max_by", "min_by"];

fn check_float_sorts(file: &ParsedFile, findings: &mut Vec<Finding>) {
    let tokens = &file.tokens;
    for i in 0..tokens.len() {
        if file.in_test(i) {
            continue;
        }
        let t = &tokens[i];
        let is_sort = SORT_METHODS.iter().any(|m| t.is_ident(m));
        let is_select = SELECT_METHODS.iter().any(|m| t.is_ident(m));
        if !is_sort && !is_select {
            continue;
        }
        if !(i > 0 && tokens[i - 1].is_punct('.')) {
            continue;
        }
        if !tokens.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        let close = matching_close(tokens, i + 1);
        let body: Vec<&str> = tokens[i + 2..close]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        if !body.contains(&"partial_cmp") {
            continue; // not a float comparator (or a key-projection sort)
        }
        if body.contains(&"total_cmp") {
            continue;
        }
        let line = t.line;
        if body.contains(&"unwrap") || body.contains(&"expect") {
            push_unless_allowed(
                file,
                FLOAT_SORT_LINT,
                line,
                Severity::Error,
                format!(
                    "`{}` comparator unwraps `partial_cmp`: panics on NaN; use `total_cmp` \
                     or `unwrap_or(Ordering::Equal)` with a total tie-break",
                    t.text
                ),
                findings,
            );
            continue;
        }
        // `unwrap_or(..)`-style comparators are panic-free but not total:
        // NaN compares Equal to everything, which breaks transitivity. For
        // sorts that is only acceptable with a deterministic tie-break
        // (`.then`/`.then_with`); selection methods tolerate it.
        if is_sort && !body.contains(&"then") && !body.contains(&"then_with") {
            push_unless_allowed(
                file,
                FLOAT_SORT_LINT,
                line,
                Severity::Warning,
                format!(
                    "`{}` float comparator has no total order: add `total_cmp` or a \
                     `.then_with(..)` tie-break (see finalize_hits for the documented pattern)",
                    t.text
                ),
                findings,
            );
        }
    }
}

fn check_safety_comments(file: &ParsedFile, findings: &mut Vec<Finding>) {
    for (i, t) in file.tokens.iter().enumerate() {
        if !t.is_ident("unsafe") || file.in_test(i) {
            continue;
        }
        if is_target_feature_fn(file, i) {
            continue;
        }
        let line = t.line;
        let documented = file
            .comments
            .iter()
            .any(|c| c.text.contains("SAFETY:") && c.end_line <= line && c.end_line + 2 >= line);
        if !documented {
            push_unless_allowed(
                file,
                SAFETY_LINT,
                line,
                Severity::Error,
                "`unsafe` without a `// SAFETY:` comment on or directly above the block"
                    .to_string(),
                findings,
            );
        }
    }
}

/// True when the `unsafe` at token `i` opens an `unsafe fn` declaration
/// whose attributes include `#[target_feature(..)]`. Such fns are `unsafe`
/// by signature, not by operation: the declaration performs nothing unsafe
/// (its *callers* must prove the CPU feature is present, and those call
/// sites stay subject to the lint). The backward scan is bounded: the
/// attribute sits directly above the declaration, separated from the
/// `unsafe` keyword only by visibility tokens and other attributes.
fn is_target_feature_fn(file: &ParsedFile, i: usize) -> bool {
    let tokens = &file.tokens;
    if !tokens.get(i + 1).is_some_and(|next| next.is_ident("fn")) {
        return false;
    }
    let start = i.saturating_sub(24);
    (start..i).any(|j| {
        tokens[j].is_ident("target_feature")
            && j > 0
            && tokens[j - 1].is_punct('[')
            && tokens.get(j + 1).is_some_and(|next| next.is_punct('('))
    })
}

/// Checks stats merge coverage across the whole workspace (struct and merge
/// fn may live in different files, though in practice they share one).
pub fn check_stats_merge(files: &[ParsedFile], pairs: &[StatsPair], findings: &mut Vec<Finding>) {
    for pair in pairs {
        let Some((file, def)) = files.iter().find_map(|f| {
            f.structs
                .iter()
                .find(|s| s.name == pair.struct_name)
                .map(|s| (f, s))
        }) else {
            findings.push(Finding {
                file: std::path::PathBuf::from("<workspace>"),
                line: 0,
                lint: STATS_MERGE_LINT,
                severity: Severity::Error,
                message: format!(
                    "configured stats struct `{}` not found in the workspace",
                    pair.struct_name
                ),
            });
            continue;
        };
        let merge = files.iter().find_map(|f| {
            f.fns
                .iter()
                .find(|fun| {
                    fun.name == pair.merge_fn
                        && fun.impl_type.as_deref() == Some(pair.struct_name.as_str())
                        && fun.body.is_some()
                })
                .map(|fun| (f, fun))
        });
        let Some((merge_file, merge_fn)) = merge else {
            findings.push(Finding {
                file: file.path.clone(),
                line: def.line,
                lint: STATS_MERGE_LINT,
                severity: Severity::Error,
                message: format!(
                    "`{}` has no `fn {}` — every stats struct must define one so counters \
                     survive aggregation",
                    pair.struct_name, pair.merge_fn
                ),
            });
            continue;
        };
        let (body_start, body_end) = merge_fn.body.unwrap_or((0, 0));
        let body_idents: std::collections::HashSet<&str> = merge_file.tokens[body_start..=body_end]
            .iter()
            .filter(|t| t.kind == crate::lexer::TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        for field in &def.fields {
            if !body_idents.contains(field.name.as_str()) {
                push_unless_allowed(
                    file,
                    STATS_MERGE_LINT,
                    field.line,
                    Severity::Error,
                    format!(
                        "`{}.{}` is not mentioned in `{}::{}` — the counter would be \
                         silently dropped on aggregation",
                        pair.struct_name, field.name, pair.struct_name, pair.merge_fn
                    ),
                    findings,
                );
            }
        }
    }
}

fn push_unless_allowed(
    file: &ParsedFile,
    lint: &'static str,
    line: u32,
    severity: Severity,
    message: String,
    findings: &mut Vec<Finding>,
) {
    if file.allow_for(lint, line).is_some() {
        return;
    }
    findings.push(Finding {
        file: file.path.clone(),
        line,
        lint,
        severity,
        message,
    });
}
