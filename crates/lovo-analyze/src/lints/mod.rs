//! The lint families: each submodule implements one composable pass over the
//! parsed workspace and returns [`crate::Finding`]s.

pub mod invariants;
pub mod locks;
pub mod panics;

/// True when `path` (workspace-relative, `/`-separated) falls under any of
/// the configured path prefixes/suffix patterns. A pattern matches when the
/// normalized path contains it as a substring — patterns are written like
/// `crates/lovo-serve/src/service.rs` or `crates/lovo-index/src`.
pub(crate) fn path_matches(path: &std::path::Path, patterns: &[String]) -> bool {
    let normalized = path.to_string_lossy().replace('\\', "/");
    patterns.iter().any(|p| normalized.contains(p.as_str()))
}
