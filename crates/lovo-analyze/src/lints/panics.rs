//! Panic-freedom audit for designated always-on modules.
//!
//! The serve tier and the executor hot path run inside worker threads whose
//! panic takes down a whole service worker ([`worker_panics` is counted, but
//! every count is a lost request]); the index scan kernels run under rayon
//! where a panic poisons the pool. In those modules `unwrap`, `expect`,
//! `panic!`-family macros and direct slice indexing are denied; intentional
//! uses carry `// lint:allow(panic, reason)` / `// lint:allow(index, reason)`
//! with a written justification.

use crate::lints::path_matches;
use crate::model::ParsedFile;
use crate::{Finding, Severity};

/// Lint name for panicking calls/macros, as used in allow markers.
pub const PANIC_LINT: &str = "panic";
/// Lint name for unchecked slice indexing, as used in allow markers.
pub const INDEX_LINT: &str = "index";

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Configuration for the panic audit: which files are panic-denied and which
/// additionally deny unchecked indexing.
pub struct PanicConfig {
    /// Path patterns for modules where `unwrap`/`expect`/`panic!` are denied.
    pub panic_paths: Vec<String>,
    /// Path patterns (a subset of `panic_paths` in practice) where direct
    /// slice indexing `x[i]` is denied too.
    pub index_paths: Vec<String>,
}

/// Runs the panic audit over one file.
pub fn check(file: &ParsedFile, config: &PanicConfig, findings: &mut Vec<Finding>) {
    let deny_panics = path_matches(&file.path, &config.panic_paths);
    let deny_index = path_matches(&file.path, &config.index_paths);
    if !deny_panics && !deny_index {
        return;
    }
    let tokens = &file.tokens;
    for i in 0..tokens.len() {
        if file.in_test(i) {
            continue;
        }
        let t = &tokens[i];

        if deny_panics {
            // `.unwrap()` / `.expect(` method calls.
            let is_method = i > 0
                && tokens[i - 1].is_punct('.')
                && tokens.get(i + 1).is_some_and(|n| n.is_punct('('));
            if is_method && (t.is_ident("unwrap") || t.is_ident("expect")) {
                push_unless_allowed(
                    file,
                    PANIC_LINT,
                    t.line,
                    format!(
                        "`.{}()` in a panic-denied module; return a typed error or add \
                         `// lint:allow(panic, reason)`",
                        t.text
                    ),
                    findings,
                );
                continue;
            }
            // `panic!` / `unreachable!` / `todo!` / `unimplemented!` macros.
            let is_macro = tokens.get(i + 1).is_some_and(|n| n.is_punct('!'))
                && tokens
                    .get(i + 2)
                    .is_some_and(|n| n.is_punct('(') || n.is_punct('[') || n.is_punct('{'));
            if is_macro && PANIC_MACROS.iter().any(|m| t.is_ident(m)) {
                push_unless_allowed(
                    file,
                    PANIC_LINT,
                    t.line,
                    format!(
                        "`{}!` in a panic-denied module; return a typed error or add \
                         `// lint:allow(panic, reason)`",
                        t.text
                    ),
                    findings,
                );
                continue;
            }
        }

        if deny_index && t.is_punct('[') && is_index_expression(file, i) {
            let close = crate::model::matching_close(tokens, i);
            if close > i + 1 && !contains_range(tokens, i + 1, close) {
                push_unless_allowed(
                    file,
                    INDEX_LINT,
                    t.line,
                    "unchecked slice index in a panic-denied module; use `.get()`/`.get_mut()` \
                     or add `// lint:allow(index, reason)`"
                        .to_string(),
                    findings,
                );
            }
        }
    }
}

/// True when the `[` at `idx` indexes a value (as opposed to opening an
/// array literal, an attribute, or a type). Indexing follows an identifier,
/// a closing bracket, or a string/number literal.
fn is_index_expression(file: &ParsedFile, idx: usize) -> bool {
    let Some(prev) = idx.checked_sub(1).map(|p| &file.tokens[p]) else {
        return false;
    };
    // `vec![…]` and `#[…]` are macro/attribute brackets.
    if prev.is_punct('!') || prev.is_punct('#') {
        return false;
    }
    matches!(
        prev.kind,
        crate::lexer::TokenKind::Ident | crate::lexer::TokenKind::Number
    ) && !is_keyword(&prev.text)
        || prev.is_punct(')')
        || prev.is_punct(']')
}

/// Keywords that may precede `[` without it being an index (e.g. `return [..]`).
fn is_keyword(text: &str) -> bool {
    matches!(
        text,
        "let" | "return" | "break" | "in" | "if" | "else" | "match" | "as" | "mut" | "ref" | "move"
    )
}

/// True when the bracket contents `tokens[open+1..close]` contain a `..`
/// range at depth zero — range slicing (`&v[a..b]`) has its own panic story
/// and is out of scope for this lint.
fn contains_range(tokens: &[crate::lexer::Token], start: usize, close: usize) -> bool {
    let mut depth = 0usize;
    let mut i = start;
    while i < close {
        let t = &tokens[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth = depth.saturating_sub(1);
        } else if depth == 0
            && t.is_punct('.')
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('.'))
        {
            return true;
        }
        i += 1;
    }
    false
}

fn push_unless_allowed(
    file: &ParsedFile,
    lint: &'static str,
    line: u32,
    message: String,
    findings: &mut Vec<Finding>,
) {
    if file.allow_for(lint, line).is_some() {
        return;
    }
    findings.push(Finding {
        file: file.path.clone(),
        line,
        lint,
        severity: Severity::Error,
        message,
    });
}
