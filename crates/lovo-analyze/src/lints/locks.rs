//! Inter-procedural lock-order analysis.
//!
//! The model is intentionally conservative and name-driven:
//!
//! 1. **Lock inventory.** Every struct field whose type mentions `Mutex<…>`
//!    or `RwLock<…>` is a lock, identified as `Struct.field`
//!    (`Shared.state`, `VectorDatabase.collections`, …).
//! 2. **Acquisition sites.** `.lock()`, `.read()`, `.write()` with zero
//!    arguments acquire the receiver's lock when the receiver resolves to a
//!    known lock field (`self.state.lock()`, `lovo.keyframes.read()`) or to
//!    an accessor fn returning `&Mutex<…>`/`&RwLock<…>`
//!    (`self.shard(fp).lock()`). Unresolvable receivers (locals, destructured
//!    tuples) are skipped — missed acquisitions make the analysis
//!    under-approximate, never wrong about what it does report.
//! 3. **Hold tracking.** A `let`-bound guard is held to the end of its
//!    enclosing block; a temporary guard to the end of its statement;
//!    `drop(guard)` releases early. Guard-returning helpers (any fn whose
//!    return type mentions `Guard`) export their acquisitions to the caller.
//! 4. **Call graph.** Method calls resolve through `self`, field types and
//!    `Type::method` paths; unresolvable receivers contribute no edges. A
//!    fixpoint computes each fn's may-acquire set, and every call made while
//!    holding a lock adds `held → may-acquire(callee)` edges.
//!
//! Cycles in the resulting lock-order graph are potential deadlocks
//! (errors); acquisition orders contradicting the documented hierarchy in
//! ARCHITECTURE.md are errors; observed orders the hierarchy doesn't cover
//! are warnings nudging the doc to stay complete.

use crate::lexer::TokenKind;
use crate::model::ParsedFile;
use crate::{Finding, Severity};
use std::collections::{HashMap, HashSet};

/// Lint name for lock-order findings, as used in allow markers.
pub const LOCK_LINT: &str = "lock-order";

/// Configuration: the documented lock hierarchy (pairs of lock ids, each
/// meaning "left may be held while acquiring right").
pub struct LockConfig {
    /// Documented `before -> after` pairs, e.g.
    /// `("VectorDatabase.collections", "VectorDatabase.metadata")`.
    pub hierarchy: Vec<(String, String)>,
}

#[derive(Debug, Clone)]
enum Event {
    /// A `}` was crossed; the brace depth is now `depth_after`.
    Close { depth_after: usize },
    /// A `;` ended a statement at `depth`.
    Semi { depth: usize },
    /// `drop(var)` releases the named guard early.
    DropVar { name: String },
    /// A lock acquisition.
    Acquire {
        lock: String,
        depth: usize,
        block_bound: bool,
        var: Option<String>,
        line: u32,
    },
    /// A call to one or more candidate workspace fns.
    Call {
        cands: Vec<usize>,
        depth: usize,
        block_bound: bool,
        var: Option<String>,
        line: u32,
    },
}

struct FnRef {
    file: usize,
    name: String,
    impl_type: Option<String>,
    is_guard: bool,
    is_test: bool,
}

/// Cross-file model shared by the scan.
struct Ctx {
    /// `(struct, field)` → lock id, for impl-aware receiver resolution.
    struct_field_lock: HashMap<(String, String), String>,
    /// field name → lock id when the name is unambiguous workspace-wide.
    unique_field_lock: HashMap<String, String>,
    /// `(struct, field)` → base type, for typed method resolution.
    struct_field_type: HashMap<(String, String), String>,
    /// field name → base type when unambiguous workspace-wide.
    unique_field_type: HashMap<String, String>,
    /// accessor fn name → lock id (fns returning `&Mutex<…>`/`&RwLock<…>`).
    accessor_lock: HashMap<String, String>,
    /// fn name → global fn ids.
    by_name: HashMap<String, Vec<usize>>,
    fns: Vec<FnRef>,
}

const TYPE_WRAPPERS: [&str; 16] = [
    "Arc", "Rc", "Box", "Mutex", "RwLock", "RefCell", "Cell", "Option", "Vec", "VecDeque",
    "HashMap", "HashSet", "BTreeMap", "BTreeSet", "Result", "dyn",
];

fn base_type(type_text: &str) -> Option<String> {
    type_text
        .split_whitespace()
        .find(|tok| {
            tok.chars()
                .next()
                .is_some_and(|c| c.is_alphabetic() || c == '_')
                && !TYPE_WRAPPERS.contains(tok)
                && *tok != "mut"
        })
        .map(str::to_string)
}

fn is_lock_type(type_text: &str) -> bool {
    type_text.contains("Mutex <") || type_text.contains("RwLock <")
}

fn build_ctx(files: &[ParsedFile]) -> Ctx {
    let mut struct_field_lock = HashMap::new();
    let mut field_lock_candidates: HashMap<String, HashSet<String>> = HashMap::new();
    let mut struct_field_type = HashMap::new();
    let mut field_type_candidates: HashMap<String, HashSet<String>> = HashMap::new();
    for file in files {
        for s in &file.structs {
            for f in &s.fields {
                if is_lock_type(&f.type_text) {
                    let lock = format!("{}.{}", s.name, f.name);
                    struct_field_lock.insert((s.name.clone(), f.name.clone()), lock.clone());
                    field_lock_candidates
                        .entry(f.name.clone())
                        .or_default()
                        .insert(lock);
                }
                if let Some(ty) = base_type(&f.type_text) {
                    struct_field_type.insert((s.name.clone(), f.name.clone()), ty.clone());
                    field_type_candidates
                        .entry(f.name.clone())
                        .or_default()
                        .insert(ty);
                }
            }
        }
    }
    let unique = |cands: HashMap<String, HashSet<String>>| -> HashMap<String, String> {
        cands
            .into_iter()
            .filter_map(|(field, set)| {
                (set.len() == 1).then(|| (field, set.into_iter().next().unwrap_or_default()))
            })
            .collect()
    };
    let unique_field_lock = unique(field_lock_candidates);
    let unique_field_type = unique(field_type_candidates);

    let mut fns = Vec::new();
    let mut by_name: HashMap<String, Vec<usize>> = HashMap::new();
    let mut accessor_cands: HashMap<String, HashSet<String>> = HashMap::new();
    for (file_idx, file) in files.iter().enumerate() {
        for f in &file.fns {
            let id = fns.len();
            by_name.entry(f.name.clone()).or_default().push(id);
            // Accessor: returns a reference to a lock; the lock is whichever
            // `self.<lock field>` its body mentions.
            if is_lock_type(&f.ret_text) {
                if let (Some((open, close)), Some(impl_type)) = (f.body, f.impl_type.as_ref()) {
                    let toks = &file.tokens;
                    for j in open..=close {
                        if toks[j].kind == TokenKind::Ident
                            && j >= 2
                            && toks[j - 1].is_punct('.')
                            && toks[j - 2].is_ident("self")
                        {
                            if let Some(lock) =
                                struct_field_lock.get(&(impl_type.clone(), toks[j].text.clone()))
                            {
                                accessor_cands
                                    .entry(f.name.clone())
                                    .or_default()
                                    .insert(lock.clone());
                            }
                        }
                    }
                }
            }
            fns.push(FnRef {
                file: file_idx,
                name: f.name.clone(),
                impl_type: f.impl_type.clone(),
                is_guard: f.ret_text.contains("Guard"),
                is_test: f.is_test,
            });
        }
    }
    let accessor_lock = unique(accessor_cands);

    Ctx {
        struct_field_lock,
        unique_field_lock,
        struct_field_type,
        unique_field_type,
        accessor_lock,
        by_name,
        fns,
    }
}

/// Backward scan from the `)` at `close_idx` to its matching `(`.
fn matching_open(file: &ParsedFile, close_idx: usize) -> Option<usize> {
    let mut depth = 0isize;
    for j in (0..=close_idx).rev() {
        let t = &file.tokens[j];
        if t.is_punct(')') {
            depth += 1;
        } else if t.is_punct('(') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Resolves the receiver of a zero-arg `.lock()`/`.read()`/`.write()` at
/// token `j` to a lock id, or `None` when the receiver is not a known lock.
fn resolve_lock_receiver(
    file: &ParsedFile,
    j: usize,
    current_impl: Option<&str>,
    ctx: &Ctx,
) -> Option<String> {
    let toks = &file.tokens;
    let k = j.checked_sub(2)?;
    let recv = &toks[k];
    if recv.is_punct(')') {
        // Accessor form: `self.shard(fp).lock()`.
        let open = matching_open(file, k)?;
        let name = toks.get(open.checked_sub(1)?)?;
        if name.kind == TokenKind::Ident {
            return ctx.accessor_lock.get(&name.text).cloned();
        }
        return None;
    }
    if recv.kind != TokenKind::Ident {
        return None;
    }
    // Field access requires a dot before the field name; a bare identifier
    // is a local (often a destructured guard) we cannot type.
    if !(k >= 1 && toks[k - 1].is_punct('.')) {
        return None;
    }
    let field = &recv.text;
    if k >= 2 && toks[k - 2].is_ident("self") && !(k >= 3 && toks[k - 3].is_punct('.')) {
        if let Some(ty) = current_impl {
            if let Some(lock) = ctx.struct_field_lock.get(&(ty.to_string(), field.clone())) {
                return Some(lock.clone());
            }
        }
    }
    ctx.unique_field_lock.get(field).cloned()
}

/// Resolves a call at token `j` (an ident followed by `(`) to candidate
/// workspace fn ids. Empty when the receiver can't be typed.
fn resolve_call(file: &ParsedFile, j: usize, current_impl: Option<&str>, ctx: &Ctx) -> Vec<usize> {
    let toks = &file.tokens;
    let name = &toks[j].text;
    let ids = match ctx.by_name.get(name) {
        Some(ids) => ids,
        None => return Vec::new(),
    };
    let filter_impl = |ty: Option<&str>| -> Vec<usize> {
        ids.iter()
            .copied()
            .filter(|&id| {
                let f = &ctx.fns[id];
                !f.is_test && f.impl_type.as_deref() == ty
            })
            .collect()
    };

    let prev = match j.checked_sub(1) {
        Some(p) => &toks[p],
        None => return filter_impl(None),
    };
    if prev.is_punct('.') {
        let k = match j.checked_sub(2) {
            Some(k) => k,
            None => return Vec::new(),
        };
        let recv = &toks[k];
        if recv.kind != TokenKind::Ident {
            return Vec::new();
        }
        if recv.text == "self" && !(k >= 1 && toks[k - 1].is_punct('.')) {
            return current_impl.map_or_else(Vec::new, |ty| filter_impl(Some(ty)));
        }
        if k >= 1 && toks[k - 1].is_punct('.') {
            // Receiver is a field: prefer the enclosing impl's field table,
            // fall back to the workspace-unique field name.
            let field = &recv.text;
            let ty = current_impl
                .filter(|_| k >= 2 && toks[k - 2].is_ident("self"))
                .and_then(|t| ctx.struct_field_type.get(&(t.to_string(), field.clone())))
                .or_else(|| ctx.unique_field_type.get(field));
            return ty.map_or_else(Vec::new, |t| filter_impl(Some(t)));
        }
        return Vec::new(); // local-variable receiver: untyped
    }
    if prev.is_punct(':') && j >= 3 && toks[j - 2].is_punct(':') {
        let ty_tok = &toks[j - 3];
        if ty_tok.kind == TokenKind::Ident {
            let ty = if ty_tok.text == "Self" {
                current_impl.map(str::to_string)
            } else {
                Some(ty_tok.text.clone())
            };
            return ty.map_or_else(Vec::new, |t| filter_impl(Some(&t)));
        }
        return Vec::new();
    }
    filter_impl(None)
}

/// Walks one fn body into an event list.
fn scan_fn(file: &ParsedFile, fn_local_idx: usize, ctx: &Ctx) -> Vec<Event> {
    let fndef = &file.fns[fn_local_idx];
    let Some((open, close)) = fndef.body else {
        return Vec::new();
    };
    let current_impl = fndef.impl_type.as_deref();
    let toks = &file.tokens;
    let mut events = Vec::new();
    let mut depth = 0usize;
    let mut let_pending = false;
    let mut let_var: Option<String> = None;
    let mut j = open;
    while j <= close {
        let t = &toks[j];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            events.push(Event::Close { depth_after: depth });
            let_pending = false;
            let_var = None;
        } else if t.is_punct(';') {
            events.push(Event::Semi { depth });
            let_pending = false;
            let_var = None;
        } else if t.is_ident("let") {
            let_pending = true;
            let mut v = j + 1;
            if toks.get(v).is_some_and(|x| x.is_ident("mut")) {
                v += 1;
            }
            let_var = toks
                .get(v)
                .filter(|x| x.kind == TokenKind::Ident)
                .map(|x| x.text.clone());
        } else if t.kind == TokenKind::Ident && toks.get(j + 1).is_some_and(|n| n.is_punct('(')) {
            // `drop(guard)` releases a named guard early.
            if t.is_ident("drop")
                && toks.get(j + 2).is_some_and(|x| x.kind == TokenKind::Ident)
                && toks.get(j + 3).is_some_and(|x| x.is_punct(')'))
                && !(j >= 1 && toks[j - 1].is_punct('.'))
            {
                events.push(Event::DropVar {
                    name: toks[j + 2].text.clone(),
                });
                j += 4;
                continue;
            }
            let is_acquire_name = t.is_ident("lock") || t.is_ident("read") || t.is_ident("write");
            if is_acquire_name
                && j >= 1
                && toks[j - 1].is_punct('.')
                && toks.get(j + 2).is_some_and(|n| n.is_punct(')'))
            {
                if let Some(lock) = resolve_lock_receiver(file, j, current_impl, ctx) {
                    events.push(Event::Acquire {
                        lock,
                        depth,
                        block_bound: let_pending,
                        var: let_var.clone(),
                        line: t.line,
                    });
                    j += 3;
                    continue;
                }
            }
            let cands = resolve_call(file, j, current_impl, ctx);
            if !cands.is_empty() {
                events.push(Event::Call {
                    cands,
                    depth,
                    block_bound: let_pending,
                    var: let_var.clone(),
                    line: t.line,
                });
            }
        }
        j += 1;
    }
    events
}

/// One observed lock-order edge with its provenance.
#[derive(Debug, Clone)]
struct Edge {
    from: String,
    to: String,
    file: std::path::PathBuf,
    line: u32,
    via: Option<String>,
}

/// Runs the lock-order analysis over the whole workspace.
pub fn check(files: &[ParsedFile], config: &LockConfig, findings: &mut Vec<Finding>) {
    let ctx = build_ctx(files);
    if ctx.struct_field_lock.is_empty() {
        return;
    }

    // Events per global fn id, in ctx.fns order.
    let mut events: Vec<Vec<Event>> = Vec::with_capacity(ctx.fns.len());
    {
        let mut id = 0usize;
        for (file_idx, file) in files.iter().enumerate() {
            for local in 0..file.fns.len() {
                debug_assert_eq!(ctx.fns[id].file, file_idx);
                if ctx.fns[id].is_test {
                    events.push(Vec::new());
                } else {
                    events.push(scan_fn(file, local, &ctx));
                }
                id += 1;
            }
        }
    }

    // May-acquire fixpoint.
    let mut may: Vec<HashSet<String>> = vec![HashSet::new(); ctx.fns.len()];
    for (id, evs) in events.iter().enumerate() {
        for e in evs {
            if let Event::Acquire { lock, .. } = e {
                may[id].insert(lock.clone());
            }
        }
    }
    loop {
        let mut changed = false;
        for id in 0..ctx.fns.len() {
            let mut add: Vec<String> = Vec::new();
            for e in &events[id] {
                if let Event::Call { cands, .. } = e {
                    for &c in cands {
                        for lock in &may[c] {
                            if !may[id].contains(lock) {
                                add.push(lock.clone());
                            }
                        }
                    }
                }
            }
            if !add.is_empty() {
                changed = true;
                may[id].extend(add);
            }
        }
        if !changed {
            break;
        }
    }

    // Replay each fn with hold-tracking to produce edges.
    struct Held {
        lock: String,
        depth: usize,
        block_bound: bool,
        var: Option<String>,
    }
    let mut edges: Vec<Edge> = Vec::new();
    for (id, evs) in events.iter().enumerate() {
        let file = &files[ctx.fns[id].file];
        let mut held: Vec<Held> = Vec::new();
        for e in evs {
            match e {
                Event::Close { depth_after } => held.retain(|h| h.depth <= *depth_after),
                Event::Semi { depth } => held.retain(|h| h.block_bound || h.depth != *depth),
                Event::DropVar { name } => held.retain(|h| h.var.as_deref() != Some(name.as_str())),
                Event::Acquire {
                    lock,
                    depth,
                    block_bound,
                    var,
                    line,
                } => {
                    for h in &held {
                        edges.push(Edge {
                            from: h.lock.clone(),
                            to: lock.clone(),
                            file: file.path.clone(),
                            line: *line,
                            via: None,
                        });
                    }
                    held.push(Held {
                        lock: lock.clone(),
                        depth: *depth,
                        block_bound: *block_bound,
                        var: var.clone(),
                    });
                }
                Event::Call {
                    cands,
                    depth,
                    block_bound,
                    var,
                    line,
                } => {
                    let mut acquired: HashSet<&String> = HashSet::new();
                    for &c in cands {
                        acquired.extend(&may[c]);
                    }
                    if acquired.is_empty() {
                        continue;
                    }
                    let callee = ctx.fns[cands[0]].name.clone();
                    for h in &held {
                        for lock in &acquired {
                            edges.push(Edge {
                                from: h.lock.clone(),
                                to: (*lock).clone(),
                                file: file.path.clone(),
                                line: *line,
                                via: Some(callee.clone()),
                            });
                        }
                    }
                    if cands.iter().any(|&c| ctx.fns[c].is_guard) {
                        for lock in &acquired {
                            held.push(Held {
                                lock: (*lock).clone(),
                                depth: *depth,
                                block_bound: *block_bound,
                                var: var.clone(),
                            });
                        }
                    }
                }
            }
        }
    }

    // Allow markers remove edges at their site before graph analysis.
    let path_to_file: HashMap<&std::path::Path, &ParsedFile> =
        files.iter().map(|f| (f.path.as_path(), f)).collect();
    edges.retain(|e| {
        path_to_file
            .get(e.file.as_path())
            .and_then(|f| f.allow_for(LOCK_LINT, e.line))
            .is_none()
    });

    // Dedupe by (from, to), keeping the first site for reporting.
    let mut seen: HashMap<(String, String), Edge> = HashMap::new();
    for e in edges {
        seen.entry((e.from.clone(), e.to.clone())).or_insert(e);
    }
    let edges: Vec<&Edge> = {
        let mut v: Vec<&Edge> = seen.values().collect();
        v.sort_by(|a, b| (&a.from, &a.to).cmp(&(&b.from, &b.to)));
        v
    };

    let inventory: HashSet<&str> = ctx.struct_field_lock.values().map(String::as_str).collect();
    report_graph(&edges, &inventory, config, findings);
}

fn describe(e: &Edge) -> String {
    match &e.via {
        Some(callee) => format!(
            "{} -> {} ({}:{} via call to `{}`)",
            e.from,
            e.to,
            e.file.display(),
            e.line,
            callee
        ),
        None => format!("{} -> {} ({}:{})", e.from, e.to, e.file.display(), e.line),
    }
}

fn report_graph(
    edges: &[&Edge],
    inventory: &HashSet<&str>,
    config: &LockConfig,
    findings: &mut Vec<Finding>,
) {
    // Self-loops first: acquiring a lock already held deadlocks outright
    // with std's non-reentrant primitives.
    for e in edges {
        if e.from == e.to {
            findings.push(Finding {
                file: e.file.clone(),
                line: e.line,
                lint: LOCK_LINT,
                severity: Severity::Error,
                message: format!(
                    "lock `{}` acquired while already held — std Mutex/RwLock are not \
                     reentrant, this deadlocks ({})",
                    e.from,
                    describe(e)
                ),
            });
        }
    }

    // Cycle detection over the (from -> to) graph with integer node ids;
    // self-loops are excluded (reported above).
    let mut node_ids: HashMap<&str, usize> = HashMap::new();
    let mut names: Vec<&str> = Vec::new();
    for e in edges {
        for name in [e.from.as_str(), e.to.as_str()] {
            if !node_ids.contains_key(name) {
                node_ids.insert(name, names.len());
                names.push(name);
            }
        }
    }
    let mut adj: Vec<Vec<&Edge>> = vec![Vec::new(); names.len()];
    for e in edges {
        if e.from != e.to {
            adj[node_ids[e.from.as_str()]].push(e);
        }
    }
    let mut reported: HashSet<String> = HashSet::new();
    for start in 0..names.len() {
        // Iterative DFS carrying the edge path; cycles are reported once per
        // node set. Graphs here are tiny (a handful of locks).
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        let mut path: Vec<&Edge> = Vec::new();
        let mut on_path: Vec<usize> = vec![start];
        while let Some(&mut (node, ref mut next_idx)) = stack.last_mut() {
            if *next_idx >= adj[node].len() {
                stack.pop();
                path.pop();
                on_path.pop();
                continue;
            }
            let edge = adj[node][*next_idx];
            *next_idx += 1;
            let to = node_ids[edge.to.as_str()];
            if let Some(pos) = on_path.iter().position(|&n| n == to) {
                let cycle: Vec<&Edge> = path[pos..].iter().copied().chain([edge]).collect();
                let mut members: Vec<&str> = cycle.iter().map(|e| e.from.as_str()).collect();
                members.sort_unstable();
                if reported.insert(members.join("|")) {
                    let route = cycle
                        .iter()
                        .map(|e| describe(e))
                        .collect::<Vec<_>>()
                        .join("; ");
                    findings.push(Finding {
                        file: cycle[0].file.clone(),
                        line: cycle[0].line,
                        lint: LOCK_LINT,
                        severity: Severity::Error,
                        message: format!("potential deadlock: lock-order cycle [{route}]"),
                    });
                }
                continue;
            }
            if on_path.len() < 32 {
                stack.push((to, 0));
                path.push(edge);
                on_path.push(to);
            }
        }
    }

    // Documented-hierarchy closure.
    let mut doc_reach: HashMap<&str, HashSet<&str>> = HashMap::new();
    for (a, b) in &config.hierarchy {
        doc_reach.entry(a.as_str()).or_default().insert(b.as_str());
    }
    loop {
        let mut additions: Vec<(&str, &str)> = Vec::new();
        for (&a, outs) in &doc_reach {
            for &b in outs {
                if let Some(nexts) = doc_reach.get(b) {
                    for &c in nexts {
                        if !outs.contains(c) {
                            additions.push((a, c));
                        }
                    }
                }
            }
        }
        if additions.is_empty() {
            break;
        }
        for (a, c) in additions {
            doc_reach.entry(a).or_default().insert(c);
        }
    }
    let documented = |a: &str, b: &str| doc_reach.get(a).is_some_and(|s| s.contains(b));

    for e in edges {
        if e.from == e.to {
            continue;
        }
        if documented(&e.to, &e.from) {
            findings.push(Finding {
                file: e.file.clone(),
                line: e.line,
                lint: LOCK_LINT,
                severity: Severity::Error,
                message: format!(
                    "lock order contradicts the documented hierarchy: observed {} but \
                     ARCHITECTURE.md orders `{}` before `{}`",
                    describe(e),
                    e.to,
                    e.from
                ),
            });
        } else if !documented(&e.from, &e.to) {
            findings.push(Finding {
                file: e.file.clone(),
                line: e.line,
                lint: LOCK_LINT,
                severity: Severity::Warning,
                message: format!(
                    "lock-order edge not in the documented hierarchy: {} — add \
                     `{} -> {}` to ARCHITECTURE.md's lock-order block or restructure",
                    describe(e),
                    e.from,
                    e.to
                ),
            });
        }
    }

    // Stale hierarchy entries: the documented map must only name locks that
    // still exist in the struct inventory.
    for (a, b) in &config.hierarchy {
        for name in [a, b] {
            if !inventory.contains(name.as_str()) {
                findings.push(Finding {
                    file: std::path::PathBuf::from("ARCHITECTURE.md"),
                    line: 0,
                    lint: LOCK_LINT,
                    severity: Severity::Warning,
                    message: format!(
                        "documented lock `{name}` not found in any struct definition — \
                         the lock-order block is stale"
                    ),
                });
            }
        }
    }
}
