//! A coarse structural model of one Rust source file, built from the token
//! stream: struct definitions with field types, `impl` blocks, functions with
//! body ranges, `#[cfg(test)]` regions, and `lint:allow` markers.
//!
//! This is *not* a parser for Rust — it recognizes exactly the shapes the
//! lints need and skips everything else, erring on the side of "don't crash,
//! don't hallucinate structure".

use crate::lexer::{lex, Comment, Token, TokenKind};
use std::path::PathBuf;

/// One named field of a struct, with its type rendered as space-joined
/// tokens (`Arc < Mutex < bool > >`).
#[derive(Debug, Clone)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// Space-joined type tokens, e.g. `RwLock < HashMap < String , V > >`.
    pub type_text: String,
    /// 1-based source line of the field name.
    pub line: u32,
}

/// A struct definition (unit and tuple structs have no fields recorded).
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// Named fields in declaration order.
    pub fields: Vec<FieldDef>,
    /// 1-based source line of the `struct` keyword.
    pub line: u32,
}

/// A function definition (free or associated) with its body token range.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// The `Self` type when the fn sits inside an `impl` block.
    pub impl_type: Option<String>,
    /// Space-joined return-type tokens (empty when the fn returns `()`).
    pub ret_text: String,
    /// Token index range `(open_brace, close_brace)` of the body, inclusive;
    /// `None` for bodyless trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// 1-based source line of the function name.
    pub line: u32,
    /// True when the fn lives inside a `#[cfg(test)]` region or is itself a
    /// `#[test]`/`#[cfg(test)]` item.
    pub is_test: bool,
}

/// An inline `// lint:allow(name, reason)` marker.
#[derive(Debug, Clone)]
pub struct AllowMarker {
    /// The lint name the marker suppresses.
    pub name: String,
    /// The mandatory human-readable justification (may be empty in source;
    /// the analyzer reports empty reasons as errors).
    pub reason: String,
    /// 1-based line the marker's comment ends on. A marker suppresses
    /// findings on this line and the next, so it can sit on the offending
    /// line or immediately above it.
    pub end_line: u32,
}

/// One lexed + structurally indexed source file.
#[derive(Debug)]
pub struct ParsedFile {
    /// Path the file was read from (workspace-relative when loaded via
    /// [`crate::Workspace::load`]).
    pub path: PathBuf,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// Comments with line spans.
    pub comments: Vec<Comment>,
    /// Struct definitions found in the file.
    pub structs: Vec<StructDef>,
    /// Function definitions found in the file.
    pub fns: Vec<FnDef>,
    /// Token-index ranges covered by `#[cfg(test)]` items.
    pub test_ranges: Vec<(usize, usize)>,
    /// `lint:allow` markers found in comments.
    pub allows: Vec<AllowMarker>,
}

impl ParsedFile {
    /// Parses `source` into a structural model.
    pub fn parse(path: PathBuf, source: &str) -> Self {
        let out = lex(source);
        let tokens = out.tokens;
        let test_ranges = find_test_ranges(&tokens);
        let structs = find_structs(&tokens);
        let fns = find_fns(&tokens, &test_ranges);
        let allows = find_allow_markers(&out.comments);
        ParsedFile {
            path,
            tokens,
            comments: out.comments,
            structs,
            fns,
            test_ranges,
            allows,
        }
    }

    /// True when token index `idx` falls inside a `#[cfg(test)]` region.
    pub fn in_test(&self, idx: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|&(start, end)| idx >= start && idx <= end)
    }

    /// Returns the allow marker suppressing `lint` at `line`, if any. A
    /// marker applies to the line its comment ends on and to the following
    /// line (marker-above-the-code style).
    pub fn allow_for(&self, lint: &str, line: u32) -> Option<&AllowMarker> {
        self.allows
            .iter()
            .find(|m| m.name == lint && (m.end_line == line || m.end_line + 1 == line))
    }
}

/// Index of the token closing the bracket opened at `open` (`(`/`)`,
/// `[`/`]`, `{`/`}`). Returns the last token index when unbalanced.
pub fn matching_close(tokens: &[Token], open: usize) -> usize {
    let (open_c, close_c) = match tokens[open].text.as_str() {
        "(" => ('(', ')'),
        "[" => ('[', ']'),
        "{" => ('{', '}'),
        _ => return open,
    };
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(open_c) {
            depth += 1;
        } else if t.is_punct(close_c) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// Skips a generics list: given `idx` pointing at `<`, returns the index just
/// past the matching `>`. `->` arrows inside fn-pointer types do not close
/// angles.
fn skip_angles(tokens: &[Token], idx: usize) -> usize {
    let mut depth = 0isize;
    let mut i = idx;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') && !(i > 0 && tokens[i - 1].is_punct('-')) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    tokens.len()
}

/// Collects the token-index ranges of `#[cfg(test)]` items (`mod` bodies and
/// individual `fn`s) plus `#[test]` fns.
fn find_test_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_punct('#') {
            i += 1;
            continue;
        }
        if !tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            i += 1;
            continue;
        }
        let attr_close = matching_close(tokens, i + 1);
        let is_test_attr = {
            let body: Vec<&str> = tokens[i + 2..attr_close]
                .iter()
                .map(|t| t.text.as_str())
                .collect();
            body == ["test"] || (body.len() >= 4 && body[0] == "cfg" && body.contains(&"test"))
        };
        if !is_test_attr {
            i = attr_close + 1;
            continue;
        }
        // Skip any further attributes between this one and the item.
        let mut j = attr_close + 1;
        while j + 1 < tokens.len() && tokens[j].is_punct('#') && tokens[j + 1].is_punct('[') {
            j = matching_close(tokens, j + 1) + 1;
        }
        // Find the item's opening brace: scan forward to the first `{` or `;`.
        let mut k = j;
        while k < tokens.len() && !tokens[k].is_punct('{') && !tokens[k].is_punct(';') {
            k += 1;
        }
        if k < tokens.len() && tokens[k].is_punct('{') {
            ranges.push((i, matching_close(tokens, k)));
            i = k + 1; // ranges may nest; keep scanning inside is unnecessary
            continue;
        }
        i = k + 1;
    }
    ranges
}

/// Harvests struct definitions with named fields.
fn find_structs(tokens: &[Token]) -> Vec<StructDef> {
    let mut structs = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_ident("struct") {
            i += 1;
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1).filter(|t| t.kind == TokenKind::Ident) else {
            i += 1;
            continue;
        };
        let name = name_tok.text.clone();
        let line = tokens[i].line;
        let mut j = i + 2;
        if j < tokens.len() && tokens[j].is_punct('<') {
            j = skip_angles(tokens, j);
        }
        // Skip a where-clause: everything up to `{`, `(` or `;`.
        while j < tokens.len()
            && !tokens[j].is_punct('{')
            && !tokens[j].is_punct('(')
            && !tokens[j].is_punct(';')
        {
            j += 1;
        }
        let mut fields = Vec::new();
        if j < tokens.len() && tokens[j].is_punct('{') {
            let close = matching_close(tokens, j);
            let mut k = j + 1;
            while k < close {
                // Skip field attributes.
                while k + 1 < close && tokens[k].is_punct('#') && tokens[k + 1].is_punct('[') {
                    k = matching_close(tokens, k + 1) + 1;
                }
                // Skip visibility.
                if k < close && tokens[k].is_ident("pub") {
                    k += 1;
                    if k < close && tokens[k].is_punct('(') {
                        k = matching_close(tokens, k) + 1;
                    }
                }
                if k >= close || tokens[k].kind != TokenKind::Ident {
                    k += 1;
                    continue;
                }
                let field_name = tokens[k].text.clone();
                let field_line = tokens[k].line;
                if !tokens.get(k + 1).is_some_and(|t| t.is_punct(':')) {
                    k += 1;
                    continue;
                }
                // Type runs to the next `,` at bracket depth zero, or to the
                // struct's closing brace.
                let mut depth = 0isize;
                let mut t = k + 2;
                let type_start = t;
                while t < close {
                    let tok = &tokens[t];
                    if tok.is_punct('<') || tok.is_punct('(') || tok.is_punct('[') {
                        depth += 1;
                    } else if (tok.is_punct('>') && !(t > 0 && tokens[t - 1].is_punct('-')))
                        || tok.is_punct(')')
                        || tok.is_punct(']')
                    {
                        depth -= 1;
                    } else if tok.is_punct(',') && depth == 0 {
                        break;
                    }
                    t += 1;
                }
                let type_text = tokens[type_start..t]
                    .iter()
                    .map(|tok| tok.text.as_str())
                    .collect::<Vec<_>>()
                    .join(" ");
                fields.push(FieldDef {
                    name: field_name,
                    type_text,
                    line: field_line,
                });
                k = t + 1;
            }
            i = close + 1;
        } else {
            i = j + 1;
        }
        structs.push(StructDef { name, fields, line });
    }
    structs
}

/// Finds `impl` block ranges with their `Self` type.
fn find_impl_ranges(tokens: &[Token]) -> Vec<(usize, usize, String)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_ident("impl") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if j < tokens.len() && tokens[j].is_punct('<') {
            j = skip_angles(tokens, j);
        }
        // Header runs to the opening brace; the Self type is the first ident
        // after `for` when present, else the first ident of the header.
        let mut header_idents: Vec<(usize, String)> = Vec::new();
        let mut for_pos: Option<usize> = None;
        let mut k = j;
        while k < tokens.len() && !tokens[k].is_punct('{') && !tokens[k].is_punct(';') {
            if tokens[k].kind == TokenKind::Ident {
                if tokens[k].text == "for" {
                    for_pos = Some(k);
                } else if tokens[k].text != "dyn" && tokens[k].text != "where" {
                    header_idents.push((k, tokens[k].text.clone()));
                }
            }
            k += 1;
        }
        if k >= tokens.len() || !tokens[k].is_punct('{') {
            i = k + 1;
            continue;
        }
        let self_type = match for_pos {
            Some(fp) => header_idents
                .iter()
                .find(|&&(pos, _)| pos > fp)
                .map(|(_, name)| name.clone()),
            None => header_idents.first().map(|(_, name)| name.clone()),
        };
        let close = matching_close(tokens, k);
        if let Some(ty) = self_type {
            ranges.push((k, close, ty));
        }
        i = k + 1; // impls don't nest in practice; inner items re-scanned anyway
    }
    ranges
}

/// Harvests function definitions, resolving each to its enclosing `impl`
/// type and test-ness.
fn find_fns(tokens: &[Token], test_ranges: &[(usize, usize)]) -> Vec<FnDef> {
    let impls = find_impl_ranges(tokens);
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_ident("fn") {
            i += 1;
            continue;
        }
        // `fn(` is a fn-pointer type, not a definition.
        let Some(name_tok) = tokens.get(i + 1).filter(|t| t.kind == TokenKind::Ident) else {
            i += 1;
            continue;
        };
        let name = name_tok.text.clone();
        let line = name_tok.line;
        let mut j = i + 2;
        if j < tokens.len() && tokens[j].is_punct('<') {
            j = skip_angles(tokens, j);
        }
        if j >= tokens.len() || !tokens[j].is_punct('(') {
            i += 1;
            continue;
        }
        let params_close = matching_close(tokens, j);
        let mut k = params_close + 1;
        let mut ret_text = String::new();
        if k + 1 < tokens.len() && tokens[k].is_punct('-') && tokens[k + 1].is_punct('>') {
            let ret_start = k + 2;
            let mut depth = 0isize;
            let mut r = ret_start;
            while r < tokens.len() {
                let tok = &tokens[r];
                if tok.is_punct('<') {
                    depth += 1;
                } else if tok.is_punct('>') && !tokens[r - 1].is_punct('-') {
                    depth -= 1;
                } else if depth == 0
                    && (tok.is_punct('{') || tok.is_punct(';') || tok.is_ident("where"))
                {
                    break;
                }
                r += 1;
            }
            ret_text = tokens[ret_start..r]
                .iter()
                .map(|tok| tok.text.as_str())
                .collect::<Vec<_>>()
                .join(" ");
            k = r;
        }
        // Skip a where-clause to the body brace or terminating semicolon.
        while k < tokens.len() && !tokens[k].is_punct('{') && !tokens[k].is_punct(';') {
            k += 1;
        }
        let body = if k < tokens.len() && tokens[k].is_punct('{') {
            Some((k, matching_close(tokens, k)))
        } else {
            None
        };
        let impl_type = impls
            .iter()
            .filter(|&&(start, end, _)| i > start && i < end)
            .map(|(_, _, ty)| ty.clone())
            .next_back();
        let is_test = test_ranges
            .iter()
            .any(|&(start, end)| i >= start && i <= end);
        fns.push(FnDef {
            name,
            impl_type,
            ret_text,
            body,
            line,
            is_test,
        });
        i = body.map_or(k + 1, |(open, _)| open + 1);
    }
    fns
}

/// Extracts `lint:allow(name, reason)` markers from comments.
fn find_allow_markers(comments: &[Comment]) -> Vec<AllowMarker> {
    let mut markers = Vec::new();
    for comment in comments {
        let Some(pos) = comment.text.find("lint:allow(") else {
            continue;
        };
        let rest = &comment.text[pos + "lint:allow(".len()..];
        let Some(close) = rest.rfind(')') else {
            continue;
        };
        let inner = &rest[..close];
        let (name, reason) = match inner.split_once(',') {
            Some((name, reason)) => (name.trim().to_string(), reason.trim().to_string()),
            None => (inner.trim().to_string(), String::new()),
        };
        markers.push(AllowMarker {
            name,
            reason,
            end_line: comment.end_line,
        });
    }
    markers
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        ParsedFile::parse(PathBuf::from("test.rs"), src)
    }

    #[test]
    fn struct_fields_with_generic_types() {
        let file = parse(
            "pub struct Shared { state: Mutex<QueueState>, pub(crate) cache: Arc<ResultCache>, }",
        );
        assert_eq!(file.structs.len(), 1);
        let s = &file.structs[0];
        assert_eq!(s.name, "Shared");
        assert_eq!(s.fields.len(), 2);
        assert_eq!(s.fields[0].name, "state");
        assert_eq!(s.fields[0].type_text, "Mutex < QueueState >");
        assert_eq!(s.fields[1].name, "cache");
    }

    #[test]
    fn fn_impl_type_and_return() {
        let file = parse(
            "impl Shared { fn lock_state(&self) -> MutexGuard<'_, QueueState> { self.state.lock() } }\nfn free() {}",
        );
        assert_eq!(file.fns.len(), 2);
        assert_eq!(file.fns[0].name, "lock_state");
        assert_eq!(file.fns[0].impl_type.as_deref(), Some("Shared"));
        assert!(file.fns[0].ret_text.contains("MutexGuard"));
        assert_eq!(file.fns[1].impl_type, None);
    }

    #[test]
    fn trait_impl_resolves_self_type_after_for() {
        let file =
            parse("impl Ord for Worst { fn cmp(&self, other: &Self) -> Ordering { todo() } }");
        assert_eq!(file.fns[0].impl_type.as_deref(), Some("Worst"));
    }

    #[test]
    fn cfg_test_mod_marks_fns_as_test() {
        let file = parse(
            "fn real() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn check() { x.unwrap(); }\n}",
        );
        let real = file.fns.iter().find(|f| f.name == "real").unwrap();
        let check = file.fns.iter().find(|f| f.name == "check").unwrap();
        assert!(!real.is_test);
        assert!(check.is_test);
        let unwrap_idx = file
            .tokens
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .unwrap();
        assert!(file.in_test(unwrap_idx));
    }

    #[test]
    fn allow_markers_parse_name_and_reason() {
        let file = parse(
            "// lint:allow(panic, index is in-bounds (modulo len))\nlet x = v[0];\n// lint:allow(index)\nlet y = v[1];",
        );
        assert_eq!(file.allows.len(), 2);
        assert_eq!(file.allows[0].name, "panic");
        assert_eq!(file.allows[0].reason, "index is in-bounds (modulo len)");
        assert!(file.allows[1].reason.is_empty());
        assert!(file.allow_for("panic", 2).is_some());
        assert!(file.allow_for("panic", 4).is_none());
    }

    #[test]
    fn nested_generic_field_with_tuple() {
        let file = parse("struct H { stop: Arc<(Mutex<bool>, Condvar)>, next: u32 }");
        let s = &file.structs[0];
        assert_eq!(s.fields.len(), 2);
        assert_eq!(s.fields[0].name, "stop");
        assert!(s.fields[0].type_text.contains("Mutex < bool >"));
        assert_eq!(s.fields[1].name, "next");
    }
}
