//! A small hand-rolled Rust lexer.
//!
//! The lints in this crate only need a token stream that is *reliable about
//! what is code and what is not*: string literals, char literals, lifetimes,
//! and (nested) block comments must never leak their contents into the token
//! stream, or every downstream lint would fire on `"call .unwrap() here"`
//! inside a doc string. Everything else is deliberately coarse — numbers are
//! one token, punctuation is one character per token (parsers that need `->`
//! or `::` look at adjacent tokens).
//!
//! Comments are not discarded: they are collected into a side list with line
//! spans, because the allow-marker (`// lint:allow(name, reason)`) and
//! `// SAFETY:` conventions live in comments.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `unwrap`, `r#match`, ...).
    Ident,
    /// A lifetime such as `'a` (including `'static` and `'_`).
    Lifetime,
    /// A numeric literal (integers and floats, any base).
    Number,
    /// A string literal of any flavour (`"…"`, `r#"…"#`, `b"…"`, `c"…"`).
    Str,
    /// A character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A single punctuation character (`.`, `:`, `{`, `->` is two tokens).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token's kind.
    pub kind: TokenKind,
    /// The token text. For [`TokenKind::Str`] and [`TokenKind::Char`] this is
    /// a placeholder, not the literal's contents — lints must never see
    /// inside literals.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Token {
    fn punct(c: char, line: u32) -> Self {
        Token {
            kind: TokenKind::Punct,
            text: c.to_string(),
            line,
        }
    }

    /// True when the token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// True when the token is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }
}

/// A comment (line or block) with the lines it spans.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (same as `line` for `//` comments).
    pub end_line: u32,
    /// The comment text including its `//` / `/* */` delimiters.
    pub text: String,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct LexOutput {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order, kept separately from the token stream.
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes `source` into tokens plus a side list of comments.
///
/// The lexer is resilient by construction: unterminated literals or comments
/// simply run to end-of-file instead of erroring, because the analyzer must
/// keep going on code that `rustc` would reject (fixtures are deliberately
/// broken in interesting ways).
pub fn lex(source: &str) -> LexOutput {
    let chars: Vec<char> = source.chars().collect();
    let mut out = LexOutput::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = chars.len();

    // Counts newlines in chars[from..to] so multi-line literals/comments keep
    // the running line number accurate.
    let count_lines = |from: usize, to: usize| -> u32 {
        chars[from..to.min(n)]
            .iter()
            .filter(|&&c| c == '\n')
            .count() as u32
    };

    while i < n {
        let c = chars[i];
        let next = chars.get(i + 1).copied();

        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }

        // Line comment (includes doc comments `///` and `//!`).
        if c == '/' && next == Some('/') {
            let start = i;
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            out.comments.push(Comment {
                line,
                end_line: line,
                text: chars[start..i].iter().collect(),
            });
            continue;
        }

        // Block comment, nesting-aware (`/* /* */ */` is one comment).
        if c == '/' && next == Some('*') {
            let start = i;
            let start_line = line;
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            out.comments.push(Comment {
                line: start_line,
                end_line: line,
                text: chars[start..i.min(n)].iter().collect(),
            });
            continue;
        }

        // Raw strings, byte strings, C strings and raw identifiers all start
        // with a prefix letter; plain identifiers fall through.
        if is_ident_start(c) {
            // Possible literal prefixes: r"", r#""#, b"", br"", rb is not a
            // thing, b'', c"", cr#""#. Detect by scanning prefix letters then
            // hashes then a quote.
            let mut j = i;
            while j < n && (chars[j] == 'r' || chars[j] == 'b' || chars[j] == 'c') && j - i < 2 {
                j += 1;
            }
            let prefix: String = chars[i..j].iter().collect();
            let mut hashes = 0usize;
            let mut k = j;
            while k < n && chars[k] == '#' {
                hashes += 1;
                k += 1;
            }
            let is_raw = prefix.contains('r');
            let quote = chars.get(k).copied();

            if quote == Some('"') && (is_raw || hashes == 0) && !prefix.is_empty() {
                // String literal with a prefix: b"...", r"...", r#"..."#, ...
                let start_line = line;
                if is_raw {
                    i = skip_raw_string(&chars, k, hashes);
                } else {
                    i = skip_plain_string(&chars, k);
                }
                line += count_lines(k, i);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text: "\"…\"".to_string(),
                    line: start_line,
                });
                continue;
            }
            if prefix == "b" && hashes == 0 && quote == Some('\'') {
                // Byte literal b'x'.
                let start_line = line;
                i = skip_char_literal(&chars, k);
                out.tokens.push(Token {
                    kind: TokenKind::Char,
                    text: "b'…'".to_string(),
                    line: start_line,
                });
                continue;
            }
            if prefix == "r" && hashes == 1 && quote.is_some_and(is_ident_start) {
                // Raw identifier r#match: lex as the identifier `match`.
                let mut e = k;
                while e < n && is_ident_continue(chars[e]) {
                    e += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: chars[k..e].iter().collect(),
                    line,
                });
                i = e;
                continue;
            }

            // Ordinary identifier / keyword.
            let mut e = i;
            while e < n && is_ident_continue(chars[e]) {
                e += 1;
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text: chars[i..e].iter().collect(),
                line,
            });
            i = e;
            continue;
        }

        // Plain string literal.
        if c == '"' {
            let start_line = line;
            let end = skip_plain_string(&chars, i);
            line += count_lines(i, end);
            i = end;
            out.tokens.push(Token {
                kind: TokenKind::Str,
                text: "\"…\"".to_string(),
                line: start_line,
            });
            continue;
        }

        // `'` is the hard case: char literal or lifetime.
        if c == '\'' {
            let c1 = chars.get(i + 1).copied();
            let c2 = chars.get(i + 2).copied();
            let is_char = match (c1, c2) {
                (Some('\\'), _) => true,       // '\n', '\'', '\u{1F600}'
                (Some(_), Some('\'')) => true, // 'x'
                _ => false,
            };
            if is_char {
                i = skip_char_literal(&chars, i);
                out.tokens.push(Token {
                    kind: TokenKind::Char,
                    text: "'…'".to_string(),
                    line,
                });
            } else if c1.is_some_and(is_ident_start) {
                // Lifetime: 'a, 'static, '_ — no closing quote.
                let mut e = i + 1;
                while e < n && is_ident_continue(chars[e]) {
                    e += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    text: chars[i..e].iter().collect(),
                    line,
                });
                i = e;
            } else if c1 == Some('_') {
                // '_ placeholder lifetime (covered above by is_ident_start,
                // kept for clarity).
                out.tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    text: "'_".to_string(),
                    line,
                });
                i += 2;
            } else {
                // Stray quote; emit as punct and move on.
                out.tokens.push(Token::punct('\'', line));
                i += 1;
            }
            continue;
        }

        // Numeric literal: good enough to glue `1.5e3`, `0x1F`, `1_000`
        // together; `1.0e-3` lexes as `1.0e` `-` `3`, which no lint cares
        // about.
        if c.is_ascii_digit() {
            let mut e = i;
            while e < n {
                let d = chars[e];
                if is_ident_continue(d)
                    || (d == '.' && chars.get(e + 1).is_some_and(|x| x.is_ascii_digit()))
                {
                    e += 1;
                } else {
                    break;
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Number,
                text: chars[i..e].iter().collect(),
                line,
            });
            i = e;
            continue;
        }

        out.tokens.push(Token::punct(c, line));
        i += 1;
    }

    out
}

/// Skips a `"…"` literal starting at the opening quote; returns the index
/// just past the closing quote (or end of input).
fn skip_plain_string(chars: &[char], open: usize) -> usize {
    let mut i = open + 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    chars.len()
}

/// Skips a raw string whose opening quote is at `open` with `hashes` leading
/// `#`s; returns the index just past the closing `"##…`.
fn skip_raw_string(chars: &[char], open: usize, hashes: usize) -> usize {
    let mut i = open + 1;
    while i < chars.len() {
        if chars[i] == '"' {
            let mut matched = 0;
            while matched < hashes && chars.get(i + 1 + matched) == Some(&'#') {
                matched += 1;
            }
            if matched == hashes {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    chars.len()
}

/// Skips a `'…'` literal starting at the opening quote; returns the index
/// just past the closing quote (or end of input).
fn skip_char_literal(chars: &[char], open: usize) -> usize {
    let mut i = open + 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '\'' => return i + 1,
            _ => i += 1,
        }
    }
    chars.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_do_not_leak_tokens() {
        let src = r#"let s = "call .unwrap() and panic! now"; s.len();"#;
        let ids = idents(src);
        assert!(ids.contains(&"len".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
    }

    #[test]
    fn raw_strings_with_hashes_and_quotes() {
        let src = r###"let s = r#"inner "quoted" .unwrap()"#; after();"###;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "s", "after"]);
        assert!(!ids.contains(&"unwrap".to_string()));
    }

    #[test]
    fn nested_block_comments() {
        let out = lex("before /* outer /* inner */ still comment */ after");
        let ids: Vec<_> = out.tokens.iter().map(|t| t.text.clone()).collect();
        assert_eq!(ids, vec!["before", "after"]);
        assert_eq!(out.comments.len(), 1);
        assert!(out.comments[0].text.contains("inner"));
    }

    #[test]
    fn char_literal_versus_lifetime() {
        let out = lex("let c = 'x'; fn f<'a>(v: &'a str) { let q = '\\''; }");
        let chars: Vec<_> = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .collect();
        let lifetimes: Vec<_> = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(chars.len(), 2);
        assert_eq!(lifetimes, vec!["'a", "'a"]);
    }

    #[test]
    fn static_lifetime_and_unwrap_after() {
        let ids = idents("fn f(s: &'static str) { s.unwrap() }");
        assert!(ids.contains(&"unwrap".to_string()));
        let out = lex("&'static str");
        assert!(out
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "'static"));
    }

    #[test]
    fn byte_and_c_strings() {
        let ids = idents(r#"let a = b"unwrap"; let b2 = b'x'; let c = c"expect"; done();"#);
        assert!(ids.contains(&"done".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"expect".to_string()));
    }

    #[test]
    fn raw_identifier() {
        let ids = idents("let r#match = 1; use_it(r#match);");
        assert!(ids.contains(&"match".to_string()));
        assert!(ids.contains(&"use_it".to_string()));
    }

    #[test]
    fn line_numbers_track_multiline_constructs() {
        let src = "line1();\n/* two\nline comment */\nline4();\nlet s = \"multi\nline\";\nline7();";
        let out = lex(src);
        let find = |name: &str| out.tokens.iter().find(|t| t.is_ident(name)).unwrap().line;
        assert_eq!(find("line1"), 1);
        assert_eq!(find("line4"), 4);
        assert_eq!(find("line7"), 7);
        assert_eq!(out.comments[0].line, 2);
        assert_eq!(out.comments[0].end_line, 3);
    }

    #[test]
    fn line_comment_collected_with_text() {
        let out = lex("code(); // lint:allow(panic, reason here)\nmore();");
        assert_eq!(out.comments.len(), 1);
        assert!(out.comments[0].text.contains("lint:allow(panic"));
        assert_eq!(out.comments[0].line, 1);
    }

    #[test]
    fn numbers_glue_and_ranges_split() {
        let out = lex("0..10 1.5 0x1F 1_000");
        let nums: Vec<_> = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5", "0x1F", "1_000"]);
    }
}
