//! Filtered-search selectivity sweep: a video-id predicate at 1% / 10% /
//! 50% / 100% selectivity against a segmented collection with
//! video-contiguous packed ids, compared with the pre-planner strategy of
//! searching unfiltered and post-filtering the hits. Backs the claim that
//! pushdown + zone-map pruning makes selective queries pay for the footage
//! they match, not the corpus.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lovo_index::IdFilter;
use lovo_store::{patchid, CollectionConfig, PushdownFilter, SegmentedCollection};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::hint::black_box;

const DIM: usize = 32;
const VIDEOS: u32 = 100;
const ROWS_PER_VIDEO: u32 = 400;

fn build_collection() -> SegmentedCollection {
    let config = CollectionConfig::new(DIM).with_segment_capacity(4096);
    let mut collection = SegmentedCollection::new("filtered-sweep", config).unwrap();
    let mut rng = SmallRng::seed_from_u64(0xf117);
    for video in 0..VIDEOS {
        for row in 0..ROWS_PER_VIDEO {
            let mut v: Vec<f32> = (0..DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            lovo_index::metric::normalize(&mut v);
            collection
                .insert(patchid::patch_id(video, row, 0), &v)
                .unwrap();
        }
    }
    collection.seal().unwrap();
    collection
}

/// A pushed-down video filter over the first `allowed` videos, the exact
/// shape `VectorDatabase::resolve_filter` produces for a video predicate.
fn video_filter(allowed: u32) -> PushdownFilter {
    let videos: BTreeSet<u32> = (0..allowed).collect();
    let ranges = videos.iter().map(|&v| patchid::video_id_range(v)).collect();
    let ids = IdFilter::from_predicate(move |id| videos.contains(&patchid::video_of(id)));
    PushdownFilter::new(ids).with_ranges(ranges)
}

fn bench_selectivity_sweep(c: &mut Criterion) {
    let collection = build_collection();
    let mut rng = SmallRng::seed_from_u64(0x9e1);
    let query: Vec<f32> = {
        let mut v: Vec<f32> = (0..DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        lovo_index::metric::normalize(&mut v);
        v
    };

    let mut group = c.benchmark_group("filtered_search_top10");
    group.sample_size(30);
    for percent in [1u32, 10, 50, 100] {
        let filter = video_filter(VIDEOS * percent / 100);
        group.bench_with_input(
            BenchmarkId::new("pushdown", percent),
            &filter,
            |b, filter| {
                b.iter(|| {
                    collection
                        .search_filtered_with_stats(black_box(&query), 10, Some(filter))
                        .unwrap()
                })
            },
        );
        // The pre-planner strategy: full unfiltered search, then drop hits
        // outside the predicate.
        let allowed = VIDEOS * percent / 100;
        group.bench_with_input(
            BenchmarkId::new("post_filter", percent),
            &allowed,
            |b, &allowed| {
                b.iter(|| {
                    let hits = collection.search(black_box(&query), 10).unwrap();
                    hits.into_iter()
                        .filter(|h| patchid::video_of(h.id) < allowed)
                        .collect::<Vec<_>>()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_selectivity_sweep);
criterion_main!(benches);
