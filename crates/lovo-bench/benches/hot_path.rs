//! Hot-path microbenchmarks for the flat-storage + bounded-selection
//! overhaul: distance kernels (`dot` vs `dot_batch`), flat-scan top-k, ADC
//! list scoring over contiguous vs per-entry code storage, and end-to-end
//! segmented search. `cargo bench --bench hot_path` reproduces the before /
//! after comparison recorded in `BENCH_pr3.json` (the "before" numbers come
//! from the same workloads run on the parent commit).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lovo_index::metric::{dot, dot_batch};
use lovo_index::{FlatIndex, PqCode, PqConfig, ProductQuantizer, VectorIndex};
use lovo_store::{CollectionConfig, SegmentedCollection};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const DIM: usize = 64;

fn random_unit_vectors(n: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut v: Vec<f32> = (0..DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            lovo_index::metric::normalize(&mut v);
            v
        })
        .collect()
}

fn bench_kernels(c: &mut Criterion) {
    let vectors = random_unit_vectors(10_000, 3);
    let rows: Vec<f32> = vectors.iter().flatten().copied().collect();
    let query = vectors[0].clone();
    let mut out: Vec<f32> = Vec::with_capacity(vectors.len());

    let mut group = c.benchmark_group("kernels");
    group.bench_function("dot_64d", |b| {
        b.iter(|| dot(black_box(&query), black_box(&vectors[1])))
    });
    group.bench_function("dot_batch_10k_rows", |b| {
        b.iter(|| {
            out.clear();
            dot_batch(black_box(&query), black_box(&rows), DIM, &mut out);
            out[out.len() - 1]
        })
    });
    group.finish();
}

fn bench_flat_topk(c: &mut Criterion) {
    let mut group = c.benchmark_group("flat_topk");
    for &n in &[10_000usize, 100_000] {
        let vectors = random_unit_vectors(n, 11);
        let mut flat = FlatIndex::new(DIM);
        for (i, v) in vectors.iter().enumerate() {
            flat.insert(i as u64, v).unwrap();
        }
        let query = vectors[42].clone();
        group.bench_with_input(BenchmarkId::from_parameter(n), &flat, |b, flat| {
            b.iter(|| flat.search(black_box(&query), 10).unwrap())
        });
    }
    group.finish();
}

fn bench_adc_list(c: &mut Criterion) {
    let n = 100_000usize;
    let vectors = random_unit_vectors(n, 17);
    let pq = ProductQuantizer::train(PqConfig::for_dim(DIM), &vectors[..4_000]).unwrap();
    let stride = pq.config().num_subspaces;
    let boxed: Vec<PqCode> = vectors.iter().map(|v| pq.encode(v).unwrap()).collect();
    let contiguous: Vec<u8> = boxed
        .iter()
        .flat_map(|code| code.0.iter().copied())
        .collect();
    let query = vectors[0].clone();
    let table = pq.adc_table(&query).unwrap();
    let mut scores: Vec<f32> = Vec::with_capacity(n);

    let mut group = c.benchmark_group("adc_scan_100k");
    group.bench_function("contiguous_list", |b| {
        b.iter(|| {
            scores.clear();
            table.score_list(black_box(&contiguous), stride, &mut scores);
            scores[scores.len() - 1]
        })
    });
    group.bench_function("per_entry_codes", |b| {
        b.iter(|| {
            boxed
                .iter()
                .map(|code| table.score(black_box(code)))
                .sum::<f32>()
        })
    });
    group.finish();
}

fn bench_segment_search(c: &mut Criterion) {
    let n = 32_768usize;
    let vectors = random_unit_vectors(n, 23);
    let mut collection = SegmentedCollection::new(
        "hot_path",
        CollectionConfig::new(DIM).with_segment_capacity(4096),
    )
    .unwrap();
    for (i, v) in vectors.iter().enumerate() {
        collection.insert(i as u64, v).unwrap();
    }
    collection.seal().unwrap();
    let query = vectors[7].clone();

    c.bench_function("segment_search_32k_top10", |b| {
        b.iter(|| collection.search(black_box(&query), 10).unwrap())
    });
}

criterion_group!(
    benches,
    bench_kernels,
    bench_flat_topk,
    bench_adc_list,
    bench_segment_search
);
criterion_main!(benches);
