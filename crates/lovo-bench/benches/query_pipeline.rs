//! Wall-clock benchmarks of the LOVO query pipeline stages on a Bellevue-style
//! collection: visual frame encoding (processing, Fig. 11(a)), the fast search
//! (Fig. 11(b)/(c)), the cross-modality rerank per candidate frame
//! (Fig. 11(d)), and the end-to-end two-stage query (Fig. 8 / Table III).

use criterion::{criterion_group, criterion_main, Criterion};
use lovo_core::{Lovo, LovoConfig};
use lovo_encoder::cross_modality::CandidateFrame;
use lovo_encoder::{
    CrossModalityConfig, CrossModalityTransformer, TextEncoder, TextEncoderConfig, VisualEncoder,
    VisualEncoderConfig,
};
use lovo_video::{DatasetConfig, DatasetKind, VideoCollection};
use std::hint::black_box;

fn collection() -> VideoCollection {
    VideoCollection::generate(
        DatasetConfig::for_kind(DatasetKind::Bellevue)
            .with_frames_per_video(600)
            .with_seed(17),
    )
}

fn bench_visual_encoding(c: &mut Criterion) {
    let videos = collection();
    let encoder = VisualEncoder::new(VisualEncoderConfig::default()).unwrap();
    let frame = &videos.videos[0].frames[30];
    c.bench_function("visual_encode_frame", |b| {
        b.iter(|| encoder.encode_frame(black_box(frame)).unwrap())
    });
}

fn bench_text_encoding(c: &mut Criterion) {
    let encoder = TextEncoder::new(TextEncoderConfig::default()).unwrap();
    c.bench_function("text_encode_query", |b| {
        b.iter(|| {
            encoder
                .encode(black_box(
                    "a red car side by side with another car in the center of the road",
                ))
                .unwrap()
        })
    });
}

fn bench_two_stage_query(c: &mut Criterion) {
    let videos = collection();
    let lovo = Lovo::build(&videos, LovoConfig::default()).unwrap();
    let no_rerank = Lovo::build(&videos, LovoConfig::ablation_without_rerank()).unwrap();
    let mut group = c.benchmark_group("query");
    group.sample_size(20);
    group.bench_function("fast_search_only", |b| {
        b.iter(|| {
            no_rerank
                .query(black_box("a red car driving in the center of the road"))
                .unwrap()
        })
    });
    group.bench_function("fast_search_plus_rerank", |b| {
        b.iter(|| {
            lovo.query(black_box("a red car driving in the center of the road"))
                .unwrap()
        })
    });
    group.finish();
}

fn bench_rerank_per_frame(c: &mut Criterion) {
    let videos = collection();
    let transformer = CrossModalityTransformer::new(CrossModalityConfig::default()).unwrap();
    let candidates: Vec<CandidateFrame> = videos.videos[0]
        .frames
        .iter()
        .step_by(40)
        .take(10)
        .map(|frame| CandidateFrame {
            video_id: 0,
            frame,
            seed_box: None,
        })
        .collect();
    c.bench_function("cross_modality_rerank_10_frames", |b| {
        b.iter(|| {
            transformer
                .rerank(
                    black_box("a red car side by side with another car"),
                    black_box(&candidates),
                )
                .unwrap()
        })
    });
}

criterion_group!(
    benches,
    bench_visual_encoding,
    bench_text_encoding,
    bench_two_stage_query,
    bench_rerank_per_frame
);
criterion_main!(benches);
