//! Segment-count sweep: search latency of a `SegmentedCollection` as the
//! same 20k-row corpus is split into 1, 4, 16 or 64 segments. Backs the
//! claim that the parallel fan-out + k-way merge keeps multi-segment search
//! competitive with a monolithic index, and shows where compaction pays off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lovo_store::{CollectionConfig, SegmentedCollection};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const DIM: usize = 32;
const N: usize = 20_000;

fn random_unit_vectors(n: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut v: Vec<f32> = (0..DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            lovo_index::metric::normalize(&mut v);
            v
        })
        .collect()
}

fn build_collection(vectors: &[Vec<f32>], segments: usize) -> SegmentedCollection {
    let capacity = N.div_ceil(segments);
    let config = CollectionConfig::new(DIM).with_segment_capacity(capacity);
    let mut collection = SegmentedCollection::new(format!("sweep-{segments}"), config).unwrap();
    for (i, v) in vectors.iter().enumerate() {
        collection.insert(i as u64, v).unwrap();
    }
    collection.seal().unwrap();
    collection
}

fn bench_segment_sweep(c: &mut Criterion) {
    let vectors = random_unit_vectors(N, 19);
    let query = &vectors[42];

    let mut group = c.benchmark_group("segmented_search_top10");
    group.sample_size(30);
    for segments in [1usize, 4, 16, 64] {
        let collection = build_collection(&vectors, segments);
        assert_eq!(collection.stats().sealed_segments, segments);
        group.bench_with_input(
            BenchmarkId::from_parameter(segments),
            &collection,
            |b, collection| b.iter(|| collection.search(black_box(query), 10).unwrap()),
        );
    }
    group.finish();
}

/// A collection whose capacity is the full corpus but whose rows were sealed
/// into 64 undersized fragments — the shape many small incremental appends
/// leave behind, and the input compaction exists for.
fn build_fragmented(vectors: &[Vec<f32>]) -> SegmentedCollection {
    let config = CollectionConfig::new(DIM).with_segment_capacity(N);
    let mut collection = SegmentedCollection::new("fragmented", config).unwrap();
    let fragment = N / 64;
    for (i, v) in vectors.iter().enumerate() {
        collection.insert(i as u64, v).unwrap();
        if (i + 1) % fragment == 0 {
            collection.seal().unwrap();
        }
    }
    collection.seal().unwrap();
    collection
}

fn bench_compaction(c: &mut Criterion) {
    let vectors = random_unit_vectors(N, 23);
    let mut group = c.benchmark_group("compaction");
    group.sample_size(10);
    group.bench_function("merge_64_undersized_segments", |b| {
        b.iter_with_setup(
            || build_fragmented(&vectors),
            |mut collection| {
                let result = collection.compact().unwrap();
                assert!(result.segments_merged > 0);
                black_box(result);
            },
        )
    });
    group.finish();
}

criterion_group!(benches, bench_segment_sweep, bench_compaction);
criterion_main!(benches);
