//! Microbenchmarks of the index substrate: PQ encoding, ADC scoring, and ANN
//! search across the three index families of Table V. These back the latency
//! claims (fast search well below a millisecond per probe on laptop-scale
//! collections; IVF-PQ and HNSW far below brute force).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lovo_index::{
    FlatIndex, HnswConfig, HnswIndex, IvfPqConfig, IvfPqIndex, PqConfig, ProductQuantizer,
    VectorIndex,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const DIM: usize = 32;
const N: usize = 20_000;

fn random_unit_vectors(n: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut v: Vec<f32> = (0..DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            lovo_index::metric::normalize(&mut v);
            v
        })
        .collect()
}

fn bench_pq(c: &mut Criterion) {
    let sample = random_unit_vectors(4_000, 7);
    let pq = ProductQuantizer::train(PqConfig::for_dim(DIM), &sample).unwrap();
    let query = &sample[0];
    let codes: Vec<_> = sample
        .iter()
        .take(1_000)
        .map(|v| pq.encode(v).unwrap())
        .collect();
    let mut group = c.benchmark_group("pq");
    group.bench_function("encode", |b| {
        b.iter(|| pq.encode(black_box(query)).unwrap())
    });
    group.bench_function("adc_scan_1k", |b| {
        b.iter(|| {
            let table = pq.adc_table(black_box(query)).unwrap();
            codes.iter().map(|code| table.score(code)).sum::<f32>()
        })
    });
    group.finish();
}

fn bench_search_families(c: &mut Criterion) {
    let vectors = random_unit_vectors(N, 11);
    let mut flat = FlatIndex::new(DIM);
    let mut ivf = IvfPqIndex::new(IvfPqConfig::for_dim(DIM)).unwrap();
    let mut hnsw = HnswIndex::new(HnswConfig::for_dim(DIM)).unwrap();
    for (i, v) in vectors.iter().enumerate() {
        flat.insert(i as u64, v).unwrap();
        ivf.insert(i as u64, v).unwrap();
        hnsw.insert(i as u64, v).unwrap();
    }
    flat.build().unwrap();
    ivf.build().unwrap();
    hnsw.build().unwrap();
    let query = &vectors[42];

    let mut group = c.benchmark_group("ann_search_top10");
    group.sample_size(30);
    for (name, index) in [
        ("BF", &flat as &dyn VectorIndex),
        ("IVF-PQ", &ivf as &dyn VectorIndex),
        ("HNSW", &hnsw as &dyn VectorIndex),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &index, |b, index| {
            b.iter(|| index.search(black_box(query), 10).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pq, bench_search_families);
criterion_main!(benches);
