//! Zero-copy mmap benchmark (PR 9): what the mapped read path buys at open
//! and what it costs (nothing, ideally) at query time.
//!
//! Four measurements, emitted as one JSON document (`--out BENCH_pr9.json`):
//!
//! 1. **Cold open** — one flat durable corpus, opened three ways: heap
//!    (read + CRC + decode every byte), mmap eager (map, CRC over the
//!    mapping), and mmap deferred (map, verify only the header — the
//!    payload CRC moved to the writer's side of the ledger; see
//!    docs/durability.md). The headline is `speedup_deferred`.
//! 2. **Warm QPS, flat** — the same corpus opened heap vs mmap + warmup;
//!    identical results required, QPS ratio reported.
//! 3. **Warm QPS, IVF fast-scan** — same comparison over an IVF-PQ corpus
//!    with fast-scan codes and the int8 rescore tier.
//! 4. **Larger-than-RAM emulation** — the flat corpus mapped without
//!    populate under an artificial residency budget (a fraction of the
//!    mapped bytes, standing in for a small-RAM box without needing a
//!    cgroup): every time the `mincore` gauge exceeds the budget, the
//!    bench drops pages (`MADV_DONTNEED`) and keeps querying. Every
//!    result must match the heap twin — the degradation is demand-paging
//!    latency, never wrong answers or OOM.

use lovo_index::{IndexKind, QuantizationOptions};
use lovo_store::{
    patch_id, CollectionConfig, DurabilityConfig, OpenOptions, PatchRecord, VectorDatabase,
    MMAP_SUPPORTED,
};
use std::path::PathBuf;
use std::time::Instant;

const COL: &str = "bench";
const K: usize = 10;

fn scratch_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lovo-mmap-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn row(i: u64, dim: usize) -> Vec<f32> {
    let x = (i % 65_537) as f32;
    (0..dim)
        .map(|d| ((x + 1.0) * 0.37 + d as f32 * 1.31).sin())
        .collect()
}

fn record(i: u64) -> PatchRecord {
    let frame = (i / 64) as u32;
    let patch = (i % 64) as u32;
    PatchRecord {
        patch_id: patch_id(1, frame, patch),
        video_id: 1,
        frame_index: frame,
        patch_index: patch,
        bbox: (patch as f32, frame as f32, 16.0, 16.0),
        timestamp: frame as f64 / 30.0,
        class_code: Some((i % 7) as u8),
    }
}

/// Builds a durable corpus of `rows` vectors, sealed in segments of
/// `capacity`, then drops it (everything on disk, nothing in memory).
fn build_store(
    root: &PathBuf,
    rows: u64,
    dim: usize,
    kind: IndexKind,
    quantization: QuantizationOptions,
    capacity: usize,
) -> f64 {
    let start = Instant::now();
    let db = VectorDatabase::create_durable(root, DurabilityConfig::new()).expect("create");
    db.create_collection(
        COL,
        CollectionConfig::new(dim)
            .with_index_kind(kind)
            .with_quantization(quantization)
            .with_segment_capacity(capacity),
    )
    .expect("collection");
    let mut next = 0u64;
    while next < rows {
        let end = (next + capacity as u64).min(rows);
        let batch: Vec<(Vec<f32>, PatchRecord)> =
            (next..end).map(|i| (row(i, dim), record(i))).collect();
        db.insert_patches(COL, batch.iter().map(|(v, r)| (v.as_slice(), r.clone())))
            .expect("insert");
        db.seal_collection(COL).expect("seal");
        next = end;
    }
    start.elapsed().as_secs_f64()
}

/// Query mix: half drawn near corpus rows, half off-manifold (LCG).
fn queries(count: usize, rows: u64, dim: usize) -> Vec<Vec<f32>> {
    let mut out = Vec::with_capacity(count);
    let mut state = 0x9E37_79B9u64;
    for q in 0..count {
        if q % 2 == 0 {
            out.push(row((q as u64 * 7919) % rows.max(1), dim));
        } else {
            let v: Vec<f32> = (0..dim)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
                })
                .collect();
            out.push(v);
        }
    }
    out
}

fn observe(db: &VectorDatabase, query: &[f32]) -> Vec<(u64, u32)> {
    db.search(COL, query, K)
        .expect("search")
        .into_iter()
        .map(|h| (h.patch_id, h.score.to_bits()))
        .collect()
}

fn timed_open(root: &PathBuf, options: OpenOptions) -> (VectorDatabase, f64) {
    let start = Instant::now();
    let (db, report) =
        VectorDatabase::open_durable_with(root, DurabilityConfig::new(), options).expect("open");
    let seconds = start.elapsed().as_secs_f64();
    assert!(report.is_clean(), "bench store must recover cleanly");
    (db, seconds)
}

fn qps(db: &VectorDatabase, queries: &[Vec<f32>], rounds: usize) -> f64 {
    for q in queries {
        let _ = observe(db, q); // warm pass
    }
    let start = Instant::now();
    for _ in 0..rounds {
        for q in queries {
            let _ = observe(db, q);
        }
    }
    (rounds * queries.len()) as f64 / start.elapsed().as_secs_f64()
}

fn bench_cold_open(root: &PathBuf, probes: &[Vec<f32>]) -> String {
    let (heap, heap_seconds) = timed_open(root, OpenOptions::default());
    let reference: Vec<_> = probes.iter().map(|q| observe(&heap, q)).collect();
    drop(heap);
    let (eager, eager_seconds) = timed_open(root, OpenOptions::default().with_mmap(true));
    let eager_results: Vec<_> = probes.iter().map(|q| observe(&eager, q)).collect();
    drop(eager);
    let (deferred, deferred_seconds) = timed_open(
        root,
        OpenOptions::default()
            .with_mmap(true)
            .with_verify_payload(false),
    );
    let deferred_results: Vec<_> = probes.iter().map(|q| observe(&deferred, q)).collect();
    drop(deferred);
    assert_eq!(reference, eager_results, "eager mmap open diverged");
    assert_eq!(reference, deferred_results, "deferred mmap open diverged");
    format!(
        "  \"cold_open\": {{\"heap_seconds\": {heap_seconds:.4}, \
         \"mmap_eager_seconds\": {eager_seconds:.4}, \
         \"mmap_deferred_seconds\": {deferred_seconds:.4}, \
         \"speedup_eager\": {:.2}, \"speedup_deferred\": {:.2}, \
         \"results_identical\": true}}",
        heap_seconds / eager_seconds,
        heap_seconds / deferred_seconds,
    )
}

fn bench_warm_qps(root: &PathBuf, label: &str, queries: &[Vec<f32>], rounds: usize) -> String {
    let (heap, _) = timed_open(root, OpenOptions::default());
    let (mapped, _) = timed_open(root, OpenOptions::default().with_mmap(true));
    let warmed = mapped.warmup();
    let identical = queries
        .iter()
        .all(|q| observe(&heap, q) == observe(&mapped, q));
    assert!(identical, "{label}: mmap-warm results diverged from heap");
    let qps_heap = qps(&heap, queries, rounds);
    let qps_mapped = qps(&mapped, queries, rounds);
    format!(
        "  \"warm_qps_{label}\": {{\"qps_heap\": {qps_heap:.1}, \
         \"qps_mmap_warm\": {qps_mapped:.1}, \"ratio\": {:.3}, \
         \"mapped_bytes\": {}, \"warmup_bytes\": {warmed}, \
         \"results_identical\": {identical}}}",
        qps_mapped / qps_heap,
        mapped.mapped_bytes(),
    )
}

fn bench_larger_than_ram(root: &PathBuf, queries: &[Vec<f32>], rounds: usize) -> String {
    // Heap twin for correctness; opened first so its transient load peak
    // doesn't overlap the budgeted phase.
    let (heap, _) = timed_open(root, OpenOptions::default());
    let reference: Vec<_> = queries.iter().map(|q| observe(&heap, q)).collect();
    drop(heap);

    // populate=false + deferred verification: nothing is faulted in until
    // a scan touches it — the open itself stays O(header) no matter how
    // small the budget.
    let (db, _) = timed_open(
        root,
        OpenOptions::default()
            .with_mmap(true)
            .with_verify_payload(false),
    );
    let mapped_bytes = db.mapped_bytes();
    // The emulated memory limit: a quarter of the corpus. On a real
    // small-RAM box the kernel would evict cold pages on its own; here the
    // bench plays the eviction hand explicitly so the run is deterministic
    // on a 128 GB machine.
    let budget = (mapped_bytes / 4).max(1);
    let mut max_resident = 0usize;
    let mut releases = 0usize;
    let mut correct = true;
    let start = Instant::now();
    for _ in 0..rounds {
        for (q, want) in queries.iter().zip(&reference) {
            correct &= &observe(&db, q) == want;
            let resident = db.resident_bytes();
            max_resident = max_resident.max(resident);
            if resident > budget {
                db.release_pages();
                releases += 1;
            }
        }
    }
    let qps_churn = (rounds * queries.len()) as f64 / start.elapsed().as_secs_f64();
    assert!(correct, "larger-than-RAM run returned wrong results");
    format!(
        "  \"larger_than_ram\": {{\"mapped_bytes\": {mapped_bytes}, \
         \"budget_bytes\": {budget}, \"max_resident_bytes\": {max_resident}, \
         \"page_releases\": {releases}, \"qps_under_churn\": {qps_churn:.1}, \
         \"all_queries_correct\": {correct}, \"completed\": true}}",
    )
}

fn main() {
    let mut rows = 1_000_000u64;
    let mut ivf_rows = 1_000_000u64;
    let mut dim = 256usize;
    let mut query_count = 32usize;
    let mut rounds = 3usize;
    let mut out: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args.get(i + 1).cloned();
        let take = |name: &str| -> String {
            value
                .clone()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag {
            "--rows" => {
                rows = take("--rows").parse().expect("--rows: integer");
                i += 2;
            }
            "--ivf-rows" => {
                ivf_rows = take("--ivf-rows").parse().expect("--ivf-rows: integer");
                i += 2;
            }
            "--dim" => {
                dim = take("--dim").parse().expect("--dim: integer");
                i += 2;
            }
            "--queries" => {
                query_count = take("--queries").parse().expect("--queries: integer");
                i += 2;
            }
            "--rounds" => {
                rounds = take("--rounds").parse().expect("--rounds: integer");
                i += 2;
            }
            "--out" => {
                out = Some(take("--out"));
                i += 2;
            }
            other => panic!("unknown flag {other}"),
        }
    }

    let capacity = ((rows / 8).max(512) as usize).min(262_144);
    let ivf_capacity = ((ivf_rows / 8).max(512) as usize).min(262_144);
    let probe_set = queries(query_count, rows, dim);

    eprintln!("[mmap_bench] building flat corpus: {rows} rows, dim {dim}");
    let flat_root = scratch_root("flat");
    let flat_build = build_store(
        &flat_root,
        rows,
        dim,
        IndexKind::BruteForce,
        QuantizationOptions::none(),
        capacity,
    );

    eprintln!("[mmap_bench] cold opens");
    let cold = bench_cold_open(&flat_root, &probe_set[..probe_set.len().min(4)]);
    eprintln!("[mmap_bench] warm QPS, flat");
    let flat_qps = bench_warm_qps(&flat_root, "flat", &probe_set, rounds);
    eprintln!("[mmap_bench] larger-than-RAM churn");
    let ltr = bench_larger_than_ram(&flat_root, &probe_set, rounds);
    let _ = std::fs::remove_dir_all(&flat_root);

    eprintln!("[mmap_bench] building IVF fast-scan corpus: {ivf_rows} rows, dim {dim}");
    let ivf_root = scratch_root("ivf");
    let ivf_build = build_store(
        &ivf_root,
        ivf_rows,
        dim,
        IndexKind::IvfPq,
        QuantizationOptions::all(),
        ivf_capacity,
    );
    eprintln!("[mmap_bench] warm QPS, IVF fast-scan");
    let ivf_queries = queries(query_count, ivf_rows, dim);
    let ivf_qps = bench_warm_qps(&ivf_root, "ivf_fastscan", &ivf_queries, rounds);
    let _ = std::fs::remove_dir_all(&ivf_root);

    let json = format!(
        "{{\n  \"bench\": \"mmap_pr9\",\n  \"mmap_supported\": {MMAP_SUPPORTED},\n  \
         \"rows\": {rows},\n  \"ivf_rows\": {ivf_rows},\n  \"dim\": {dim},\n  \
         \"queries\": {query_count},\n  \"rounds\": {rounds},\n  \
         \"flat_build_seconds\": {flat_build:.2},\n  \
         \"ivf_build_seconds\": {ivf_build:.2},\n{cold},\n{flat_qps},\n{ltr},\n{ivf_qps}\n}}"
    );
    println!("{json}");
    if let Some(path) = out {
        std::fs::write(&path, format!("{json}\n")).expect("write --out file");
        eprintln!("[mmap_bench] wrote {path}");
    }
}
