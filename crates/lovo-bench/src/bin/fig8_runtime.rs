//! Regenerates the paper artifact corresponding to `fig8_runtime`.
fn main() {
    let scale = lovo_bench::scale_from_args();
    let report = lovo_eval::experiments::fig8_runtime(scale);
    println!("{}", report.render());
}
