//! Quantized-scan benchmark for the PR 7 acceptance numbers: 4-bit fast-scan
//! kernel throughput (scalar vs. detected SIMD vs. the f32 ADC list scan),
//! int8 flat top-k vs. the f32 flat baseline with measured recall,
//! recall-vs-QPS curves for both quantization tiers, and the intra-query
//! segment-parallelism sweep over a many-segment collection.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p lovo-bench --bin fastscan_bench -- \
//!     [--rows 100000] [--dim 64] [--queries 64] [--k 10] [--out PATH]
//! ```
//!
//! JSON goes to stdout; `--out` additionally writes it to a file. CI runs
//! this with a small `--rows` and `LOVO_DISABLE_SIMD=1` so the scalar
//! fallback and the emitter can never bit-rot; the committed `BENCH_pr7.json`
//! comes from a full run on a development machine.
//!
//! Caveat for the intra-query sweep: worker counts beyond the machine's
//! hardware parallelism time-slice one core and show no speedup (single-vCPU
//! CI in particular reports flat QPS across the sweep). The JSON records
//! `hardware_threads` so readers can judge the sweep in context.

use lovo_index::{
    FastScanCodes, FastScanKernel, FlatIndex, IndexKind, IvfPqConfig, IvfPqIndex, PqConfig,
    ProductQuantizer, QuantizedFlatIndex, QuantizedLut, VectorIndex,
};
use lovo_store::{BatchQuery, CollectionConfig, SegmentedCollection};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

/// Per-workload wall-clock summary over repeated query passes.
struct LatencyStats {
    qps: f64,
    p50_us: f64,
    p99_us: f64,
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)]
}

/// Runs `run_query` over every query, repeating whole passes until ~0.5 s of
/// samples accumulate, and summarizes per-query latency.
fn measure_queries(queries: &[Vec<f32>], mut run_query: impl FnMut(&[f32])) -> LatencyStats {
    let mut samples_us: Vec<f64> = Vec::new();
    let mut total_secs = 0.0f64;
    let budget_secs = 0.5;
    let max_passes = 50;
    for _ in 0..max_passes {
        for q in queries {
            let start = Instant::now();
            run_query(q);
            let secs = start.elapsed().as_secs_f64();
            samples_us.push(secs * 1e6);
            total_secs += secs;
        }
        if total_secs >= budget_secs {
            break;
        }
    }
    samples_us.sort_by(|a, b| a.total_cmp(b));
    LatencyStats {
        qps: samples_us.len() as f64 / total_secs,
        p50_us: percentile(&samples_us, 0.50),
        p99_us: percentile(&samples_us, 0.99),
    }
}

fn random_unit_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            lovo_index::metric::normalize(&mut v);
            v
        })
        .collect()
}

/// Exact f32 top-k ids per query — the recall ground truth.
fn ground_truth(flat: &FlatIndex, queries: &[Vec<f32>], k: usize) -> Vec<Vec<u64>> {
    queries
        .iter()
        .map(|q| {
            flat.search(q, k)
                .unwrap()
                .into_iter()
                .map(|h| h.id)
                .collect()
        })
        .collect()
}

/// Mean recall@k of `search` against the precomputed truth sets.
fn recall_against(
    truth: &[Vec<u64>],
    queries: &[Vec<f32>],
    k: usize,
    mut search: impl FnMut(&[f32]) -> Vec<u64>,
) -> f64 {
    let mut hit = 0usize;
    let mut total = 0usize;
    for (q, t) in queries.iter().zip(truth) {
        let got = search(q);
        hit += got.iter().filter(|id| t.contains(id)).count();
        total += k.min(t.len());
    }
    hit as f64 / total.max(1) as f64
}

fn json_latency(name: &str, s: &LatencyStats, recall: Option<f64>) -> String {
    match recall {
        Some(r) => format!(
            "\"{name}\": {{\"qps\": {:.1}, \"p50_us\": {:.2}, \"p99_us\": {:.2}, \"recall_at_k\": {:.4}}}",
            s.qps, s.p50_us, s.p99_us, r
        ),
        None => format!(
            "\"{name}\": {{\"qps\": {:.1}, \"p50_us\": {:.2}, \"p99_us\": {:.2}}}",
            s.qps, s.p50_us, s.p99_us
        ),
    }
}

/// Million rows scored per second running `scan` in a ~0.5 s loop.
fn scan_throughput(rows: usize, mut scan: impl FnMut() -> f32) -> f64 {
    let mut passes = 0u64;
    let mut checksum = 0.0f32;
    let start = Instant::now();
    while start.elapsed().as_secs_f64() < 0.5 {
        checksum += scan();
        passes += 1;
    }
    black_box(checksum);
    passes as f64 * rows as f64 / start.elapsed().as_secs_f64() / 1e6
}

/// ADC kernel comparison on the same 16-centroid PQ: f32 `score_list` vs. the
/// fast-scan layout under the scalar and the runtime-detected kernel.
fn bench_adc_kernels(vectors: &[Vec<f32>], queries: &[Vec<f32>], dim: usize) -> String {
    let rows = vectors.len();
    let subspaces = (dim / 4).max(1);
    let pq = ProductQuantizer::train(
        PqConfig {
            dim,
            num_subspaces: subspaces,
            centroids_per_subspace: 16,
            seed: 0x4b17,
        },
        &vectors[..rows.min(4_000)],
    )
    .unwrap();

    let mut packed = FastScanCodes::new(subspaces);
    let mut flat_codes: Vec<u8> = Vec::with_capacity(rows * subspaces);
    for v in vectors {
        let code = pq.encode(v).unwrap();
        packed.append(&code.0).unwrap();
        flat_codes.extend_from_slice(&code.0);
    }

    let query = &queries[0];
    let adc = pq.adc_table(query).unwrap();
    let lut = QuantizedLut::from_adc(&adc).unwrap();

    let mut scores: Vec<f32> = Vec::with_capacity(rows);
    let f32_mcodes = scan_throughput(rows, || {
        scores.clear();
        adc.score_list(black_box(&flat_codes), subspaces, &mut scores);
        scores[scores.len() - 1]
    });

    let scalar = FastScanKernel::scalar();
    let scalar_mcodes = scan_throughput(rows, || {
        scores.clear();
        packed.scores(black_box(&lut), scalar, &mut scores).unwrap();
        scores[scores.len() - 1]
    });

    let detected = FastScanKernel::detect();
    let detected_mcodes = scan_throughput(rows, || {
        scores.clear();
        packed
            .scores(black_box(&lut), detected, &mut scores)
            .unwrap();
        scores[scores.len() - 1]
    });

    format!(
        "\"adc_kernels\": {{\"subspaces\": {subspaces}, \"adc_f32\": {{\"mcodes_per_sec\": {f32_mcodes:.1}}}, \"fastscan_scalar\": {{\"mcodes_per_sec\": {scalar_mcodes:.1}}}, \"fastscan_detected\": {{\"kernel\": \"{}\", \"mcodes_per_sec\": {detected_mcodes:.1}}}}}",
        detected.name()
    )
}

/// Intra-query worker sweep: one query against a collection of many sealed
/// segments, forced worker counts 1/2/4/8.
fn bench_intra_query(vectors: &[Vec<f32>], queries: &[Vec<f32>], dim: usize, k: usize) -> String {
    let segments = 20usize;
    let capacity = vectors.len().div_ceil(segments);
    let cfg = CollectionConfig::new(dim)
        .with_index_kind(IndexKind::BruteForce)
        .with_segment_capacity(capacity);
    let mut col = SegmentedCollection::new("bench", cfg).unwrap();
    for (i, v) in vectors.iter().enumerate() {
        col.insert(i as u64, v).unwrap();
    }
    let sealed = col.stats().sealed_segments;

    let hardware = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut entries = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let stats = measure_queries(queries, |q| {
            let batch = [BatchQuery {
                query: q,
                k,
                filter: None,
            }];
            black_box(col.search_batch_with_stats_opts(&batch, workers).unwrap());
        });
        entries.push(format!(
            "{{\"workers\": {workers}, \"qps\": {:.1}, \"p50_us\": {:.2}}}",
            stats.qps, stats.p50_us
        ));
    }
    format!(
        "\"intra_query\": {{\"sealed_segments\": {sealed}, \"hardware_threads\": {hardware}, \"sweep\": [{}]}}",
        entries.join(", ")
    )
}

fn bench_rows(rows: usize, dim: usize, num_queries: usize, k: usize) -> String {
    eprintln!("[fastscan_bench] rows={rows}: generating data...");
    let vectors = random_unit_vectors(rows, dim, 0xbe7c);
    let queries = random_unit_vectors(num_queries, dim, 0x9e1);

    eprintln!("[fastscan_bench] rows={rows}: building flat baselines...");
    let mut flat = FlatIndex::new(dim);
    for (i, v) in vectors.iter().enumerate() {
        flat.insert(i as u64, v).unwrap();
    }
    let truth = ground_truth(&flat, &queries, k);

    // --- Flat top-k: f32 baseline vs. the int8 overfetch-and-rescore tier. ---
    eprintln!("[fastscan_bench] rows={rows}: flat f32 vs int8...");
    let flat_stats = measure_queries(&queries, |q| {
        black_box(flat.search(q, k).unwrap());
    });
    let flat_recall = 1.0; // the truth source by construction

    let mut int8 = QuantizedFlatIndex::new(dim);
    for (i, v) in vectors.iter().enumerate() {
        int8.insert(i as u64, v).unwrap();
    }
    let int8_stats = measure_queries(&queries, |q| {
        black_box(int8.search(q, k).unwrap());
    });
    let int8_recall = recall_against(&truth, &queries, k, |q| {
        int8.search(q, k)
            .unwrap()
            .into_iter()
            .map(|h| h.id)
            .collect()
    });

    // --- Recall-vs-QPS curve for int8: overfetch sweep. ---
    eprintln!("[fastscan_bench] rows={rows}: int8 overfetch curve...");
    let mut int8_curve = Vec::new();
    for overfetch in [1usize, 2, 4, 8] {
        let mut idx = QuantizedFlatIndex::with_overfetch(dim, overfetch);
        for (i, v) in vectors.iter().enumerate() {
            idx.insert(i as u64, v).unwrap();
        }
        let stats = measure_queries(&queries, |q| {
            black_box(idx.search(q, k).unwrap());
        });
        let recall = recall_against(&truth, &queries, k, |q| {
            idx.search(q, k)
                .unwrap()
                .into_iter()
                .map(|h| h.id)
                .collect()
        });
        int8_curve.push(format!(
            "{{\"overfetch\": {overfetch}, \"qps\": {:.1}, \"recall_at_k\": {:.4}}}",
            stats.qps, recall
        ));
    }

    // --- IVF-PQ: f32 ADC baseline vs. the 4-bit fast-scan cells, then the
    // recall-vs-QPS curve over nprobe for the fast-scan variant. ---
    eprintln!("[fastscan_bench] rows={rows}: IVF-PQ baseline vs fast-scan...");
    let mut ivf = IvfPqIndex::new(IvfPqConfig::for_dim(dim)).unwrap();
    let mut ivf_fast = IvfPqIndex::new(
        IvfPqConfig::for_dim(dim)
            .with_fastscan()
            .with_int8_rescore(),
    )
    .unwrap();
    for (i, v) in vectors.iter().enumerate() {
        ivf.insert(i as u64, v).unwrap();
        ivf_fast.insert(i as u64, v).unwrap();
    }
    ivf.build().unwrap();
    ivf_fast.build().unwrap();
    let ivf_stats = measure_queries(&queries, |q| {
        black_box(ivf.search(q, k).unwrap());
    });
    let ivf_recall = recall_against(&truth, &queries, k, |q| {
        ivf.search(q, k)
            .unwrap()
            .into_iter()
            .map(|h| h.id)
            .collect()
    });
    let ivf_fast_stats = measure_queries(&queries, |q| {
        black_box(ivf_fast.search(q, k).unwrap());
    });
    let ivf_fast_recall = recall_against(&truth, &queries, k, |q| {
        ivf_fast
            .search(q, k)
            .unwrap()
            .into_iter()
            .map(|h| h.id)
            .collect()
    });

    eprintln!("[fastscan_bench] rows={rows}: fast-scan nprobe curve...");
    let mut fastscan_curve = Vec::new();
    for nprobe in [2usize, 4, 8, 12, 16] {
        let mut idx = IvfPqIndex::new(
            IvfPqConfig::for_dim(dim)
                .with_nprobe(nprobe)
                .with_fastscan()
                .with_int8_rescore(),
        )
        .unwrap();
        for (i, v) in vectors.iter().enumerate() {
            idx.insert(i as u64, v).unwrap();
        }
        idx.build().unwrap();
        let stats = measure_queries(&queries, |q| {
            black_box(idx.search(q, k).unwrap());
        });
        let recall = recall_against(&truth, &queries, k, |q| {
            idx.search(q, k)
                .unwrap()
                .into_iter()
                .map(|h| h.id)
                .collect()
        });
        fastscan_curve.push(format!(
            "{{\"nprobe\": {nprobe}, \"qps\": {:.1}, \"recall_at_k\": {:.4}}}",
            stats.qps, recall
        ));
    }

    // --- Raw ADC kernel throughput and the intra-query sweep. ---
    eprintln!("[fastscan_bench] rows={rows}: ADC kernels...");
    let adc_json = bench_adc_kernels(&vectors, &queries, dim);
    eprintln!("[fastscan_bench] rows={rows}: intra-query sweep...");
    let intra_json = bench_intra_query(&vectors, &queries, dim, k);

    format!(
        "    \"{rows}\": {{\n      {},\n      {},\n      {},\n      {},\n      \"int8_overfetch_curve\": [{}],\n      \"fastscan_nprobe_curve\": [{}],\n      {adc_json},\n      {intra_json}\n    }}",
        json_latency("flat_topk_f32", &flat_stats, Some(flat_recall)),
        json_latency("flat_topk_int8", &int8_stats, Some(int8_recall)),
        json_latency("ivfpq_topk_f32", &ivf_stats, Some(ivf_recall)),
        json_latency("ivfpq_topk_fastscan", &ivf_fast_stats, Some(ivf_fast_recall)),
        int8_curve.join(", "),
        fastscan_curve.join(", "),
    )
}

fn main() {
    let mut rows: Vec<usize> = vec![100_000];
    let mut dim = 64usize;
    let mut num_queries = 64usize;
    let mut k = 10usize;
    let mut out: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args.get(i + 1).cloned();
        let take = |name: &str| -> String {
            value
                .clone()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag {
            "--rows" => {
                rows = take("--rows")
                    .split(',')
                    .map(|s| s.trim().parse().expect("--rows expects integers"))
                    .collect();
                i += 2;
            }
            "--dim" => {
                dim = take("--dim").parse().expect("--dim expects an integer");
                i += 2;
            }
            "--queries" => {
                num_queries = take("--queries").parse().expect("--queries: integer");
                i += 2;
            }
            "--k" => {
                k = take("--k").parse().expect("--k expects an integer");
                i += 2;
            }
            "--out" => {
                out = Some(take("--out"));
                i += 2;
            }
            other => panic!("unknown flag {other}"),
        }
    }

    let kernel = FastScanKernel::detect();
    let sections: Vec<String> = rows
        .iter()
        .map(|&n| bench_rows(n, dim, num_queries, k))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"fastscan_pr7\",\n  \"dim\": {dim},\n  \"k\": {k},\n  \"queries\": {num_queries},\n  \"kernel\": \"{}\",\n  \"rows\": {{\n{}\n  }}\n}}",
        kernel.name(),
        sections.join(",\n")
    );
    println!("{json}");
    if let Some(path) = out {
        std::fs::write(&path, format!("{json}\n")).expect("write --out file");
        eprintln!("[fastscan_bench] wrote {path}");
    }
}
