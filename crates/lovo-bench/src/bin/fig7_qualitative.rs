//! Regenerates the paper artifact corresponding to `fig7_qualitative`.
fn main() {
    let scale = lovo_bench::scale_from_args();
    let report = lovo_eval::experiments::fig7_qualitative(scale);
    println!("{}", report.render());
}
