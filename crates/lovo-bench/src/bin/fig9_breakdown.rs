//! Regenerates the paper artifact corresponding to `fig9_breakdown`.
fn main() {
    let scale = lovo_bench::scale_from_args();
    let report = lovo_eval::experiments::fig9_breakdown(scale);
    println!("{}", report.render());
}
