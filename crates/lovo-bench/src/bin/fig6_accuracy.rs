//! Regenerates the paper artifact corresponding to `fig6_accuracy`.
fn main() {
    let scale = lovo_bench::scale_from_args();
    let report = lovo_eval::experiments::fig6_accuracy(scale);
    println!("{}", report.render());
}
