//! Incremental-ingest experiment: append cost vs full rebuild on the
//! segmented storage engine.
fn main() {
    let scale = lovo_bench::scale_from_args();
    let report = lovo_eval::experiments::incremental_ingest(scale);
    println!("{}", report.render());
}
