//! Regenerates the paper artifact corresponding to `fig2_motivation`.
fn main() {
    let scale = lovo_bench::scale_from_args();
    let report = lovo_eval::experiments::fig2_motivation(scale);
    println!("{}", report.render());
}
