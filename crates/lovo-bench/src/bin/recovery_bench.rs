//! Durability cost benchmark (PR 8): what crash safety costs at open and at
//! query time.
//!
//! Three measurements, emitted as one JSON document (`--out BENCH_pr8.json`):
//!
//! 1. **Cold open** — `Lovo::build_durable` over a generated collection,
//!    drop, `Lovo::open`: wall-clock to rebuild the full engine (segment
//!    files -> vectors -> deterministic index rebuild -> key-frame blobs).
//! 2. **WAL replay rate** — a store whose rows all live in the log (never
//!    sealed): rows/s and MB/s through `open_durable`'s replay path.
//! 3. **Reopened vs in-memory QPS** — the same query set against the
//!    reopened engine and a never-persisted twin, asserting identical
//!    results; any gap is recovery-induced (it should be ~zero, since the
//!    rebuilt indexes are bit-identical).

use lovo_core::{DurabilityConfig, Lovo, LovoConfig};
use lovo_store::{patch_id, CollectionConfig, PatchRecord, VectorDatabase};
use lovo_video::{DatasetConfig, DatasetKind, VideoCollection};
use std::path::PathBuf;
use std::time::Instant;

const QUERIES: &[&str] = &[
    "a red car driving in the center of the road",
    "a bus on the road",
    "a person walking on the sidewalk",
    "a truck carrying cargo",
];

fn scratch_root(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("lovo-recovery-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn qps(lovo: &Lovo, rounds: usize) -> (f64, usize) {
    // Warm-up pass so encoder one-time setup doesn't pollute the clock.
    let mut results = 0usize;
    for q in QUERIES {
        results += lovo.query(q).expect("query").frames.len();
    }
    let start = Instant::now();
    for _ in 0..rounds {
        for q in QUERIES {
            lovo.query(q).expect("query");
        }
    }
    let seconds = start.elapsed().as_secs_f64();
    ((rounds * QUERIES.len()) as f64 / seconds, results)
}

fn bench_engine(frames: usize, rounds: usize) -> String {
    let root = scratch_root("engine");
    let footage = VideoCollection::generate(
        DatasetConfig::for_kind(DatasetKind::Bellevue)
            .with_frames_per_video(frames)
            .with_seed(7),
    );
    let config = LovoConfig::default();

    let build_start = Instant::now();
    let durable = Lovo::build_durable(&footage, config, &root, DurabilityConfig::new())
        .expect("build durable");
    let build_seconds = build_start.elapsed().as_secs_f64();
    let patches = durable.collection_stats().entities;
    let segments = durable.collection_stats().sealed_segments;
    drop(durable);

    let open_start = Instant::now();
    let (reopened, report) =
        Lovo::open(config, &root, DurabilityConfig::new()).expect("open durable");
    let cold_open_seconds = open_start.elapsed().as_secs_f64();
    assert!(
        report.is_clean(),
        "bench store must recover cleanly: {report:?}"
    );

    let twin = Lovo::build(&footage, config).expect("build twin");
    let (qps_reopened, results_reopened) = qps(&reopened, rounds);
    let (qps_in_memory, results_in_memory) = qps(&twin, rounds);
    let identical = QUERIES.iter().all(|q| {
        twin.query(q).expect("twin query").frames == reopened.query(q).expect("query").frames
    });
    assert_eq!(results_reopened, results_in_memory);

    let _ = std::fs::remove_dir_all(&root);
    format!(
        "  \"engine\": {{\"frames_per_video\": {frames}, \"patches\": {patches}, \
         \"sealed_segments\": {segments}, \"build_durable_seconds\": {build_seconds:.4}, \
         \"cold_open_seconds\": {cold_open_seconds:.4}, \
         \"cold_open_rows_per_sec\": {:.1}, \"qps_in_memory\": {qps_in_memory:.1}, \
         \"qps_reopened\": {qps_reopened:.1}, \"results_identical\": {identical}}}",
        patches as f64 / cold_open_seconds,
    )
}

fn bench_wal_replay(batches: u64, rows_per_batch: u64, dim: usize) -> String {
    let root = scratch_root("wal");
    {
        let db = VectorDatabase::create_durable(&root, DurabilityConfig::new()).expect("create");
        // Capacity above the total row count: nothing may auto-seal, so the
        // reopen below exercises pure WAL replay.
        let capacity = (batches * rows_per_batch + 1) as usize;
        db.create_collection(
            "bench",
            CollectionConfig::new(dim).with_segment_capacity(capacity),
        )
        .expect("collection");
        for b in 0..batches {
            let rows: Vec<(Vec<f32>, PatchRecord)> = (0..rows_per_batch)
                .map(|r| {
                    let frame = b as u32;
                    let patch = r as u32;
                    let id = patch_id(1, frame, patch);
                    let vector: Vec<f32> = (0..dim)
                        .map(|d| (((b * 131 + r * 17 + d as u64) % 251) as f32).sin())
                        .collect();
                    let record = PatchRecord {
                        patch_id: id,
                        video_id: 1,
                        frame_index: frame,
                        patch_index: patch,
                        bbox: (0.0, 0.0, 16.0, 16.0),
                        timestamp: frame as f64 / 30.0,
                        class_code: Some((r % 7) as u8),
                    };
                    (vector, record)
                })
                .collect();
            db.insert_patches("bench", rows.iter().map(|(v, r)| (v.as_slice(), r.clone())))
                .expect("insert");
        }
        // Never sealed: every row must come back through WAL replay.
    }
    let wal_bytes = std::fs::metadata(root.join("wal-000000.log"))
        .expect("wal file")
        .len();
    let open_start = Instant::now();
    let (db, report) = VectorDatabase::open_durable(&root, DurabilityConfig::new()).expect("open");
    let open_seconds = open_start.elapsed().as_secs_f64();
    let rows = batches * rows_per_batch;
    assert_eq!(
        report.wal_rows_replayed as u64, rows,
        "replay must cover every logged row"
    );
    assert_eq!(db.metadata_rows() as u64, rows);
    let _ = std::fs::remove_dir_all(&root);
    format!(
        "  \"wal_replay\": {{\"records\": {batches}, \"rows\": {rows}, \"dim\": {dim}, \
         \"wal_bytes\": {wal_bytes}, \"open_seconds\": {open_seconds:.4}, \
         \"rows_per_sec\": {:.1}, \"mb_per_sec\": {:.2}}}",
        rows as f64 / open_seconds,
        wal_bytes as f64 / open_seconds / (1024.0 * 1024.0),
    )
}

fn main() {
    let mut frames = 150usize;
    let mut rounds = 25usize;
    let mut wal_batches = 200u64;
    let mut rows_per_batch = 64u64;
    let mut out: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args.get(i + 1).cloned();
        let take = |name: &str| -> String {
            value
                .clone()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag {
            "--frames" => {
                frames = take("--frames").parse().expect("--frames: integer");
                i += 2;
            }
            "--rounds" => {
                rounds = take("--rounds").parse().expect("--rounds: integer");
                i += 2;
            }
            "--wal-batches" => {
                wal_batches = take("--wal-batches")
                    .parse()
                    .expect("--wal-batches: integer");
                i += 2;
            }
            "--rows-per-batch" => {
                rows_per_batch = take("--rows-per-batch")
                    .parse()
                    .expect("--rows-per-batch: integer");
                i += 2;
            }
            "--out" => {
                out = Some(take("--out"));
                i += 2;
            }
            other => panic!("unknown flag {other}"),
        }
    }

    let engine = bench_engine(frames, rounds);
    let wal = bench_wal_replay(wal_batches, rows_per_batch, 64);
    let json = format!("{{\n  \"bench\": \"recovery_pr8\",\n{engine},\n{wal}\n}}");
    println!("{json}");
    if let Some(path) = out {
        std::fs::write(&path, format!("{json}\n")).expect("write --out file");
        eprintln!("[recovery_bench] wrote {path}");
    }
}
