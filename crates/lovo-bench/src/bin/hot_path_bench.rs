//! Machine-readable hot-path benchmark: emits `BENCH_pr3.json`-style numbers
//! (QPS + p50/p99 query latency for flat / IVF-PQ / HNSW, ADC list-scan
//! throughput, and raw dot-kernel throughput) at configurable row counts.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p lovo-bench --bin hot_path_bench -- \
//!     [--rows 10000,100000] [--dim 64] [--queries 64] [--k 10] [--out PATH]
//! ```
//!
//! JSON goes to stdout; `--out` additionally writes it to a file. CI runs this
//! with a small `--rows` so the emitter can never bit-rot.

use lovo_index::{
    FlatIndex, HnswConfig, HnswIndex, IvfPqConfig, IvfPqIndex, ProductQuantizer, VectorIndex,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

/// Per-workload wall-clock summary over repeated query passes.
struct LatencyStats {
    qps: f64,
    p50_us: f64,
    p99_us: f64,
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)]
}

/// Runs `run_query` over every query, repeating whole passes until ~0.5 s of
/// samples accumulate, and summarizes per-query latency.
fn measure_queries(queries: &[Vec<f32>], mut run_query: impl FnMut(&[f32])) -> LatencyStats {
    let mut samples_us: Vec<f64> = Vec::new();
    let mut total_secs = 0.0f64;
    let budget_secs = 0.5;
    let max_passes = 50;
    for _ in 0..max_passes {
        for q in queries {
            let start = Instant::now();
            run_query(q);
            let secs = start.elapsed().as_secs_f64();
            samples_us.push(secs * 1e6);
            total_secs += secs;
        }
        if total_secs >= budget_secs {
            break;
        }
    }
    samples_us.sort_by(|a, b| a.total_cmp(b));
    LatencyStats {
        qps: samples_us.len() as f64 / total_secs,
        p50_us: percentile(&samples_us, 0.50),
        p99_us: percentile(&samples_us, 0.99),
    }
}

fn random_unit_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            lovo_index::metric::normalize(&mut v);
            v
        })
        .collect()
}

fn json_latency(name: &str, s: &LatencyStats) -> String {
    format!(
        "\"{name}\": {{\"qps\": {:.1}, \"p50_us\": {:.2}, \"p99_us\": {:.2}}}",
        s.qps, s.p50_us, s.p99_us
    )
}

fn bench_rows(rows: usize, dim: usize, num_queries: usize, k: usize) -> String {
    eprintln!("[hot_path_bench] rows={rows}: generating data...");
    let vectors = random_unit_vectors(rows, dim, 0xbe7c);
    let queries = random_unit_vectors(num_queries, dim, 0x9e1);

    // --- Index builds. ---
    let mut flat = FlatIndex::new(dim);
    let mut ivf = IvfPqIndex::new(IvfPqConfig::for_dim(dim)).unwrap();
    let mut hnsw = HnswIndex::new(HnswConfig::for_dim(dim)).unwrap();
    for (i, v) in vectors.iter().enumerate() {
        flat.insert(i as u64, v).unwrap();
        ivf.insert(i as u64, v).unwrap();
    }
    eprintln!("[hot_path_bench] rows={rows}: building IVF-PQ...");
    ivf.build().unwrap();
    eprintln!("[hot_path_bench] rows={rows}: building HNSW...");
    for (i, v) in vectors.iter().enumerate() {
        hnsw.insert(i as u64, v).unwrap();
    }

    // --- Top-k search per family. ---
    eprintln!("[hot_path_bench] rows={rows}: measuring search...");
    let flat_stats = measure_queries(&queries, |q| {
        black_box(flat.search(q, k).unwrap());
    });
    let ivf_stats = measure_queries(&queries, |q| {
        black_box(ivf.search(q, k).unwrap());
    });
    let hnsw_stats = measure_queries(&queries, |q| {
        black_box(hnsw.search(q, k).unwrap());
    });

    // --- ADC list scoring: one pass = tabulate the query, then score the
    // whole contiguous code list the way the inverted lists store it. ---
    eprintln!("[hot_path_bench] rows={rows}: measuring ADC scan...");
    let pq = ProductQuantizer::train(
        lovo_index::PqConfig::for_dim(dim),
        &vectors[..rows.min(4_000)],
    )
    .unwrap();
    let stride = pq.config().num_subspaces;
    let codes: Vec<u8> = vectors
        .iter()
        .flat_map(|v| pq.encode(v).unwrap().0)
        .collect();
    let adc_query = &queries[0];
    let mut scores: Vec<f32> = Vec::with_capacity(rows);
    let mut passes = 0u64;
    let start = Instant::now();
    let mut checksum = 0.0f32;
    while start.elapsed().as_secs_f64() < 0.5 {
        let table = pq.adc_table(adc_query).unwrap();
        scores.clear();
        table.score_list(black_box(&codes), stride, &mut scores);
        checksum += scores[scores.len() - 1];
        passes += 1;
    }
    black_box(checksum);
    let adc_secs = start.elapsed().as_secs_f64();
    let codes_scored = passes as f64 * rows as f64;
    let adc_mcodes = codes_scored / adc_secs / 1e6;
    let adc_ns_per_code = adc_secs * 1e9 / codes_scored;

    // --- Raw dot kernel throughput over the row-major flat payload. ---
    let flat_data: Vec<f32> = vectors.iter().flatten().copied().collect();
    let mut dot_passes = 0u64;
    let start = Instant::now();
    let mut acc = 0.0f32;
    while start.elapsed().as_secs_f64() < 0.3 {
        for row in flat_data.chunks_exact(dim) {
            acc += lovo_index::metric::dot(black_box(adc_query), black_box(row));
        }
        dot_passes += 1;
    }
    black_box(acc);
    let dot_secs = start.elapsed().as_secs_f64();
    let dot_melems = dot_passes as f64 * rows as f64 * dim as f64 / dot_secs / 1e6;

    // --- Batch kernel over the same payload. ---
    let mut batch_out: Vec<f32> = Vec::with_capacity(rows);
    let mut batch_passes = 0u64;
    let start = Instant::now();
    let mut acc = 0.0f32;
    while start.elapsed().as_secs_f64() < 0.3 {
        batch_out.clear();
        lovo_index::metric::dot_batch(
            black_box(adc_query),
            black_box(&flat_data),
            dim,
            &mut batch_out,
        );
        acc += batch_out[batch_out.len() - 1];
        batch_passes += 1;
    }
    black_box(acc);
    let batch_secs = start.elapsed().as_secs_f64();
    let batch_melems = batch_passes as f64 * rows as f64 * dim as f64 / batch_secs / 1e6;

    format!(
        "    \"{rows}\": {{\n      {},\n      {},\n      {},\n      \"adc_scan\": {{\"mcodes_per_sec\": {adc_mcodes:.1}, \"ns_per_code\": {adc_ns_per_code:.2}}},\n      \"dot\": {{\"melems_per_sec\": {dot_melems:.1}}},\n      \"dot_batch\": {{\"melems_per_sec\": {batch_melems:.1}}}\n    }}",
        json_latency("flat_topk", &flat_stats),
        json_latency("ivfpq_topk", &ivf_stats),
        json_latency("hnsw_topk", &hnsw_stats),
    )
}

fn main() {
    let mut rows: Vec<usize> = vec![10_000, 100_000];
    let mut dim = 64usize;
    let mut num_queries = 64usize;
    let mut k = 10usize;
    let mut out: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args.get(i + 1).cloned();
        let take = |name: &str| -> String {
            value
                .clone()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag {
            "--rows" => {
                rows = take("--rows")
                    .split(',')
                    .map(|s| s.trim().parse().expect("--rows expects integers"))
                    .collect();
                i += 2;
            }
            "--dim" => {
                dim = take("--dim").parse().expect("--dim expects an integer");
                i += 2;
            }
            "--queries" => {
                num_queries = take("--queries").parse().expect("--queries: integer");
                i += 2;
            }
            "--k" => {
                k = take("--k").parse().expect("--k expects an integer");
                i += 2;
            }
            "--out" => {
                out = Some(take("--out"));
                i += 2;
            }
            other => panic!("unknown flag {other}"),
        }
    }

    let sections: Vec<String> = rows
        .iter()
        .map(|&n| bench_rows(n, dim, num_queries, k))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"hot_path_pr3\",\n  \"dim\": {dim},\n  \"k\": {k},\n  \"queries\": {num_queries},\n  \"rows\": {{\n{}\n  }}\n}}",
        sections.join(",\n")
    );
    println!("{json}");
    if let Some(path) = out {
        std::fs::write(&path, format!("{json}\n")).expect("write --out file");
        eprintln!("[hot_path_bench] wrote {path}");
    }
}
