//! Machine-readable serving-layer benchmark: emits `BENCH_pr5.json`-style
//! numbers comparing the `lovo-serve` `QueryService` against the same number
//! of clients calling `Lovo::query_spec` directly, at 1/4/16/64 concurrent
//! clients, with the micro-batch window on/off and the result cache cold vs
//! warm.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p lovo-bench --bin serve_bench -- \
//!     [--frames 240] [--iters 25] [--clients 1,4,16,64] [--out PATH]
//! ```
//!
//! JSON goes to stdout; `--out` additionally writes it to a file. CI runs
//! this with `--clients 4` and a small `--iters` as a smoke test; the
//! full-size run is committed as `BENCH_pr5.json`.

use lovo_core::{Lovo, LovoConfig, QuerySpec};
use lovo_serve::{QueryService, ServeConfig};
use lovo_video::{DatasetConfig, DatasetKind, ObjectClass, QueryPredicate, VideoCollection};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

struct LatencyStats {
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[rank.min(sorted_ms.len() - 1)]
}

/// Runs `clients` threads, each issuing `iters` queries round-robin over the
/// spec set through `run_query`, and summarizes throughput (whole-run
/// wall-clock) and the merged per-query latency distribution.
fn measure<F>(clients: usize, iters: usize, specs: &[QuerySpec], run_query: F) -> LatencyStats
where
    F: Fn(&QuerySpec) + Sync,
{
    let samples: Mutex<Vec<f64>> = Mutex::new(Vec::with_capacity(clients * iters));
    let wall_start = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..clients {
            let samples = &samples;
            let run_query = &run_query;
            scope.spawn(move || {
                let mut local = Vec::with_capacity(iters);
                for i in 0..iters {
                    let spec = &specs[(client + i) % specs.len()];
                    let start = Instant::now();
                    run_query(spec);
                    local.push(start.elapsed().as_secs_f64() * 1e3);
                }
                samples.lock().expect("samples lock").extend(local);
            });
        }
    });
    let wall = wall_start.elapsed().as_secs_f64();
    let mut samples = samples.into_inner().expect("samples lock");
    samples.sort_by(|a, b| a.total_cmp(b));
    LatencyStats {
        qps: samples.len() as f64 / wall,
        p50_ms: percentile(&samples, 0.50),
        p99_ms: percentile(&samples, 0.99),
    }
}

fn json_latency(name: &str, s: &LatencyStats) -> String {
    format!(
        "\"{name}\": {{\"qps\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}",
        s.qps, s.p50_ms, s.p99_ms
    )
}

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let frames: usize = arg_value("--frames")
        .and_then(|v| v.parse().ok())
        .unwrap_or(240);
    let iters: usize = arg_value("--iters")
        .and_then(|v| v.parse().ok())
        .unwrap_or(25);
    let clients_list: Vec<usize> = arg_value("--clients")
        .map(|v| v.split(',').filter_map(|c| c.trim().parse().ok()).collect())
        .unwrap_or_else(|| vec![1, 4, 16, 64]);
    let out = arg_value("--out");

    eprintln!("building engine ({frames} frames/video)...");
    let videos = VideoCollection::generate(
        DatasetConfig::for_kind(DatasetKind::Bellevue)
            .with_frames_per_video(frames)
            .with_seed(11),
    );
    let engine = Arc::new(Lovo::build(&videos, LovoConfig::default()).expect("build engine"));

    // A workload with repetition (the serving case: many users, overlapping
    // questions): 8 distinct plans including two filtered ones.
    let specs: Vec<QuerySpec> = vec![
        QuerySpec::new("a red car driving in the center of the road"),
        QuerySpec::new("a bus driving on the road"),
        QuerySpec::new("a person walking on the sidewalk"),
        QuerySpec::new("a red car side by side with another car"),
        QuerySpec::new("a car on the road"),
        QuerySpec::new("a truck on the road"),
        QuerySpec::new("a bus driving on the road")
            .with_predicate(QueryPredicate::class(ObjectClass::Bus)),
        QuerySpec::new("a red car").with_predicate(QueryPredicate::time_range(0.0, 4.0)),
    ];

    let window = Duration::from_millis(1);
    let mut sections: Vec<String> = Vec::new();
    for &clients in &clients_list {
        eprintln!("clients = {clients}...");
        let mut rows: Vec<String> = Vec::new();

        // Baseline: every client calls the engine directly.
        let direct = measure(clients, iters, &specs, |spec| {
            let result = engine.query_spec(spec).expect("direct query");
            std::hint::black_box(result.frames.len());
        });
        rows.push(json_latency("direct", &direct));

        // Service, no batch window, no cache: pure worker-pool overhead.
        {
            let service = QueryService::start(
                Arc::clone(&engine),
                ServeConfig::default()
                    .with_queue_depth(8192)
                    .with_batch_window(Duration::ZERO)
                    .with_cache_capacity(0)
                    .with_maintenance_interval(None),
            )
            .expect("start service");
            let stats = measure(clients, iters, &specs, |spec| {
                let served = service.submit(spec.clone()).expect("submit");
                std::hint::black_box(served.result.frames.len());
            });
            rows.push(json_latency("serve_nobatch_cold", &stats));
        }

        // Service, micro-batching on, cache off: coalescing only.
        {
            let service = QueryService::start(
                Arc::clone(&engine),
                ServeConfig::default()
                    .with_queue_depth(8192)
                    .with_batch_window(window)
                    .with_cache_capacity(0)
                    .with_maintenance_interval(None),
            )
            .expect("start service");
            let stats = measure(clients, iters, &specs, |spec| {
                let served = service.submit(spec.clone()).expect("submit");
                std::hint::black_box(served.result.frames.len());
            });
            rows.push(json_latency("serve_batch_cold", &stats));
        }

        // Service, micro-batching on, cache pre-warmed: the steady state of
        // repeated traffic over an unchanged collection.
        {
            let service = QueryService::start(
                Arc::clone(&engine),
                ServeConfig::default()
                    .with_queue_depth(8192)
                    .with_batch_window(window)
                    .with_maintenance_interval(None),
            )
            .expect("start service");
            for spec in &specs {
                service.submit(spec.clone()).expect("warm cache");
            }
            let stats = measure(clients, iters, &specs, |spec| {
                let served = service.submit(spec.clone()).expect("submit");
                std::hint::black_box(served.result.frames.len());
            });
            rows.push(json_latency("serve_batch_warm", &stats));
        }

        sections.push(format!(
            "  \"clients_{clients}\": {{\n    {}\n  }}",
            rows.join(",\n    ")
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"frames_per_video\": {frames},\n  \
         \"iters_per_client\": {iters},\n  \"distinct_plans\": {},\n  \
         \"batch_window_ms\": {},\n{}\n}}",
        specs.len(),
        window.as_secs_f64() * 1e3,
        sections.join(",\n")
    );
    println!("{json}");
    if let Some(path) = out {
        std::fs::write(&path, format!("{json}\n")).expect("write --out file");
        eprintln!("wrote {path}");
    }
}
