//! Regenerates Fig. 10: scalability with video duration.
fn main() {
    let scale = lovo_bench::scale_from_args();
    let durations: Vec<f64> = [30.0, 90.0, 300.0, 900.0]
        .iter()
        .map(|d| (d * scale).max(20.0))
        .collect();
    let report = lovo_eval::experiments::fig10_scalability(&durations);
    println!("{}", report.render());
}
