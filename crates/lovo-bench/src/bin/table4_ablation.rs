//! Regenerates the paper artifact corresponding to `table4_ablation`.
fn main() {
    let scale = lovo_bench::scale_from_args();
    let report = lovo_eval::experiments::table4_ablation(scale);
    println!("{}", report.render());
}
