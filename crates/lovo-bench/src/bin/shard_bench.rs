//! Machine-readable sharded-serving benchmark: emits `BENCH_pr10.json`-style
//! numbers comparing a 4-shard `ShardRouter` against one engine holding the
//! whole corpus, on (a) video predicates that map onto a single shard (the
//! router prunes the other three), (b) unfiltered full-fan-out queries, and
//! (c) a degraded gather with one shard permanently down.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p lovo-bench --bin shard_bench -- \
//!     [--videos 8] [--frames 240] [--iters 25] [--shards 4] \
//!     [--clients 16] [--out PATH]
//! ```
//!
//! JSON goes to stdout; `--out` additionally writes it to a file. CI runs
//! this with a small `--frames`/`--iters` as a smoke test; the full-size run
//! is committed as `BENCH_pr10.json`.

use lovo_core::{Lovo, LovoConfig, QuerySpec};
use lovo_serve::{
    partition_videos, CoarseRequest, CoarseResponse, EngineShard, HashPlacement, LocalShard,
    Placement, RerankRequest, RerankResponse, ShardConfig, ShardRouter,
};
use lovo_video::{DatasetConfig, DatasetKind, QueryPredicate, VideoCollection};
use std::sync::{Arc, Mutex};
use std::time::Instant;

struct LatencyStats {
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[rank.min(sorted_ms.len() - 1)]
}

/// Runs `clients` threads, each issuing `iters` queries round-robin over the
/// spec set through `run_query`, and summarizes throughput (whole-run
/// wall-clock) and the merged per-query latency distribution.
fn measure<F>(clients: usize, iters: usize, specs: &[QuerySpec], run_query: F) -> LatencyStats
where
    F: Fn(&QuerySpec) + Sync,
{
    let samples: Mutex<Vec<f64>> = Mutex::new(Vec::with_capacity(clients * iters));
    let wall_start = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..clients {
            let samples = &samples;
            let run_query = &run_query;
            scope.spawn(move || {
                let mut local = Vec::with_capacity(iters);
                for i in 0..iters {
                    let spec = &specs[(client + i) % specs.len()];
                    let start = Instant::now();
                    run_query(spec);
                    local.push(start.elapsed().as_secs_f64() * 1e3);
                }
                samples.lock().expect("samples lock").extend(local);
            });
        }
    });
    let wall = wall_start.elapsed().as_secs_f64();
    let mut samples = samples.into_inner().expect("samples lock");
    samples.sort_by(|a, b| a.total_cmp(b));
    LatencyStats {
        qps: samples.len() as f64 / wall,
        p50_ms: percentile(&samples, 0.50),
        p99_ms: percentile(&samples, 0.99),
    }
}

fn json_latency(name: &str, s: &LatencyStats) -> String {
    format!(
        "\"{name}\": {{\"qps\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}",
        s.qps, s.p50_ms, s.p99_ms
    )
}

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// A shard that is permanently down: every request fails immediately, the
/// way a crashed remote shard's transport would. Claims the whole id space
/// so pruning never routes around it.
struct DownShard;

impl EngineShard for DownShard {
    fn epoch(&self) -> u64 {
        0
    }

    fn video_range(&self) -> Option<(u32, u32)> {
        Some((0, u32::MAX))
    }

    fn coarse(&self, _request: &CoarseRequest) -> Result<CoarseResponse, String> {
        Err("synthetic outage".to_string())
    }

    fn rerank(&self, _request: &RerankRequest) -> Result<RerankResponse, String> {
        Err("synthetic outage".to_string())
    }
}

fn build_router(
    shards: Vec<Arc<dyn EngineShard>>,
    shard_count: usize,
    cache_capacity: usize,
) -> ShardRouter {
    ShardRouter::new(
        shards,
        Arc::new(HashPlacement::new(shard_count)),
        LovoConfig::default(),
        ShardConfig::default()
            .with_cache_capacity(cache_capacity)
            .with_result_cache_capacity(cache_capacity),
    )
    .expect("build router")
}

fn main() {
    let videos_n: usize = arg_value("--videos")
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let frames: usize = arg_value("--frames")
        .and_then(|v| v.parse().ok())
        .unwrap_or(240);
    let iters: usize = arg_value("--iters")
        .and_then(|v| v.parse().ok())
        .unwrap_or(25);
    let shard_count: usize = arg_value("--shards")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let clients: usize = arg_value("--clients")
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let out = arg_value("--out");

    eprintln!("building engines ({videos_n} videos x {frames} frames, {shard_count} shards)...");
    let videos = VideoCollection::generate(
        DatasetConfig::for_kind(DatasetKind::Bellevue)
            .with_num_videos(videos_n)
            .with_frames_per_video(frames)
            .with_seed(11),
    );
    let single = Arc::new(Lovo::build(&videos, LovoConfig::default()).expect("build single"));
    let placement = HashPlacement::new(shard_count);
    let engines: Vec<Arc<Lovo>> = partition_videos(&videos, &placement)
        .iter()
        .map(|part| Arc::new(Lovo::build(part, LovoConfig::default()).expect("build shard")))
        .collect();
    let locals: Vec<Arc<dyn EngineShard>> = engines
        .iter()
        .map(|engine| Arc::new(LocalShard::new(Arc::clone(engine))) as Arc<dyn EngineShard>)
        .collect();

    // 1-of-N-shard predicates: each spec restricts to the videos of exactly
    // one shard, so the router prunes the other N-1 — the serving-layer
    // analogue of the segment zone maps.
    let texts = [
        "a red car driving in the center of the road",
        "a bus driving on the road",
        "a person walking on the sidewalk",
        "a car on the road",
        "a truck on the road",
        "a red car side by side with another car",
        "a bus at a bus stop",
        "a person crossing the street",
    ];
    let shard_videos: Vec<Vec<u32>> = (0..shard_count)
        .map(|s| {
            videos
                .videos
                .iter()
                .map(|v| v.id)
                .filter(|&id| placement.shard_of(id) == s)
                .collect()
        })
        .collect();
    let filtered_specs: Vec<QuerySpec> = texts
        .iter()
        .enumerate()
        .map(|(i, text)| {
            let owned = &shard_videos[i % shard_count];
            QuerySpec::new(*text).with_predicate(QueryPredicate::videos(owned.iter().copied()))
        })
        .collect();
    let unfiltered_specs: Vec<QuerySpec> = texts.iter().map(|text| QuerySpec::new(*text)).collect();

    let mut rows: Vec<String> = Vec::new();

    // --- 1-of-N-shard predicates: unsharded vs sharded (cold and steady). ---
    eprintln!("filtered workload ({clients} clients)...");
    let unsharded_filtered = measure(clients, iters, &filtered_specs, |spec| {
        let result = single.query_spec(spec).expect("direct query");
        std::hint::black_box(result.frames.len());
    });
    rows.push(json_latency("unsharded_filtered", &unsharded_filtered));

    let cold = build_router(locals.clone(), shard_count, 0);
    let sharded_filtered_cold = measure(clients, iters, &filtered_specs, |spec| {
        let sharded = cold.query_spec(spec).expect("routed query");
        assert!(sharded.outages.is_empty());
        std::hint::black_box(sharded.result.frames.len());
    });
    rows.push(json_latency(
        "sharded_filtered_cold",
        &sharded_filtered_cold,
    ));

    // Steady state: the same repeat-heavy traffic the serving tier sees.
    // Epoch-keyed caches (per-shard coarse + merged result) absorb repeats
    // while the collection is quiescent; any ingest invalidates exactly the
    // affected shard's entries.
    let steady = build_router(locals.clone(), shard_count, 256);
    for spec in &filtered_specs {
        steady.query_spec(spec).expect("warm caches");
    }
    let sharded_filtered = measure(clients, iters, &filtered_specs, |spec| {
        let sharded = steady.query_spec(spec).expect("routed query");
        assert!(sharded.outages.is_empty());
        std::hint::black_box(sharded.result.frames.len());
    });
    rows.push(json_latency("sharded_filtered_warm", &sharded_filtered));

    // --- Unfiltered full-fan-out comparison. ---
    eprintln!("unfiltered workload ({clients} clients)...");
    let unsharded_unfiltered = measure(clients, iters, &unfiltered_specs, |spec| {
        let result = single.query_spec(spec).expect("direct query");
        std::hint::black_box(result.frames.len());
    });
    rows.push(json_latency("unsharded_unfiltered", &unsharded_unfiltered));
    let unfiltered_router = build_router(locals.clone(), shard_count, 0);
    let sharded_unfiltered = measure(clients, iters, &unfiltered_specs, |spec| {
        let sharded = unfiltered_router.query_spec(spec).expect("routed query");
        std::hint::black_box(sharded.result.frames.len());
    });
    rows.push(json_latency("sharded_unfiltered", &sharded_unfiltered));

    // --- Degraded gather: one shard permanently down, every query partial. ---
    eprintln!("degraded workload ({clients} clients, one shard down)...");
    let mut degraded_shards = locals.clone();
    degraded_shards[shard_count - 1] = Arc::new(DownShard);
    let degraded_router = build_router(degraded_shards, shard_count, 0);
    let degraded = measure(clients, iters, &unfiltered_specs, |spec| {
        let sharded = degraded_router.query_spec(spec).expect("degraded query");
        assert!(sharded.is_degraded());
        std::hint::black_box(sharded.result.frames.len());
    });
    rows.push(json_latency("sharded_degraded_one_down", &degraded));
    let degraded_stats = degraded_router.stats();

    let speedup_filtered = sharded_filtered.qps / unsharded_filtered.qps.max(1e-9);
    let json = format!(
        "{{\n  \"bench\": \"shard\",\n  \"videos\": {videos_n},\n  \
         \"frames_per_video\": {frames},\n  \"shards\": {shard_count},\n  \
         \"clients\": {clients},\n  \"iters_per_client\": {iters},\n  \
         \"distinct_plans\": {},\n  \"filtered_speedup_vs_unsharded\": {:.2},\n  \
         \"degraded_outages_recorded\": {},\n  {}\n}}",
        texts.len(),
        speedup_filtered,
        degraded_stats.outages,
        rows.join(",\n  ")
    );
    println!("{json}");
    if let Some(path) = out {
        std::fs::write(&path, format!("{json}\n")).expect("write --out file");
        eprintln!("wrote {path}");
    }
}
