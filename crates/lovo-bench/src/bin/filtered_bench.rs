//! Machine-readable filtered-query benchmark: emits `BENCH_pr4.json`-style
//! numbers comparing predicate **pushdown** (planner path: id filter compiled
//! into every scan + zone-map segment pruning) against the pre-planner
//! strategy of **unfiltered search + post-filter**, across a video-id
//! selectivity sweep (1% / 10% / 50% / 100%), plus one metadata-joined
//! time-window + class predicate.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p lovo-bench --bin filtered_bench -- \
//!     [--rows 100000] [--dim 64] [--videos 100] [--queries 32] [--k 10] [--out PATH]
//! ```
//!
//! JSON goes to stdout; `--out` additionally writes it to a file. CI runs
//! this with a small `--rows` so the emitter can never bit-rot.

use lovo_store::{
    patchid, BatchQuery, CollectionConfig, PatchPredicate, PatchRecord, VectorDatabase,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::hint::black_box;
use std::time::Instant;

const COLLECTION: &str = "patches";

struct LatencyStats {
    qps: f64,
    p50_us: f64,
    p99_us: f64,
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)]
}

/// Runs `run_query` over every query, repeating whole passes until ~0.4 s of
/// samples accumulate, and summarizes per-query latency.
fn measure_queries(queries: &[Vec<f32>], mut run_query: impl FnMut(&[f32])) -> LatencyStats {
    let mut samples_us: Vec<f64> = Vec::new();
    let mut total_secs = 0.0f64;
    let budget_secs = 0.4;
    let max_passes = 50;
    for _ in 0..max_passes {
        for q in queries {
            let start = Instant::now();
            run_query(q);
            let secs = start.elapsed().as_secs_f64();
            samples_us.push(secs * 1e6);
            total_secs += secs;
        }
        if total_secs >= budget_secs {
            break;
        }
    }
    samples_us.sort_by(|a, b| a.total_cmp(b));
    LatencyStats {
        qps: samples_us.len() as f64 / total_secs,
        p50_us: percentile(&samples_us, 0.50),
        p99_us: percentile(&samples_us, 0.99),
    }
}

fn json_latency(name: &str, s: &LatencyStats) -> String {
    format!(
        "\"{name}\": {{\"qps\": {:.1}, \"p50_us\": {:.2}, \"p99_us\": {:.2}}}",
        s.qps, s.p50_us, s.p99_us
    )
}

fn random_unit(dim: usize, rng: &mut SmallRng) -> Vec<f32> {
    let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    lovo_index::metric::normalize(&mut v);
    v
}

fn parse_flag(args: &[String], name: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let rows = parse_flag(&args, "--rows", 100_000);
    let dim = parse_flag(&args, "--dim", 64);
    let videos = parse_flag(&args, "--videos", 100).max(1) as u32;
    let num_queries = parse_flag(&args, "--queries", 32);
    let k = parse_flag(&args, "--k", 10);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let rows_per_video = (rows as u32).div_ceil(videos).max(1);
    eprintln!(
        "[filtered_bench] building: {videos} videos x {rows_per_video} rows, dim={dim}, IVF-PQ segments..."
    );
    let db = VectorDatabase::new();
    db.create_collection(COLLECTION, CollectionConfig::new(dim))
        .unwrap();
    let mut rng = SmallRng::seed_from_u64(0xbe7c);
    for video in 0..videos {
        let batch: Vec<(Vec<f32>, PatchRecord)> = (0..rows_per_video)
            .map(|row| {
                let record = PatchRecord {
                    patch_id: patchid::patch_id(video, row, 0),
                    video_id: video,
                    frame_index: row,
                    patch_index: 0,
                    bbox: (0.0, 0.0, 32.0, 32.0),
                    timestamp: f64::from(row) / 30.0,
                    class_code: Some((row % 8) as u8),
                };
                (random_unit(dim, &mut rng), record)
            })
            .collect();
        db.insert_patches(
            COLLECTION,
            batch.iter().map(|(v, r)| (v.as_slice(), r.clone())),
        )
        .unwrap();
    }
    db.seal_collection(COLLECTION).unwrap();
    let stats = db.collection_stats(COLLECTION).unwrap();
    eprintln!(
        "[filtered_bench] built: {} rows in {} sealed segments",
        stats.entities, stats.sealed_segments
    );

    let mut qrng = SmallRng::seed_from_u64(0x9e1);
    let queries: Vec<Vec<f32>> = (0..num_queries.max(1))
        .map(|_| random_unit(dim, &mut qrng))
        .collect();

    let mut sections: Vec<String> = Vec::new();

    // --- Video-id selectivity sweep. ---
    for percent in [1usize, 10, 50, 100] {
        let allowed = ((videos as usize * percent) / 100).max(1) as u32;
        let predicate = PatchPredicate {
            video_ids: Some((0..allowed).collect::<BTreeSet<u32>>()),
            ..Default::default()
        };
        let filter = db.resolve_filter(&predicate).unwrap();
        eprintln!("[filtered_bench] selectivity {percent}%: measuring...");

        let pushdown = measure_queries(&queries, |q| {
            black_box(
                db.search_pushdown_with_stats(COLLECTION, q, k, Some(&filter))
                    .unwrap(),
            );
        });
        let post_filter = measure_queries(&queries, |q| {
            let (hits, stats) = db.search_with_stats(COLLECTION, q, k).unwrap();
            black_box(
                hits.into_iter()
                    .filter(|h| h.record.video_id < allowed)
                    .collect::<Vec<_>>(),
            );
            black_box(stats);
        });
        let (_, probe_stats) = db
            .search_pushdown_with_stats(COLLECTION, &queries[0], k, Some(&filter))
            .unwrap();
        sections.push(format!(
            "    \"video_selectivity_{percent}pct\": {{\n      {},\n      {},\n      \
             \"speedup\": {:.2},\n      \"segments_pruned\": {},\n      \"segments_probed\": {}\n    }}",
            json_latency("pushdown", &pushdown),
            json_latency("post_filter", &post_filter),
            pushdown.qps / post_filter.qps,
            probe_stats.segments_pruned,
            probe_stats.segments_probed,
        ));
    }

    // --- Metadata-joined predicate: a time window + object class. The
    // pushdown path pays the metadata join per query; it still wins by
    // skipping ADC scoring and rescore work inside every probed segment. ---
    let joined_predicate = PatchPredicate {
        time_range: Some((0.0, f64::from(rows_per_video) / 30.0 * 0.25)),
        class_codes: Some([1u8, 2].into_iter().collect()),
        ..Default::default()
    };
    eprintln!("[filtered_bench] time+class predicate: measuring...");
    let joined = measure_queries(&queries, |q| {
        black_box(
            db.search_with_predicate(COLLECTION, q, k, &joined_predicate)
                .unwrap(),
        );
    });
    sections.push(format!(
        "    \"time_class_predicate\": {{\n      {}\n    }}",
        json_latency("pushdown_with_join", &joined)
    ));

    // --- Batched queries: the whole query set in one shared fan-out pass. ---
    eprintln!("[filtered_bench] batch path: measuring...");
    let batch_start = Instant::now();
    let mut batch_passes = 0usize;
    while batch_start.elapsed().as_secs_f64() < 0.4 {
        let requests: Vec<BatchQuery<'_>> = queries
            .iter()
            .map(|q| BatchQuery {
                query: q.as_slice(),
                k,
                filter: None,
            })
            .collect();
        black_box(db.search_batch_with_stats(COLLECTION, &requests).unwrap());
        batch_passes += 1;
    }
    let batch_qps = (batch_passes * queries.len()) as f64 / batch_start.elapsed().as_secs_f64();
    sections.push(format!(
        "    \"batch_unfiltered\": {{\"qps\": {batch_qps:.1}, \"batch_size\": {}}}",
        queries.len()
    ));

    let json = format!(
        "{{\n  \"bench\": \"filtered_search_pr4\",\n  \"rows\": {},\n  \"dim\": {dim},\n  \
         \"videos\": {videos},\n  \"k\": {k},\n  \"sealed_segments\": {},\n  \"results\": {{\n{}\n  }}\n}}",
        stats.entities,
        stats.sealed_segments,
        sections.join(",\n"),
    );
    println!("{json}");
    if let Some(path) = out_path {
        std::fs::write(&path, format!("{json}\n")).expect("write bench json");
        eprintln!("[filtered_bench] wrote {path}");
    }
}
