//! Regenerates the paper artifact corresponding to `table5_ann_variants`.
fn main() {
    let scale = lovo_bench::scale_from_args();
    let report = lovo_eval::experiments::table5_ann_variants(scale);
    println!("{}", report.render());
}
