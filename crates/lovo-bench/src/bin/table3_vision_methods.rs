//! Regenerates the paper artifact corresponding to `table3_vision_methods`.
fn main() {
    let scale = lovo_bench::scale_from_args();
    let report = lovo_eval::experiments::table3_vision_methods(scale);
    println!("{}", report.render());
}
