//! Regenerates the paper artifact corresponding to `table7_activitynet`.
fn main() {
    let scale = lovo_bench::scale_from_args();
    let report = lovo_eval::experiments::table7_extension(scale);
    println!("{}", report.render());
}
