//! Regenerates the paper artifact corresponding to `fig11_modules`.
fn main() {
    let scale = lovo_bench::scale_from_args();
    let report = lovo_eval::experiments::fig11_modules(scale);
    println!("{}", report.render());
}
