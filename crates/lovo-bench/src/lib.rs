//! # lovo-bench
//!
//! Benchmark harness for the LOVO reproduction. Two kinds of targets live
//! here:
//!
//! * **experiment binaries** (`src/bin/*.rs`) — one per table/figure of the
//!   paper; each is a thin wrapper around the corresponding
//!   `lovo_eval::experiments` runner and prints the same rows the paper
//!   reports. Run them with `cargo run -p lovo-bench --release --bin <name>`.
//!   Every binary accepts an optional scale factor as its first argument
//!   (default 1.0) or via the `LOVO_SCALE` environment variable.
//! * **criterion benches** (`benches/*.rs`) — microbenchmarks of the hot
//!   paths (PQ encoding, ANN search across index families, frame encoding,
//!   end-to-end query latency) that back the latency claims with wall-clock
//!   measurements of this implementation.

/// Reads the experiment scale factor from the first CLI argument or the
/// `LOVO_SCALE` environment variable, defaulting to 1.0 and clamping to
/// `(0, 1]`. An unparseable value warns on stderr rather than silently
/// running at full scale.
pub fn scale_from_args() -> f64 {
    let parse = |source: &str, s: String| match s.parse::<f64>() {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!("warning: ignoring non-numeric scale {s:?} from {source}");
            None
        }
    };
    std::env::args()
        .nth(1)
        .and_then(|s| parse("argv[1]", s))
        .or_else(|| {
            std::env::var("LOVO_SCALE")
                .ok()
                .and_then(|s| parse("LOVO_SCALE", s))
        })
        .map(|s| s.clamp(0.01, 1.0))
        .unwrap_or(1.0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn scale_defaults_to_one() {
        // No CLI arg / env var in the test harness beyond the test name.
        assert!(
            (super::scale_from_args() - 1.0).abs() < f64::EPSILON || super::scale_from_args() > 0.0
        );
    }
}
