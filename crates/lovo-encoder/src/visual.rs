//! The decoupled visual encoder and object-localization heads (§IV-B, §IV-C).
//!
//! A key frame is divided into an `S x S` patch grid; each patch becomes a
//! token. Tokens pass through genuine transformer encoder layers (multi-head
//! self-attention + MLP with pre-layer-norm residuals from `lovo-tensor`),
//! after which two heads produce per-patch outputs exactly as the paper
//! describes:
//!
//! * the **box head** predicts a bounding box as an offset from the patch's
//!   default (anchor) box;
//! * the **classification head** projects the token into the lower-dimensional
//!   class-embedding space `D'` that the vector database indexes.
//!
//! Because no pre-trained weights exist in this environment, the semantic
//! content of a patch token is grounded in the attributes of the object that
//! covers the patch (see [`crate::space`]), and the trained box head is
//! simulated by anchoring the prediction to the covering object's ground-truth
//! box with noise. The transformer layers, projections and MLPs still run for
//! real, so compute scaling (frames x patches x layers) matches the real
//! system's shape.

use crate::space::{AttributeSpace, DetailLevel};
use crate::{EncoderError, Result};
use lovo_tensor::init::rng_for;
use lovo_tensor::ops::l2_normalize;
use lovo_tensor::{LayerNorm, Linear, Matrix, Mlp, MultiHeadAttention};
use lovo_video::bbox::BoundingBox;
use lovo_video::object::ObjectClass;
use lovo_video::scene::Frame;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the visual encoder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VisualEncoderConfig {
    /// Internal token dimension `D` (the paper's ViT-B/32 uses 768; the
    /// reproduction defaults to 64 to keep laptop-scale runs fast).
    pub token_dim: usize,
    /// Class-embedding dimension `D'` indexed by the vector database.
    pub class_dim: usize,
    /// Patch size `S` in pixels.
    pub patch_size: u32,
    /// Number of transformer encoder layers.
    pub layers: usize,
    /// Attention heads per layer.
    pub heads: usize,
    /// Fraction of the class embedding contributed by the transformer context
    /// (the rest comes from the attribute grounding).
    pub context_mix: f32,
    /// Amplitude of the per-patch observation noise.
    pub noise: f32,
    /// Weight-initialization / noise seed.
    pub seed: u64,
}

impl Default for VisualEncoderConfig {
    fn default() -> Self {
        Self {
            token_dim: 64,
            class_dim: 32,
            patch_size: 160,
            layers: 2,
            heads: 4,
            context_mix: 0.2,
            noise: 0.06,
            seed: 0x0715,
        }
    }
}

impl VisualEncoderConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.token_dim == 0 || self.class_dim == 0 {
            return Err(EncoderError::InvalidConfig(
                "token_dim and class_dim must be positive".into(),
            ));
        }
        if self.token_dim % self.heads != 0 {
            return Err(EncoderError::InvalidConfig(format!(
                "token_dim {} not divisible by heads {}",
                self.token_dim, self.heads
            )));
        }
        if self.patch_size == 0 {
            return Err(EncoderError::InvalidConfig(
                "patch_size must be positive".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.context_mix) {
            return Err(EncoderError::InvalidConfig(
                "context_mix must be in [0, 1]".into(),
            ));
        }
        Ok(())
    }
}

/// Per-patch output of the encoder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatchEncoding {
    /// Row-major patch index within the frame grid.
    pub patch_index: u32,
    /// `(row, col)` grid position.
    pub grid: (u32, u32),
    /// The patch's image region (the anchor / default box).
    pub region: BoundingBox,
    /// The class embedding `c_jk` (dimension `D'`), L2-normalized.
    pub class_embedding: Vec<f32>,
    /// The predicted bounding box `b_jk`.
    pub predicted_box: BoundingBox,
    /// How object-like the patch is (fraction of the patch covered by its
    /// dominant object); background patches score 0.
    pub objectness: f32,
    /// Detector label of the patch's dominant object (`None` for background
    /// patches). Stored in the metadata table so class predicates can be
    /// pushed down into the index scans.
    pub dominant_class: Option<ObjectClass>,
}

/// All patch encodings of one key frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameEncoding {
    /// Index of the frame within its video.
    pub frame_index: usize,
    /// Patch grid `(rows, cols)`.
    pub grid: (u32, u32),
    /// Per-patch encodings, row-major.
    pub patches: Vec<PatchEncoding>,
}

impl FrameEncoding {
    /// Number of patches.
    pub fn len(&self) -> usize {
        self.patches.len()
    }

    /// True when the frame produced no patches (degenerate dimensions).
    pub fn is_empty(&self) -> bool {
        self.patches.is_empty()
    }
}

/// The visual encoder.
pub struct VisualEncoder {
    config: VisualEncoderConfig,
    space: AttributeSpace,
    /// Projects attribute-grounded class-space vectors up to token space.
    input_proj: Linear,
    /// Transformer encoder layers: (norm1, attention, norm2, mlp).
    layers: Vec<(LayerNorm, MultiHeadAttention, LayerNorm, Mlp)>,
    /// Classification head: token space down to class-embedding space.
    class_head: Linear,
    /// Box head MLP producing 4 offsets per token.
    box_head: Mlp,
}

impl VisualEncoder {
    /// Creates an encoder with deterministic weights derived from the config seed.
    pub fn new(config: VisualEncoderConfig) -> Result<Self> {
        config.validate()?;
        let space = AttributeSpace::new(config.class_dim, config.seed);
        let input_proj = Linear::new(config.class_dim, config.token_dim, config.seed, "vis.input");
        let layers = (0..config.layers)
            .map(|i| {
                Ok((
                    LayerNorm::new(config.token_dim),
                    MultiHeadAttention::new(
                        config.token_dim,
                        config.heads,
                        config.seed,
                        &format!("vis.layer{i}.attn"),
                    )?,
                    LayerNorm::new(config.token_dim),
                    Mlp::new(
                        config.token_dim,
                        config.token_dim * 2,
                        config.token_dim,
                        config.seed,
                        &format!("vis.layer{i}.mlp"),
                    ),
                ))
            })
            .collect::<Result<Vec<_>>>()?;
        let class_head = Linear::new(
            config.token_dim,
            config.class_dim,
            config.seed,
            "vis.class_head",
        );
        let box_head = Mlp::new(
            config.token_dim,
            config.token_dim,
            4,
            config.seed,
            "vis.box_head",
        );
        Ok(Self {
            config,
            space,
            input_proj,
            layers,
            class_head,
            box_head,
        })
    }

    /// The encoder configuration.
    pub fn config(&self) -> &VisualEncoderConfig {
        &self.config
    }

    /// The shared attribute space (the text encoder must use the same one).
    pub fn space(&self) -> &AttributeSpace {
        &self.space
    }

    /// Patch grid `(rows, cols)` for a frame of the given dimensions.
    pub fn grid_for(&self, width: u32, height: u32) -> (u32, u32) {
        let s = self.config.patch_size;
        (height.div_ceil(s), width.div_ceil(s))
    }

    /// Number of patches produced per frame of the given dimensions.
    pub fn patches_per_frame(&self, width: u32, height: u32) -> usize {
        let (rows, cols) = self.grid_for(width, height);
        rows as usize * cols as usize
    }

    /// Encodes one key frame into per-patch class embeddings and boxes.
    pub fn encode_frame(&self, frame: &Frame) -> Result<FrameEncoding> {
        let (rows, cols) = self.grid_for(frame.width, frame.height);
        let patch_count = rows as usize * cols as usize;
        if patch_count == 0 {
            return Ok(FrameEncoding {
                frame_index: frame.index,
                grid: (rows, cols),
                patches: Vec::new(),
            });
        }
        let s = self.config.patch_size as f32;

        // 1. Build the raw patch tokens from what each patch "sees".
        let mut raw_class_space: Vec<Vec<f32>> = Vec::with_capacity(patch_count);
        let mut regions: Vec<BoundingBox> = Vec::with_capacity(patch_count);
        let mut dominant: Vec<Option<(BoundingBox, f32, ObjectClass)>> =
            Vec::with_capacity(patch_count);
        let mut rng = rng_for(self.config.seed, &format!("vis.frame.{}", frame.index));
        for row in 0..rows {
            for col in 0..cols {
                let region = BoundingBox::new(col as f32 * s, row as f32 * s, s, s)
                    .clamped(frame.width as f32, frame.height as f32);
                let hit = frame.objects_in_region(&region).into_iter().next();
                let mut base = match &hit {
                    Some((obj, _)) => self
                        .space
                        .embed_attributes(&obj.attributes, DetailLevel::Fine),
                    None => self
                        .space
                        .background_embedding((row * cols + col) as usize % 7),
                };
                for v in &mut base {
                    *v += rng.gen_range(-self.config.noise..=self.config.noise);
                }
                l2_normalize(&mut base);
                raw_class_space.push(base);
                dominant
                    .push(hit.map(|(obj, coverage)| (obj.bbox, coverage, obj.attributes.class)));
                regions.push(region);
            }
        }

        // 2. Project to token space and run the transformer encoder stack.
        let raw = Matrix::from_rows(&raw_class_space).map_err(EncoderError::from)?;
        let mut tokens = self.input_proj.forward(&raw)?;
        // Additive positional encoding so attention can use spatial layout.
        for idx in 0..patch_count {
            let grid_row = idx / cols as usize;
            let grid_col = idx % cols as usize;
            let token = tokens.row_mut(idx);
            for (d, v) in token.iter_mut().enumerate() {
                let angle =
                    (grid_row as f32 + 1.0) * 0.7 + (grid_col as f32 + 1.0) * 1.3 + d as f32 * 0.05;
                *v += 0.05 * angle.sin();
            }
        }
        for (norm1, attn, norm2, mlp) in &self.layers {
            let attended = attn.self_attention(&norm1.forward(&tokens)?)?;
            tokens = tokens.add(&attended)?;
            let expanded = mlp.forward(&norm2.forward(&tokens)?)?;
            tokens = tokens.add(&expanded)?;
        }

        // 3. Heads: class embedding and box prediction per token.
        let context = self.class_head.forward(&tokens)?;
        let box_deltas = self.box_head.forward(&tokens)?;
        let mut patches = Vec::with_capacity(patch_count);
        for idx in 0..patch_count {
            let mut class_embedding = raw_class_space[idx].clone();
            let ctx_row = context.row(idx);
            let mut ctx = ctx_row.to_vec();
            l2_normalize(&mut ctx);
            for (c, x) in class_embedding.iter_mut().zip(ctx.iter()) {
                *c = (1.0 - self.config.context_mix) * *c + self.config.context_mix * x;
            }
            l2_normalize(&mut class_embedding);

            let region = regions[idx];
            let (predicted_box, objectness) = match dominant[idx] {
                Some((object_box, coverage, _)) => {
                    // Simulated trained box head: anchor refined toward the
                    // covering object's box, with a small real-MLP perturbation
                    // and observation noise.
                    let deltas = box_deltas.row(idx);
                    let jitter = self.config.noise * 40.0;
                    let dx = deltas[0].tanh() * 4.0 + rng.gen_range(-jitter..=jitter);
                    let dy = deltas[1].tanh() * 4.0 + rng.gen_range(-jitter..=jitter);
                    let dw = 1.0 + deltas[2].tanh() * 0.05 + rng.gen_range(-0.05..=0.05);
                    let dh = 1.0 + deltas[3].tanh() * 0.05 + rng.gen_range(-0.05..=0.05);
                    let refined = BoundingBox::new(
                        object_box.x + dx,
                        object_box.y + dy,
                        object_box.w * dw,
                        object_box.h * dh,
                    )
                    .clamped(frame.width as f32, frame.height as f32);
                    (refined, coverage.min(1.0))
                }
                None => (region, 0.0),
            };

            patches.push(PatchEncoding {
                patch_index: idx as u32,
                grid: ((idx / cols as usize) as u32, (idx % cols as usize) as u32),
                region,
                class_embedding,
                predicted_box,
                objectness,
                dominant_class: dominant[idx].map(|(_, _, class)| class),
            });
        }

        Ok(FrameEncoding {
            frame_index: frame.index,
            grid: (rows, cols),
            patches,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lovo_video::object::{Color, ObjectAttributes, ObjectClass};
    use lovo_video::scene::{SceneObject, TrackId};

    fn frame_with_car(index: usize) -> Frame {
        let mut f = Frame::empty(index, 0.0, 1280, 720);
        f.objects.push(SceneObject {
            track: TrackId(1),
            attributes: ObjectAttributes::simple(ObjectClass::Car).with_color(Color::Red),
            bbox: BoundingBox::new(200.0, 300.0, 150.0, 80.0),
            velocity: (5.0, 0.0),
        });
        f
    }

    #[test]
    fn config_validation() {
        assert!(VisualEncoderConfig::default().validate().is_ok());
        let c = VisualEncoderConfig {
            heads: 7,
            ..VisualEncoderConfig::default()
        };
        assert!(c.validate().is_err());
        let c = VisualEncoderConfig {
            patch_size: 0,
            ..VisualEncoderConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn grid_covers_frame() {
        let enc = VisualEncoder::new(VisualEncoderConfig::default()).unwrap();
        assert_eq!(enc.grid_for(1280, 720), (5, 8));
        assert_eq!(enc.patches_per_frame(1280, 720), 40);
    }

    #[test]
    fn encode_frame_produces_normalized_embeddings() {
        let enc = VisualEncoder::new(VisualEncoderConfig::default()).unwrap();
        let encoding = enc.encode_frame(&frame_with_car(0)).unwrap();
        assert_eq!(encoding.len(), 40);
        for patch in &encoding.patches {
            let norm: f32 = patch
                .class_embedding
                .iter()
                .map(|v| v * v)
                .sum::<f32>()
                .sqrt();
            assert!((norm - 1.0).abs() < 1e-4);
            assert_eq!(patch.class_embedding.len(), 32);
        }
    }

    #[test]
    fn patch_over_object_has_objectness_and_good_box() {
        let enc = VisualEncoder::new(VisualEncoderConfig::default()).unwrap();
        let frame = frame_with_car(0);
        let encoding = enc.encode_frame(&frame).unwrap();
        let object_box = frame.objects[0].bbox;
        let covering: Vec<&PatchEncoding> = encoding
            .patches
            .iter()
            .filter(|p| p.objectness > 0.0)
            .collect();
        assert!(!covering.is_empty(), "no patch covers the car");
        let best = covering
            .iter()
            .max_by(|a, b| a.objectness.partial_cmp(&b.objectness).unwrap())
            .unwrap();
        assert!(
            best.predicted_box.iou(&object_box) > 0.5,
            "predicted box IoU too low: {}",
            best.predicted_box.iou(&object_box)
        );
    }

    #[test]
    fn background_patches_have_zero_objectness() {
        let enc = VisualEncoder::new(VisualEncoderConfig::default()).unwrap();
        let frame = Frame::empty(0, 0.0, 1280, 720);
        let encoding = enc.encode_frame(&frame).unwrap();
        assert!(encoding.patches.iter().all(|p| p.objectness == 0.0));
    }

    #[test]
    fn encoding_is_deterministic() {
        let enc = VisualEncoder::new(VisualEncoderConfig::default()).unwrap();
        let frame = frame_with_car(3);
        assert_eq!(
            enc.encode_frame(&frame).unwrap(),
            enc.encode_frame(&frame).unwrap()
        );
    }

    #[test]
    fn object_patch_embedding_matches_query_direction() {
        use crate::space::DetailLevel;
        use lovo_tensor::ops::dot;
        use lovo_video::query::QueryConstraints;

        let enc = VisualEncoder::new(VisualEncoderConfig::default()).unwrap();
        let frame = frame_with_car(0);
        let encoding = enc.encode_frame(&frame).unwrap();
        let best = encoding
            .patches
            .iter()
            .max_by(|a, b| a.objectness.partial_cmp(&b.objectness).unwrap())
            .unwrap();
        let query = QueryConstraints {
            class: Some(ObjectClass::Car),
            color: Some(Color::Red),
            ..Default::default()
        };
        let q = enc.space().embed_constraints(&query, DetailLevel::Coarse);
        let bg = encoding
            .patches
            .iter()
            .find(|p| p.objectness == 0.0)
            .unwrap();
        assert!(dot(&q, &best.class_embedding) > dot(&q, &bg.class_embedding));
        assert!(dot(&q, &best.class_embedding) > 0.3);
    }

    #[test]
    fn zero_sized_frame_is_handled() {
        let enc = VisualEncoder::new(VisualEncoderConfig::default()).unwrap();
        let frame = Frame::empty(0, 0.0, 0, 0);
        let encoding = enc.encode_frame(&frame).unwrap();
        assert!(encoding.is_empty());
    }
}
