//! The text encoder and query parser (§VI-A).
//!
//! A user query arrives as a natural-language sentence. The encoder
//! tokenizes it, extracts the attribute phrases it can recognize (class,
//! colour, size, activity, location, relations, accessories, gender), and
//! produces a single sentence-level embedding in the shared attribute space.
//! Exactly as the paper describes, the **fast-search embedding keeps only the
//! key phrases and drops cross-word relationships** ("side by side with…",
//! "next to…") and other fine-grained details; those are preserved in the
//! parsed constraints and consumed later by the cross-modality rerank.
//!
//! The parsed [`QueryConstraints`] double as the structured form the rerank
//! transformer tokenizes; ground truth in the evaluation harness is defined by
//! constraints constructed independently, so parser mistakes show up as
//! accuracy loss rather than being hidden.

use crate::space::{AttributeSpace, DetailLevel};
use crate::{EncoderError, Result};
use lovo_tensor::init::rng_for;
use lovo_tensor::ops::l2_normalize;
use lovo_tensor::{Linear, Matrix, MultiHeadAttention};
use lovo_video::object::{
    Accessory, Activity, Color, Gender, Location, ObjectClass, Relation, SizeClass,
};
use lovo_video::query::QueryConstraints;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the text encoder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TextEncoderConfig {
    /// Embedding dimension; must equal the visual encoder's `class_dim`.
    pub class_dim: usize,
    /// Internal token dimension of the sentence transformer.
    pub token_dim: usize,
    /// Attention heads of the sentence transformer.
    pub heads: usize,
    /// Fraction of the final embedding contributed by the transformer context.
    pub context_mix: f32,
    /// Observation noise amplitude.
    pub noise: f32,
    /// Weight-initialization seed; must equal the visual encoder's seed so
    /// both share one attribute space.
    pub seed: u64,
}

impl Default for TextEncoderConfig {
    fn default() -> Self {
        Self {
            class_dim: 32,
            token_dim: 64,
            heads: 4,
            context_mix: 0.1,
            noise: 0.02,
            seed: 0x0715,
        }
    }
}

impl TextEncoderConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.class_dim == 0 || self.token_dim == 0 {
            return Err(EncoderError::InvalidConfig(
                "class_dim and token_dim must be positive".into(),
            ));
        }
        if self.token_dim % self.heads != 0 {
            return Err(EncoderError::InvalidConfig(format!(
                "token_dim {} not divisible by heads {}",
                self.token_dim, self.heads
            )));
        }
        Ok(())
    }
}

/// Output of encoding a query: the fast-search embedding plus the parsed
/// constraints (used by the rerank stage and by diagnostics).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryEmbedding {
    /// The original query text.
    pub text: String,
    /// L2-normalized sentence embedding used by the fast search.
    pub embedding: Vec<f32>,
    /// Attribute constraints recognized in the text.
    pub parsed: QueryConstraints,
    /// Key phrases the encoder kept for the fast-search embedding.
    pub key_phrases: Vec<String>,
}

/// The text encoder.
pub struct TextEncoder {
    config: TextEncoderConfig,
    space: AttributeSpace,
    token_proj: Linear,
    attention: MultiHeadAttention,
    output_proj: Linear,
}

impl TextEncoder {
    /// Creates a text encoder sharing the attribute space of the visual
    /// encoder constructed with the same `class_dim` and `seed`.
    pub fn new(config: TextEncoderConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self {
            space: AttributeSpace::new(config.class_dim, config.seed),
            token_proj: Linear::new(config.class_dim, config.token_dim, config.seed, "txt.input"),
            attention: MultiHeadAttention::new(
                config.token_dim,
                config.heads,
                config.seed,
                "txt.attn",
            )?,
            output_proj: Linear::new(
                config.token_dim,
                config.class_dim,
                config.seed,
                "txt.output",
            ),
            config,
        })
    }

    /// The encoder configuration.
    pub fn config(&self) -> &TextEncoderConfig {
        &self.config
    }

    /// The shared attribute space.
    pub fn space(&self) -> &AttributeSpace {
        &self.space
    }

    /// Lower-cases and splits query text into word tokens.
    pub fn tokenize(text: &str) -> Vec<String> {
        text.to_lowercase()
            .split(|c: char| !c.is_alphanumeric() && c != '-')
            .filter(|t| !t.is_empty())
            .map(str::to_string)
            .collect()
    }

    /// Parses the attribute constraints mentioned in the text.
    pub fn parse(text: &str) -> QueryConstraints {
        let lower = text.to_lowercase();
        let tokens = Self::tokenize(&lower);
        let has = |needle: &str| lower.contains(needle);
        let has_word = |w: &str| tokens.iter().any(|t| t == w);

        // --- object class ---
        let class = if has_word("suv") {
            Some(ObjectClass::Suv)
        } else if has_word("bus") {
            Some(ObjectClass::Bus)
        } else if has_word("truck") {
            Some(ObjectClass::Truck)
        } else if has_word("dog") {
            Some(ObjectClass::Dog)
        } else if has("riding a bicycle") || has_word("bicyclist") || has_word("bicycle") {
            Some(ObjectClass::Bicyclist)
        } else if has_word("person")
            || has_word("woman")
            || has_word("man")
            || has_word("pedestrian")
        {
            Some(ObjectClass::Person)
        } else if has_word("car") {
            Some(ObjectClass::Car)
        } else {
            None
        };

        let mut c = QueryConstraints {
            class,
            ..QueryConstraints::default()
        };

        // --- gender ---
        if has_word("woman") || has_word("women") {
            c.gender = Some(Gender::Woman);
        } else if has_word("man") || has_word("men") {
            c.gender = Some(Gender::Man);
        }

        // --- colour (first match wins; accessory colours are handled below) ---
        c.color = if has("yellow-green") || has("yellow green") {
            Some(Color::YellowGreen)
        } else if has("light-colored") || has("light colored") || has("light-coloured") {
            Some(Color::Light)
        } else if has_word("red") && !has("red hair") && !has("red-hair") && !has("red life jacket")
        {
            Some(Color::Red)
        } else if has_word("green") {
            Some(Color::Green)
        } else if has_word("black") && !has("black t-shirt") && !has("black clothes") {
            Some(Color::Black)
        } else if has_word("white") && !has("white roof") && !has("white dress") {
            Some(Color::White)
        } else if has_word("blue") && !has("blue jeans") {
            Some(Color::Blue)
        } else if has_word("gray") || has_word("grey") && !has("grey skirt") {
            Some(Color::Gray)
        } else {
            None
        };

        // --- size ---
        c.size = if has_word("large") || has_word("big") {
            Some(SizeClass::Large)
        } else if has_word("small") {
            Some(SizeClass::Small)
        } else {
            None
        };

        // --- activity ---
        c.activity = if has("riding a bicycle") || has_word("riding") {
            Some(Activity::RidingBicycle)
        } else if has_word("walking") {
            Some(Activity::Walking)
        } else if has_word("dancing") {
            Some(Activity::Dancing)
        } else if has_word("sitting") {
            Some(Activity::Sitting)
        } else if has_word("park") || has_word("parked") {
            Some(Activity::Parked)
        } else if has("filled with cargo") || has("carrying cargo") {
            Some(Activity::CarryingCargo)
        } else if has_word("driving") {
            Some(Activity::Driving)
        } else if has_word("smiling") {
            Some(Activity::Smiling)
        } else {
            None
        };

        // --- location ---
        c.location = if has("center of the road") || has("centre of the road") {
            Some(Location::RoadCenter)
        } else if has("intersection") {
            Some(Location::Intersection)
        } else if has("inside car") || has("inside a car") || has("inside the car") {
            Some(Location::InsideCar)
        } else if has("in the room") {
            Some(Location::Room)
        } else if has("meadow") {
            Some(Location::Meadow)
        } else if has("outdoors") || has("outdoor") {
            Some(Location::Outdoors)
        } else if has("sidewalk") || has("street") {
            Some(Location::Sidewalk)
        } else if has("road") {
            Some(Location::Road)
        } else {
            None
        };

        // --- relations ---
        if has("side by side") {
            // Table II's side-by-side queries always pair with another car.
            c.relation = Some(Relation::SideBySideWith(ObjectClass::Car));
        } else if has("next to") {
            let peer = if has("next to a woman") || has("next to the woman") {
                ObjectClass::Person
            } else if has("next to the car") || has("next to a car") {
                ObjectClass::Car
            } else {
                ObjectClass::Person
            };
            c.relation = Some(Relation::NextTo(peer));
        }

        // --- accessories / detailed descriptions ---
        if has("dark bag") {
            c.accessories.push(Accessory::DarkBag);
        }
        if has("black t-shirt") && has("jeans") {
            c.accessories.push(Accessory::BlackTshirtBlueJeans);
        }
        if has("white roof") {
            c.accessories.push(Accessory::WhiteRoof);
        }
        if has("white dress") {
            c.accessories.push(Accessory::WhiteDress);
        }
        if has("red-hair") || has("red hair") {
            c.accessories.push(Accessory::RedHair);
        }
        if has("black clothes") {
            c.accessories.push(Accessory::BlackClothes);
        }
        if has("a hat") || has("with hat") {
            c.accessories.push(Accessory::Hat);
        }
        if has("life jacket") {
            c.accessories.push(Accessory::RedLifeJacket);
        }
        if has("grey skirt") || has("gray skirt") {
            c.accessories.push(Accessory::GreySkirt);
        }
        if has("filled with cargo") || has("cargo") {
            c.accessories.push(Accessory::CargoLoad);
        }

        c
    }

    /// Key phrases retained for the fast-search embedding: the class, colour,
    /// size, activity and location words, with relations and fine details
    /// dropped (§VI-A).
    pub fn key_phrases(constraints: &QueryConstraints) -> Vec<String> {
        let mut phrases = Vec::new();
        if let Some(size) = constraints.size {
            phrases.push(size.name().to_string());
        }
        if let Some(color) = constraints.color {
            phrases.push(color.name().to_string());
        }
        if let Some(class) = constraints.class {
            phrases.push(class.name().to_string());
        }
        if let Some(activity) = constraints.activity {
            phrases.push(activity.name().to_string());
        }
        if let Some(location) = constraints.location {
            phrases.push(location.name().to_string());
        }
        phrases
    }

    /// Encodes a query into its fast-search embedding and parsed constraints.
    pub fn encode(&self, text: &str) -> Result<QueryEmbedding> {
        let parsed = Self::parse(text);
        // Coarse attribute projection: the shared-space component that aligns
        // the query with matching visual patch embeddings.
        let mut embedding = self.space.embed_constraints(&parsed, DetailLevel::Coarse);

        // Sentence-transformer context: run the word tokens through a real
        // attention layer and fold a small fraction of the pooled output into
        // the embedding, standing in for whatever a trained sentence encoder
        // adds beyond the attribute keywords.
        let tokens = Self::tokenize(text);
        if !tokens.is_empty() && self.config.context_mix > 0.0 {
            let rows: Vec<Vec<f32>> = tokens
                .iter()
                .map(|t| {
                    let mut rng = rng_for(self.config.seed, &format!("txt.token.{t}"));
                    let mut v: Vec<f32> = (0..self.config.class_dim)
                        .map(|_| rng.gen_range(-1.0f32..1.0))
                        .collect();
                    l2_normalize(&mut v);
                    v
                })
                .collect();
            let token_matrix = Matrix::from_rows(&rows).map_err(EncoderError::from)?;
            let projected = self.token_proj.forward(&token_matrix)?;
            let attended = self.attention.self_attention(&projected)?;
            // Mean-pool and project back to the class-embedding space.
            let mut pooled = vec![0.0f32; self.config.token_dim];
            for r in 0..attended.rows() {
                for (p, v) in pooled.iter_mut().zip(attended.row(r).iter()) {
                    *p += v / attended.rows() as f32;
                }
            }
            let mut context = self.output_proj.forward_vec(&pooled)?;
            l2_normalize(&mut context);
            for (e, ctx) in embedding.iter_mut().zip(context.iter()) {
                *e = (1.0 - self.config.context_mix) * *e + self.config.context_mix * ctx;
            }
        }
        // Observation noise.
        if self.config.noise > 0.0 {
            let mut rng = rng_for(self.config.seed, &format!("txt.noise.{text}"));
            for e in embedding.iter_mut() {
                *e += rng.gen_range(-self.config.noise..=self.config.noise);
            }
        }
        l2_normalize(&mut embedding);

        Ok(QueryEmbedding {
            text: text.to_string(),
            key_phrases: Self::key_phrases(&parsed),
            embedding,
            parsed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lovo_tensor::ops::dot;

    fn encoder() -> TextEncoder {
        TextEncoder::new(TextEncoderConfig::default()).unwrap()
    }

    #[test]
    fn tokenize_splits_and_lowercases() {
        let t = TextEncoder::tokenize("A Red Car, side-by-side!");
        assert_eq!(t, vec!["a", "red", "car", "side-by-side"]);
    }

    #[test]
    fn parses_bellevue_complex_query() {
        let c = TextEncoder::parse(
            "A red car side by side with another car, both positioned in the center of the road.",
        );
        assert_eq!(c.class, Some(ObjectClass::Car));
        assert_eq!(c.color, Some(Color::Red));
        assert_eq!(c.location, Some(Location::RoadCenter));
        assert_eq!(c.relation, Some(Relation::SideBySideWith(ObjectClass::Car)));
    }

    #[test]
    fn parses_suv_as_unseen_class() {
        let c = TextEncoder::parse("black SUV driving in the intersection of the road");
        assert_eq!(c.class, Some(ObjectClass::Suv));
        assert_eq!(c.color, Some(Color::Black));
        assert_eq!(c.activity, Some(Activity::Driving));
        assert_eq!(c.location, Some(Location::Intersection));
    }

    #[test]
    fn parses_bus_with_white_roof() {
        let c =
            TextEncoder::parse("A bus driving on the road with white roof and yellow-green body.");
        assert_eq!(c.class, Some(ObjectClass::Bus));
        assert_eq!(c.color, Some(Color::YellowGreen));
        assert!(c.accessories.contains(&Accessory::WhiteRoof));
    }

    #[test]
    fn parses_person_and_dog_queries() {
        let c = TextEncoder::parse(
            "A person in light-colored clothing walking while holding a dark bag.",
        );
        assert_eq!(c.class, Some(ObjectClass::Person));
        assert_eq!(c.color, Some(Color::Light));
        assert_eq!(c.activity, Some(Activity::Walking));
        assert!(c.accessories.contains(&Accessory::DarkBag));

        let d =
            TextEncoder::parse("A white dog inside a car, next to a woman wearing black clothes.");
        assert_eq!(d.class, Some(ObjectClass::Dog));
        assert_eq!(d.color, Some(Color::White));
        assert_eq!(d.location, Some(Location::InsideCar));
        assert_eq!(d.relation, Some(Relation::NextTo(ObjectClass::Person)));
        assert!(d.accessories.contains(&Accessory::BlackClothes));
    }

    #[test]
    fn parses_activitynet_questions() {
        let c = TextEncoder::parse("does the car park on the meadow");
        assert_eq!(c.class, Some(ObjectClass::Car));
        assert_eq!(c.activity, Some(Activity::Parked));
        assert_eq!(c.location, Some(Location::Meadow));

        let d = TextEncoder::parse("is the person in the red life jacket outdoors");
        assert_eq!(d.class, Some(ObjectClass::Person));
        assert!(d.accessories.contains(&Accessory::RedLifeJacket));
        assert_eq!(d.location, Some(Location::Outdoors));
    }

    #[test]
    fn key_phrases_drop_relations() {
        let c = TextEncoder::parse(
            "A red car side by side with another car, both positioned in the center of the road.",
        );
        let phrases = TextEncoder::key_phrases(&c);
        assert!(phrases.contains(&"red".to_string()));
        assert!(phrases.contains(&"car".to_string()));
        assert!(!phrases.iter().any(|p| p.contains("side")));
    }

    #[test]
    fn embedding_is_normalized_and_deterministic() {
        let enc = encoder();
        let a = enc.encode("a red car driving on the road").unwrap();
        let b = enc.encode("a red car driving on the road").unwrap();
        assert_eq!(a.embedding, b.embedding);
        let norm: f32 = a.embedding.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-4);
        assert_eq!(a.embedding.len(), 32);
    }

    #[test]
    fn query_embedding_aligns_with_matching_visual_attributes() {
        use lovo_video::ObjectAttributes;
        let enc = encoder();
        let q = enc.encode("a red car in the center of the road").unwrap();
        let space = enc.space();
        let target = space.embed_attributes(
            &ObjectAttributes::simple(ObjectClass::Car)
                .with_color(Color::Red)
                .with_location(Location::RoadCenter),
            DetailLevel::Fine,
        );
        let distractor = space.embed_attributes(
            &ObjectAttributes::simple(ObjectClass::Bus).with_color(Color::White),
            DetailLevel::Fine,
        );
        assert!(dot(&q.embedding, &target) > dot(&q.embedding, &distractor));
        assert!(dot(&q.embedding, &target) > 0.3);
    }

    #[test]
    fn different_queries_produce_different_embeddings() {
        let enc = encoder();
        let a = enc.encode("a red car").unwrap();
        let b = enc.encode("a white dog inside a car").unwrap();
        assert!(dot(&a.embedding, &b.embedding) < 0.95);
    }

    #[test]
    fn unparseable_text_still_produces_an_embedding() {
        let enc = encoder();
        let q = enc.encode("zorbulating quixotic flibbertigibbet").unwrap();
        assert_eq!(q.parsed, QueryConstraints::default());
        let norm: f32 = q.embedding.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-3);
    }
}
