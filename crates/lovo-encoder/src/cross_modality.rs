//! The cross-modality rerank transformer (§VI-B, Algorithm 2).
//!
//! Takes the query text (as parsed constraints plus raw text) and the top-k
//! candidate key frames from the fast search, re-extracts fine-grained
//! features from each frame, fuses the two modalities with bidirectional
//! cross-attention (the *feature enhancer*), scores every frame against the
//! query, and emits the frames re-ranked with the bounding box of the object
//! that best grounds the query (the *decoder* role).
//!
//! Scoring follows the grounding-style alignment used by the paper's
//! references (GLIP / Grounding-DINO): each query constraint token looks for
//! its best-matching image token; the frame's score is the average of those
//! per-constraint maxima, so a frame only scores highly when *every* aspect of
//! the query (class, colour, relation, accessory, …) is grounded somewhere in
//! the frame. This is precisely the fine-grained evidence the fast-search
//! embedding deliberately discards, which is why the rerank stage recovers
//! accuracy on complex queries (Table IV).

use crate::space::AttributeSpace;
use crate::text::TextEncoder;
use crate::{EncoderError, Result};
use lovo_tensor::ops::dot;
use lovo_tensor::{Linear, Matrix, MultiHeadAttention};
use lovo_video::bbox::BoundingBox;
use lovo_video::query::QueryConstraints;
use lovo_video::scene::Frame;
use serde::{Deserialize, Serialize};

/// Configuration of the cross-modality transformer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrossModalityConfig {
    /// Shared attribute-space dimension (must equal the encoders' `class_dim`).
    pub class_dim: usize,
    /// Internal model dimension of the enhancer/decoder layers.
    pub model_dim: usize,
    /// Number of feature-enhancer layers.
    pub enhancer_layers: usize,
    /// Attention heads per layer.
    pub heads: usize,
    /// Weight of the cross-attention context added to each token per layer.
    pub fusion_strength: f32,
    /// Seed shared with the encoders.
    pub seed: u64,
}

impl Default for CrossModalityConfig {
    fn default() -> Self {
        Self {
            class_dim: 32,
            model_dim: 64,
            enhancer_layers: 2,
            heads: 4,
            fusion_strength: 0.15,
            seed: 0x0715,
        }
    }
}

impl CrossModalityConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.class_dim == 0 || self.model_dim == 0 {
            return Err(EncoderError::InvalidConfig(
                "class_dim and model_dim must be positive".into(),
            ));
        }
        if self.model_dim % self.heads != 0 {
            return Err(EncoderError::InvalidConfig(format!(
                "model_dim {} not divisible by heads {}",
                self.model_dim, self.heads
            )));
        }
        if !(0.0..=1.0).contains(&self.fusion_strength) {
            return Err(EncoderError::InvalidConfig(
                "fusion_strength must be in [0, 1]".into(),
            ));
        }
        Ok(())
    }
}

/// A candidate key frame handed to the rerank stage.
#[derive(Debug, Clone)]
pub struct CandidateFrame<'a> {
    /// Video the frame belongs to.
    pub video_id: u32,
    /// The key frame (the rerank stage re-reads its content, exactly as the
    /// real system decodes the stored key frame image).
    pub frame: &'a Frame,
    /// The box suggested by the fast-search hit, if any; used as a fallback
    /// output when the frame contains no object grounding the query.
    pub seed_box: Option<BoundingBox>,
}

/// One reranked output frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RerankedFrame {
    /// Video the frame belongs to.
    pub video_id: u32,
    /// Frame index within the video.
    pub frame_index: usize,
    /// Timestamp of the frame in seconds.
    pub timestamp: f64,
    /// Cross-modality alignment score (higher is better).
    pub score: f32,
    /// Bounding box of the object that best grounds the query.
    pub bbox: BoundingBox,
}

/// The cross-modality transformer.
pub struct CrossModalityTransformer {
    config: CrossModalityConfig,
    space: AttributeSpace,
    image_proj: Linear,
    text_proj: Linear,
    /// Per layer: image-to-text attention and text-to-image attention.
    layers: Vec<(MultiHeadAttention, MultiHeadAttention)>,
}

impl CrossModalityTransformer {
    /// Creates the transformer with deterministic weights.
    pub fn new(config: CrossModalityConfig) -> Result<Self> {
        config.validate()?;
        let layers = (0..config.enhancer_layers)
            .map(|i| {
                Ok((
                    MultiHeadAttention::new(
                        config.model_dim,
                        config.heads,
                        config.seed,
                        &format!("xmod.layer{i}.i2t"),
                    )?,
                    MultiHeadAttention::new(
                        config.model_dim,
                        config.heads,
                        config.seed,
                        &format!("xmod.layer{i}.t2i"),
                    )?,
                ))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Self {
            space: AttributeSpace::new(config.class_dim, config.seed),
            image_proj: Linear::new(config.class_dim, config.model_dim, config.seed, "xmod.img"),
            text_proj: Linear::new(config.class_dim, config.model_dim, config.seed, "xmod.txt"),
            layers,
            config,
        })
    }

    /// The transformer configuration.
    pub fn config(&self) -> &CrossModalityConfig {
        &self.config
    }

    /// Scores one frame against the query constraints and returns the score
    /// together with the grounded bounding box.
    pub fn score_frame(
        &self,
        constraints: &QueryConstraints,
        frame: &Frame,
        seed_box: Option<BoundingBox>,
    ) -> Result<(f32, BoundingBox)> {
        let text_tokens = self.space.fine_tokens_of_constraints(constraints);
        if text_tokens.is_empty() || frame.objects.is_empty() {
            // Nothing to ground: fall back to the fast-search box with a weak score.
            let fallback = seed_box.unwrap_or_else(|| {
                BoundingBox::new(0.0, 0.0, frame.width as f32, frame.height as f32)
            });
            return Ok((0.0, fallback));
        }

        // Assemble image tokens: each object contributes one token per facet.
        let mut image_rows: Vec<Vec<f32>> = Vec::new();
        let mut object_ranges: Vec<(usize, usize)> = Vec::new();
        for obj in &frame.objects {
            let start = image_rows.len();
            image_rows.extend(self.space.fine_tokens_of_attributes(&obj.attributes));
            object_ranges.push((start, image_rows.len()));
        }

        let text_matrix = Matrix::from_rows(&text_tokens).map_err(EncoderError::from)?;
        let image_matrix = Matrix::from_rows(&image_rows).map_err(EncoderError::from)?;

        // Project both modalities into the fusion space.
        let mut xi = self.image_proj.forward(&image_matrix)?;
        let mut xt = self.text_proj.forward(&text_matrix)?;

        // Feature enhancer: bidirectional cross-attention layers.
        let alpha = self.config.fusion_strength;
        for (i2t, t2i) in &self.layers {
            let image_ctx = i2t.cross_attention(&xi, &xt)?.scale(alpha);
            let text_ctx = t2i.cross_attention(&xt, &xi)?.scale(alpha);
            xi = xi.add(&image_ctx)?;
            xt = xt.add(&text_ctx)?;
        }

        // Alignment on the *raw* shared-space tokens carries the semantic
        // match; the enhanced features modulate it. Blend the two so random
        // fusion weights cannot erase the grounding signal.
        let raw_alignment = alignment_matrix(&image_rows, &text_tokens);
        let fused_alignment = normalized_alignment(&xi, &xt)?;

        let mut best_score = f32::NEG_INFINITY;
        let mut best_box = seed_box
            .unwrap_or_else(|| BoundingBox::new(0.0, 0.0, frame.width as f32, frame.height as f32));
        for (obj_idx, &(start, end)) in object_ranges.iter().enumerate() {
            // For every query constraint token, the best-matching token of
            // this object; the object's score averages those maxima.
            let mut per_text_max = vec![f32::NEG_INFINITY; text_tokens.len()];
            for img_token in start..end {
                for (t, slot) in per_text_max.iter_mut().enumerate() {
                    let combined =
                        0.8 * raw_alignment[img_token][t] + 0.2 * fused_alignment[img_token][t];
                    if combined > *slot {
                        *slot = combined;
                    }
                }
            }
            let score: f32 = per_text_max.iter().sum::<f32>() / per_text_max.len() as f32;
            if score > best_score {
                best_score = score;
                best_box = frame.objects[obj_idx].bbox;
            }
        }
        Ok((best_score, best_box))
    }

    /// Reranks candidate frames against a query, best first (Algorithm 2).
    pub fn rerank(
        &self,
        query_text: &str,
        candidates: &[CandidateFrame<'_>],
    ) -> Result<Vec<RerankedFrame>> {
        let constraints = TextEncoder::parse(query_text);
        self.rerank_with_constraints(&constraints, candidates)
    }

    /// Reranks candidate frames against pre-parsed constraints.
    pub fn rerank_with_constraints(
        &self,
        constraints: &QueryConstraints,
        candidates: &[CandidateFrame<'_>],
    ) -> Result<Vec<RerankedFrame>> {
        let mut out = Vec::with_capacity(candidates.len());
        for candidate in candidates {
            let (score, bbox) =
                self.score_frame(constraints, candidate.frame, candidate.seed_box)?;
            out.push(RerankedFrame {
                video_id: candidate.video_id,
                frame_index: candidate.frame.index,
                timestamp: candidate.frame.timestamp,
                score,
                bbox,
            });
        }
        out.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.frame_index.cmp(&b.frame_index))
                .then(a.video_id.cmp(&b.video_id))
        });
        Ok(out)
    }
}

/// Cosine alignment matrix between raw (unit) token sets.
fn alignment_matrix(image_rows: &[Vec<f32>], text_rows: &[Vec<f32>]) -> Vec<Vec<f32>> {
    image_rows
        .iter()
        .map(|img| text_rows.iter().map(|txt| dot(img, txt)).collect())
        .collect()
}

/// Cosine alignment matrix between fused features (rows normalized first).
fn normalized_alignment(xi: &Matrix, xt: &Matrix) -> Result<Vec<Vec<f32>>> {
    let norm_rows = |m: &Matrix| -> Vec<Vec<f32>> {
        (0..m.rows())
            .map(|r| {
                let mut row = m.row(r).to_vec();
                lovo_tensor::ops::l2_normalize(&mut row);
                row
            })
            .collect()
    };
    let xi_rows = norm_rows(xi);
    let xt_rows = norm_rows(xt);
    Ok(alignment_matrix(&xi_rows, &xt_rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lovo_video::object::{Accessory, Color, ObjectAttributes, ObjectClass, Relation};
    use lovo_video::scene::{SceneObject, TrackId};

    fn transformer() -> CrossModalityTransformer {
        CrossModalityTransformer::new(CrossModalityConfig::default()).unwrap()
    }

    fn frame_with(attrs: ObjectAttributes, index: usize) -> Frame {
        let mut f = Frame::empty(index, index as f64 / 30.0, 1280, 720);
        f.objects.push(SceneObject {
            track: TrackId(index as u64),
            attributes: attrs,
            bbox: BoundingBox::new(100.0, 100.0, 200.0, 120.0),
            velocity: (0.0, 0.0),
        });
        f
    }

    #[test]
    fn config_validation() {
        assert!(CrossModalityConfig::default().validate().is_ok());
        let c = CrossModalityConfig {
            heads: 5,
            ..CrossModalityConfig::default()
        };
        assert!(c.validate().is_err());
        let c = CrossModalityConfig {
            fusion_strength: 2.0,
            ..CrossModalityConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn matching_frame_outranks_near_miss() {
        let t = transformer();
        let query = "a green bus with the white roof driving on the road";
        let target = frame_with(
            ObjectAttributes::simple(ObjectClass::Bus)
                .with_color(Color::Green)
                .with_accessory(Accessory::WhiteRoof),
            0,
        );
        let wrong_color = frame_with(
            ObjectAttributes::simple(ObjectClass::Bus).with_color(Color::White),
            1,
        );
        let wrong_class = frame_with(
            ObjectAttributes::simple(ObjectClass::Truck).with_color(Color::Green),
            2,
        );
        let candidates = vec![
            CandidateFrame {
                video_id: 0,
                frame: &wrong_color,
                seed_box: None,
            },
            CandidateFrame {
                video_id: 0,
                frame: &target,
                seed_box: None,
            },
            CandidateFrame {
                video_id: 0,
                frame: &wrong_class,
                seed_box: None,
            },
        ];
        let ranked = t.rerank(query, &candidates).unwrap();
        assert_eq!(ranked[0].frame_index, 0, "target frame should rank first");
        assert!(ranked[0].score > ranked[1].score);
    }

    #[test]
    fn relation_queries_distinguish_frames() {
        let t = transformer();
        let query = "a red car side by side with another car in the center of the road";
        let with_rel = frame_with(
            ObjectAttributes::simple(ObjectClass::Car)
                .with_color(Color::Red)
                .with_location(lovo_video::object::Location::RoadCenter)
                .with_relation(Relation::SideBySideWith(ObjectClass::Car)),
            0,
        );
        let without_rel = frame_with(
            ObjectAttributes::simple(ObjectClass::Car)
                .with_color(Color::Red)
                .with_location(lovo_video::object::Location::RoadCenter),
            1,
        );
        let candidates = vec![
            CandidateFrame {
                video_id: 0,
                frame: &without_rel,
                seed_box: None,
            },
            CandidateFrame {
                video_id: 0,
                frame: &with_rel,
                seed_box: None,
            },
        ];
        let ranked = t.rerank(query, &candidates).unwrap();
        assert_eq!(ranked[0].frame_index, 0);
    }

    #[test]
    fn grounded_box_is_the_matching_objects_box() {
        let t = transformer();
        let mut frame = Frame::empty(0, 0.0, 1280, 720);
        frame.objects.push(SceneObject {
            track: TrackId(1),
            attributes: ObjectAttributes::simple(ObjectClass::Person),
            bbox: BoundingBox::new(10.0, 10.0, 40.0, 100.0),
            velocity: (0.0, 0.0),
        });
        frame.objects.push(SceneObject {
            track: TrackId(2),
            attributes: ObjectAttributes::simple(ObjectClass::Bus).with_color(Color::Green),
            bbox: BoundingBox::new(600.0, 300.0, 260.0, 110.0),
            velocity: (0.0, 0.0),
        });
        let constraints = TextEncoder::parse("a green bus on the road");
        let (_, bbox) = t.score_frame(&constraints, &frame, None).unwrap();
        assert!(bbox.iou(&frame.objects[1].bbox) > 0.99);
    }

    #[test]
    fn empty_frame_or_query_falls_back_gracefully() {
        let t = transformer();
        let empty = Frame::empty(0, 0.0, 640, 360);
        let constraints = TextEncoder::parse("a red car");
        let seed = BoundingBox::new(5.0, 5.0, 50.0, 50.0);
        let (score, bbox) = t.score_frame(&constraints, &empty, Some(seed)).unwrap();
        assert_eq!(score, 0.0);
        assert_eq!(bbox, seed);

        let frame = frame_with(ObjectAttributes::simple(ObjectClass::Car), 0);
        let (score2, _) = t
            .score_frame(&QueryConstraints::default(), &frame, None)
            .unwrap();
        assert_eq!(score2, 0.0);
    }

    #[test]
    fn rerank_is_deterministic_and_sorted() {
        let t = transformer();
        let frames: Vec<Frame> = (0..5)
            .map(|i| {
                frame_with(
                    ObjectAttributes::simple(ObjectClass::Car).with_color(if i % 2 == 0 {
                        Color::Red
                    } else {
                        Color::Blue
                    }),
                    i,
                )
            })
            .collect();
        let candidates: Vec<CandidateFrame> = frames
            .iter()
            .map(|f| CandidateFrame {
                video_id: 0,
                frame: f,
                seed_box: None,
            })
            .collect();
        let a = t.rerank("a red car on the road", &candidates).unwrap();
        let b = t.rerank("a red car on the road", &candidates).unwrap();
        assert_eq!(a, b);
        for pair in a.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
        // Red frames (even indices) must outrank blue ones.
        assert!(a[0].frame_index % 2 == 0);
        assert!(a[1].frame_index % 2 == 0);
    }
}
