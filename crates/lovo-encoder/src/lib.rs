//! # lovo-encoder
//!
//! The model components of the LOVO reproduction: the decoupled visual and
//! text encoders (§IV-B, §VI-A), the object localization heads (§IV-C), the
//! cross-modality transformer used for reranking (§VI-B), and the simulated
//! predefined-class detectors used by the baseline systems.
//!
//! ## The substitution for pre-trained models
//!
//! The paper uses a pre-trained ViT-B/32 (Owl-ViT style) image encoder, a
//! BERT-style text encoder and a Grounding-DINO-style cross-modality
//! transformer. Pre-trained weights are not available in this environment, so
//! the encoders here are **attribute-grounded**: both modalities project the
//! *semantic attributes* of what they see (object class, colour, size,
//! activity, location, relations, accessories) into a shared embedding space
//! ([`space::AttributeSpace`]), then pass the result through genuine
//! transformer layers (`lovo-tensor` attention/MLP blocks) with controlled
//! noise. The shared projection plays the role CLIP pre-training plays in the
//! real system — it is the reason a text query lands near the visual
//! embeddings of matching objects — while the transformer layers and noise
//! keep the alignment imperfect in exactly the way that makes the paper's
//! two-stage design (coarse fast search + fine cross-modality rerank)
//! meaningful. The fast-search text embedding deliberately drops relations and
//! fine-grained details (as described in §VI-A), which the rerank stage then
//! recovers.

pub mod cross_modality;
pub mod detector;
pub mod space;
pub mod text;
pub mod visual;

pub use cross_modality::{CrossModalityConfig, CrossModalityTransformer, RerankedFrame};
pub use detector::{Detection, DetectorConfig, SimulatedDetector};
pub use space::{AttributeFacet, AttributeSpace};
pub use text::{QueryEmbedding, TextEncoder, TextEncoderConfig};
pub use visual::{FrameEncoding, PatchEncoding, VisualEncoder, VisualEncoderConfig};

/// Errors surfaced by the encoders.
#[derive(Debug)]
pub enum EncoderError {
    /// A tensor-level failure (shape mismatch in a layer).
    Tensor(lovo_tensor::TensorError),
    /// The configuration was invalid.
    InvalidConfig(String),
}

impl std::fmt::Display for EncoderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncoderError::Tensor(e) => write!(f, "tensor error: {e}"),
            EncoderError::InvalidConfig(msg) => write!(f, "invalid encoder config: {msg}"),
        }
    }
}

impl std::error::Error for EncoderError {}

impl From<lovo_tensor::TensorError> for EncoderError {
    fn from(e: lovo_tensor::TensorError) -> Self {
        EncoderError::Tensor(e)
    }
}

/// Result alias for encoder operations.
pub type Result<T> = std::result::Result<T, EncoderError>;
