//! The shared attribute-grounded embedding space.
//!
//! Every semantic facet value (class "bus", colour "red", activity "dancing",
//! …) owns a deterministic pseudo-random unit direction in the `D'`-dimensional
//! class-embedding space. An object's embedding is a weighted sum of the
//! directions of its attributes; a query's embedding is a weighted sum of the
//! directions of its constraints. Because both modalities use the *same*
//! directions, dot-product similarity is high exactly when attributes match —
//! this is the stand-in for CLIP-style vision–language pre-training (see the
//! crate-level documentation and DESIGN.md for the argument).
//!
//! Two deliberate imperfections keep the retrieval problem realistic:
//!
//! * visually similar colours (white/light, black/dark, green/yellow-green)
//!   share a common direction component, so near-miss colours partially match;
//! * facet weights differ between the fast-search view (class, colour and
//!   location dominate; relations and accessories are dropped, §VI-A) and the
//!   fine-grained view used by the rerank transformer (everything included).

use lovo_tensor::init::rng_for;
use lovo_tensor::ops::l2_normalize;
use lovo_video::object::Color;
use lovo_video::query::QueryConstraints;
use lovo_video::ObjectAttributes;
use rand::Rng;

/// The semantic facets that own directions in the space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttributeFacet {
    /// Object class.
    Class,
    /// Colour.
    Color,
    /// Shared component between visually similar colours.
    ColorFamily,
    /// Size.
    Size,
    /// Activity.
    Activity,
    /// Location.
    Location,
    /// Relation kind (none / side-by-side / next-to).
    RelationKind,
    /// Relation peer class.
    RelationPeer,
    /// Accessory.
    Accessory,
    /// Gender presentation.
    Gender,
}

impl AttributeFacet {
    fn label(&self) -> &'static str {
        match self {
            AttributeFacet::Class => "class",
            AttributeFacet::Color => "color",
            AttributeFacet::ColorFamily => "color_family",
            AttributeFacet::Size => "size",
            AttributeFacet::Activity => "activity",
            AttributeFacet::Location => "location",
            AttributeFacet::RelationKind => "relation_kind",
            AttributeFacet::RelationPeer => "relation_peer",
            AttributeFacet::Accessory => "accessory",
            AttributeFacet::Gender => "gender",
        }
    }
}

/// Relative weight of each facet in the coarse (fast-search) view of an
/// embedding. Relations and accessories are intentionally absent: the fast
/// search "omits fine-grained positional information and cross-word
/// dependencies" (§VI-A).
const COARSE_WEIGHTS: &[(AttributeFacet, f32)] = &[
    (AttributeFacet::Class, 1.0),
    (AttributeFacet::Color, 0.65),
    (AttributeFacet::ColorFamily, 0.25),
    (AttributeFacet::Location, 0.45),
    (AttributeFacet::Activity, 0.35),
    (AttributeFacet::Size, 0.2),
    (AttributeFacet::Gender, 0.2),
];

/// Relative weight of each facet in the fine-grained view used by the
/// cross-modality rerank, which fuses every detail of the query with the
/// object's visual information.
const FINE_WEIGHTS: &[(AttributeFacet, f32)] = &[
    (AttributeFacet::Class, 1.0),
    (AttributeFacet::Color, 0.8),
    (AttributeFacet::ColorFamily, 0.2),
    (AttributeFacet::Location, 0.7),
    (AttributeFacet::Activity, 0.7),
    (AttributeFacet::Size, 0.5),
    (AttributeFacet::Gender, 0.5),
    (AttributeFacet::RelationKind, 0.9),
    (AttributeFacet::RelationPeer, 0.6),
    (AttributeFacet::Accessory, 0.9),
];

/// Which facet weighting to use when composing an embedding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetailLevel {
    /// Fast-search view: coarse facets only.
    Coarse,
    /// Rerank view: every facet, fine details included.
    Fine,
}

/// The shared embedding space.
#[derive(Debug, Clone)]
pub struct AttributeSpace {
    dim: usize,
    seed: u64,
}

impl AttributeSpace {
    /// Creates a space of the given dimensionality, deterministically derived
    /// from `seed`.
    pub fn new(dim: usize, seed: u64) -> Self {
        Self { dim, seed }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The unit direction owned by `(facet, code)`.
    pub fn direction(&self, facet: AttributeFacet, code: usize) -> Vec<f32> {
        let mut rng = rng_for(self.seed, &format!("space.{}.{}", facet.label(), code));
        let mut v: Vec<f32> = (0..self.dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        l2_normalize(&mut v);
        v
    }

    /// The "colour family" code shared by visually similar colours; colours in
    /// the same family partially overlap in embedding space.
    fn color_family_code(color: Color) -> usize {
        match color {
            Color::White | Color::Light | Color::Gray => 0,
            Color::Black | Color::Dark => 1,
            Color::Green | Color::YellowGreen => 2,
            Color::Red => 3,
            Color::Blue => 4,
        }
    }

    /// The direction of a colour: a blend of the colour's own direction and
    /// its family direction, so visually similar colours (white/light,
    /// black/dark, green/yellow-green) overlap substantially while distinct
    /// colours stay nearly orthogonal.
    pub fn color_direction(&self, color: Color) -> Vec<f32> {
        let own = self.direction(AttributeFacet::Color, color.code());
        let family = self.direction(AttributeFacet::ColorFamily, Self::color_family_code(color));
        let mut blended: Vec<f32> = own
            .iter()
            .zip(family.iter())
            .map(|(o, f)| 0.75 * o + 0.65 * f)
            .collect();
        l2_normalize(&mut blended);
        blended
    }

    fn add_scaled(acc: &mut [f32], dir: &[f32], weight: f32) {
        for (a, d) in acc.iter_mut().zip(dir.iter()) {
            *a += weight * d;
        }
    }

    fn weight_for(weights: &[(AttributeFacet, f32)], facet: AttributeFacet) -> f32 {
        weights
            .iter()
            .find(|(f, _)| *f == facet)
            .map(|(_, w)| *w)
            .unwrap_or(0.0)
    }

    /// Embeds ground-truth object attributes at the requested detail level.
    /// The result is L2-normalized.
    pub fn embed_attributes(&self, attrs: &ObjectAttributes, level: DetailLevel) -> Vec<f32> {
        let weights = match level {
            DetailLevel::Coarse => COARSE_WEIGHTS,
            DetailLevel::Fine => FINE_WEIGHTS,
        };
        let mut acc = vec![0.0f32; self.dim];
        let w = |facet| Self::weight_for(weights, facet);

        Self::add_scaled(
            &mut acc,
            &self.direction(AttributeFacet::Class, attrs.class.code()),
            w(AttributeFacet::Class),
        );
        Self::add_scaled(
            &mut acc,
            &self.color_direction(attrs.color),
            w(AttributeFacet::Color) + w(AttributeFacet::ColorFamily),
        );
        Self::add_scaled(
            &mut acc,
            &self.direction(AttributeFacet::Size, attrs.size.code()),
            w(AttributeFacet::Size),
        );
        Self::add_scaled(
            &mut acc,
            &self.direction(AttributeFacet::Activity, attrs.activity.code()),
            w(AttributeFacet::Activity),
        );
        Self::add_scaled(
            &mut acc,
            &self.direction(AttributeFacet::Location, attrs.location.code()),
            w(AttributeFacet::Location),
        );
        if attrs.gender.code() != 0 {
            Self::add_scaled(
                &mut acc,
                &self.direction(AttributeFacet::Gender, attrs.gender.code()),
                w(AttributeFacet::Gender),
            );
        }
        let rel_kind = attrs.relation.kind_code();
        if rel_kind != 0 {
            Self::add_scaled(
                &mut acc,
                &self.direction(AttributeFacet::RelationKind, rel_kind),
                w(AttributeFacet::RelationKind),
            );
            if let Some(peer) = attrs.relation.peer() {
                Self::add_scaled(
                    &mut acc,
                    &self.direction(AttributeFacet::RelationPeer, peer.code()),
                    w(AttributeFacet::RelationPeer),
                );
            }
        }
        for acc_item in &attrs.accessories {
            Self::add_scaled(
                &mut acc,
                &self.direction(AttributeFacet::Accessory, acc_item.code()),
                w(AttributeFacet::Accessory),
            );
        }
        l2_normalize(&mut acc);
        acc
    }

    /// Embeds the constraints of a query at the requested detail level.
    /// The result is L2-normalized. Unconstrained facets contribute nothing.
    pub fn embed_constraints(
        &self,
        constraints: &QueryConstraints,
        level: DetailLevel,
    ) -> Vec<f32> {
        let weights = match level {
            DetailLevel::Coarse => COARSE_WEIGHTS,
            DetailLevel::Fine => FINE_WEIGHTS,
        };
        let mut acc = vec![0.0f32; self.dim];
        let w = |facet| Self::weight_for(weights, facet);

        if let Some(class) = constraints.class {
            Self::add_scaled(
                &mut acc,
                &self.direction(AttributeFacet::Class, class.code()),
                w(AttributeFacet::Class),
            );
        }
        if let Some(color) = constraints.color {
            Self::add_scaled(
                &mut acc,
                &self.color_direction(color),
                w(AttributeFacet::Color) + w(AttributeFacet::ColorFamily),
            );
        }
        if let Some(size) = constraints.size {
            Self::add_scaled(
                &mut acc,
                &self.direction(AttributeFacet::Size, size.code()),
                w(AttributeFacet::Size),
            );
        }
        if let Some(activity) = constraints.activity {
            Self::add_scaled(
                &mut acc,
                &self.direction(AttributeFacet::Activity, activity.code()),
                w(AttributeFacet::Activity),
            );
        }
        if let Some(location) = constraints.location {
            Self::add_scaled(
                &mut acc,
                &self.direction(AttributeFacet::Location, location.code()),
                w(AttributeFacet::Location),
            );
        }
        if let Some(gender) = constraints.gender {
            if gender.code() != 0 {
                Self::add_scaled(
                    &mut acc,
                    &self.direction(AttributeFacet::Gender, gender.code()),
                    w(AttributeFacet::Gender),
                );
            }
        }
        if let Some(relation) = &constraints.relation {
            let kind = relation.kind_code();
            if kind != 0 {
                Self::add_scaled(
                    &mut acc,
                    &self.direction(AttributeFacet::RelationKind, kind),
                    w(AttributeFacet::RelationKind),
                );
                if let Some(peer) = relation.peer() {
                    Self::add_scaled(
                        &mut acc,
                        &self.direction(AttributeFacet::RelationPeer, peer.code()),
                        w(AttributeFacet::RelationPeer),
                    );
                }
            }
        }
        for acc_item in &constraints.accessories {
            Self::add_scaled(
                &mut acc,
                &self.direction(AttributeFacet::Accessory, acc_item.code()),
                w(AttributeFacet::Accessory),
            );
        }
        l2_normalize(&mut acc);
        acc
    }

    /// Per-facet fine-grained token vectors of an object — one token per
    /// present facet. The cross-modality transformer attends over these.
    pub fn fine_tokens_of_attributes(&self, attrs: &ObjectAttributes) -> Vec<Vec<f32>> {
        let mut tokens = vec![
            self.direction(AttributeFacet::Class, attrs.class.code()),
            self.color_direction(attrs.color),
            self.direction(AttributeFacet::Size, attrs.size.code()),
            self.direction(AttributeFacet::Activity, attrs.activity.code()),
            self.direction(AttributeFacet::Location, attrs.location.code()),
        ];
        if attrs.gender.code() != 0 {
            tokens.push(self.direction(AttributeFacet::Gender, attrs.gender.code()));
        }
        if attrs.relation.kind_code() != 0 {
            tokens.push(self.direction(AttributeFacet::RelationKind, attrs.relation.kind_code()));
            if let Some(peer) = attrs.relation.peer() {
                tokens.push(self.direction(AttributeFacet::RelationPeer, peer.code()));
            }
        }
        for acc in &attrs.accessories {
            tokens.push(self.direction(AttributeFacet::Accessory, acc.code()));
        }
        tokens
    }

    /// Per-facet fine-grained token vectors of a query's constraints.
    pub fn fine_tokens_of_constraints(&self, constraints: &QueryConstraints) -> Vec<Vec<f32>> {
        let mut tokens = Vec::new();
        if let Some(class) = constraints.class {
            tokens.push(self.direction(AttributeFacet::Class, class.code()));
        }
        if let Some(color) = constraints.color {
            tokens.push(self.color_direction(color));
        }
        if let Some(size) = constraints.size {
            tokens.push(self.direction(AttributeFacet::Size, size.code()));
        }
        if let Some(activity) = constraints.activity {
            tokens.push(self.direction(AttributeFacet::Activity, activity.code()));
        }
        if let Some(location) = constraints.location {
            tokens.push(self.direction(AttributeFacet::Location, location.code()));
        }
        if let Some(gender) = constraints.gender {
            if gender.code() != 0 {
                tokens.push(self.direction(AttributeFacet::Gender, gender.code()));
            }
        }
        if let Some(relation) = &constraints.relation {
            if relation.kind_code() != 0 {
                tokens.push(self.direction(AttributeFacet::RelationKind, relation.kind_code()));
                if let Some(peer) = relation.peer() {
                    tokens.push(self.direction(AttributeFacet::RelationPeer, peer.code()));
                }
            }
        }
        for acc in &constraints.accessories {
            tokens.push(self.direction(AttributeFacet::Accessory, acc.code()));
        }
        tokens
    }

    /// A deterministic "background" embedding for patches that cover no
    /// object (sky, pavement, vegetation), far from every attribute direction
    /// in expectation.
    pub fn background_embedding(&self, variant: usize) -> Vec<f32> {
        let mut rng = rng_for(self.seed, &format!("space.background.{variant}"));
        let mut v: Vec<f32> = (0..self.dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        l2_normalize(&mut v);
        v
    }
}

// The colour-family mapping must stay exhaustive; adding a colour without
// updating it is a compile error thanks to the match above.

#[cfg(test)]
mod tests {
    use super::*;
    use lovo_tensor::ops::dot;
    use lovo_video::object::{Accessory, Location, Relation};
    use lovo_video::ObjectClass;

    fn space() -> AttributeSpace {
        AttributeSpace::new(64, 7)
    }

    fn red_center_car() -> ObjectAttributes {
        ObjectAttributes::simple(ObjectClass::Car)
            .with_color(Color::Red)
            .with_location(Location::RoadCenter)
    }

    fn query_red_car() -> QueryConstraints {
        QueryConstraints {
            class: Some(ObjectClass::Car),
            color: Some(Color::Red),
            location: Some(Location::RoadCenter),
            ..Default::default()
        }
    }

    #[test]
    fn directions_are_unit_and_deterministic() {
        let s = space();
        let a = s.direction(AttributeFacet::Class, 2);
        let b = s.direction(AttributeFacet::Class, 2);
        assert_eq!(a, b);
        let norm: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
        assert_ne!(a, s.direction(AttributeFacet::Class, 3));
        assert_ne!(a, s.direction(AttributeFacet::Color, 2));
    }

    #[test]
    fn matching_query_scores_higher_than_mismatch() {
        let s = space();
        let q = s.embed_constraints(&query_red_car(), DetailLevel::Coarse);
        let target = s.embed_attributes(&red_center_car(), DetailLevel::Coarse);
        let wrong_color = s.embed_attributes(
            &red_center_car().with_color(Color::Blue),
            DetailLevel::Coarse,
        );
        let wrong_class = s.embed_attributes(
            &ObjectAttributes::simple(ObjectClass::Bus).with_color(Color::Red),
            DetailLevel::Coarse,
        );
        assert!(dot(&q, &target) > dot(&q, &wrong_color));
        assert!(dot(&q, &target) > dot(&q, &wrong_class));
        assert!(dot(&q, &target) > 0.5);
    }

    #[test]
    fn similar_colors_partially_overlap() {
        let s = space();
        let white = s.embed_attributes(
            &ObjectAttributes::simple(ObjectClass::Person).with_color(Color::White),
            DetailLevel::Coarse,
        );
        let light = s.embed_attributes(
            &ObjectAttributes::simple(ObjectClass::Person).with_color(Color::Light),
            DetailLevel::Coarse,
        );
        let red = s.embed_attributes(
            &ObjectAttributes::simple(ObjectClass::Person).with_color(Color::Red),
            DetailLevel::Coarse,
        );
        assert!(dot(&white, &light) > dot(&white, &red));
    }

    #[test]
    fn coarse_view_ignores_relations_fine_view_does_not() {
        let s = space();
        let plain = red_center_car();
        let with_rel = red_center_car().with_relation(Relation::SideBySideWith(ObjectClass::Car));
        let coarse_plain = s.embed_attributes(&plain, DetailLevel::Coarse);
        let coarse_rel = s.embed_attributes(&with_rel, DetailLevel::Coarse);
        let fine_plain = s.embed_attributes(&plain, DetailLevel::Fine);
        let fine_rel = s.embed_attributes(&with_rel, DetailLevel::Fine);
        let coarse_gap = 1.0 - dot(&coarse_plain, &coarse_rel);
        let fine_gap = 1.0 - dot(&fine_plain, &fine_rel);
        assert!(coarse_gap < 1e-5, "coarse view should not see relations");
        assert!(fine_gap > 0.05, "fine view must distinguish relations");
    }

    #[test]
    fn background_is_far_from_objects() {
        let s = space();
        let bg = s.background_embedding(0);
        let car = s.embed_attributes(&red_center_car(), DetailLevel::Coarse);
        assert!(dot(&bg, &car).abs() < 0.5);
    }

    #[test]
    fn fine_tokens_cover_constrained_facets() {
        let s = space();
        let mut constraints = query_red_car();
        constraints.accessories.push(Accessory::WhiteRoof);
        constraints.relation = Some(Relation::SideBySideWith(ObjectClass::Car));
        let tokens = s.fine_tokens_of_constraints(&constraints);
        // class + color + location + relation kind + relation peer + accessory = 6
        assert_eq!(tokens.len(), 6);
        assert!(tokens.iter().all(|t| t.len() == 64));
        let empty = s.fine_tokens_of_constraints(&QueryConstraints::default());
        assert!(empty.is_empty());
    }

    #[test]
    fn fine_tokens_of_attributes_include_accessories() {
        let s = space();
        let attrs = ObjectAttributes::simple(ObjectClass::Bus)
            .with_accessory(Accessory::WhiteRoof)
            .with_accessory(Accessory::CargoLoad);
        let tokens = s.fine_tokens_of_attributes(&attrs);
        // class, color, size, activity, location + 2 accessories
        assert_eq!(tokens.len(), 7);
    }

    #[test]
    fn all_colors_have_a_family() {
        // Exhaustiveness is enforced by the match, but make sure families
        // group what Color::is_similar_to considers similar.
        for a in Color::ALL {
            for b in Color::ALL {
                if a != b && a.is_similar_to(&b) {
                    assert_eq!(
                        AttributeSpace::color_family_code(a),
                        AttributeSpace::color_family_code(b),
                        "{a:?} and {b:?} are similar but in different families"
                    );
                }
            }
        }
    }
}
